//! A disaster-recovery scenario, the motivating application of the paper:
//! the cellular network is down over a town; rescuers and survivors
//! crowdsource photos of 100 damaged sites; two rescue teams carry
//! satellite radios (gateways). The command center watches its obtained
//! coverage grow.
//!
//! Compares the paper's scheme against the content-oblivious baseline on
//! the *same* world and prints the trajectory of both.
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use photodtn::contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn::schemes::{OurScheme, SprayAndWait};
use photodtn::sim::{CommandCenterMode, SimConfig, Simulation};

const SEED: u64 = 7;

fn main() {
    // 40 responders moving around a 3 km × 3 km town for 72 hours,
    // organized in teams of five (teams meet internally far more often).
    let mut gen = CommunityTraceGenerator::new(TraceStyle::MitLike);
    gen.num_nodes = 40;
    gen.duration_hours = 72.0;
    gen.community_size = 5;
    gen.intra_mean_hours = 6.0;
    gen.inter_mean_hours = 60.0;
    let trace = gen.generate(SEED);

    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(120.0)
        .with_command_center(CommandCenterMode::Gateways {
            fraction: 0.05, // two satellite radios among 40 responders
            period: 3600.0, // hourly uplink passes
            window: 300.0,
        });
    config.region = (3000.0, 3000.0);
    config.num_pois = 100;

    println!(
        "town scenario: {} responders, {} contacts, {} PoIs, gateways with hourly uplink\n",
        trace.num_nodes(),
        trace.len(),
        config.num_pois
    );

    let ours = Simulation::new(&config, &trace, SEED).run(&mut OurScheme::new());
    let spray = Simulation::new(&config, &trace, SEED).run(&mut SprayAndWait::new());

    println!(
        "{:>6} | {:>23} | {:>23}",
        "t (h)", "ours: point% aspect°", "spray&wait: point% aspect°"
    );
    for (a, b) in ours.samples.iter().zip(&spray.samples).step_by(6) {
        println!(
            "{:>6.0} | {:>10.1}% {:>10.1}° | {:>10.1}% {:>10.1}°",
            a.t_hours,
            100.0 * a.point_coverage,
            a.aspect_coverage_deg,
            100.0 * b.point_coverage,
            b.aspect_coverage_deg
        );
    }

    let (oe, se) = (ours.final_sample(), spray.final_sample());
    println!(
        "\nafter 72 h: ours covered {:.1}% of sites with {} photos; \
         spray&wait covered {:.1}% with {} photos",
        100.0 * oe.point_coverage,
        oe.delivered_photos,
        100.0 * se.point_coverage,
        se.delivered_photos
    );
    assert!(
        oe.point_coverage >= se.point_coverage,
        "resource-aware selection should not lose to content-oblivious routing"
    );
}
