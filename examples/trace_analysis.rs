//! Contact-trace analysis: verifies the statistical assumptions the
//! paper's metadata-management scheme (§III-B) rests on.
//!
//! Generates the MIT-like and Cambridge-like synthetic traces plus a
//! random-waypoint mobility trace, summarizes them, fits the exponential
//! inter-contact model per pair, and shows the resulting metadata
//! validity horizons under Table I's `P_thld = 0.8`.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use photodtn::contacts::stats::{
    exponential_mle, inter_contact_times, ks_statistic_exponential, summarize,
};
use photodtn::contacts::synth::{CommunityTraceGenerator, TraceStyle, WaypointTraceGenerator};
use photodtn::contacts::{ContactTrace, NodeId, RateMatrix};
use photodtn::core::validity::ValidityModel;

fn main() {
    let mit = CommunityTraceGenerator::new(TraceStyle::MitLike).generate(1);
    let cam = CommunityTraceGenerator::new(TraceStyle::CambridgeLike).generate(1);
    let rwp = WaypointTraceGenerator::new(20, 800.0, 48.0 * 3600.0).generate(1);

    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>12} {:>14} {:>8}",
        "trace", "nodes", "contacts", "hours", "mean dur", "mean intercontact", "KS"
    );
    for (name, trace) in [("mit-like", &mit), ("cambridge", &cam), ("waypoint", &rwp)] {
        analyze(name, trace);
    }

    // Metadata validity horizons: how long is a cached snapshot trusted?
    println!("\nmetadata validity horizons (P_thld = 0.8), MIT-like trace:");
    let rates = RateMatrix::from_trace(&mit);
    let validity = ValidityModel::paper_default();
    let now = mit.duration();
    let mut horizons: Vec<(f64, u32)> = (0..mit.num_nodes())
        .map(|n| {
            (
                validity.validity_horizon(rates.node_rate(NodeId(n), now)),
                n,
            )
        })
        .collect();
    horizons.sort_by(|a, b| a.0.total_cmp(&b.0));
    let busiest = horizons.first().unwrap();
    let loneliest = horizons.last().unwrap();
    println!(
        "  busiest node  n{:<3} trusted for {:>6.1} min after a contact",
        busiest.1,
        busiest.0 / 60.0
    );
    println!(
        "  loneliest node n{:<3} trusted for {:>6.1} h after a contact",
        loneliest.1,
        loneliest.0 / 3600.0
    );
    let median = horizons[horizons.len() / 2];
    println!("  median horizon      {:>6.1} h", median.0 / 3600.0);
}

fn analyze(name: &str, trace: &ContactTrace) {
    let s = summarize(trace);
    let gaps = inter_contact_times(trace);
    let lambda = exponential_mle(&gaps);
    let ks = ks_statistic_exponential(&gaps, lambda);
    println!(
        "{:<12} {:>6} {:>9} {:>10.1} {:>10.1} s {:>14.1} h {:>8.3}",
        name,
        s.num_nodes,
        s.num_events,
        s.duration / 3600.0,
        s.mean_contact_duration,
        s.mean_inter_contact / 3600.0,
        ks
    );
}
