//! Mobility-coupled photo generation: photos are taken where the
//! photographer actually is, not at a random point of the map.
//!
//! The same random-waypoint world is simulated twice under the paper's
//! scheme — once with the default uniform photo placement (Table I's
//! "photos are randomly generated"), once with photos pinned to the
//! photographers' tracks. Mobility coupling concentrates photos along
//! walkable paths, which changes which PoIs ever get covered.
//!
//! ```sh
//! cargo run --release --example mobile_photographers
//! ```

use photodtn::contacts::synth::WaypointTraceGenerator;
use photodtn::schemes::OurScheme;
use photodtn::sim::{CommandCenterMode, SimConfig, Simulation};

const SEED: u64 = 31;

fn main() {
    // 25 responders walking a 1.2 km × 1.2 km district for 48 h.
    let mut gen = WaypointTraceGenerator::new(25, 1200.0, 48.0 * 3600.0);
    gen.radio_range = 40.0;
    let (trace, tracks) = gen.generate_with_tracks(SEED);

    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(80.0)
        .with_command_center(CommandCenterMode::Gateways {
            fraction: 0.08,
            period: 2.0 * 3600.0,
            window: 120.0,
        });
    config.region = (1200.0, 1200.0);
    config.num_pois = 60;

    println!(
        "waypoint world: {} nodes, {} contacts over {:.0} h\n",
        trace.num_nodes(),
        trace.len(),
        trace.duration() / 3600.0
    );

    let uniform = Simulation::new(&config, &trace, SEED).run(&mut OurScheme::new());
    let mobile = Simulation::new(&config, &trace, SEED)
        .with_mobility_placement(&tracks)
        .run(&mut OurScheme::new());

    println!(
        "{:>6} | {:>22} | {:>22}",
        "t (h)", "uniform placement", "photographer placement"
    );
    for (u, m) in uniform.samples.iter().zip(&mobile.samples).step_by(8) {
        println!(
            "{:>6.0} | {:>9.1}% {:>10.1}° | {:>9.1}% {:>10.1}°",
            u.t_hours,
            100.0 * u.point_coverage,
            u.aspect_coverage_deg,
            100.0 * m.point_coverage,
            m.aspect_coverage_deg,
        );
    }
    let (u, m) = (uniform.final_sample(), mobile.final_sample());
    println!(
        "\nuniform: {:.1}% of PoIs, {} photos delivered (mean latency {:.1} h)",
        100.0 * u.point_coverage,
        u.delivered_photos,
        u.mean_latency_hours
    );
    println!(
        "mobile : {:.1}% of PoIs, {} photos delivered (mean latency {:.1} h)",
        100.0 * m.point_coverage,
        m.delivered_photos,
        m.mean_latency_hours
    );
    println!(
        "\nmobility coupling makes coverage path-dependent: PoIs off the walked\n\
         paths stay dark no matter how clever the routing is."
    );
}
