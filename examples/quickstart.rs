//! Quick start: value photos with the coverage model, then run one
//! end-to-end crowdsourcing simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use photodtn::contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn::coverage::{Coverage, CoverageParams, CoverageProfile, PhotoMeta, Poi, PoiList};
use photodtn::geo::{Angle, Point};
use photodtn::schemes::OurScheme;
use photodtn::sim::{SimConfig, Simulation};

fn main() {
    // ── 1. The coverage model on its own ────────────────────────────────
    // One PoI (a damaged building) and three photos of it.
    let pois = PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))]);
    let params = CoverageParams::default(); // effective angle θ = 30°

    let shot = |from_deg: f64| {
        let dir = Angle::from_degrees(from_deg);
        PhotoMeta::new(
            Point::new(0.0, 0.0).offset(dir, 60.0), // camera 60 m away
            100.0,                                  // coverage range
            Angle::from_degrees(50.0),              // field of view
            dir + Angle::PI,                        // looking back at the PoI
        )
    };

    let mut profile = CoverageProfile::new(&pois, params);
    println!("photo from the east : gain {}", profile.add(&shot(0.0)));
    println!(
        "same shot again     : gain {}  (fully redundant)",
        profile.add(&shot(0.0))
    );
    println!("photo from the west : gain {}", profile.add(&shot(180.0)));
    let total: Coverage = profile.total();
    println!(
        "collection now covers the PoI from {:.0}° of aspects\n",
        total.aspect_degrees()
    );

    // ── 2. A small end-to-end DTN crowdsourcing run ─────────────────────
    let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(20)
        .with_duration_hours(48.0)
        .generate(42);
    let config = SimConfig::mit_default().with_photos_per_hour(60.0);

    let mut sim = Simulation::new(&config, &trace, 42);
    println!(
        "simulating {} contacts/uploads/generations over {} nodes…",
        sim.event_count(),
        trace.num_nodes()
    );
    let result = sim.run(&mut OurScheme::new());
    for s in result.samples.iter().step_by(8) {
        println!(
            "t = {:>5.1} h   point coverage {:>5.1}%   aspect {:>6.1}°/PoI   delivered {:>4}",
            s.t_hours,
            100.0 * s.point_coverage,
            s.aspect_coverage_deg,
            s.delivered_photos
        );
    }
    let end = result.final_sample();
    println!(
        "\nfinal: {:.1}% of PoIs covered, {} photos delivered to the command center",
        100.0 * end.point_coverage,
        end.delivered_photos
    );
}
