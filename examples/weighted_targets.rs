//! The §II-C extensions in action: per-PoI weights and per-aspect
//! weights.
//!
//! "When a target is more important than other targets, or when a
//! particular angle of a target (e.g., main entrance of a building) is
//! more important than others, we can easily extend the above definition
//! to assign different weights."
//!
//! This example gives a hospital three times the weight of a warehouse
//! and shows that the selection algorithm then prioritizes hospital
//! photos; it also scores the delivered views of the hospital with an
//! entrance-weighted aspect measure.
//!
//! ```sh
//! cargo run --release --example weighted_targets
//! ```

use photodtn::contacts::NodeId;
use photodtn::core::selection::{reallocate, PeerState, SelectionInput};
use photodtn::coverage::{
    aspect_set, AspectWeights, CoverageParams, Photo, PhotoMeta, Poi, PoiList,
};
use photodtn::geo::{Angle, Arc, Point};

fn main() {
    let hospital = Point::new(0.0, 0.0);
    let warehouse = Point::new(800.0, 0.0);
    let pois = PoiList::new(vec![
        Poi::with_weight(0, hospital, 3.0), // triage decisions depend on it
        Poi::new(1, warehouse),
    ]);
    let params = CoverageParams::default();

    // One relay with room for only two photos must choose among four.
    let shot = |id: u64, target: Point, deg: f64| {
        let dir = Angle::from_degrees(deg);
        Photo::new(
            id,
            PhotoMeta::new(
                target.offset(dir, 60.0),
                100.0,
                Angle::from_degrees(50.0),
                dir + Angle::PI,
            ),
            0.0,
        )
        .with_size(1)
    };
    let pool = vec![
        shot(1, hospital, 0.0),
        shot(2, hospital, 180.0),
        shot(3, warehouse, 0.0),
        shot(4, warehouse, 180.0),
    ];

    let input = SelectionInput {
        pois: &pois,
        params,
        a: PeerState {
            node: NodeId(0),
            delivery_prob: 0.9,
            capacity: 2,
            photos: pool.clone(),
        },
        b: PeerState {
            node: NodeId(1),
            delivery_prob: 0.0,
            capacity: 0,
            photos: vec![],
        },
        others: vec![],
    };
    let result = reallocate(&input);
    println!("relay capacity 2, hospital weight 3×:");
    for id in &result.a_selected {
        let p = pool
            .iter()
            .find(|p| p.id == *id)
            .expect("selected from pool");
        let covers_hospital = p.meta.covers(&pois[photodtn::coverage::PoiId(0)]);
        println!(
            "  selected {:?} — covers the {}",
            id,
            if covers_hospital {
                "hospital"
            } else {
                "warehouse"
            }
        );
    }
    let hospital_shots = result
        .a_selected
        .iter()
        .filter(|id| {
            pool[(id.0 - 1) as usize]
                .meta
                .covers(&pois[photodtn::coverage::PoiId(0)])
        })
        .count();
    // With 3× weight, one hospital photo (3.0 point) beats a warehouse
    // photo (1.0), but the second hospital photo (aspects only) loses to
    // covering the warehouse at all: weights bias, lexicographic point
    // coverage still wins.
    println!(
        "\n→ {hospital_shots} hospital photo(s) and {} warehouse photo(s) selected",
        result.a_selected.len() - hospital_shots
    );

    // Aspect weighting: the hospital's main entrance faces north. Score
    // the two candidate hospital views with an entrance-weighted measure.
    let mut entrance = AspectWeights::uniform();
    entrance.add_region(
        Arc::centered(Angle::from_degrees(90.0), Angle::from_degrees(45.0)),
        4.0,
    );

    println!("\nentrance-weighted aspect scores (entrance faces north, 4× weight):");
    for deg in [90.0, 270.0] {
        let meta = shot(9, hospital, deg).meta;
        let covered = aspect_set(
            &pois[photodtn::coverage::PoiId(0)],
            [&meta],
            params.effective_angle,
        );
        println!(
            "  photo from {deg:>5.0}°: plain {:>5.1}°, entrance-weighted {:>6.1}°",
            covered.measure().to_degrees(),
            entrance.weighted_measure(&covered).to_degrees()
        );
    }
    println!("→ the north-side photographer wins the tasking decision");

    // The same weights drive routing itself: with one storage slot and two
    // opposite hospital views, the weighted reallocation takes the
    // entrance-side photo.
    let mut weights = photodtn::coverage::AspectWeightMap::new();
    weights.insert(photodtn::coverage::PoiId(0), entrance);
    let duel = SelectionInput {
        pois: &pois,
        params,
        a: PeerState {
            node: NodeId(0),
            delivery_prob: 0.9,
            capacity: 1,
            photos: vec![shot(11, hospital, 270.0), shot(12, hospital, 90.0)],
        },
        b: PeerState {
            node: NodeId(1),
            delivery_prob: 0.0,
            capacity: 0,
            photos: vec![],
        },
        others: vec![],
    };
    let plain = reallocate(&duel);
    let weighted = photodtn::core::selection::reallocate_weighted(&duel, &weights);
    println!(
        "\nrouting duel (1 slot): unweighted keeps photo {:?}, entrance-weighted keeps {:?}",
        plain.a_selected, weighted.a_selected
    );
}
