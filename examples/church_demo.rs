//! The paper's prototype demonstration (§IV-B, Figs. 2–4), recreated with
//! synthetic metadata.
//!
//! Nine nodes from a Bluetooth-style trace: eight crowdsourcing
//! participants and one command center (a data mule met four times inside
//! the demo window, as in the paper). Each participant holds five photos
//! — one aimed at a historic church, four pointing elsewhere. The last 48
//! contacts drive the exchange; earlier contacts only train PROPHET. At
//! most 3 photos move per contact, each device stores at most 5 photos,
//! and the effective angle is 40°.
//!
//! The paper reports (with real photos): our scheme delivers only 6
//! useful photos covering 346° of the church; PhotoNet delivers 12
//! covering 160°; Spray&Wait delivers 12 covering 171°. Exact degrees
//! depend on the random viewpoints, but the shape — ours covers far more
//! with far fewer photos — reproduces.
//!
//! ```sh
//! cargo run --release --example church_demo
//! ```

use photodtn::schemes::{OurScheme, PhotoNet, SprayAndWait};
use photodtn::sim::Scheme;
use photodtn_bench::demo::DemoWorld;

const SEED: u64 = 2016;

fn main() {
    let world = DemoWorld::build(SEED);
    println!(
        "demo: {} historical contacts for PROPHET, {} demo contacts over {:.1} h, \
         {} command-center visits",
        world.history.len(),
        world.recent.len(),
        world.recent.duration() / 3600.0,
        world.upload_contacts(),
    );
    let covering = world
        .photos
        .iter()
        .filter(|(_, p)| p.meta.covers(&world.pois[photodtn::coverage::PoiId(0)]))
        .count();
    println!(
        "photos: {} total, {covering} actually cover the church\n",
        world.photos.len()
    );

    println!(
        "{:<14} {:>17} {:>22}",
        "scheme", "photos delivered", "church aspect covered"
    );
    run(&world, &mut OurScheme::new());
    run(&world, &mut PhotoNet::new());
    run(&world, &mut SprayAndWait::new());
    println!(
        "\n(paper, real photos: ours 6 photos / 346°, PhotoNet 12 / 160°, Spray&Wait 12 / 171°)"
    );
}

fn run<S: Scheme>(world: &DemoWorld, scheme: &mut S) {
    let (_, delivered) = world.run(scheme);
    println!(
        "{:<14} {:>17} {:>21.0}°",
        scheme.name(),
        delivered.len(),
        world.church_aspect_deg(&delivered)
    );
}
