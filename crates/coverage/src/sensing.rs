//! The prototype's metadata-acquisition pipeline (§IV-A), as an error
//! model.
//!
//! The paper's Android prototype (Nexus 4) obtains metadata from built-in
//! sensors: GPS for location (5–8.5 m typical error), the camera API for
//! the field of view, `r = c·cot(φ/2)` for the coverage range, and a
//! fused accelerometer/magnetometer/gyroscope estimate for orientation
//! ("the final outcome achieves a maximum error of five degrees").
//!
//! We reproduce the *error envelope* of that pipeline rather than the
//! hardware: [`SensorModel::observe`] perturbs ground-truth metadata the
//! way the sensors would, so experiments can quantify how sensor noise
//! degrades coverage.

use rand::Rng;

use photodtn_geo::{Angle, Point};

use crate::PhotoMeta;

/// Noise model for the smartphone metadata pipeline.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Point};
/// use photodtn_coverage::sensing::SensorModel;
/// use photodtn_coverage::PhotoMeta;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let truth = PhotoMeta::new(Point::new(0.0, 0.0), 120.0,
///                            Angle::from_degrees(50.0), Angle::from_degrees(90.0));
/// let mut rng = SmallRng::seed_from_u64(1);
/// let observed = SensorModel::nexus4().observe(&truth, &mut rng);
/// // Orientation stays within the fused-sensor error bound.
/// assert!(observed.orientation.separation(truth.orientation).to_degrees() <= 5.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorModel {
    /// GPS error standard deviation per axis, meters.
    pub gps_sigma: f64,
    /// Maximum orientation error after sensor fusion, degrees.
    pub orientation_max_err_deg: f64,
    /// Relative error of the camera-reported field of view (the API is
    /// accurate, so this is 0 by default).
    pub fov_rel_err: f64,
}

impl SensorModel {
    /// The paper's Nexus 4 pipeline: GPS errors of 5–8.5 m (we use a
    /// per-axis σ of 4 m, giving a ~5–9 m typical radial error),
    /// orientation within 5°, exact field of view.
    #[must_use]
    pub fn nexus4() -> Self {
        SensorModel {
            gps_sigma: 4.0,
            orientation_max_err_deg: 5.0,
            fov_rel_err: 0.0,
        }
    }

    /// A perfect sensor (no noise) — useful as a control.
    #[must_use]
    pub fn perfect() -> Self {
        SensorModel {
            gps_sigma: 0.0,
            orientation_max_err_deg: 0.0,
            fov_rel_err: 0.0,
        }
    }

    /// Produces the metadata the phone would record for a photo whose true
    /// geometry is `truth`.
    #[must_use]
    pub fn observe<R: Rng + ?Sized>(&self, truth: &PhotoMeta, rng: &mut R) -> PhotoMeta {
        let location = Point::new(
            truth.location.x + gaussian(rng) * self.gps_sigma,
            truth.location.y + gaussian(rng) * self.gps_sigma,
        );
        let max = self.orientation_max_err_deg;
        let orientation = if max > 0.0 {
            truth.orientation + Angle::from_degrees(rng.gen_range(-max..=max))
        } else {
            truth.orientation
        };
        let fov = if self.fov_rel_err > 0.0 {
            Angle::from_radians(
                truth.fov.radians() * (1.0 + rng.gen_range(-self.fov_rel_err..=self.fov_rel_err)),
            )
        } else {
            truth.fov
        };
        // Range follows the (possibly perturbed) field of view: the
        // pipeline recomputes r = c·cot(φ/2) from what it measured.
        let half_true = truth.fov.radians() / 2.0;
        let c = truth.range * half_true.tan();
        PhotoMeta::with_derived_range(location, c, fov, orientation)
    }
}

impl Default for SensorModel {
    fn default() -> Self {
        SensorModel::nexus4()
    }
}

/// Standard normal sample via Box–Muller (rand 0.8 ships no Gaussian).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn truth() -> PhotoMeta {
        PhotoMeta::new(
            Point::new(100.0, 100.0),
            120.0,
            Angle::from_degrees(50.0),
            Angle::from_degrees(45.0),
        )
    }

    #[test]
    fn perfect_sensor_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = truth();
        let o = SensorModel::perfect().observe(&t, &mut rng);
        assert!((o.location.x - t.location.x).abs() < 1e-9);
        assert!((o.location.y - t.location.y).abs() < 1e-9);
        assert_eq!(o.orientation, t.orientation);
        assert_eq!(o.fov, t.fov);
        assert!((o.range - t.range).abs() < 1e-9);
    }

    #[test]
    fn orientation_error_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = truth();
        let m = SensorModel::nexus4();
        for _ in 0..500 {
            let o = m.observe(&t, &mut rng);
            assert!(o.orientation.separation(t.orientation).to_degrees() <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn gps_error_statistics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = truth();
        let m = SensorModel::nexus4();
        let n = 2000;
        let mean_radial: f64 = (0..n)
            .map(|_| {
                let o = m.observe(&t, &mut rng);
                o.location.distance(t.location)
            })
            .sum::<f64>()
            / n as f64;
        // Rayleigh mean = σ·√(π/2) ≈ 5.01 m for σ = 4 m — inside the
        // paper's quoted 5–8.5 m band.
        assert!(
            (4.0..6.5).contains(&mean_radial),
            "mean radial error {mean_radial}"
        );
    }

    #[test]
    fn range_tracks_fov() {
        // With fov error, range must be recomputed from the same c.
        let mut rng = SmallRng::seed_from_u64(4);
        let t = truth();
        let m = SensorModel {
            gps_sigma: 0.0,
            orientation_max_err_deg: 0.0,
            fov_rel_err: 0.1,
        };
        let o = m.observe(&t, &mut rng);
        let c_true = t.range * (t.fov.radians() / 2.0).tan();
        let c_obs = o.range * (o.fov.radians() / 2.0).tan();
        assert!((c_true - c_obs).abs() < 1e-6);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
