use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use photodtn_geo::{Angle, ArcSet};

use crate::{PhotoMeta, Poi, PoiList};

/// Model parameters shared by all coverage computations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoverageParams {
    /// The effective angle `θ`: a photo covers the aspects within `θ` of
    /// its viewing direction. Table I uses 30° for the simulations; the
    /// prototype demo (§IV-B) uses 40°.
    pub effective_angle: Angle,
}

impl CoverageParams {
    /// Parameters with a given effective angle.
    #[must_use]
    pub fn new(effective_angle: Angle) -> Self {
        CoverageParams { effective_angle }
    }
}

impl Default for CoverageParams {
    /// Table I defaults: `θ = 30°`.
    fn default() -> Self {
        CoverageParams {
            effective_angle: Angle::from_degrees(30.0),
        }
    }
}

/// Photo coverage `C_ph = (C_pt, C_as)` with **lexicographic** order
/// (Definition 1).
///
/// `point` is the (weighted) number of covered PoIs and `aspect` the
/// (weighted) total covered aspect measure in radians. Point coverage
/// dominates: a collection covering more PoIs always has higher coverage,
/// regardless of aspects.
///
/// Comparisons treat point coverages within [`Coverage::POINT_EPS`] as
/// equal, so floating-point noise in weighted sums cannot flip the
/// lexicographic order.
///
/// # Example
///
/// ```
/// use photodtn_coverage::Coverage;
/// let a = Coverage::new(2.0, 0.1);
/// let b = Coverage::new(1.0, 6.0);
/// assert!(a > b); // more PoIs beats more aspects
/// ```
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Coverage {
    /// Weighted point coverage `Σ w_i · C_pt(x_i)`.
    pub point: f64,
    /// Weighted aspect coverage `Σ w_i · C_as(x_i)`, radians.
    pub aspect: f64,
}

impl Coverage {
    /// Tolerance within which two point coverages compare equal.
    pub const POINT_EPS: f64 = 1e-9;
    /// Tolerance within which two aspect coverages compare equal.
    pub const ASPECT_EPS: f64 = 1e-9;

    /// The zero coverage.
    pub const ZERO: Coverage = Coverage {
        point: 0.0,
        aspect: 0.0,
    };

    /// Creates a coverage value.
    #[must_use]
    pub fn new(point: f64, aspect: f64) -> Self {
        Coverage { point, aspect }
    }

    /// Computes the photo coverage of a collection of metadata over a PoI
    /// list (Definition 1 summed over the list, §II-C).
    #[must_use]
    pub fn of<'a, M>(pois: &PoiList, metas: M, params: CoverageParams) -> Coverage
    where
        M: IntoIterator<Item = &'a PhotoMeta>,
        M::IntoIter: Clone,
    {
        let metas = metas.into_iter();
        let mut total = Coverage::ZERO;
        for poi in pois {
            let set = aspect_set(poi, metas.clone(), params.effective_angle);
            if covers_point(poi, metas.clone()) {
                total.point += poi.weight;
            }
            total.aspect += poi.weight * set.measure();
        }
        total
    }

    /// Like [`Coverage::of`], but integrating each PoI's covered aspects
    /// against its [`AspectWeights`](crate::AspectWeights) entry in
    /// `weights` (§II-C: "assign … different weights to different aspects
    /// of a PoI"). PoIs absent from the map use uniform weights; point
    /// coverage is unaffected by aspect weights.
    #[must_use]
    pub fn of_weighted<'a, M>(
        pois: &PoiList,
        metas: M,
        params: CoverageParams,
        weights: &crate::AspectWeightMap,
    ) -> Coverage
    where
        M: IntoIterator<Item = &'a PhotoMeta>,
        M::IntoIter: Clone,
    {
        let metas = metas.into_iter();
        let mut total = Coverage::ZERO;
        for poi in pois {
            let set = aspect_set(poi, metas.clone(), params.effective_angle);
            if covers_point(poi, metas.clone()) {
                total.point += poi.weight;
            }
            let measure = match weights.get(&poi.id) {
                Some(w) => w.weighted_measure(&set),
                None => set.measure(),
            };
            total.aspect += poi.weight * measure;
        }
        total
    }

    /// Whether this coverage is (numerically) zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.point.abs() < Self::POINT_EPS && self.aspect.abs() < Self::ASPECT_EPS
    }

    /// Aspect coverage in degrees (convenience for reporting).
    #[must_use]
    pub fn aspect_degrees(&self) -> f64 {
        self.aspect.to_degrees()
    }
}

impl PartialEq for Coverage {
    fn eq(&self, other: &Self) -> bool {
        (self.point - other.point).abs() < Self::POINT_EPS
            && (self.aspect - other.aspect).abs() < Self::ASPECT_EPS
    }
}

impl PartialOrd for Coverage {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if (self.point - other.point).abs() >= Self::POINT_EPS {
            return self.point.partial_cmp(&other.point);
        }
        if (self.aspect - other.aspect).abs() >= Self::ASPECT_EPS {
            return self.aspect.partial_cmp(&other.aspect);
        }
        Some(Ordering::Equal)
    }
}

impl Add for Coverage {
    type Output = Coverage;
    fn add(self, rhs: Coverage) -> Coverage {
        Coverage::new(self.point + rhs.point, self.aspect + rhs.aspect)
    }
}

impl AddAssign for Coverage {
    fn add_assign(&mut self, rhs: Coverage) {
        self.point += rhs.point;
        self.aspect += rhs.aspect;
    }
}

impl Sub for Coverage {
    type Output = Coverage;
    fn sub(self, rhs: Coverage) -> Coverage {
        Coverage::new(self.point - rhs.point, self.aspect - rhs.aspect)
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(pt={:.3}, as={:.1}°)",
            self.point,
            self.aspect_degrees()
        )
    }
}

/// Point coverage of one PoI by a collection: 1 iff any photo's sector
/// contains it (§II-B).
pub fn covers_point<'a, M>(poi: &Poi, metas: M) -> bool
where
    M: IntoIterator<Item = &'a PhotoMeta>,
{
    metas.into_iter().any(|m| m.covers(poi))
}

/// The set of aspects of `poi` covered by a collection, as an [`ArcSet`];
/// its measure is the aspect coverage `C_as(x, F)` (§II-B).
pub fn aspect_set<'a, M>(poi: &Poi, metas: M, effective_angle: Angle) -> ArcSet
where
    M: IntoIterator<Item = &'a PhotoMeta>,
{
    metas
        .into_iter()
        .filter_map(|m| m.aspect_arc(poi, effective_angle))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::Point;

    fn poi_at_origin() -> PoiList {
        PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))])
    }

    fn looking_at_origin(from_deg: f64, dist: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(from_deg);
        let loc = Point::new(0.0, 0.0).offset(dir, dist);
        PhotoMeta::new(loc, dist + 10.0, Angle::from_degrees(60.0), dir + Angle::PI)
    }

    #[test]
    fn lexicographic_order() {
        assert!(Coverage::new(2.0, 0.0) > Coverage::new(1.0, 100.0));
        assert!(Coverage::new(1.0, 2.0) > Coverage::new(1.0, 1.0));
        assert_eq!(Coverage::new(1.0, 1.0), Coverage::new(1.0 + 1e-12, 1.0));
        assert!(Coverage::ZERO < Coverage::new(0.0, 0.1));
    }

    #[test]
    fn arithmetic() {
        let c = Coverage::new(1.0, 2.0) + Coverage::new(3.0, 4.0);
        assert_eq!(c, Coverage::new(4.0, 6.0));
        let mut d = Coverage::ZERO;
        d += c;
        assert_eq!(d, c);
        assert_eq!(c - Coverage::new(1.0, 2.0), Coverage::new(3.0, 4.0));
        assert!(Coverage::ZERO.is_zero());
        assert!(!c.is_zero());
    }

    #[test]
    fn coverage_of_single_photo() {
        let pois = poi_at_origin();
        let meta = looking_at_origin(0.0, 50.0);
        let c = Coverage::of(&pois, [&meta], CoverageParams::default());
        assert_eq!(c.point, 1.0);
        // one photo covers 2θ = 60° of aspects
        assert!((c.aspect_degrees() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_photos_do_not_add_aspect() {
        let pois = poi_at_origin();
        let a = looking_at_origin(0.0, 50.0);
        let b = looking_at_origin(0.0, 60.0); // same direction, farther
        let c1 = Coverage::of(&pois, [&a], CoverageParams::default());
        let c2 = Coverage::of(&pois, [&a, &b], CoverageParams::default());
        assert_eq!(c1, c2);
    }

    #[test]
    fn opposite_photos_double_aspect() {
        let pois = poi_at_origin();
        let a = looking_at_origin(0.0, 50.0);
        let b = looking_at_origin(180.0, 50.0);
        let c = Coverage::of(&pois, [&a, &b], CoverageParams::default());
        assert_eq!(c.point, 1.0);
        assert!((c.aspect_degrees() - 120.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_poi_scales_coverage() {
        let pois = PoiList::new(vec![Poi::with_weight(0, Point::new(0.0, 0.0), 3.0)]);
        let meta = looking_at_origin(0.0, 50.0);
        let c = Coverage::of(&pois, [&meta], CoverageParams::default());
        assert_eq!(c.point, 3.0);
        assert!((c.aspect_degrees() - 180.0).abs() < 1e-6);
    }

    #[test]
    fn empty_collection_zero_coverage() {
        let pois = poi_at_origin();
        let c = Coverage::of(
            &pois,
            std::iter::empty::<&PhotoMeta>(),
            CoverageParams::default(),
        );
        assert!(c.is_zero());
    }

    #[test]
    fn aspect_set_and_covers_point_free_functions() {
        let poi = Poi::new(0, Point::new(0.0, 0.0));
        let a = looking_at_origin(90.0, 40.0);
        assert!(covers_point(&poi, [&a]));
        let set = aspect_set(&poi, [&a], Angle::from_degrees(20.0));
        assert!(set.contains(Angle::from_degrees(90.0)));
        assert!((set.measure().to_degrees() - 40.0).abs() < 1e-6);
    }
}
