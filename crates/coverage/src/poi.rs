use std::fmt;

use serde::{Deserialize, Serialize};

use photodtn_geo::Point;

/// Identifier of a Point of Interest within a [`PoiList`].
///
/// Ids are dense indices assigned by the command center when the list is
/// issued, so they double as vector indices throughout the crate.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PoiId(pub u32);

impl PoiId {
    /// The id as a vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PoiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poi{}", self.0)
    }
}

/// A Point of Interest the command center wants observed (§II-A).
///
/// The optional `weight` implements the extension discussed in §II-C: a PoI
/// of weight `w` contributes `w` (instead of 1) to point coverage, and its
/// aspect measure is scaled by `w`. The default weight is 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Identifier; must equal the PoI's index in its [`PoiList`].
    pub id: PoiId,
    /// Location `x_i`, meters.
    pub location: Point,
    /// Importance weight `w ≥ 0` (1 = default importance).
    pub weight: f64,
}

impl Poi {
    /// Creates a PoI with unit weight.
    #[must_use]
    pub fn new(id: u32, location: Point) -> Self {
        Poi {
            id: PoiId(id),
            location,
            weight: 1.0,
        }
    }

    /// Creates a PoI with an explicit importance weight.
    ///
    /// Negative weights are clamped to zero.
    #[must_use]
    pub fn with_weight(id: u32, location: Point, weight: f64) -> Self {
        Poi {
            id: PoiId(id),
            location,
            weight: weight.max(0.0),
        }
    }
}

/// The PoI list `X = {x_1, x_2, …}` issued by the command center, with a
/// uniform-grid spatial index for "which PoIs can this photo cover?"
/// queries.
///
/// # Example
///
/// ```
/// use photodtn_geo::Point;
/// use photodtn_coverage::{Poi, PoiList};
/// let list = PoiList::new(vec![
///     Poi::new(0, Point::new(0.0, 0.0)),
///     Poi::new(1, Point::new(500.0, 0.0)),
/// ]);
/// let near: Vec<_> = list.in_disc(Point::new(10.0, 0.0), 100.0).collect();
/// assert_eq!(near.len(), 1);
/// assert_eq!(near[0].id.0, 0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PoiList {
    pois: Vec<Poi>,
    /// Grid cell size in meters; chosen from the PoI bounding box.
    cell: f64,
    /// Bounding-box origin.
    origin: Point,
    /// Grid dimensions.
    nx: usize,
    ny: usize,
    /// CSR offsets: cell `c` holds the PoI indices
    /// `cell_items[cell_start[c]..cell_start[c + 1]]`.
    cell_start: Vec<u32>,
    /// PoI indices in row-major cell order (insertion order within a cell).
    cell_items: Vec<u32>,
    /// `f32` coordinate lanes aligned with `cell_items` — the SoA input of
    /// the batched sector prefilter ([`crate::batch`]). `f32` is only ever
    /// a conservative prefilter; every exact test runs on the `f64`
    /// locations in `pois`.
    lane_x: Vec<f32>,
    lane_y: Vec<f32>,
}

/// Grid cells target roughly this many PoIs per cell.
const TARGET_PER_CELL: f64 = 2.0;

impl PoiList {
    /// Builds a list and its spatial index.
    ///
    /// # Panics
    ///
    /// Panics if a PoI's id does not match its index — ids are how
    /// coverage vectors are addressed, so a mismatch would silently corrupt
    /// every downstream metric.
    #[must_use]
    pub fn new(pois: Vec<Poi>) -> Self {
        for (i, p) in pois.iter().enumerate() {
            assert_eq!(
                p.id.index(),
                i,
                "PoI id {} does not match its index {i}",
                p.id
            );
        }
        if pois.is_empty() {
            return PoiList {
                pois,
                cell: 1.0,
                origin: Point::new(0.0, 0.0),
                nx: 1,
                ny: 1,
                cell_start: vec![0, 0],
                cell_items: Vec::new(),
                lane_x: Vec::new(),
                lane_y: Vec::new(),
            };
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &pois {
            min_x = min_x.min(p.location.x);
            min_y = min_y.min(p.location.y);
            max_x = max_x.max(p.location.x);
            max_y = max_y.max(p.location.y);
        }
        let w = (max_x - min_x).max(1.0);
        let h = (max_y - min_y).max(1.0);
        let cells = (pois.len() as f64 / TARGET_PER_CELL).max(1.0);
        let cell = ((w * h) / cells).sqrt().max(1.0);
        let nx = (w / cell).ceil() as usize + 1;
        let ny = (h / cell).ceil() as usize + 1;
        let origin = Point::new(min_x, min_y);
        let cell_of = |p: &Poi| {
            let cx = ((p.location.x - origin.x) / cell) as usize;
            let cy = ((p.location.y - origin.y) / cell) as usize;
            cy.min(ny - 1) * nx + cx.min(nx - 1)
        };
        // Counting sort into CSR form: two passes preserve the insertion
        // order within each cell, which the order-determinism contract of
        // `in_bbox` depends on.
        let mut cell_start = vec![0u32; nx * ny + 1];
        for p in &pois {
            cell_start[cell_of(p) + 1] += 1;
        }
        for c in 1..cell_start.len() {
            cell_start[c] += cell_start[c - 1];
        }
        let mut cursor: Vec<u32> = cell_start[..nx * ny].to_vec();
        let mut cell_items = vec![0u32; pois.len()];
        let mut lane_x = vec![0f32; pois.len()];
        let mut lane_y = vec![0f32; pois.len()];
        for (i, p) in pois.iter().enumerate() {
            let slot = &mut cursor[cell_of(p)];
            let k = *slot as usize;
            cell_items[k] = i as u32;
            lane_x[k] = p.location.x as f32;
            lane_y[k] = p.location.y as f32;
            *slot += 1;
        }
        PoiList {
            pois,
            cell,
            origin,
            nx,
            ny,
            cell_start,
            cell_items,
            lane_x,
            lane_y,
        }
    }

    /// Number of PoIs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// Sum of PoI weights — the maximum attainable (weighted) point
    /// coverage. Equals `len()` when all weights are 1.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.pois.iter().map(|p| p.weight).sum()
    }

    /// The PoI with the given id.
    #[must_use]
    pub fn get(&self, id: PoiId) -> Option<&Poi> {
        self.pois.get(id.index())
    }

    /// Iterates over all PoIs in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Poi> {
        self.pois.iter()
    }

    /// PoIs in the grid cells intersecting `bbox`, in the same row-major
    /// cell order as [`in_disc`](Self::in_disc) — a *candidate set*: the
    /// caller applies the precise containment test.
    ///
    /// Because any region's cells are visited in the one global row-major
    /// order, filtering the output of `in_bbox` over a sub-box of a disc's
    /// bounding box yields the surviving PoIs in exactly the same order as
    /// filtering `in_disc` — the property the coverage index relies on to
    /// keep floating-point accumulation order (and thus selection results)
    /// identical to the scan it replaces.
    pub fn in_bbox(&self, bbox: &photodtn_geo::BBox) -> impl Iterator<Item = &Poi> {
        self.bbox_cells(bbox)
            .flat_map(move |c| self.cell_slices(c).0)
            .map(move |&i| &self.pois[i as usize])
    }

    /// Row-major indices of the grid cells intersecting `bbox` — the one
    /// global cell order every candidate query walks.
    pub(crate) fn bbox_cells(&self, bbox: &photodtn_geo::BBox) -> impl Iterator<Item = usize> + '_ {
        let lo_x = ((bbox.min.x - self.origin.x) / self.cell).floor().max(0.0) as usize;
        let lo_y = ((bbox.min.y - self.origin.y) / self.cell).floor().max(0.0) as usize;
        let hi_x =
            (((bbox.max.x - self.origin.x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let hi_y =
            (((bbox.max.y - self.origin.y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        (lo_y..=hi_y.max(lo_y))
            .flat_map(move |cy| (lo_x..=hi_x.max(lo_x)).map(move |cx| cy * self.nx + cx))
    }

    /// The PoI indices of cell `c` plus the aligned `f32` coordinate lanes,
    /// all three sliced over the same CSR range. Empty slices for an
    /// out-of-range cell index (a clamped query box can step past the last
    /// row, exactly like the old `grid.get(c)` lookup tolerated).
    pub(crate) fn cell_slices(&self, c: usize) -> (&[u32], &[f32], &[f32]) {
        let (Some(&lo), Some(&hi)) = (self.cell_start.get(c), self.cell_start.get(c + 1)) else {
            return (&[], &[], &[]);
        };
        let (lo, hi) = (lo as usize, hi as usize);
        (
            &self.cell_items[lo..hi],
            &self.lane_x[lo..hi],
            &self.lane_y[lo..hi],
        )
    }

    /// The PoI at dense index `i` (the index stored in the CSR cells).
    pub(crate) fn by_index(&self, i: u32) -> &Poi {
        &self.pois[i as usize]
    }

    /// PoIs within `radius` meters of `center`, via the grid index.
    ///
    /// This is the candidate set for a photo taken at `center` with
    /// coverage range `radius`; the caller still applies the field-of-view
    /// test.
    pub fn in_disc(&self, center: Point, radius: f64) -> impl Iterator<Item = &Poi> {
        let bbox = photodtn_geo::BBox::new(
            Point::new(center.x - radius, center.y - radius),
            Point::new(center.x + radius, center.y + radius),
        );
        let r_sq = radius * radius;
        self.in_bbox(&bbox)
            .filter(move |p| p.location.distance_sq(center) <= r_sq)
    }
}

impl std::ops::Index<PoiId> for PoiList {
    type Output = Poi;
    fn index(&self, id: PoiId) -> &Poi {
        &self.pois[id.index()]
    }
}

impl<'a> IntoIterator for &'a PoiList {
    type Item = &'a Poi;
    type IntoIter = std::slice::Iter<'a, Poi>;
    fn into_iter(self) -> Self::IntoIter {
        self.pois.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_list(n: u32, spacing: f64) -> PoiList {
        let side = (n as f64).sqrt().ceil() as u32;
        PoiList::new(
            (0..n)
                .map(|i| {
                    Poi::new(
                        i,
                        Point::new((i % side) as f64 * spacing, (i / side) as f64 * spacing),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn empty_list() {
        let l = PoiList::new(vec![]);
        assert!(l.is_empty());
        assert_eq!(l.in_disc(Point::new(0.0, 0.0), 1000.0).count(), 0);
        assert_eq!(l.total_weight(), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match its index")]
    fn id_mismatch_panics() {
        let _ = PoiList::new(vec![Poi::new(5, Point::new(0.0, 0.0))]);
    }

    #[test]
    fn disc_query_matches_brute_force() {
        let l = grid_list(100, 100.0);
        for (cx, cy, r) in [
            (50.0, 50.0, 120.0),
            (0.0, 0.0, 250.0),
            (900.0, 900.0, 80.0),
            (450.0, 450.0, 1e4),
        ] {
            let c = Point::new(cx, cy);
            let mut fast: Vec<u32> = l.in_disc(c, r).map(|p| p.id.0).collect();
            fast.sort_unstable();
            let mut brute: Vec<u32> = l
                .iter()
                .filter(|p| p.location.distance(c) <= r)
                .map(|p| p.id.0)
                .collect();
            brute.sort_unstable();
            assert_eq!(fast, brute, "disc query mismatch at ({cx},{cy}) r={r}");
        }
    }

    #[test]
    fn disc_query_outside_bbox() {
        let l = grid_list(9, 100.0);
        assert_eq!(l.in_disc(Point::new(-500.0, -500.0), 10.0).count(), 0);
        assert_eq!(l.in_disc(Point::new(1e6, 1e6), 10.0).count(), 0);
        // large disc from far away still finds everything
        assert_eq!(l.in_disc(Point::new(-500.0, -500.0), 1e4).count(), 9);
    }

    #[test]
    fn weights() {
        let l = PoiList::new(vec![
            Poi::with_weight(0, Point::new(0.0, 0.0), 2.0),
            Poi::with_weight(1, Point::new(1.0, 0.0), 0.5),
        ]);
        assert_eq!(l.total_weight(), 2.5);
        assert_eq!(Poi::with_weight(2, Point::new(0.0, 0.0), -1.0).weight, 0.0);
    }

    #[test]
    fn index_and_get() {
        let l = grid_list(4, 10.0);
        assert_eq!(l[PoiId(2)].id, PoiId(2));
        assert!(l.get(PoiId(10)).is_none());
    }
}
