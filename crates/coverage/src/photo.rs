use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PhotoMeta;

/// Globally unique photo identifier.
///
/// Assigned by the photo generation process; encodes nothing — uniqueness
/// is all that matters for replica tracking.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PhotoId(pub u64);

impl fmt::Display for PhotoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "photo{}", self.0)
    }
}

/// A compact color descriptor used only by the PhotoNet baseline, which
/// ranks photos by location/time/color *diversity* rather than coverage.
///
/// Real PhotoNet uses pixel histograms; we synthesize histograms such that
/// photos of the same scene from similar angles get similar descriptors
/// (the property PhotoNet's distance metric relies on).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColorHistogram(pub [f32; 8]);

impl ColorHistogram {
    /// A flat (uninformative) histogram.
    #[must_use]
    pub fn flat() -> Self {
        ColorHistogram([1.0 / 8.0; 8])
    }

    /// L1 distance between two histograms, in `[0, 2]`.
    #[must_use]
    pub fn distance(&self, other: &ColorHistogram) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| f64::from((a - b).abs()))
            .sum()
    }

    /// Normalizes the histogram to sum to 1 (no-op for the zero histogram).
    #[must_use]
    pub fn normalized(mut self) -> Self {
        let sum: f32 = self.0.iter().sum();
        if sum > 0.0 {
            for v in &mut self.0 {
                *v /= sum;
            }
        }
        self
    }
}

impl Default for ColorHistogram {
    fn default() -> Self {
        ColorHistogram::flat()
    }
}

/// A crowdsourced photo: identity, metadata, size and the auxiliary
/// features baselines need.
///
/// The pixel payload itself is never materialized — `size` stands in for it
/// in all storage and bandwidth accounting (4 MB by default, Table I).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Photo {
    /// Unique id.
    pub id: PhotoId,
    /// Geometric metadata.
    pub meta: PhotoMeta,
    /// Payload size in bytes.
    pub size: u64,
    /// Time the photo was taken, seconds since the start of the event.
    pub taken_at: f64,
    /// Synthetic color features for the PhotoNet baseline.
    pub histogram: ColorHistogram,
}

/// Default photo payload size: 4 MB (Table I).
pub const DEFAULT_PHOTO_SIZE: u64 = 4 * 1024 * 1024;

impl Photo {
    /// Creates a photo with the default 4 MB size and a flat histogram.
    #[must_use]
    pub fn new(id: u64, meta: PhotoMeta, taken_at: f64) -> Self {
        Photo {
            id: PhotoId(id),
            meta,
            size: DEFAULT_PHOTO_SIZE,
            taken_at,
            histogram: ColorHistogram::flat(),
        }
    }

    /// Sets the payload size, returning the photo (builder-style).
    #[must_use]
    pub fn with_size(mut self, size: u64) -> Self {
        self.size = size;
        self
    }

    /// Sets the color histogram, returning the photo (builder-style).
    #[must_use]
    pub fn with_histogram(mut self, histogram: ColorHistogram) -> Self {
        self.histogram = histogram;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::{Angle, Point};

    fn meta() -> PhotoMeta {
        PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(45.0),
            Angle::ZERO,
        )
    }

    #[test]
    fn default_size_is_4mb() {
        let p = Photo::new(1, meta(), 0.0);
        assert_eq!(p.size, 4 * 1024 * 1024);
        assert_eq!(p.with_size(100).size, 100);
    }

    #[test]
    fn histogram_distance() {
        let a = ColorHistogram([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let b = ColorHistogram([0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((a.distance(&b) - 2.0).abs() < 1e-9);
        assert_eq!(a.distance(&a), 0.0);
        // triangle inequality on a few points
        let c = ColorHistogram::flat();
        assert!(a.distance(&b) <= a.distance(&c) + c.distance(&b) + 1e-9);
    }

    #[test]
    fn histogram_normalize() {
        let h = ColorHistogram([2.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).normalized();
        assert!((h.0[0] - 0.5).abs() < 1e-6);
        let z = ColorHistogram([0.0; 8]).normalized();
        assert_eq!(z.0, [0.0; 8]);
    }
}
