use std::fmt;

use serde::{Deserialize, Serialize};

use photodtn_geo::{Angle, Arc, Point, Sector};

use crate::{Poi, PoiList};

/// Photo metadata: the tuple `(l, r, φ, d)` of §II-A.
///
/// Metadata is "just a couple of floating point numbers" — cheap to
/// transmit, store and analyze — and fully determines the photo's coverage
/// area, so all coverage computation works on `PhotoMeta` without touching
/// pixels.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Point};
/// use photodtn_coverage::PhotoMeta;
/// let meta = PhotoMeta::new(Point::new(0.0, 0.0), 150.0,
///                           Angle::from_degrees(45.0), Angle::from_degrees(90.0));
/// assert!(meta.sector().contains(Point::new(0.0, 100.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhotoMeta {
    /// Camera location `l`.
    pub location: Point,
    /// Coverage range `r`, meters — beyond it objects are unrecognizable.
    pub range: f64,
    /// Field of view `φ`.
    pub fov: Angle,
    /// Camera orientation `d`.
    pub orientation: Angle,
}

impl PhotoMeta {
    /// Creates metadata from the four parameters.
    #[must_use]
    pub fn new(location: Point, range: f64, fov: Angle, orientation: Angle) -> Self {
        PhotoMeta {
            location,
            range,
            fov,
            orientation,
        }
    }

    /// Creates metadata with the range derived from the field of view as in
    /// §IV-A: `r = c · cot(φ/2)`, where `c` is an application-dependent
    /// coefficient (50 m for buildings in the paper's prototype).
    #[must_use]
    pub fn with_derived_range(location: Point, c: f64, fov: Angle, orientation: Angle) -> Self {
        let half = fov.radians() / 2.0;
        let range = if half > 0.0 { c / half.tan() } else { 0.0 };
        PhotoMeta {
            location,
            range: range.max(0.0),
            fov,
            orientation,
        }
    }

    /// The coverage sector of the photo.
    #[must_use]
    pub fn sector(&self) -> Sector {
        Sector::new(self.location, self.range, self.fov, self.orientation)
    }

    /// Whether the photo covers PoI `poi` (point coverage of one photo).
    #[must_use]
    pub fn covers(&self, poi: &Poi) -> bool {
        self.sector().contains(poi.location)
    }

    /// The aspect arc this photo covers on `poi`, or `None` if the PoI is
    /// outside the coverage area.
    #[must_use]
    pub fn aspect_arc(&self, poi: &Poi, effective_angle: Angle) -> Option<Arc> {
        self.sector().aspect_arc(poi.location, effective_angle)
    }

    /// Whether the photo covers `poi` with line-of-sight past the given
    /// occluders (visibility extension; equals [`covers`](Self::covers)
    /// when `occluders` is empty).
    #[must_use]
    pub fn covers_occluded(&self, poi: &Poi, occluders: &[photodtn_geo::Segment]) -> bool {
        self.sector().contains_occluded(poi.location, occluders)
    }

    /// The aspect arc on `poi` with occlusion: `None` when the PoI is out
    /// of the sector or hidden behind an occluder.
    #[must_use]
    pub fn aspect_arc_occluded(
        &self,
        poi: &Poi,
        effective_angle: Angle,
        occluders: &[photodtn_geo::Segment],
    ) -> Option<Arc> {
        if !self.covers_occluded(poi, occluders) {
            return None;
        }
        Some(Arc::centered(
            self.sector().viewing_direction(poi.location),
            effective_angle,
        ))
    }

    /// Ids of all PoIs in `pois` covered by this photo, using the spatial
    /// index.
    pub fn covered_pois<'a>(&'a self, pois: &'a PoiList) -> impl Iterator<Item = &'a Poi> + 'a {
        let sector = self.sector();
        pois.in_disc(self.location, self.range)
            .filter(move |p| sector.contains(p.location))
    }

    /// Serialized metadata size in bytes, for bandwidth accounting.
    ///
    /// Four `f64` fields plus a photo id — 40 bytes — which is why metadata
    /// exchange is treated as free relative to multi-megabyte photos.
    #[must_use]
    pub fn wire_size() -> u64 {
        40
    }
}

impl fmt::Display for PhotoMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "meta(l={}, r={:.0}m, fov={}, d={})",
            self.location, self.range, self.fov, self.orientation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_range_matches_cot() {
        // c = 50 m, φ = 60° → r = 50·cot(30°) = 50·√3 ≈ 86.6 m
        let m = PhotoMeta::with_derived_range(
            Point::new(0.0, 0.0),
            50.0,
            Angle::from_degrees(60.0),
            Angle::ZERO,
        );
        assert!((m.range - 50.0 * 3f64.sqrt()).abs() < 1e-9);
        // paper: φ ∈ [30°, 60°] with c = 50 gives r ∈ [87 m, 187 m]
        let wide = PhotoMeta::with_derived_range(
            Point::new(0.0, 0.0),
            50.0,
            Angle::from_degrees(30.0),
            Angle::ZERO,
        );
        assert!((86.0..88.0).contains(&m.range));
        assert!((186.0..188.0).contains(&wide.range));
    }

    #[test]
    fn covers_and_aspect_arc() {
        let poi = Poi::new(0, Point::new(100.0, 0.0));
        let m = PhotoMeta::new(
            Point::new(0.0, 0.0),
            150.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        );
        assert!(m.covers(&poi));
        let arc = m.aspect_arc(&poi, Angle::from_degrees(30.0)).unwrap();
        // Viewing direction: from PoI (east) back to camera = 180°.
        assert!(arc.contains(Angle::from_degrees(180.0)));
        assert!((arc.width().to_degrees() - 60.0).abs() < 1e-9);
        let far = Poi::new(1, Point::new(200.0, 0.0));
        assert!(!m.covers(&far));
        assert!(m.aspect_arc(&far, Angle::from_degrees(30.0)).is_none());
    }

    #[test]
    fn occlusion_blocks_coverage_and_aspects() {
        use photodtn_geo::Segment;
        let poi = Poi::new(0, Point::new(100.0, 0.0));
        let m = PhotoMeta::new(
            Point::new(0.0, 0.0),
            150.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        );
        assert!(m.covers_occluded(&poi, &[]));
        let wall = Segment::new(Point::new(50.0, -20.0), Point::new(50.0, 20.0));
        assert!(!m.covers_occluded(&poi, &[wall]));
        assert!(m
            .aspect_arc_occluded(&poi, Angle::from_degrees(30.0), &[wall])
            .is_none());
        assert!(m
            .aspect_arc_occluded(&poi, Angle::from_degrees(30.0), &[])
            .is_some());
        // occluded implies the occlusion-free arc equals the plain one
        assert_eq!(
            m.aspect_arc_occluded(&poi, Angle::from_degrees(30.0), &[]),
            m.aspect_arc(&poi, Angle::from_degrees(30.0))
        );
    }

    #[test]
    fn covered_pois_filters_by_sector() {
        let pois = PoiList::new(vec![
            Poi::new(0, Point::new(100.0, 0.0)),  // in front
            Poi::new(1, Point::new(-100.0, 0.0)), // behind
            Poi::new(2, Point::new(1000.0, 0.0)), // too far
        ]);
        let m = PhotoMeta::new(
            Point::new(0.0, 0.0),
            150.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        );
        let ids: Vec<u32> = m.covered_pois(&pois).map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0]);
    }
}
