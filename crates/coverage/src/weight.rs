use serde::{Deserialize, Serialize};

use photodtn_geo::{Arc, ArcSet};

/// Piecewise-constant importance weights over the aspects of a PoI — the
/// second extension discussed in §II-C ("a particular angle of a target,
/// e.g. the main entrance of a building, is more important than others").
///
/// Every aspect has weight 1 unless it falls in one of the added regions,
/// whose multipliers override the default. Overlapping regions: the last
/// added region wins (regions are applied in insertion order).
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Arc, ArcSet};
/// use photodtn_coverage::AspectWeights;
///
/// // The main entrance faces north: triple weight for ±30° around 90°.
/// let mut w = AspectWeights::uniform();
/// w.add_region(Arc::centered(Angle::from_degrees(90.0), Angle::from_degrees(30.0)), 3.0);
///
/// let covered = ArcSet::from_arc(Arc::centered(Angle::from_degrees(90.0), Angle::from_degrees(15.0)));
/// // 30° of coverage, all at weight 3 → weighted measure 90°.
/// assert!((w.weighted_measure(&covered).to_degrees() - 90.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AspectWeights {
    /// `(region, multiplier)` in insertion order; later entries override
    /// earlier ones where they overlap.
    regions: Vec<(ArcSet, f64)>,
}

impl AspectWeights {
    /// Uniform weights (everything weight 1).
    #[must_use]
    pub fn uniform() -> Self {
        AspectWeights {
            regions: Vec::new(),
        }
    }

    /// Whether any non-uniform region is present.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.regions.is_empty()
    }

    /// Adds a weighted region. Negative multipliers are clamped to 0.
    pub fn add_region(&mut self, arc: Arc, multiplier: f64) {
        self.regions
            .push((ArcSet::from_arc(arc), multiplier.max(0.0)));
    }

    /// The weight at a single aspect direction.
    #[must_use]
    pub fn weight_at(&self, aspect: photodtn_geo::Angle) -> f64 {
        self.regions
            .iter()
            .rev()
            .find(|(r, _)| r.contains(aspect))
            .map_or(1.0, |&(_, m)| m)
    }

    /// All region boundary angles (radians, in the canonical zero-split
    /// representation). The weight function is constant between
    /// consecutive endpoints, which is what exact segment integration
    /// needs.
    #[must_use]
    pub fn endpoints(&self) -> Vec<f64> {
        let mut cuts: Vec<f64> = Vec::new();
        for (region, _) in &self.regions {
            cuts.extend(region.endpoints());
        }
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        cuts
    }

    /// Integrates the weight function over a covered-aspect set:
    /// `∫_set w(v) dv`, radians (weighted).
    ///
    /// With uniform weights this equals `set.measure()`.
    #[must_use]
    pub fn weighted_measure(&self, set: &ArcSet) -> f64 {
        if self.regions.is_empty() {
            return set.measure();
        }
        let mut total = 0.0;
        // `remaining` is the part of `set` not yet claimed by a region;
        // walk regions from last (highest precedence) to first.
        let mut remaining = set.clone();
        for (region, mult) in self.regions.iter().rev() {
            let claimed = remaining.intersection(region);
            total += mult * claimed.measure();
            remaining = remaining.difference(region);
        }
        total + remaining.measure()
    }
}

/// Per-PoI aspect-weight assignments, keyed by [`PoiId`](crate::PoiId).
///
/// PoIs without an entry use uniform weights. This is the input to the
/// `*_weighted` evaluation paths in this crate and in `photodtn-core`.
pub type AspectWeightMap = std::collections::HashMap<crate::PoiId, AspectWeights>;

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::Angle;

    fn arc_deg(center: f64, half: f64) -> Arc {
        Arc::centered(Angle::from_degrees(center), Angle::from_degrees(half))
    }

    #[test]
    fn uniform_weights_are_plain_measure() {
        let w = AspectWeights::uniform();
        let s = ArcSet::from_arc(arc_deg(45.0, 30.0));
        assert!((w.weighted_measure(&s) - s.measure()).abs() < 1e-12);
        assert!(w.is_uniform());
        assert_eq!(w.weight_at(Angle::from_degrees(45.0)), 1.0);
    }

    #[test]
    fn region_scales_overlap_only() {
        let mut w = AspectWeights::uniform();
        w.add_region(arc_deg(0.0, 10.0), 2.0);
        // covered: [350, 30] = 40°; weighted region [350, 10] = 20° at ×2,
        // rest 20° at ×1 → 60° weighted.
        let s = ArcSet::from_arc(arc_deg(10.0, 20.0));
        assert!((w.weighted_measure(&s).to_degrees() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn later_region_overrides() {
        let mut w = AspectWeights::uniform();
        w.add_region(arc_deg(0.0, 20.0), 2.0);
        w.add_region(arc_deg(0.0, 10.0), 0.0); // forbidden core
        let s = ArcSet::from_arc(arc_deg(0.0, 20.0)); // 40°
                                                      // inner 20° at ×0, outer 20° at ×2 → 40°
        assert!((w.weighted_measure(&s).to_degrees() - 40.0).abs() < 1e-6);
        assert_eq!(w.weight_at(Angle::from_degrees(5.0)), 0.0);
        assert_eq!(w.weight_at(Angle::from_degrees(15.0)), 2.0);
        assert_eq!(w.weight_at(Angle::from_degrees(90.0)), 1.0);
    }

    #[test]
    fn negative_multiplier_clamped() {
        let mut w = AspectWeights::uniform();
        w.add_region(arc_deg(0.0, 180.0), -3.0);
        let s = ArcSet::full();
        assert!(w.weighted_measure(&s) >= 0.0);
    }
}
