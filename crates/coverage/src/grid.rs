//! The coverage index: per-photo `(PoI, aspect arc)` lists precomputed
//! through the spatial grid.
//!
//! Greedy selection (§III-D) evaluates the marginal gain of every pooled
//! photo at every step of every contact. Recomputing "which PoIs does this
//! photo cover, and which aspects of each?" on every evaluation repeats
//! the same sector-containment trigonometry thousands of times per
//! contact. A [`PhotoCoverage`] computes that answer **once** — querying
//! only the grid cells the photo's sector bounding box intersects — and
//! the expected-coverage engine then consumes the precomputed entries with
//! no geometry at all in the hot loop.
//!
//! # Determinism
//!
//! `PhotoCoverage::build` visits PoIs in exactly the same order as
//! [`PhotoMeta::covered_pois`] (both walk the grid row-major), and stores
//! the identical `aspect_arc` values. Downstream floating-point
//! accumulation therefore runs in the same order with the same inputs,
//! which keeps selection results byte-identical to the unindexed scan.

use photodtn_geo::Arc;

use crate::{CoverageParams, PhotoMeta, PoiId, PoiList};

/// One PoI a photo covers: the PoI's id and weight plus the aspect arc the
/// photo contributes to it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageEntry {
    /// The covered PoI.
    pub poi: PoiId,
    /// The PoI's importance weight (copied for cache-friendly access).
    pub weight: f64,
    /// The aspect arc the photo covers on this PoI.
    pub arc: Arc,
}

/// The precomputed coverage list of one photo against one PoI list: every
/// PoI the photo covers, with the aspect arc it contributes.
///
/// Build once per (photo, contact), evaluate many times.
///
/// # Example
///
/// ```
/// use photodtn_coverage::{CoverageParams, PhotoCoverage, PhotoMeta, Poi, PoiList};
/// use photodtn_geo::{Angle, Point};
///
/// let pois = PoiList::new(vec![
///     Poi::new(0, Point::new(100.0, 0.0)),
///     Poi::new(1, Point::new(-100.0, 0.0)), // behind the camera
/// ]);
/// let meta = PhotoMeta::new(Point::new(0.0, 0.0), 150.0,
///                           Angle::from_degrees(40.0), Angle::ZERO);
/// let cov = PhotoCoverage::build(&meta, &pois, CoverageParams::default());
/// assert_eq!(cov.len(), 1);
/// assert_eq!(cov.entries()[0].poi.0, 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhotoCoverage {
    entries: Vec<CoverageEntry>,
}

impl PhotoCoverage {
    /// Computes the coverage list of `meta` over `pois`, querying only the
    /// grid cells intersecting the photo sector's bounding box.
    ///
    /// Candidates are gathered into flat SoA lanes and screened by the
    /// batched conservative prefilter ([`crate::batch`]); only survivors
    /// run the exact `f64` containment test, in the original grid order,
    /// so the result is bit-for-bit identical to
    /// [`build_scalar`](Self::build_scalar).
    #[must_use]
    pub fn build(meta: &PhotoMeta, pois: &PoiList, params: CoverageParams) -> Self {
        let sector = meta.sector();
        let bbox = sector.bbox();
        let kernel = crate::batch::SectorKernel::new(&sector);
        let entries = crate::batch::with_scratch(|scratch| {
            for c in pois.bbox_cells(&bbox) {
                let (items, xs, ys) = pois.cell_slices(c);
                scratch.items.extend_from_slice(items);
                scratch.xs.extend_from_slice(xs);
                scratch.ys.extend_from_slice(ys);
            }
            scratch.keep.resize(scratch.items.len(), 0);
            crate::batch::sector_prefilter(&kernel, &scratch.xs, &scratch.ys, &mut scratch.keep);
            let mut entries = Vec::new();
            for (&i, &keep) in scratch.items.iter().zip(&scratch.keep) {
                if keep == 0 {
                    continue;
                }
                let p = pois.by_index(i);
                if sector.contains(p.location) {
                    entries.push(CoverageEntry {
                        poi: p.id,
                        weight: p.weight,
                        // Identical to `meta.aspect_arc(p, θ)` for a
                        // contained PoI.
                        arc: Arc::centered(
                            sector.viewing_direction(p.location),
                            params.effective_angle,
                        ),
                    });
                }
            }
            entries
        });
        PhotoCoverage { entries }
    }

    /// The scalar reference build: the pre-SIMD data path, kept as the
    /// bit-exact oracle for the batched [`build`](Self::build) (property
    /// tests assert equality) and as the baseline of `bench_selection`.
    #[must_use]
    pub fn build_scalar(meta: &PhotoMeta, pois: &PoiList, params: CoverageParams) -> Self {
        let sector = meta.sector();
        let bbox = sector.bbox();
        let entries = pois
            .in_bbox(&bbox)
            .filter(|p| sector.contains(p.location))
            .map(|p| CoverageEntry {
                poi: p.id,
                weight: p.weight,
                arc: Arc::centered(sector.viewing_direction(p.location), params.effective_angle),
            })
            .collect();
        PhotoCoverage { entries }
    }

    /// The coverage entries, ordered as the grid yields them (row-major
    /// cells, insertion order within a cell).
    #[must_use]
    pub fn entries(&self) -> &[CoverageEntry] {
        &self.entries
    }

    /// Number of PoIs the photo covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the photo covers no PoI at all (its gain is always zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the ids of the covered PoIs.
    pub fn pois(&self) -> impl Iterator<Item = PoiId> + '_ {
        self.entries.iter().map(|e| e.poi)
    }

    /// Whether this photo covers the given PoI.
    #[must_use]
    pub fn covers(&self, poi: PoiId) -> bool {
        self.entries.iter().any(|e| e.poi == poi)
    }
}

/// Builds the coverage table of a photo pool: one [`PhotoCoverage`] per
/// photo, in iteration order.
#[must_use]
pub fn build_coverage_table<'a, M>(
    metas: M,
    pois: &PoiList,
    params: CoverageParams,
) -> Vec<PhotoCoverage>
where
    M: IntoIterator<Item = &'a PhotoMeta>,
{
    metas
        .into_iter()
        .map(|m| PhotoCoverage::build(m, pois, params))
        .collect()
}

/// Debug-build sanity check used by property tests: the indexed coverage
/// list must equal the brute-force filter over the whole PoI list.
#[must_use]
pub fn matches_linear_scan(cov: &PhotoCoverage, meta: &PhotoMeta, pois: &PoiList) -> bool {
    let brute: Vec<PoiId> = pois
        .iter()
        .filter(|p| meta.covers(p))
        .map(|p| p.id)
        .collect();
    let mut indexed: Vec<PoiId> = cov.pois().collect();
    indexed.sort_unstable();
    let mut brute_sorted = brute;
    brute_sorted.sort_unstable();
    indexed == brute_sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Poi;
    use photodtn_geo::{Angle, Point};

    fn grid_pois(n: u32, spacing: f64) -> PoiList {
        let side = (n as f64).sqrt().ceil() as u32;
        PoiList::new(
            (0..n)
                .map(|i| {
                    Poi::new(
                        i,
                        Point::new((i % side) as f64 * spacing, (i / side) as f64 * spacing),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn build_matches_covered_pois_order_and_arcs() {
        let pois = grid_pois(100, 80.0);
        let params = CoverageParams::default();
        for (x, y, fov, dir, r) in [
            (350.0, 350.0, 45.0, 30.0, 250.0),
            (0.0, 0.0, 60.0, 45.0, 400.0),
            (700.0, 100.0, 30.0, 180.0, 300.0),
            (-50.0, -50.0, 359.0, 0.0, 200.0),
        ] {
            let meta = PhotoMeta::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            );
            let cov = PhotoCoverage::build(&meta, &pois, params);
            let scan: Vec<(PoiId, Arc)> = meta
                .covered_pois(&pois)
                .map(|p| (p.id, meta.aspect_arc(p, params.effective_angle).unwrap()))
                .collect();
            let indexed: Vec<(PoiId, Arc)> = cov.entries().iter().map(|e| (e.poi, e.arc)).collect();
            assert_eq!(
                indexed, scan,
                "divergence at ({x},{y}) fov={fov} dir={dir} r={r}"
            );
        }
    }

    #[test]
    fn empty_when_photo_sees_nothing() {
        let pois = grid_pois(9, 100.0);
        let meta = PhotoMeta::new(
            Point::new(5000.0, 5000.0),
            100.0,
            Angle::from_degrees(60.0),
            Angle::ZERO,
        );
        let cov = PhotoCoverage::build(&meta, &pois, CoverageParams::default());
        assert!(cov.is_empty());
        assert_eq!(cov.len(), 0);
        assert!(!cov.covers(PoiId(0)));
    }

    #[test]
    fn covers_and_weights() {
        let pois = PoiList::new(vec![
            Poi::with_weight(0, Point::new(50.0, 0.0), 2.5),
            Poi::new(1, Point::new(5000.0, 0.0)),
        ]);
        let meta = PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(60.0),
            Angle::ZERO,
        );
        let cov = PhotoCoverage::build(&meta, &pois, CoverageParams::default());
        assert!(cov.covers(PoiId(0)));
        assert!(!cov.covers(PoiId(1)));
        assert_eq!(cov.entries()[0].weight, 2.5);
        assert!(matches_linear_scan(&cov, &meta, &pois));
    }

    #[test]
    fn table_builder_aligns_with_input() {
        let pois = grid_pois(16, 100.0);
        let params = CoverageParams::default();
        let metas: Vec<PhotoMeta> = (0..5)
            .map(|i| {
                PhotoMeta::new(
                    Point::new(i as f64 * 90.0, 100.0),
                    150.0,
                    Angle::from_degrees(50.0),
                    Angle::from_degrees(i as f64 * 72.0),
                )
            })
            .collect();
        let table = build_coverage_table(metas.iter(), &pois, params);
        assert_eq!(table.len(), metas.len());
        for (m, cov) in metas.iter().zip(&table) {
            assert!(matches_linear_scan(cov, m, &pois));
        }
    }
}
