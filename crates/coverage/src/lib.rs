//! The photo coverage model of Wu et al. (ICDCS'16), §II.
//!
//! A crowdsourcing *command center* publishes a list of Points of Interest
//! ([`Poi`], [`PoiList`]). Participants take photos; each photo is
//! characterized only by lightweight *metadata* ([`PhotoMeta`]): camera
//! location `l`, coverage range `r`, field of view `φ` and orientation `d`.
//! From metadata alone we can decide
//!
//! * **point coverage** — is a PoI inside the photo's coverage sector?
//! * **aspect coverage** — which viewing directions (*aspects*) of the PoI
//!   does the photo show? A photo covers the arc of aspects within the
//!   *effective angle* `θ` of its viewing direction.
//!
//! The combined [`Coverage`] value `(ΣC_pt, ΣC_as)` over a PoI list is
//! ordered **lexicographically**: covering a new PoI always beats adding
//! aspects to already-covered ones.
//!
//! [`CoverageProfile`] maintains per-PoI coverage of a growing photo
//! collection incrementally, which the greedy selection algorithm in
//! `photodtn-core` queries for marginal gains.
//!
//! # Example
//!
//! ```
//! use photodtn_geo::{Angle, Point};
//! use photodtn_coverage::{CoverageParams, CoverageProfile, PhotoMeta, Poi, PoiList};
//!
//! let pois = PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))]);
//! let params = CoverageParams::default();
//! let mut profile = CoverageProfile::new(&pois, params);
//!
//! // A photo taken 50 m east of the PoI, looking west.
//! let meta = PhotoMeta::new(Point::new(50.0, 0.0), 100.0,
//!                           Angle::from_degrees(60.0), Angle::from_degrees(180.0));
//! let gain = profile.add(&meta);
//! assert_eq!(gain.point, 1.0);              // the PoI is now covered
//! assert!(gain.aspect.to_degrees() > 0.0);  // and some of its aspects
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod cache;
mod collection;
mod coverage;
pub mod fullview;
mod gen;
mod grid;
mod meta;
mod photo;
mod poi;
mod profile;
pub mod sensing;
mod weight;

pub use cache::{CacheStats, CoverageTableCache};
pub use collection::PhotoCollection;
pub use coverage::{aspect_set, covers_point, Coverage, CoverageParams};
pub use gen::{PhotoGenerator, TargetedGenerator, UniformGenerator};
pub use grid::{build_coverage_table, matches_linear_scan, CoverageEntry, PhotoCoverage};
pub use meta::PhotoMeta;
pub use photo::{ColorHistogram, Photo, PhotoId, DEFAULT_PHOTO_SIZE};
pub use poi::{Poi, PoiId, PoiList};
pub use profile::CoverageProfile;
pub use weight::{AspectWeightMap, AspectWeights};
