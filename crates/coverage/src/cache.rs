//! Cross-contact cache of [`PhotoCoverage`] tables.
//!
//! Photo metadata is immutable, so for a fixed PoI list and coverage
//! parameters a photo's coverage table is a pure function of its
//! [`PhotoId`]. Building the table once per *run* instead of once per
//! *contact* removes the dominant per-event geometry cost from the
//! simulation hot path. The cache hands out [`Arc`]s so a table can be
//! shared between the selection items, the upload loop, and the cache
//! itself without cloning the entry vector.
//!
//! Eviction is FIFO on insertion order — fully deterministic, so a run
//! with a tiny cache produces byte-identical results to a run with an
//! unbounded one (an evicted table is simply rebuilt, and
//! [`PhotoCoverage::build`] is deterministic).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use serde::Serialize;

use crate::{CoverageParams, PhotoCoverage, PhotoId, PhotoMeta, PoiList};

/// Running counters of a [`CoverageTableCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a table.
    pub misses: u64,
    /// Entries dropped to stay within the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never queried).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, per-run cache of coverage tables keyed by [`PhotoId`].
///
/// The caller guarantees all lookups use the same PoI list and parameters
/// (one cache per simulated world); ids are globally unique, so a hit can
/// never alias a different photo's table.
#[derive(Debug)]
pub struct CoverageTableCache {
    tables: HashMap<PhotoId, Arc<PhotoCoverage>>,
    /// Insertion order, oldest first — the FIFO eviction queue.
    order: VecDeque<PhotoId>,
    capacity: usize,
    stats: CacheStats,
}

impl CoverageTableCache {
    /// Default capacity: comfortably above any workload's live photo count
    /// while bounding worst-case memory (a table is typically well under
    /// a kilobyte).
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// Creates a cache holding at most `capacity` tables. A capacity of
    /// zero disables caching entirely (every lookup is a miss that stores
    /// nothing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CoverageTableCache {
            tables: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Returns the cached table for `id`, building (and caching) it from
    /// `meta` on a miss.
    pub fn get_or_build(
        &mut self,
        id: PhotoId,
        meta: &PhotoMeta,
        pois: &PoiList,
        params: CoverageParams,
    ) -> Arc<PhotoCoverage> {
        if let Some(table) = self.tables.get(&id) {
            self.stats.hits += 1;
            return Arc::clone(table);
        }
        self.stats.misses += 1;
        let table = Arc::new(PhotoCoverage::build(meta, pois, params));
        if self.capacity == 0 {
            return table;
        }
        while self.tables.len() >= self.capacity {
            // order and tables move in lockstep, so the queue is non-empty.
            if let Some(oldest) = self.order.pop_front() {
                self.tables.remove(&oldest);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        self.tables.insert(id, Arc::clone(&table));
        self.order.push_back(id);
        table
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of tables currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The capacity bound this cache was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all cached tables, keeping capacity and counters.
    pub fn clear(&mut self) {
        self.tables.clear();
        self.order.clear();
    }
}

impl Default for CoverageTableCache {
    fn default() -> Self {
        CoverageTableCache::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::{Angle, Point};

    use crate::Poi;

    fn world() -> PoiList {
        PoiList::new(
            (0..10)
                .map(|i| Poi::new(i, Point::new(f64::from(i) * 60.0, 0.0)))
                .collect(),
        )
    }

    fn meta(i: u64) -> PhotoMeta {
        PhotoMeta::new(
            Point::new(i as f64 * 60.0, 40.0),
            120.0,
            Angle::from_degrees(60.0),
            Angle::from_degrees(270.0),
        )
    }

    #[test]
    fn hit_and_miss_counters() {
        let pois = world();
        let params = CoverageParams::default();
        let mut cache = CoverageTableCache::new(8);
        let a = cache.get_or_build(PhotoId(1), &meta(1), &pois, params);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        let b = cache.get_or_build(PhotoId(1), &meta(1), &pois, params);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_equals_fresh_build() {
        let pois = world();
        let params = CoverageParams::default();
        let mut cache = CoverageTableCache::default();
        for i in 0..10 {
            let m = meta(i);
            let cached = cache.get_or_build(PhotoId(i), &m, &pois, params);
            let fresh = PhotoCoverage::build(&m, &pois, params);
            assert_eq!(*cached, fresh);
            // and again through the hit path
            let hit = cache.get_or_build(PhotoId(i), &m, &pois, params);
            assert_eq!(*hit, fresh);
        }
    }

    #[test]
    fn eviction_respects_capacity_fifo() {
        let pois = world();
        let params = CoverageParams::default();
        let mut cache = CoverageTableCache::new(3);
        for i in 0..5 {
            cache.get_or_build(PhotoId(i), &meta(i), &pois, params);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 2);
        // oldest (0, 1) evicted; 2..5 retained
        cache.get_or_build(PhotoId(4), &meta(4), &pois, params);
        assert_eq!(cache.stats().hits, 1);
        cache.get_or_build(PhotoId(0), &meta(0), &pois, params);
        assert_eq!(cache.stats().misses, 6);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let pois = world();
        let params = CoverageParams::default();
        let mut cache = CoverageTableCache::new(0);
        for _ in 0..3 {
            cache.get_or_build(PhotoId(7), &meta(7), &pois, params);
        }
        assert!(cache.is_empty());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 3,
                evictions: 0
            }
        );
    }
}
