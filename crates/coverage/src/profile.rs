use serde::{Deserialize, Serialize};

use photodtn_geo::ArcSet;

use crate::{Coverage, CoverageParams, PhotoMeta, PoiId, PoiList};

/// Incrementally maintained coverage of a growing photo collection.
///
/// `CoverageProfile` answers, in time proportional to the number of PoIs a
/// photo touches (usually 0 or 1):
///
/// * [`gain_of`](CoverageProfile::gain_of) — the marginal coverage a photo
///   would add, **without** mutating the profile (the inner loop of every
///   greedy selection);
/// * [`add`](CoverageProfile::add) — commit a photo and return its gain.
///
/// The profile owns a clone of the PoI list; cloning ~hundreds of PoIs per
/// contact is negligible next to photo transfers.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Point};
/// use photodtn_coverage::{CoverageParams, CoverageProfile, PhotoMeta, Poi, PoiList};
///
/// let pois = PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))]);
/// let mut profile = CoverageProfile::new(&pois, CoverageParams::default());
/// let meta = PhotoMeta::new(Point::new(50.0, 0.0), 100.0,
///                           Angle::from_degrees(60.0), Angle::from_degrees(180.0));
/// let preview = profile.gain_of(&meta);
/// let actual = profile.add(&meta);
/// assert_eq!(preview, actual);
/// assert_eq!(profile.add(&meta), photodtn_coverage::Coverage::ZERO); // fully redundant now
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageProfile {
    pois: PoiList,
    params: CoverageParams,
    /// Covered aspects per PoI (indexed by `PoiId`).
    aspects: Vec<ArcSet>,
    /// Point-coverage flag per PoI.
    covered: Vec<bool>,
    total: Coverage,
}

impl CoverageProfile {
    /// Creates an empty profile over `pois`.
    #[must_use]
    pub fn new(pois: &PoiList, params: CoverageParams) -> Self {
        CoverageProfile {
            aspects: vec![ArcSet::new(); pois.len()],
            covered: vec![false; pois.len()],
            pois: pois.clone(),
            params,
            total: Coverage::ZERO,
        }
    }

    /// Creates a profile already containing `metas`.
    #[must_use]
    pub fn with_photos<'a, M>(pois: &PoiList, params: CoverageParams, metas: M) -> Self
    where
        M: IntoIterator<Item = &'a PhotoMeta>,
    {
        let mut p = Self::new(pois, params);
        for m in metas {
            p.add(m);
        }
        p
    }

    /// The coverage accumulated so far.
    #[must_use]
    pub fn total(&self) -> Coverage {
        self.total
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> CoverageParams {
        self.params
    }

    /// The PoI list the profile covers.
    #[must_use]
    pub fn pois(&self) -> &PoiList {
        &self.pois
    }

    /// Number of PoIs with point coverage (unweighted count).
    #[must_use]
    pub fn covered_count(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// Whether PoI `id` has point coverage.
    #[must_use]
    pub fn is_covered(&self, id: PoiId) -> bool {
        self.covered.get(id.index()).copied().unwrap_or(false)
    }

    /// The covered aspect set of PoI `id` (empty when out of range).
    #[must_use]
    pub fn aspects_of(&self, id: PoiId) -> ArcSet {
        self.aspects.get(id.index()).cloned().unwrap_or_default()
    }

    /// Marginal coverage `C_ph(F ∪ {f}) − C_ph(F)` the photo would add,
    /// without mutating the profile.
    #[must_use]
    pub fn gain_of(&self, meta: &PhotoMeta) -> Coverage {
        let mut gain = Coverage::ZERO;
        for poi in meta.covered_pois(&self.pois) {
            let i = poi.id.index();
            if !self.covered[i] {
                gain.point += poi.weight;
            }
            if let Some(arc) = meta.aspect_arc(poi, self.params.effective_angle) {
                gain.aspect += poi.weight * self.aspects[i].uncovered_measure(arc);
            }
        }
        gain
    }

    /// Adds a photo to the profile, returning its marginal gain.
    pub fn add(&mut self, meta: &PhotoMeta) -> Coverage {
        let mut gain = Coverage::ZERO;
        // Collect first: `covered_pois` borrows `self.pois` immutably while
        // we mutate the aspect sets.
        let touched: Vec<PoiId> = meta.covered_pois(&self.pois).map(|p| p.id).collect();
        for id in touched {
            let poi = self.pois[id];
            let i = id.index();
            if !self.covered[i] {
                self.covered[i] = true;
                gain.point += poi.weight;
            }
            if let Some(arc) = meta.aspect_arc(&poi, self.params.effective_angle) {
                let before = self.aspects[i].measure();
                self.aspects[i].insert(arc);
                gain.aspect += poi.weight * (self.aspects[i].measure() - before);
            }
        }
        self.total += gain;
        gain
    }

    /// Recomputes the total from scratch; used by debug assertions and
    /// tests to validate the incremental bookkeeping.
    #[must_use]
    pub fn recompute_total(&self) -> Coverage {
        let mut total = Coverage::ZERO;
        for poi in &self.pois {
            let i = poi.id.index();
            if self.covered[i] {
                total.point += poi.weight;
            }
            total.aspect += poi.weight * self.aspects[i].measure();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Poi;
    use photodtn_geo::{Angle, Point};

    fn two_pois() -> PoiList {
        PoiList::new(vec![
            Poi::new(0, Point::new(0.0, 0.0)),
            Poi::new(1, Point::new(1000.0, 0.0)),
        ])
    }

    fn shot(target: Point, from_deg: f64, dist: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(from_deg);
        PhotoMeta::new(
            target.offset(dir, dist),
            dist + 10.0,
            Angle::from_degrees(60.0),
            dir + Angle::PI,
        )
    }

    #[test]
    fn add_matches_gain_preview() {
        let pois = two_pois();
        let mut p = CoverageProfile::new(&pois, CoverageParams::default());
        let shots = [
            shot(Point::new(0.0, 0.0), 0.0, 50.0),
            shot(Point::new(0.0, 0.0), 90.0, 50.0),
            shot(Point::new(1000.0, 0.0), 45.0, 80.0),
            shot(Point::new(0.0, 0.0), 10.0, 60.0),
        ];
        for s in &shots {
            let preview = p.gain_of(s);
            let actual = p.add(s);
            assert_eq!(preview, actual);
        }
        assert_eq!(p.total(), p.recompute_total());
        assert_eq!(p.covered_count(), 2);
    }

    #[test]
    fn redundant_photo_zero_gain() {
        let pois = two_pois();
        let mut p = CoverageProfile::new(&pois, CoverageParams::default());
        let s = shot(Point::new(0.0, 0.0), 0.0, 50.0);
        assert!(p.add(&s) > Coverage::ZERO);
        assert_eq!(p.gain_of(&s), Coverage::ZERO);
        assert_eq!(p.add(&s), Coverage::ZERO);
    }

    #[test]
    fn irrelevant_photo_zero_gain() {
        let pois = two_pois();
        let p = CoverageProfile::new(&pois, CoverageParams::default());
        // points away from both PoIs
        let s = PhotoMeta::new(
            Point::new(500.0, 500.0),
            50.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        );
        assert_eq!(p.gain_of(&s), Coverage::ZERO);
    }

    #[test]
    fn with_photos_equals_sequential_adds() {
        let pois = two_pois();
        let shots = [
            shot(Point::new(0.0, 0.0), 0.0, 50.0),
            shot(Point::new(1000.0, 0.0), 180.0, 70.0),
        ];
        let a = CoverageProfile::with_photos(&pois, CoverageParams::default(), shots.iter());
        let mut b = CoverageProfile::new(&pois, CoverageParams::default());
        for s in &shots {
            b.add(s);
        }
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn profile_matches_batch_coverage() {
        let pois = two_pois();
        let shots = [
            shot(Point::new(0.0, 0.0), 0.0, 50.0),
            shot(Point::new(0.0, 0.0), 30.0, 60.0),
            shot(Point::new(1000.0, 0.0), 200.0, 90.0),
        ];
        let p = CoverageProfile::with_photos(&pois, CoverageParams::default(), shots.iter());
        let batch = Coverage::of(&pois, shots.iter(), CoverageParams::default());
        assert_eq!(p.total(), batch);
    }

    #[test]
    fn aspects_of_and_is_covered() {
        let pois = two_pois();
        let mut p = CoverageProfile::new(&pois, CoverageParams::default());
        p.add(&shot(Point::new(0.0, 0.0), 0.0, 50.0));
        assert!(p.is_covered(PoiId(0)));
        assert!(!p.is_covered(PoiId(1)));
        assert!(!p.aspects_of(PoiId(0)).is_empty());
        assert!(p.aspects_of(PoiId(1)).is_empty());
        // out-of-range id
        assert!(!p.is_covered(PoiId(99)));
        assert!(p.aspects_of(PoiId(99)).is_empty());
    }
}
