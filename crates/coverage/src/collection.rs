use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Photo, PhotoId, PhotoMeta};

/// A node's photo collection `F` with byte-level size accounting.
///
/// Iteration order is photo-id order, which keeps every simulation
/// deterministic for a given seed.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Point};
/// use photodtn_coverage::{Photo, PhotoCollection, PhotoMeta};
///
/// let meta = PhotoMeta::new(Point::new(0.0, 0.0), 100.0,
///                           Angle::from_degrees(45.0), Angle::ZERO);
/// let mut f = PhotoCollection::new();
/// assert!(f.insert(Photo::new(7, meta, 0.0).with_size(100)));
/// assert!(!f.insert(Photo::new(7, meta, 0.0).with_size(100))); // duplicate
/// assert_eq!(f.total_size(), 100);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhotoCollection {
    photos: BTreeMap<PhotoId, Photo>,
    total_size: u64,
}

impl PhotoCollection {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        PhotoCollection::default()
    }

    /// Number of photos.
    #[must_use]
    pub fn len(&self) -> usize {
        self.photos.len()
    }

    /// Whether the collection is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.photos.is_empty()
    }

    /// Total payload bytes of all photos.
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// Whether the collection holds a photo with this id.
    #[must_use]
    pub fn contains(&self, id: PhotoId) -> bool {
        self.photos.contains_key(&id)
    }

    /// The photo with this id, if present.
    #[must_use]
    pub fn get(&self, id: PhotoId) -> Option<&Photo> {
        self.photos.get(&id)
    }

    /// Inserts a photo. Returns `false` (and changes nothing) if a photo
    /// with the same id is already present — replicas are identical, so
    /// the existing copy wins.
    pub fn insert(&mut self, photo: Photo) -> bool {
        match self.photos.entry(photo.id) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(e) => {
                self.total_size += photo.size;
                e.insert(photo);
                true
            }
        }
    }

    /// Removes and returns a photo.
    pub fn remove(&mut self, id: PhotoId) -> Option<Photo> {
        let removed = self.photos.remove(&id);
        if let Some(p) = &removed {
            self.total_size -= p.size;
        }
        removed
    }

    /// Removes all photos.
    pub fn clear(&mut self) {
        self.photos.clear();
        self.total_size = 0;
    }

    /// Iterates over photos in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Photo> + Clone {
        self.photos.values()
    }

    /// Iterates over the metadata of all photos, id order.
    pub fn metas(&self) -> impl Iterator<Item = &PhotoMeta> + Clone {
        self.photos.values().map(|p| &p.meta)
    }

    /// Iterates over photo ids, ascending.
    pub fn ids(&self) -> impl DoubleEndedIterator<Item = PhotoId> + '_ {
        self.photos.keys().copied()
    }
}

impl FromIterator<Photo> for PhotoCollection {
    fn from_iter<T: IntoIterator<Item = Photo>>(iter: T) -> Self {
        let mut c = PhotoCollection::new();
        for p in iter {
            c.insert(p);
        }
        c
    }
}

impl Extend<Photo> for PhotoCollection {
    fn extend<T: IntoIterator<Item = Photo>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl<'a> IntoIterator for &'a PhotoCollection {
    type Item = &'a Photo;
    type IntoIter = std::collections::btree_map::Values<'a, PhotoId, Photo>;
    fn into_iter(self) -> Self::IntoIter {
        self.photos.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::{Angle, Point};

    fn photo(id: u64, size: u64) -> Photo {
        let meta = PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(45.0),
            Angle::ZERO,
        );
        Photo::new(id, meta, 0.0).with_size(size)
    }

    #[test]
    fn size_accounting() {
        let mut c = PhotoCollection::new();
        c.insert(photo(1, 10));
        c.insert(photo(2, 20));
        assert_eq!(c.total_size(), 30);
        assert_eq!(c.len(), 2);
        c.remove(PhotoId(1));
        assert_eq!(c.total_size(), 20);
        c.clear();
        assert_eq!(c.total_size(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut c = PhotoCollection::new();
        assert!(c.insert(photo(1, 10)));
        assert!(!c.insert(photo(1, 99)));
        assert_eq!(c.total_size(), 10);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut c = PhotoCollection::new();
        assert!(c.remove(PhotoId(42)).is_none());
    }

    #[test]
    fn iteration_in_id_order() {
        let c: PhotoCollection = [photo(3, 1), photo(1, 1), photo(2, 1)]
            .into_iter()
            .collect();
        let ids: Vec<u64> = c.ids().map(|i| i.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(c.iter().count(), 3);
        assert_eq!(c.metas().count(), 3);
    }

    #[test]
    fn extend_and_contains() {
        let mut c = PhotoCollection::new();
        c.extend([photo(5, 2), photo(6, 3)]);
        assert!(c.contains(PhotoId(5)));
        assert!(!c.contains(PhotoId(7)));
        assert_eq!(c.get(PhotoId(6)).unwrap().size, 3);
    }
}
