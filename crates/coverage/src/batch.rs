//! Batched, SIMD-friendly sector containment prefilter.
//!
//! [`PhotoCoverage::build`](crate::PhotoCoverage::build) must decide, for
//! every candidate PoI the grid yields, whether it lies inside the photo
//! sector. The exact test ([`Sector::contains`]) costs an `atan2` per
//! candidate; on the selection hot path that trigonometry dominates the
//! whole coverage-table build.
//!
//! This module replaces the per-candidate trigonometry with a two-phase
//! test:
//!
//! 1. **Conservative `f32` prefilter** ([`sector_prefilter`]): candidates
//!    are gathered into flat structure-of-arrays `f32` lanes (built once
//!    per [`PoiList`](crate::PoiList), sliced per grid cell) and tested
//!    eight at a time with a branch-free, autovectorizable loop. The
//!    field-of-view check uses a dot-product comparison (`cos` is
//!    monotone on `[0, π]`), so no `atan2` at all. Slack margins make the
//!    filter *conservative*: every point the exact test accepts passes
//!    the prefilter (no false negatives), verified by property tests.
//! 2. **Exact `f64` re-test**: survivors run the unchanged
//!    [`Sector::contains`] in the original candidate order, so the
//!    resulting entries are bit-for-bit identical to the scalar path.
//!
//! The kernel is `#[inline(never)]` so its machine code can be inspected
//! (`objdump`/`perf`) and benchmarked in isolation
//! (`cargo bench -p photodtn-bench --bench simd_kernel`).

use std::cell::RefCell;

use photodtn_geo::Sector;

/// Lane width of the batched kernel: candidates are processed in chunks of
/// eight `f32` values (one AVX2 register; two NEON registers).
pub const LANES: usize = 8;

/// Absolute slack (meters, in dot-product space) of the conservative
/// field-of-view test. Covers the `f64→f32` coordinate conversion error for
/// coordinates up to ~10⁶ m with two orders of magnitude to spare.
const SLACK_ABS: f32 = 1.0;

/// Relative slack of the conservative field-of-view test.
const SLACK_REL: f32 = 1e-4;

/// Precomputed per-sector constants of the prefilter kernel.
#[derive(Clone, Copy, Debug)]
pub struct SectorKernel {
    apex_x: f32,
    apex_y: f32,
    /// `r²` padded by the conservative range slack.
    r_sq_pad: f32,
    cos_dir: f32,
    sin_dir: f32,
    /// `cos(fov/2)` minus the relative slack; the FoV test accepts when
    /// `dot ≥ ch_eff·dist − SLACK_ABS`.
    ch_eff: f32,
}

impl SectorKernel {
    /// Builds the kernel constants for one photo sector.
    #[must_use]
    pub fn new(sector: &Sector) -> Self {
        let apex = sector.apex();
        let r = sector.range();
        let half = sector.fov().radians() / 2.0;
        SectorKernel {
            apex_x: apex.x as f32,
            apex_y: apex.y as f32,
            r_sq_pad: (r * r * (1.0 + 1e-4) + r + 1.0) as f32,
            cos_dir: sector.orientation().cos() as f32,
            sin_dir: sector.orientation().sin() as f32,
            ch_eff: half.cos() as f32 - SLACK_REL,
        }
    }

    /// The conservative containment test of one lane. Branch-free; `true`
    /// whenever the exact [`Sector::contains`] would be `true` (and for a
    /// thin slack margin around the sector boundary).
    #[inline(always)]
    fn lane(&self, x: f32, y: f32) -> bool {
        let dx = x - self.apex_x;
        let dy = y - self.apex_y;
        let dsq = dx * dx + dy * dy;
        let dot = dx * self.cos_dir + dy * self.sin_dir;
        let dist = dsq.sqrt();
        (dsq <= self.r_sq_pad) & (dot >= self.ch_eff * dist - SLACK_ABS)
    }
}

/// Runs the conservative sector prefilter over flat coordinate lanes,
/// writing `1` into `keep[i]` when candidate `i` may lie inside the sector
/// and `0` when it provably does not.
///
/// The main loop processes [`LANES`] candidates per iteration over
/// fixed-size array views, which LLVM autovectorizes (no unstable
/// intrinsics involved); the tail runs the same lane test scalar.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
#[inline(never)]
pub fn sector_prefilter(kernel: &SectorKernel, xs: &[f32], ys: &[f32], keep: &mut [u8]) {
    assert!(xs.len() == ys.len() && xs.len() == keep.len());
    let chunks = xs
        .chunks_exact(LANES)
        .zip(ys.chunks_exact(LANES))
        .zip(keep.chunks_exact_mut(LANES));
    for ((xc, yc), kc) in chunks {
        // Fixed-size views let the compiler drop bounds checks and emit
        // one vectorized block for the eight lanes.
        let xc: &[f32; LANES] = xc.try_into().unwrap();
        let yc: &[f32; LANES] = yc.try_into().unwrap();
        let kc: &mut [u8; LANES] = kc.try_into().unwrap();
        for j in 0..LANES {
            kc[j] = u8::from(kernel.lane(xc[j], yc[j]));
        }
    }
    let tail = xs.len() - xs.len() % LANES;
    for j in tail..xs.len() {
        keep[j] = u8::from(kernel.lane(xs[j], ys[j]));
    }
}

/// Reusable structure-of-arrays candidate buffers of the batched build:
/// the per-photo candidate set gathered from the grid cells, plus the
/// kernel's output mask.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Dense PoI indices of the candidates, in grid (row-major cell) order.
    pub items: Vec<u32>,
    /// `f32` coordinate lanes aligned with `items`.
    pub xs: Vec<f32>,
    /// `f32` coordinate lanes aligned with `items`.
    pub ys: Vec<f32>,
    /// Kernel output: `keep[i] != 0` ⇒ candidate `i` needs the exact test.
    pub keep: Vec<u8>,
}

impl BatchScratch {
    /// Empties the candidate buffers, keeping their allocations.
    pub fn clear(&mut self) {
        self.items.clear();
        self.xs.clear();
        self.ys.clear();
        self.keep.clear();
    }
}

thread_local! {
    static SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::default());
}

/// Runs `f` with the thread-local [`BatchScratch`], cleared. The buffers
/// keep their capacity across calls, so steady-state coverage builds do
/// not allocate for candidate gathering (pinned by the `alloc_free` test).
pub fn with_scratch<R>(f: impl FnOnce(&mut BatchScratch) -> R) -> R {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.clear();
        f(&mut s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::{Angle, Point};

    fn sector(x: f64, y: f64, r: f64, fov_deg: f64, dir_deg: f64) -> Sector {
        Sector::new(
            Point::new(x, y),
            r,
            Angle::from_degrees(fov_deg),
            Angle::from_degrees(dir_deg),
        )
    }

    /// The one property everything rests on: the prefilter never rejects a
    /// point the exact test accepts.
    #[test]
    fn prefilter_has_no_false_negatives() {
        let sectors = [
            sector(0.0, 0.0, 100.0, 60.0, 0.0),
            sector(-250.0, 400.0, 300.0, 45.0, 200.0),
            sector(1e5, -1e5, 500.0, 359.0, 90.0),
            sector(3.0, 4.0, 0.0, 90.0, 0.0),
            sector(10.0, 10.0, 50.0, 0.0, 180.0),
        ];
        for s in &sectors {
            let k = SectorKernel::new(s);
            let apex = s.apex();
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut pts = Vec::new();
            // a dense polar sweep around the apex, crossing both boundaries
            for ring in 0..20 {
                let d = s.range() * f64::from(ring) / 16.0 + 0.01;
                for step in 0..72 {
                    let a = f64::from(step) * 5f64.to_radians();
                    let p = Point::new(apex.x + d * a.cos(), apex.y + d * a.sin());
                    xs.push(p.x as f32);
                    ys.push(p.y as f32);
                    pts.push(p);
                }
            }
            let mut keep = vec![0u8; xs.len()];
            sector_prefilter(&k, &xs, &ys, &mut keep);
            for (i, p) in pts.iter().enumerate() {
                if s.contains(*p) {
                    assert!(keep[i] != 0, "false negative at {p:?} for {s} (lane {i})");
                }
            }
        }
    }

    #[test]
    fn tail_lanes_match_full_chunks() {
        let s = sector(0.0, 0.0, 200.0, 90.0, 45.0);
        let k = SectorKernel::new(&s);
        let xs: Vec<f32> = (0..13).map(|i| i as f32 * 20.0 - 60.0).collect();
        let ys: Vec<f32> = (0..13).map(|i| i as f32 * 15.0 - 30.0).collect();
        let mut keep = vec![0u8; 13];
        sector_prefilter(&k, &xs, &ys, &mut keep);
        for i in 0..13 {
            let expect = u8::from(k.lane(xs[i], ys[i]));
            assert_eq!(keep[i], expect, "lane {i} diverged between paths");
        }
    }

    #[test]
    fn scratch_reuse_keeps_capacity() {
        with_scratch(|s| {
            s.items.extend_from_slice(&[1, 2, 3]);
            s.xs.extend_from_slice(&[0.0; 3]);
        });
        with_scratch(|s| {
            assert!(s.items.is_empty());
            assert!(s.items.capacity() >= 3);
        });
    }
}
