//! Full-view coverage analysis and minimal photo selection.
//!
//! The paper borrows *aspect coverage* from Wang et al.'s full-view
//! coverage work (refs. 23–25 in its bibliography): "a point is full-view
//! covered if it has 2π aspect coverage". This module provides the
//! analysis tools a command center runs on a photo set:
//!
//! * [`FullViewReport`] — per-PoI coverage status, the largest uncovered
//!   gap, and which PoIs are full-view covered;
//! * [`minimal_cover`] — a greedy minimum subset of photos achieving the
//!   same coverage as the whole collection (classic set-cover greedy,
//!   `1 + ln n` approximation), used to quantify redundancy in a
//!   delivered set (the Fig. 8 discussion measures ~12° of overlap);
//! * [`redundancy_degrees`] — the total overlap between photos'
//!   aspect contributions.

use photodtn_geo::{Angle, ArcSet, TAU};

use crate::{Coverage, CoverageParams, CoverageProfile, PhotoMeta, PoiId, PoiList};

/// Per-PoI view of how completely a photo collection covers it.
#[derive(Clone, Debug, PartialEq)]
pub struct PoiViewStatus {
    /// The PoI.
    pub poi: PoiId,
    /// Whether any photo sees the PoI at all.
    pub point_covered: bool,
    /// Covered aspect measure, radians.
    pub aspect: f64,
    /// Whether the full `2π` of aspects is covered.
    pub full_view: bool,
    /// Width of the largest uncovered aspect gap, radians (0 when
    /// full-view; `2π` when uncovered).
    pub largest_gap: f64,
    /// Direction at the middle of the largest gap — where to send the
    /// next photographer. Zero when full-view covered.
    pub gap_center: Angle,
}

/// Collection-level full-view analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct FullViewReport {
    /// One status per PoI, in id order.
    pub per_poi: Vec<PoiViewStatus>,
}

impl FullViewReport {
    /// Analyzes `metas` against `pois`.
    #[must_use]
    pub fn analyze<'a, M>(pois: &PoiList, metas: M, params: CoverageParams) -> Self
    where
        M: IntoIterator<Item = &'a PhotoMeta>,
        M::IntoIter: Clone,
    {
        let metas = metas.into_iter();
        let per_poi = pois
            .iter()
            .map(|poi| {
                let set = crate::aspect_set(poi, metas.clone(), params.effective_angle);
                let point_covered = !set.is_empty();
                let (largest_gap, gap_center) = largest_gap(&set);
                PoiViewStatus {
                    poi: poi.id,
                    point_covered,
                    aspect: set.measure(),
                    full_view: set.is_full(),
                    largest_gap,
                    gap_center,
                }
            })
            .collect();
        FullViewReport { per_poi }
    }

    /// Number of full-view covered PoIs.
    #[must_use]
    pub fn full_view_count(&self) -> usize {
        self.per_poi.iter().filter(|s| s.full_view).count()
    }

    /// Number of point-covered PoIs.
    #[must_use]
    pub fn point_covered_count(&self) -> usize {
        self.per_poi.iter().filter(|s| s.point_covered).count()
    }

    /// PoIs sorted by how much aspect is still missing (most incomplete
    /// first) — a tasking priority list for the command center.
    #[must_use]
    pub fn tasking_priorities(&self) -> Vec<&PoiViewStatus> {
        let mut covered: Vec<&PoiViewStatus> =
            self.per_poi.iter().filter(|s| !s.full_view).collect();
        covered.sort_by(|a, b| a.aspect.total_cmp(&b.aspect).then(a.poi.cmp(&b.poi)));
        covered
    }
}

/// The widest uncovered gap of a covered-aspect set: `(width, center)`.
fn largest_gap(set: &ArcSet) -> (f64, Angle) {
    let holes = set.complement();
    let mut best = (0.0, Angle::ZERO);
    // Merge the wrap-around pair (last interval ending at 2π + first
    // starting at 0) into one gap.
    let intervals: Vec<(f64, f64)> = holes.iter().collect();
    if intervals.is_empty() {
        return best;
    }
    let wraps = intervals.first().is_some_and(|f| f.0 <= 1e-12)
        && intervals.last().is_some_and(|l| l.1 >= TAU - 1e-12)
        && intervals.len() > 1;
    let n = intervals.len();
    for (i, &(lo, hi)) in intervals.iter().enumerate() {
        if wraps && i == 0 {
            continue; // handled together with the last interval
        }
        let (width, center) = if wraps && i == n - 1 {
            let first = intervals[0];
            let width = (hi - lo) + (first.1 - first.0);
            (width, Angle::from_radians(lo + width / 2.0))
        } else {
            ((hi - lo), Angle::from_radians((lo + hi) / 2.0))
        };
        if width > best.0 {
            best = (width, center);
        }
    }
    best
}

/// Greedily selects a minimal subset of `metas` achieving the same
/// coverage as the full collection; returns indices into `metas` in
/// selection order.
///
/// This is the standard set-cover greedy on the lexicographic coverage
/// objective; the result is within `1 + ln n` of the true minimum.
#[must_use]
pub fn minimal_cover(pois: &PoiList, metas: &[PhotoMeta], params: CoverageParams) -> Vec<usize> {
    let mut profile = CoverageProfile::new(pois, params);
    let mut chosen = Vec::new();
    let mut used = vec![false; metas.len()];
    loop {
        let mut best: Option<(Coverage, usize)> = None;
        for (i, meta) in metas.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = profile.gain_of(meta);
            if gain <= Coverage::ZERO {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bg, _)) => gain > *bg,
            };
            if better {
                best = Some((gain, i));
            }
        }
        let Some((_, i)) = best else { break };
        profile.add(&metas[i]);
        used[i] = true;
        chosen.push(i);
    }
    chosen
}

/// Total pairwise aspect overlap in the collection, in degrees: the sum
/// of every photo's would-be contribution minus the union — 0 for a
/// perfectly complementary set.
///
/// The paper's Fig. 8 discussion estimates this at ~12° for the photos
/// our scheme delivers (3.2 photos per PoI covering ~180°).
#[must_use]
pub fn redundancy_degrees(pois: &PoiList, metas: &[PhotoMeta], params: CoverageParams) -> f64 {
    let mut standalone_sum = 0.0;
    for poi in pois {
        let mut union = ArcSet::new();
        for meta in metas {
            if let Some(arc) = meta.aspect_arc(poi, params.effective_angle) {
                standalone_sum += poi.weight * ArcSet::from_arc(arc).measure();
                union.insert(arc);
            }
        }
        standalone_sum -= poi.weight * union.measure();
    }
    standalone_sum.to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Poi;
    use photodtn_geo::Point;

    fn one_poi() -> PoiList {
        PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))])
    }

    fn shot(deg: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(deg);
        PhotoMeta::new(
            Point::new(0.0, 0.0).offset(dir, 50.0),
            80.0,
            Angle::from_degrees(40.0),
            dir + Angle::PI,
        )
    }

    #[test]
    fn report_uncovered_poi() {
        let report = FullViewReport::analyze(&one_poi(), [], CoverageParams::default());
        let s = &report.per_poi[0];
        assert!(!s.point_covered);
        assert!(!s.full_view);
        assert_eq!(s.aspect, 0.0);
        assert!((s.largest_gap - TAU).abs() < 1e-9);
        assert_eq!(report.full_view_count(), 0);
        assert_eq!(report.point_covered_count(), 0);
    }

    #[test]
    fn report_partial_coverage_and_gap() {
        // One photo from the east covers aspects around 0° (±30°); the
        // gap is centered opposite, at 180°.
        let metas = [shot(0.0)];
        let report = FullViewReport::analyze(&one_poi(), metas.iter(), CoverageParams::default());
        let s = &report.per_poi[0];
        assert!(s.point_covered);
        assert!(!s.full_view);
        assert!((s.aspect.to_degrees() - 60.0).abs() < 1e-6);
        assert!((s.largest_gap.to_degrees() - 300.0).abs() < 1e-6);
        assert!(s.gap_center.separation(Angle::PI).to_degrees() < 1.0);
    }

    #[test]
    fn report_full_view() {
        let metas: Vec<PhotoMeta> = (0..12).map(|k| shot(k as f64 * 30.0)).collect();
        let report = FullViewReport::analyze(&one_poi(), metas.iter(), CoverageParams::default());
        let s = &report.per_poi[0];
        assert!(s.full_view);
        assert_eq!(s.largest_gap, 0.0);
        assert_eq!(report.full_view_count(), 1);
    }

    #[test]
    fn wrapping_gap_merged() {
        // Cover only aspects around 180°: the gap wraps through 0°.
        let metas = [shot(180.0)];
        let report = FullViewReport::analyze(&one_poi(), metas.iter(), CoverageParams::default());
        let s = &report.per_poi[0];
        assert!((s.largest_gap.to_degrees() - 300.0).abs() < 1e-6);
        assert!(s.gap_center.separation(Angle::ZERO).to_degrees() < 1.0);
    }

    #[test]
    fn tasking_priorities_sorted_by_need() {
        let pois = PoiList::new(vec![
            Poi::new(0, Point::new(0.0, 0.0)),
            Poi::new(1, Point::new(1000.0, 0.0)),
        ]);
        // PoI 0 gets two views, PoI 1 none
        let metas = [shot(0.0), shot(90.0)];
        let report = FullViewReport::analyze(&pois, metas.iter(), CoverageParams::default());
        let prio = report.tasking_priorities();
        assert_eq!(prio.len(), 2);
        assert_eq!(prio[0].poi, PoiId(1)); // most incomplete first
    }

    #[test]
    fn minimal_cover_drops_redundant_photos() {
        // 3 distinct views + 3 duplicates → minimal cover has 3 photos.
        let metas = vec![
            shot(0.0),
            shot(0.0),
            shot(120.0),
            shot(120.0),
            shot(240.0),
            shot(240.0),
        ];
        let pois = one_poi();
        let params = CoverageParams::default();
        let chosen = minimal_cover(&pois, &metas, params);
        assert_eq!(chosen.len(), 3);
        let sub: Vec<PhotoMeta> = chosen.iter().map(|&i| metas[i]).collect();
        let full = Coverage::of(&pois, metas.iter(), params);
        let min = Coverage::of(&pois, sub.iter(), params);
        assert_eq!(full, min);
    }

    #[test]
    fn minimal_cover_of_empty_is_empty() {
        assert!(minimal_cover(&one_poi(), &[], CoverageParams::default()).is_empty());
        // photos that cover nothing are never selected
        let junk = [PhotoMeta::new(
            Point::new(5000.0, 5000.0),
            50.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        )];
        assert!(minimal_cover(&one_poi(), &junk, CoverageParams::default()).is_empty());
    }

    #[test]
    fn redundancy_zero_for_disjoint_views() {
        let pois = one_poi();
        let params = CoverageParams::default();
        let disjoint = [shot(0.0), shot(90.0), shot(180.0)];
        assert!(redundancy_degrees(&pois, &disjoint, params).abs() < 1e-6);
        // a duplicated view is 100 % redundant: 60° of overlap
        let dup = [shot(0.0), shot(0.0)];
        assert!((redundancy_degrees(&pois, &dup, params) - 60.0).abs() < 1e-6);
    }
}
