//! Property tests for the full-view analysis module: report quantities
//! must be mutually consistent, and the greedy minimal cover must always
//! achieve the full collection's coverage with no redundant member.

use photodtn_coverage::fullview::{minimal_cover, redundancy_degrees, FullViewReport};
use photodtn_coverage::{Coverage, CoverageParams, PhotoMeta};
use photodtn_coverage::{Poi, PoiList};
use photodtn_geo::{Angle, Point, TAU};
use proptest::prelude::*;

fn pois() -> PoiList {
    PoiList::new(vec![
        Poi::new(0, Point::new(0.0, 0.0)),
        Poi::new(1, Point::new(400.0, 0.0)),
        Poi::new(2, Point::new(0.0, 400.0)),
    ])
}

fn arb_metas() -> impl Strategy<Value = Vec<PhotoMeta>> {
    prop::collection::vec(
        (
            -100.0..500.0f64,
            -100.0..500.0f64,
            30.0..60.0f64,
            0.0..360.0f64,
            60.0..160.0f64,
        ),
        0..14,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, fov, dir, r)| {
                PhotoMeta::new(
                    Point::new(x, y),
                    r,
                    Angle::from_degrees(fov),
                    Angle::from_degrees(dir),
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn report_is_internally_consistent(metas in arb_metas()) {
        let pois = pois();
        let params = CoverageParams::default();
        let report = FullViewReport::analyze(&pois, metas.iter(), params);
        prop_assert_eq!(report.per_poi.len(), pois.len());
        for s in &report.per_poi {
            prop_assert!((0.0..=TAU + 1e-9).contains(&s.aspect));
            // largest gap ≤ total uncovered measure
            let uncovered = TAU - s.aspect;
            prop_assert!(s.largest_gap <= uncovered + 1e-6,
                "gap {} > uncovered {}", s.largest_gap, uncovered);
            if s.full_view {
                prop_assert!(s.point_covered);
                prop_assert!(s.largest_gap < 1e-6);
            }
            if !s.point_covered {
                prop_assert!(s.aspect < 1e-9);
                prop_assert!((s.largest_gap - TAU).abs() < 1e-6);
            }
        }
        prop_assert!(report.full_view_count() <= report.point_covered_count());
        // tasking priorities exclude full-view PoIs and are sorted
        let prio = report.tasking_priorities();
        for w in prio.windows(2) {
            prop_assert!(w[0].aspect <= w[1].aspect + 1e-12);
        }
        prop_assert_eq!(prio.len(), pois.len() - report.full_view_count());
    }

    #[test]
    fn minimal_cover_achieves_full_coverage(metas in arb_metas()) {
        let pois = pois();
        let params = CoverageParams::default();
        let chosen = minimal_cover(&pois, &metas, params);
        // no duplicates, all indices valid
        let mut seen = std::collections::BTreeSet::new();
        for &i in &chosen {
            prop_assert!(i < metas.len());
            prop_assert!(seen.insert(i));
        }
        let sub: Vec<PhotoMeta> = chosen.iter().map(|&i| metas[i]).collect();
        let full = Coverage::of(&pois, metas.iter(), params);
        let min = Coverage::of(&pois, sub.iter(), params);
        prop_assert!((full.point - min.point).abs() < 1e-9);
        prop_assert!((full.aspect - min.aspect).abs() < 1e-6);
        // every chosen photo is load-bearing: the greedy only picks
        // positive-gain photos, so |chosen| ≤ photos with any coverage
        let useful = metas.iter().filter(|m| {
            pois.iter().any(|p| m.covers(p))
        }).count();
        prop_assert!(chosen.len() <= useful);
    }

    #[test]
    fn redundancy_nonnegative_and_zero_for_singletons(metas in arb_metas()) {
        let pois = pois();
        let params = CoverageParams::default();
        let r = redundancy_degrees(&pois, &metas, params);
        prop_assert!(r >= -1e-6, "negative redundancy {r}");
        if metas.len() <= 1 {
            prop_assert!(r.abs() < 1e-9);
        }
        // duplicating the whole collection adds exactly the collection's
        // own aspect mass to the redundancy
        let mut doubled = metas.clone();
        doubled.extend(metas.iter().copied());
        let r2 = redundancy_degrees(&pois, &doubled, params);
        prop_assert!(r2 + 1e-6 >= r);
    }
}
