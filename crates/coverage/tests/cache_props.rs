//! Property tests for [`CoverageTableCache`]: a cached table must be
//! indistinguishable from a freshly built one for arbitrary photo/PoI
//! sets, under arbitrary (including adversarially small) capacity bounds,
//! and the hit/miss/eviction counters must follow directly from the
//! lookup sequence.

use photodtn_coverage::{
    CoverageParams, CoverageTableCache, PhotoCoverage, PhotoId, PhotoMeta, Poi, PoiList,
};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;

fn arb_pois() -> impl Strategy<Value = PoiList> {
    prop::collection::vec((-800.0..800.0f64, -800.0..800.0f64, 0.1..3.0f64), 0..40).prop_map(
        |pts| {
            PoiList::new(
                pts.into_iter()
                    .enumerate()
                    .map(|(i, (x, y, w))| Poi::with_weight(i as u32, Point::new(x, y), w))
                    .collect(),
            )
        },
    )
}

fn arb_meta() -> impl Strategy<Value = PhotoMeta> {
    (
        -900.0..900.0f64,
        -900.0..900.0f64,
        1.0..359.0f64,
        0.0..360.0f64,
        0.0..500.0f64,
    )
        .prop_map(|(x, y, fov, dir, r)| {
            PhotoMeta::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The core correctness property behind using the cache on the
    // simulation hot path: for any lookup sequence (with repeats) and any
    // capacity, `get_or_build` returns exactly `PhotoCoverage::build`.
    #[test]
    fn cached_tables_equal_fresh_builds(
        pois in arb_pois(),
        metas in prop::collection::vec(arb_meta(), 1..20),
        lookups in prop::collection::vec(0..20usize, 1..60),
        capacity in 0..8usize,
    ) {
        let params = CoverageParams::default();
        let mut cache = CoverageTableCache::new(capacity);
        for idx in lookups {
            let i = idx % metas.len();
            let m = &metas[i];
            let cached = cache.get_or_build(PhotoId(i as u64), m, &pois, params);
            let fresh = PhotoCoverage::build(m, &pois, params);
            prop_assert_eq!(&*cached, &fresh);
        }
    }

    // Counters are an exact function of the lookup sequence: every lookup
    // is a hit or a miss, the cache never exceeds its capacity, and with
    // enough capacity only first-time lookups miss.
    #[test]
    fn counters_and_bound_are_exact(
        pois in arb_pois(),
        metas in prop::collection::vec(arb_meta(), 1..12),
        lookups in prop::collection::vec(0..12usize, 1..80),
        capacity in 1..6usize,
    ) {
        let params = CoverageParams::default();
        let mut cache = CoverageTableCache::new(capacity);
        for (n, idx) in lookups.iter().enumerate() {
            let i = idx % metas.len();
            cache.get_or_build(PhotoId(i as u64), &metas[i], &pois, params);
            let s = cache.stats();
            prop_assert_eq!(s.hits + s.misses, n as u64 + 1);
            prop_assert!(cache.len() <= capacity);
            // evicted = stored - retained; everything missed was stored
            prop_assert_eq!(s.evictions, s.misses - cache.len() as u64);
        }

        // With capacity for every photo, replaying the same sequence
        // misses exactly once per distinct id.
        let mut roomy = CoverageTableCache::new(metas.len());
        for idx in &lookups {
            let i = idx % metas.len();
            roomy.get_or_build(PhotoId(i as u64), &metas[i], &pois, params);
        }
        let distinct = {
            let mut ids: Vec<usize> = lookups.iter().map(|i| i % metas.len()).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as u64
        };
        prop_assert_eq!(roomy.stats().misses, distinct);
        prop_assert_eq!(roomy.stats().evictions, 0);
    }
}
