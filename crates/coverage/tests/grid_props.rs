//! Property tests for the coverage index: the sector-scoped spatial-grid
//! query behind [`PhotoCoverage`] must return *exactly* the PoIs the
//! brute-force [`PhotoMeta::covers`] test accepts, in the same order as
//! [`PhotoMeta::covered_pois`], with identical aspect arcs. Selection
//! determinism rests on this equivalence.

use photodtn_coverage::{
    matches_linear_scan, CoverageParams, PhotoCoverage, PhotoMeta, Poi, PoiList,
};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;

/// Random PoI clouds of varying density: clustered enough that grid cells
/// hold several PoIs, spread enough that many cells are empty.
fn arb_pois() -> impl Strategy<Value = PoiList> {
    prop::collection::vec((-800.0..800.0f64, -800.0..800.0f64, 0.1..3.0f64), 0..60).prop_map(
        |pts| {
            PoiList::new(
                pts.into_iter()
                    .enumerate()
                    .map(|(i, (x, y, w))| Poi::with_weight(i as u32, Point::new(x, y), w))
                    .collect(),
            )
        },
    )
}

fn arb_meta() -> impl Strategy<Value = PhotoMeta> {
    (
        -900.0..900.0f64,
        -900.0..900.0f64,
        1.0..359.0f64,
        0.0..360.0f64,
        0.0..500.0f64,
    )
        .prop_map(|(x, y, fov, dir, r)| {
            PhotoMeta::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn grid_query_equals_brute_force_set(pois in arb_pois(), meta in arb_meta()) {
        let cov = PhotoCoverage::build(&meta, &pois, CoverageParams::default());
        prop_assert!(
            matches_linear_scan(&cov, &meta, &pois),
            "indexed {:?} != brute-force {:?}",
            cov.pois().collect::<Vec<_>>(),
            pois.iter().filter(|p| meta.covers(p)).map(|p| p.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_query_preserves_scan_order_and_arcs(pois in arb_pois(), meta in arb_meta()) {
        let params = CoverageParams::default();
        let cov = PhotoCoverage::build(&meta, &pois, params);
        let scan: Vec<_> = meta
            .covered_pois(&pois)
            .map(|p| (p.id, p.weight, meta.aspect_arc(p, params.effective_angle).unwrap()))
            .collect();
        let indexed: Vec<_> = cov.entries().iter().map(|e| (e.poi, e.weight, e.arc)).collect();
        prop_assert_eq!(indexed, scan);
    }

    #[test]
    fn weights_and_flags_consistent(pois in arb_pois(), meta in arb_meta()) {
        let cov = PhotoCoverage::build(&meta, &pois, CoverageParams::default());
        prop_assert_eq!(cov.len(), cov.entries().len());
        #[allow(clippy::len_zero)]
        {
            prop_assert_eq!(cov.is_empty(), cov.len() == 0);
        }
        for e in cov.entries() {
            prop_assert!(cov.covers(e.poi));
            prop_assert_eq!(e.weight, pois[e.poi].weight);
        }
    }
}
