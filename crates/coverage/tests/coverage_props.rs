//! Property-based tests for the coverage model: the incremental
//! [`CoverageProfile`] must agree with batch [`Coverage::of`], and coverage
//! must obey monotone-submodular structure (the justification for the
//! greedy selection algorithm in the paper).

use photodtn_coverage::{Coverage, CoverageParams, CoverageProfile, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;

fn arb_meta() -> impl Strategy<Value = PhotoMeta> {
    (
        0.0..1000.0f64,
        0.0..1000.0f64,
        30.0..60.0f64,
        0.0..360.0f64,
        50.0..100.0f64,
    )
        .prop_map(|(x, y, fov, dir, c)| {
            PhotoMeta::with_derived_range(
                Point::new(x, y),
                c,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            )
        })
}

fn arb_metas() -> impl Strategy<Value = Vec<PhotoMeta>> {
    prop::collection::vec(arb_meta(), 0..12)
}

fn grid_pois() -> PoiList {
    PoiList::new(
        (0..25)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(
                        (i % 5) as f64 * 200.0 + 100.0,
                        (i / 5) as f64 * 200.0 + 100.0,
                    ),
                )
            })
            .collect(),
    )
}

const EPS: f64 = 1e-6;

proptest! {
    #[test]
    fn profile_total_matches_batch(metas in arb_metas()) {
        let pois = grid_pois();
        let params = CoverageParams::default();
        let profile = CoverageProfile::with_photos(&pois, params, metas.iter());
        let batch = Coverage::of(&pois, metas.iter(), params);
        prop_assert!((profile.total().point - batch.point).abs() < EPS);
        prop_assert!((profile.total().aspect - batch.aspect).abs() < EPS);
        // and the incremental bookkeeping is self-consistent
        let re = profile.recompute_total();
        prop_assert!((profile.total().point - re.point).abs() < EPS);
        prop_assert!((profile.total().aspect - re.aspect).abs() < EPS);
    }

    #[test]
    fn coverage_is_monotone(metas in arb_metas(), extra in arb_meta()) {
        let pois = grid_pois();
        let params = CoverageParams::default();
        let base = Coverage::of(&pois, metas.iter(), params);
        let mut more = metas.clone();
        more.push(extra);
        let bigger = Coverage::of(&pois, more.iter(), params);
        prop_assert!(bigger.point + EPS >= base.point);
        prop_assert!(bigger.aspect + EPS >= base.aspect);
    }

    #[test]
    fn marginal_gain_is_diminishing(metas in arb_metas(), extra in arb_meta()) {
        // Submodularity: gain of `extra` on a subset ≥ gain on the full set.
        let pois = grid_pois();
        let params = CoverageParams::default();
        let half = &metas[..metas.len() / 2];
        let small = CoverageProfile::with_photos(&pois, params, half.iter());
        let large = CoverageProfile::with_photos(&pois, params, metas.iter());
        let g_small = small.gain_of(&extra);
        let g_large = large.gain_of(&extra);
        prop_assert!(g_small.point + EPS >= g_large.point);
        prop_assert!(g_small.aspect + EPS >= g_large.aspect);
    }

    #[test]
    fn order_does_not_matter(metas in arb_metas()) {
        let pois = grid_pois();
        let params = CoverageParams::default();
        let forward = CoverageProfile::with_photos(&pois, params, metas.iter());
        let backward = CoverageProfile::with_photos(&pois, params, metas.iter().rev());
        prop_assert!((forward.total().point - backward.total().point).abs() < EPS);
        prop_assert!((forward.total().aspect - backward.total().aspect).abs() < EPS);
    }

    #[test]
    fn aspect_bounded_by_point(metas in arb_metas()) {
        // Each covered PoI contributes at most 2π aspect; uncovered PoIs
        // contribute none. So aspect ≤ 2π · point (all weights 1 here).
        let pois = grid_pois();
        let c = Coverage::of(&pois, metas.iter(), CoverageParams::default());
        prop_assert!(c.aspect <= std::f64::consts::TAU * c.point + EPS);
        prop_assert!(c.point <= pois.len() as f64);
    }

    #[test]
    fn gain_preview_equals_commit(metas in arb_metas(), extra in arb_meta()) {
        let pois = grid_pois();
        let params = CoverageParams::default();
        let mut p = CoverageProfile::with_photos(&pois, params, metas.iter());
        let preview = p.gain_of(&extra);
        let actual = p.add(&extra);
        prop_assert!((preview.point - actual.point).abs() < EPS);
        prop_assert!((preview.aspect - actual.aspect).abs() < EPS);
    }
}
