//! Property tests for the batched (SIMD-prefiltered) coverage build: it
//! must be **bit-for-bit identical** to the scalar reference path on any
//! world — same PoIs, same order, same `f64` arc endpoints — because the
//! determinism dumps and every bitwise selection pin rest on that
//! equality. Also pins the prefilter's one-sided contract directly: it
//! may keep extra candidates, never drop a covered one.

use photodtn_coverage::batch::{sector_prefilter, SectorKernel};
use photodtn_coverage::{CoverageParams, PhotoCoverage, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;

/// Worlds up to metropolitan scale (±10⁶ m): the conservative `f32`
/// slack margins of the prefilter are derived for this coordinate range.
fn arb_world(scale: f64) -> impl Strategy<Value = (PoiList, Vec<PhotoMeta>)> {
    let pois = prop::collection::vec((-scale..scale, -scale..scale, 0.1..3.0f64), 0..60);
    let metas = prop::collection::vec(
        (
            -scale..scale,
            -scale..scale,
            0.0..360.0f64,
            0.0..360.0f64,
            0.0..500.0f64,
        ),
        1..8,
    );
    (pois, metas).prop_map(|(pts, shots)| {
        let pois = PoiList::new(
            pts.into_iter()
                .enumerate()
                .map(|(i, (x, y, w))| Poi::with_weight(i as u32, Point::new(x, y), w))
                .collect(),
        );
        let metas = shots
            .into_iter()
            .map(|(x, y, fov, dir, r)| {
                PhotoMeta::new(
                    Point::new(x, y),
                    r,
                    Angle::from_degrees(fov),
                    Angle::from_degrees(dir),
                )
            })
            .collect();
        (pois, metas)
    })
}

fn assert_builds_identical(pois: &PoiList, metas: &[PhotoMeta]) -> Result<(), TestCaseError> {
    let params = CoverageParams::default();
    for meta in metas {
        let batched = PhotoCoverage::build(meta, pois, params);
        let scalar = PhotoCoverage::build_scalar(meta, pois, params);
        prop_assert_eq!(
            batched.len(),
            scalar.len(),
            "entry counts diverged for {:?}",
            meta
        );
        for (b, s) in batched.entries().iter().zip(scalar.entries()) {
            prop_assert_eq!(b.poi, s.poi);
            prop_assert_eq!(b.weight.to_bits(), s.weight.to_bits());
            prop_assert_eq!(
                b.arc.start().radians().to_bits(),
                s.arc.start().radians().to_bits(),
                "arc start not bit-identical at poi {:?}",
                b.poi
            );
            prop_assert_eq!(b.arc.width().to_bits(), s.arc.width().to_bits());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn batched_build_bit_identical_to_scalar((pois, metas) in arb_world(900.0)) {
        assert_builds_identical(&pois, &metas)?;
    }

    #[test]
    fn batched_build_bit_identical_at_large_coordinates((pois, metas) in arb_world(1e6)) {
        // The f32 lanes lose precision out here; the conservative slack
        // must absorb it so the exact f64 re-test still sees every
        // candidate.
        assert_builds_identical(&pois, &metas)?;
    }

    #[test]
    fn prefilter_never_drops_a_covered_candidate(
        (pois, metas) in arb_world(900.0),
    ) {
        // The one-sided contract, tested against the exact sector test
        // directly (not through the grid): keep[i] == 0 implies the exact
        // test rejects too.
        for meta in &metas {
            let sector = meta.sector();
            let kernel = SectorKernel::new(&sector);
            let xs: Vec<f32> = pois.iter().map(|p| p.location.x as f32).collect();
            let ys: Vec<f32> = pois.iter().map(|p| p.location.y as f32).collect();
            let mut keep = vec![0u8; xs.len()];
            sector_prefilter(&kernel, &xs, &ys, &mut keep);
            for (p, &k) in pois.iter().zip(&keep) {
                if sector.contains(p.location) {
                    prop_assert!(
                        k != 0,
                        "prefilter dropped covered PoI {:?} of {:?}",
                        p.id, meta
                    );
                }
            }
        }
    }
}
