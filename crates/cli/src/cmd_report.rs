//! `photodtn report FILE…` — consolidates the `JSON [...]` blocks emitted
//! by the figure binaries into one markdown summary table.

use crate::args::{Flags, Spec};

/// `--faults` is a toggle here (extra fault-counter columns), unlike
/// `run --faults K` where it takes an intensity value. `--perf` adds
/// wall-clock/cache columns from `run --perf --json` output.
const SPEC: Spec = Spec {
    values: &[],
    switches: &["faults", "perf"],
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &SPEC)?;
    if flags.positionals().is_empty() {
        return Err("report: pass one or more result files (e.g. results/fig5.txt)".into());
    }
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for path in flags.positionals() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        rows.extend(extract_rows(&text));
    }
    if rows.is_empty() {
        return Err("report: no JSON blocks found in the given files".into());
    }
    print!(
        "{}",
        render_markdown(&rows, flags.has("faults"), flags.has("perf"))
    );
    Ok(())
}

/// Pulls every `JSON [ … ]` block out of a figure binary's output.
///
/// The end of a block is found by bracket balance, tracking JSON string
/// and escape state so brackets *inside* string values (a scheme named
/// `"ours[v2]"`, a trace path with `{}`) don't unbalance the scan.
fn extract_rows(text: &str) -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("JSON ") {
        let tail = &rest[pos + 5..];
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        let mut end = None;
        for (i, c) in tail.char_indices() {
            if in_string {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '[' | '{' => depth += 1,
                ']' | '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        if let Ok(serde_json::Value::Array(items)) = serde_json::from_str(&tail[..end]) {
            rows.extend(items);
        }
        rest = &tail[end..];
    }
    rows
}

/// Fault-counter keys emitted by `run --faults … --json`; folded into
/// dedicated columns with `report --faults`, hidden otherwise.
const FAULT_KEYS: [&str; 5] = [
    "contacts_interrupted",
    "transfers_lost",
    "transfers_corrupt",
    "node_crashes",
    "uplinks_degraded",
];

/// Performance keys emitted by `run --perf --json`; folded into dedicated
/// columns with `report --perf`, hidden otherwise.
const PERF_KEYS: [&str; 6] = [
    "wall_seconds",
    "events",
    "events_per_sec",
    "cache_hits",
    "cache_misses",
    "cache_hit_rate",
];

fn render_markdown(rows: &[serde_json::Value], show_faults: bool, show_perf: bool) -> String {
    let mut out = String::new();
    let mut header =
        String::from("| figure | trace | scheme | parameters | point % | aspect ° | delivered |");
    let mut rule = String::from("|---|---|---|---|---|---|---|");
    if show_faults {
        header.push_str(" interrupted | lost | corrupt | crashes | degraded |");
        rule.push_str("---|---|---|---|---|");
    }
    if show_perf {
        header.push_str(" wall s | events/s | cache hit % |");
        rule.push_str("---|---|---|");
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        let get_s = |k: &str| {
            row.get(k)
                .and_then(|v| v.as_str())
                .unwrap_or("—")
                .to_string()
        };
        let get_f = |k: &str| row.get(k).and_then(serde_json::Value::as_f64);
        // parameters: any keys beyond the standard set
        let standard = [
            "figure",
            "trace",
            "scheme",
            "runs",
            "point_coverage",
            "aspect_coverage_deg",
            "delivered_photos",
            "ablation",
        ];
        let params: Vec<String> = row
            .as_object()
            .map(|o| {
                o.iter()
                    .filter(|(k, _)| {
                        !standard.contains(&k.as_str())
                            && !FAULT_KEYS.contains(&k.as_str())
                            && !PERF_KEYS.contains(&k.as_str())
                    })
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect()
            })
            .unwrap_or_default();
        let mut line = format!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            row.get("figure")
                .and_then(|v| v.as_str())
                .map_or_else(|| get_s("ablation"), String::from),
            get_s("trace"),
            get_s("scheme"),
            if params.is_empty() {
                "—".to_string()
            } else {
                params.join(", ")
            },
            get_f("point_coverage").map_or("—".into(), |v| format!("{:.1}", 100.0 * v)),
            get_f("aspect_coverage_deg").map_or("—".into(), |v| format!("{v:.1}")),
            row.get("delivered_photos")
                .and_then(serde_json::Value::as_f64)
                .map_or("—".into(), |v| format!("{v:.0}")),
        );
        if show_faults {
            for key in FAULT_KEYS {
                let cell = get_f(key).map_or("—".into(), |v| format!("{v:.0}"));
                line.push_str(&format!(" {cell} |"));
            }
        }
        if show_perf {
            let wall = get_f("wall_seconds").map_or("—".into(), |v| format!("{v:.3}"));
            let eps = get_f("events_per_sec").map_or("—".into(), |v| format!("{v:.0}"));
            let hit = get_f("cache_hit_rate").map_or("—".into(), |v| format!("{:.1}", 100.0 * v));
            line.push_str(&format!(" {wall} | {eps} | {hit} |"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
some narration
JSON [
  {
    "figure": "fig5",
    "trace": "mit",
    "scheme": "ours",
    "runs": 3,
    "point_coverage": 0.95,
    "aspect_coverage_deg": 180.5,
    "delivered_photos": 1234
  }
]
trailing text
JSON [
  { "ablation": "p_thld", "p_thld": 0.8, "point_coverage": 1.0,
    "aspect_coverage_deg": 343.0, "delivered_photos": 2332, "runs": 2 }
]
"#;

    #[test]
    fn extracts_multiple_blocks() {
        let rows = extract_rows(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["scheme"], "ours");
        assert_eq!(rows[1]["ablation"], "p_thld");
    }

    #[test]
    fn brackets_inside_string_values_do_not_truncate_the_block() {
        // Regression: the old scanner counted brackets inside JSON
        // strings, so a `]` in a value ended the block early and the
        // whole array failed to parse.
        const TRICKY: &str = r#"JSON [
  { "figure": "fig5", "trace": "paths/{mit}.trace", "scheme": "ours[v2]",
    "note": "closes ] then } and escapes \" fine",
    "point_coverage": 0.5, "aspect_coverage_deg": 90.0,
    "delivered_photos": 10 }
]"#;
        let rows = extract_rows(TRICKY);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["scheme"], "ours[v2]");
        assert_eq!(rows[0]["trace"], "paths/{mit}.trace");
    }

    #[test]
    fn escaped_quote_at_end_of_string_keeps_state() {
        // `"a\""` — the escaped quote must not close the string early,
        // and the real closing quote must.
        const ESCAPES: &str = r#"JSON [
  { "figure": "f", "trace": "a\"]b", "scheme": "s", "point_coverage": 0.1,
    "aspect_coverage_deg": 1.0, "delivered_photos": 1 }
]"#;
        let rows = extract_rows(ESCAPES);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["trace"], "a\"]b");
    }

    #[test]
    fn report_command_roundtrip() {
        let dir = std::env::temp_dir().join("photodtn-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.txt");
        std::fs::write(&path, SAMPLE).unwrap();
        run(&[path.to_str().unwrap().to_string()]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn golden_plain_table() {
        let rows = extract_rows(SAMPLE);
        let got = render_markdown(&rows, false, false);
        let want = "\
| figure | trace | scheme | parameters | point % | aspect ° | delivered |
|---|---|---|---|---|---|---|
| fig5 | mit | ours | — | 95.0 | 180.5 | 1234 |
| p_thld | — | — | p_thld=0.8 | 100.0 | 343.0 | 2332 |
";
        assert_eq!(got, want);
    }

    #[test]
    fn golden_faults_table() {
        const FAULTED: &str = r#"JSON [
  { "figure": "chaos", "trace": "mit", "scheme": "ours", "point_coverage": 0.5,
    "aspect_coverage_deg": 90.0, "delivered_photos": 10,
    "fault_intensity": 0.6, "transfers_lost": 12, "node_crashes": 3 }
]"#;
        let rows = extract_rows(FAULTED);
        let got = render_markdown(&rows, true, false);
        let want = "\
| figure | trace | scheme | parameters | point % | aspect ° | delivered | interrupted | lost | corrupt | crashes | degraded |
|---|---|---|---|---|---|---|---|---|---|---|---|
| chaos | mit | ours | fault_intensity=0.6 | 50.0 | 90.0 | 10 | — | 12 | — | 3 | — |
";
        assert_eq!(got, want);
    }

    #[test]
    fn golden_perf_table() {
        const PERF: &str = r#"JSON [
  { "figure": "bench", "trace": "mit", "scheme": "ours", "point_coverage": 0.5,
    "aspect_coverage_deg": 90.0, "delivered_photos": 10,
    "wall_seconds": 1.25, "events": 1000, "events_per_sec": 800.0,
    "cache_hits": 90, "cache_misses": 10, "cache_hit_rate": 0.9 }
]"#;
        let rows = extract_rows(PERF);
        let got = render_markdown(&rows, false, true);
        let want = "\
| figure | trace | scheme | parameters | point % | aspect ° | delivered | wall s | events/s | cache hit % |
|---|---|---|---|---|---|---|---|---|---|
| bench | mit | ours | — | 50.0 | 90.0 | 10 | 1.250 | 800 | 90.0 |
";
        assert_eq!(got, want);
    }

    #[test]
    fn fault_columns_toggle() {
        const FAULTED: &str = r#"JSON [
  { "figure": "chaos", "trace": "mit", "scheme": "ours", "point_coverage": 0.5,
    "aspect_coverage_deg": 90.0, "delivered_photos": 10,
    "fault_intensity": 0.6, "transfers_lost": 12, "node_crashes": 3 }
]"#;
        let dir = std::env::temp_dir().join("photodtn-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulted.txt");
        std::fs::write(&path, FAULTED).unwrap();
        let arg = path.to_str().unwrap().to_string();
        // both with and without the toggle must render
        run(std::slice::from_ref(&arg)).unwrap();
        run(&["--faults".to_string(), arg]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn perf_columns_toggle() {
        const PERF: &str = r#"JSON [
  { "figure": "bench", "trace": "mit", "scheme": "ours", "point_coverage": 0.5,
    "aspect_coverage_deg": 90.0, "delivered_photos": 10,
    "wall_seconds": 1.25, "events": 1000, "events_per_sec": 800.0,
    "cache_hits": 90, "cache_misses": 10, "cache_hit_rate": 0.9 }
]"#;
        let dir = std::env::temp_dir().join("photodtn-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.txt");
        std::fs::write(&path, PERF).unwrap();
        let arg = path.to_str().unwrap().to_string();
        // both with and without the toggle must render
        run(std::slice::from_ref(&arg)).unwrap();
        run(&["--perf".to_string(), arg]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_and_empty_input_error() {
        assert!(run(&[]).is_err());
        assert!(run(&["/nonexistent/x.txt".to_string()]).is_err());
        let dir = std::env::temp_dir().join("photodtn-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.txt");
        std::fs::write(&path, "no json here").unwrap();
        assert!(run(&[path.to_str().unwrap().to_string()]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = run(&["--fautls".to_string(), "x.txt".to_string()]).unwrap_err();
        assert!(err.contains("unknown flag --fautls"), "{err}");
        assert!(err.contains("did you mean --faults?"), "{err}");
    }
}
