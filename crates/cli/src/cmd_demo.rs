//! `photodtn demo` — the §IV-B prototype demonstration.

use photodtn_bench::demo::DemoWorld;
use photodtn_schemes::{OurScheme, PhotoNet, SprayAndWait};
use photodtn_sim::Scheme;

use crate::args::{Flags, Spec};

const SPEC: Spec = Spec {
    values: &["seed"],
    switches: &[],
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &SPEC)?;
    let seed: u64 = flags.num("seed", 2016)?;
    let world = DemoWorld::build(seed);

    println!(
        "church demo (seed {seed}): {} demo contacts, {} command-center visits, 40 photos",
        world.recent.len(),
        world.upload_contacts()
    );
    println!(
        "\n{:<12} {:>18} {:>22}",
        "scheme", "photos delivered", "church aspect covered"
    );
    let mut schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(OurScheme::new()),
        Box::new(PhotoNet::new()),
        Box::new(SprayAndWait::new()),
    ];
    for scheme in &mut schemes {
        let (_, delivered) = world.run(scheme.as_mut());
        println!(
            "{:<12} {:>18} {:>21.0}°",
            scheme.name(),
            delivered.len(),
            world.church_aspect_deg(&delivered)
        );
    }
    println!("\n(paper, real photos: ours 6 / 346°, PhotoNet 12 / 160°, Spray&Wait 12 / 171°)");
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_runs() {
        super::run(&["--seed".to_string(), "3".to_string()]).unwrap();
    }
}
