//! `photodtn inspect EVENTS.jsonl` — summarizes a trace written by
//! `photodtn run --trace-out`.
//!
//! The input is one JSON object per line, externally tagged with the
//! event kind (`{"ContactBegin":{…}}`). The inspector never needs the
//! simulator types: it aggregates straight off the JSON, so it also
//! works on traces produced by older or newer binaries as long as the
//! field names line up.

use std::collections::BTreeMap;

use crate::args::{Flags, Spec};

const SPEC: Spec = Spec {
    values: &["bins", "top"],
    switches: &[],
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &SPEC)?;
    let path = flags
        .positionals()
        .first()
        .ok_or("inspect: pass an events file written by `run --trace-out`")?;
    let bins: usize = flags.num("bins", 10usize)?;
    let top: usize = flags.num("top", 12usize)?;
    if bins == 0 {
        return Err("inspect: --bins must be at least 1".into());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let summary = Summary::from_jsonl(&text)?;
    print!("{}", summary.render(bins, top));
    Ok(())
}

/// One trace event: its kind tag and payload.
fn parse_event(line: &str) -> Option<(String, serde_json::Value)> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    let obj = value.as_object()?;
    let kind = obj.keys().next()?.clone();
    let body = obj.values().next()?.clone();
    Some((kind, body))
}

#[derive(Debug, Default, Clone)]
struct NodeStats {
    generated: u64,
    generation_lost: u64,
    upload_windows: u64,
    uploaded_bytes: u64,
    uploads_delivered: u64,
    uploads_lost: u64,
    uploads_corrupt: u64,
    crashes: u64,
    photos_lost_in_crashes: u64,
}

#[derive(Debug, Default, Clone)]
struct PairStats {
    meetings: u64,
    budget_bytes: u64,
    interrupted: u64,
    metadata_bytes: u64,
}

#[derive(Debug, Default)]
struct Summary {
    scheme: String,
    seed: u64,
    nodes: u64,
    storage_bytes: u64,
    duration_hours: f64,
    delivered: u64,
    uploaded_bytes: u64,
    counts: BTreeMap<String, u64>,
    node_stats: BTreeMap<u64, NodeStats>,
    pair_stats: BTreeMap<(u64, u64), PairStats>,
    latencies_hours: Vec<f64>,
    buffer_bytes: Vec<f64>,
    selection_evaluations: u64,
    selection_refreshes: u64,
    selection_commits: u64,
    selections: u64,
    metadata_snapshot_bytes: u64,
    metadata_purged: u64,
    unparsed_lines: u64,
}

impl Summary {
    fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut s = Summary::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Some((kind, body)) = parse_event(line) else {
                s.unparsed_lines += 1;
                continue;
            };
            s.ingest(&kind, &body);
            *s.counts.entry(kind).or_insert(0) += 1;
        }
        if s.counts.is_empty() {
            return Err("inspect: no trace events found in the file".into());
        }
        Ok(s)
    }

    fn ingest(&mut self, kind: &str, body: &serde_json::Value) {
        let u = |key: &str| {
            body.get(key)
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0)
        };
        let f = |key: &str| {
            body.get(key)
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0)
        };
        match kind {
            "RunBegin" => {
                self.scheme = body
                    .get("scheme")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
                self.seed = u("seed");
                self.nodes = u("nodes");
                self.storage_bytes = u("storage_bytes");
            }
            "RunEnd" => {
                self.duration_hours = f("t") / 3600.0;
                self.delivered = u("delivered");
                self.uploaded_bytes = u("uploaded_bytes");
            }
            "PhotoGenerated" => self.node_mut(u("node")).generated += 1,
            "PhotoGenerationLost" => self.node_mut(u("node")).generation_lost += 1,
            "UploadBegin" => self.node_mut(u("node")).upload_windows += 1,
            "UploadEnd" => {
                let n = self.node_mut(u("node"));
                n.uploaded_bytes += u("bytes");
                n.uploads_delivered += u("delivered");
                n.uploads_lost += u("lost");
                n.uploads_corrupt += u("corrupt");
            }
            "NodeCrashed" => {
                let n = self.node_mut(u("node"));
                n.crashes += 1;
                n.photos_lost_in_crashes += u("photos_lost");
            }
            "ContactBegin" => {
                let p = self.pair_mut(u("a"), u("b"));
                p.meetings += 1;
                p.budget_bytes += u("budget_bytes");
                p.interrupted += body
                    .get("interrupted")
                    .and_then(serde_json::Value::as_bool)
                    .unwrap_or(false) as u64;
            }
            "ContactEnd" => self.pair_mut(u("a"), u("b")).metadata_bytes += u("metadata_bytes"),
            "Delivered" => self.latencies_hours.push(f("latency_hours")),
            "BufferSnapshot" => self.buffer_bytes.push(f("bytes")),
            "Selection" => {
                self.selections += 1;
                self.selection_evaluations += u("evaluations");
                self.selection_refreshes += u("refreshes");
                self.selection_commits += u("commits");
            }
            "MetadataSnapshot" => self.metadata_snapshot_bytes += u("bytes"),
            "MetadataInvalidated" => self.metadata_purged += u("purged"),
            _ => {}
        }
    }

    fn node_mut(&mut self, node: u64) -> &mut NodeStats {
        self.node_stats.entry(node).or_default()
    }

    fn pair_mut(&mut self, a: u64, b: u64) -> &mut PairStats {
        let key = (a.min(b), a.max(b));
        self.pair_stats.entry(key).or_default()
    }

    fn render(&self, bins: usize, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: scheme {} seed {} ({} nodes, {:.1} MB storage each, {:.1} h)\n",
            self.scheme,
            self.seed,
            self.nodes,
            self.storage_bytes as f64 / 1e6,
            self.duration_hours,
        ));
        out.push_str(&format!(
            "     {} photos delivered, {:.1} MB uploaded\n",
            self.delivered,
            self.uploaded_bytes as f64 / 1e6,
        ));
        if self.unparsed_lines > 0 {
            out.push_str(&format!(
                "     ({} unparseable lines skipped)\n",
                self.unparsed_lines
            ));
        }

        out.push_str("\nevents:\n");
        let mut counts: Vec<(&String, &u64)> = self.counts.iter().collect();
        counts.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (kind, count) in counts {
            out.push_str(&format!("  {kind:<20} {count:>9}\n"));
        }

        if self.selections > 0 {
            out.push_str(&format!(
                "\nselection: {} contact sessions, {} gain evaluations, \
                 {} refreshes, {} commits\n",
                self.selections,
                self.selection_evaluations,
                self.selection_refreshes,
                self.selection_commits,
            ));
        }
        if self.metadata_snapshot_bytes > 0 || self.metadata_purged > 0 {
            out.push_str(&format!(
                "metadata: {:.2} MB snapshots exchanged, {} cache entries purged as stale\n",
                self.metadata_snapshot_bytes as f64 / 1e6,
                self.metadata_purged,
            ));
        }

        out.push_str("\nper-node (by uploaded bytes):\n");
        out.push_str(&format!(
            "  {:>4} {:>9} {:>8} {:>8} {:>11} {:>9} {:>7}\n",
            "node", "generated", "genlost", "uplinks", "uploaded MB", "delivered", "crashes"
        ));
        let mut nodes: Vec<(&u64, &NodeStats)> = self.node_stats.iter().collect();
        nodes.sort_by(|a, b| {
            b.1.uploaded_bytes
                .cmp(&a.1.uploaded_bytes)
                .then(a.0.cmp(b.0))
        });
        for (node, n) in nodes.iter().take(top) {
            out.push_str(&format!(
                "  {:>4} {:>9} {:>8} {:>8} {:>11.1} {:>9} {:>7}\n",
                node,
                n.generated,
                n.generation_lost,
                n.upload_windows,
                n.uploaded_bytes as f64 / 1e6,
                n.uploads_delivered,
                n.crashes,
            ));
        }
        if nodes.len() > top {
            out.push_str(&format!(
                "  … {} more nodes (raise --top)\n",
                nodes.len() - top
            ));
        }

        out.push_str("\nper-contact-pair (by meetings):\n");
        out.push_str(&format!(
            "  {:>9} {:>9} {:>11} {:>11} {:>11}\n",
            "pair", "meetings", "budget MB", "interrupted", "metadata kB"
        ));
        let mut pairs: Vec<(&(u64, u64), &PairStats)> = self.pair_stats.iter().collect();
        pairs.sort_by(|a, b| b.1.meetings.cmp(&a.1.meetings).then(a.0.cmp(b.0)));
        for ((a, b), p) in pairs.iter().take(top) {
            out.push_str(&format!(
                "  {:>9} {:>9} {:>11.1} {:>11} {:>11.1}\n",
                format!("{a}-{b}"),
                p.meetings,
                p.budget_bytes as f64 / 1e6,
                p.interrupted,
                p.metadata_bytes as f64 / 1e3,
            ));
        }
        if pairs.len() > top {
            out.push_str(&format!(
                "  … {} more pairs (raise --top)\n",
                pairs.len() - top
            ));
        }

        if !self.latencies_hours.is_empty() {
            out.push_str("\ndelivery latency (hours):\n");
            out.push_str(&histogram(&self.latencies_hours, bins));
        }
        if !self.buffer_bytes.is_empty() {
            let mb: Vec<f64> = self.buffer_bytes.iter().map(|b| b / 1e6).collect();
            out.push_str("\nbuffer occupancy at sample times (MB):\n");
            out.push_str(&histogram(&mb, bins));
        }
        out
    }
}

/// Renders an equal-width-bin histogram with `#` bars.
fn histogram(values: &[f64], bins: usize) -> String {
    const BAR_WIDTH: f64 = 40.0;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    let bins = if span == 0.0 { 1 } else { bins };
    let width = if span == 0.0 { 1.0 } else { span / bins as f64 };
    let mut counts = vec![0u64; bins];
    for v in values {
        let i = (((v - min) / width) as usize).min(bins - 1);
        counts[i] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, count) in counts.iter().enumerate() {
        let lo = min + i as f64 * width;
        let hi = lo + width;
        let bar = "#".repeat((*count as f64 / peak as f64 * BAR_WIDTH).ceil() as usize);
        out.push_str(&format!("  [{lo:>9.2}, {hi:>9.2})  {count:>7}  {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"RunBegin":{"scheme":"ours","seed":7,"nodes":3,"storage_bytes":10000000}}
{"PhotoGenerated":{"t":10.0,"node":1,"photo":4,"size":4000000,"stored":true}}
{"PhotoGenerated":{"t":20.0,"node":2,"photo":5,"size":4000000,"stored":true}}
{"ContactBegin":{"t":30.0,"a":1,"b":2,"link_bytes":9000000,"budget_bytes":4500000,"interrupted":true}}
{"Selection":{"t":30.0,"a":1,"b":2,"a_first":true,"a_selected":[4],"b_selected":[5],"expected_point":0.5,"expected_aspect_deg":90.0,"evaluations":12,"refreshes":2,"commits":2}}
{"ContactEnd":{"t":30.0,"a":1,"b":2,"metadata_bytes":136,"transfers_lost":0,"transfers_corrupt":0}}
{"UploadBegin":{"t":60.0,"node":1,"link_bytes":9000000,"budget_bytes":9000000,"degraded":false}}
{"UploadCommit":{"t":60.0,"node":1,"photo":4,"bytes":4000000,"gain_point":0.5,"gain_aspect_deg":90.0,"outcome":"Delivered"}}
{"Delivered":{"t":60.0,"photo":4,"latency_hours":0.014}}
{"UploadEnd":{"t":60.0,"node":1,"bytes":4000000,"delivered":1,"lost":0,"corrupt":0}}
{"BufferSnapshot":{"t":3600.0,"node":1,"photos":0,"bytes":0}}
{"BufferSnapshot":{"t":3600.0,"node":2,"photos":1,"bytes":4000000}}
{"RunEnd":{"t":7200.0,"delivered":1,"uploaded_bytes":4000000}}
"#;

    #[test]
    fn summarizes_a_small_trace() {
        let s = Summary::from_jsonl(SAMPLE).unwrap();
        assert_eq!(s.scheme, "ours");
        assert_eq!(s.seed, 7);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.counts["PhotoGenerated"], 2);
        assert_eq!(s.node_stats[&1].uploaded_bytes, 4000000);
        assert_eq!(s.node_stats[&1].uploads_delivered, 1);
        assert_eq!(s.pair_stats[&(1, 2)].meetings, 1);
        assert_eq!(s.pair_stats[&(1, 2)].interrupted, 1);
        assert_eq!(s.pair_stats[&(1, 2)].metadata_bytes, 136);
        assert_eq!(s.selections, 1);
        assert_eq!(s.selection_evaluations, 12);
        assert_eq!(s.latencies_hours, vec![0.014]);
        assert_eq!(s.buffer_bytes, vec![0.0, 4000000.0]);
        let rendered = s.render(5, 12);
        assert!(rendered.contains("scheme ours seed 7"), "{rendered}");
        assert!(rendered.contains("delivery latency"), "{rendered}");
        assert!(rendered.contains("buffer occupancy"), "{rendered}");
    }

    #[test]
    fn pair_key_is_order_normalized() {
        let mut s = Summary::default();
        s.ingest(
            "ContactBegin",
            &serde_json::json!({"t": 1.0, "a": 5, "b": 2, "link_bytes": 10,
                                "budget_bytes": 10, "interrupted": false}),
        );
        s.ingest(
            "ContactBegin",
            &serde_json::json!({"t": 2.0, "a": 2, "b": 5, "link_bytes": 10,
                                "budget_bytes": 10, "interrupted": false}),
        );
        assert_eq!(s.pair_stats[&(2, 5)].meetings, 2);
    }

    #[test]
    fn unparseable_lines_are_counted_not_fatal() {
        let text = format!("not json at all\n{SAMPLE}");
        let s = Summary::from_jsonl(&text).unwrap();
        assert_eq!(s.unparsed_lines, 1);
        assert_eq!(s.delivered, 1);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(Summary::from_jsonl("").is_err());
        assert!(Summary::from_jsonl("\n\n").is_err());
    }

    #[test]
    fn histogram_handles_constant_values() {
        let h = histogram(&[2.0, 2.0, 2.0], 10);
        assert_eq!(h.lines().count(), 1);
        assert!(h.contains('#'), "{h}");
    }

    #[test]
    fn command_end_to_end() {
        let dir = std::env::temp_dir().join("photodtn-inspect-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::write(&path, SAMPLE).unwrap();
        run(&[path.to_str().unwrap().to_string()]).unwrap();
        run(&[
            path.to_str().unwrap().to_string(),
            "--bins".to_string(),
            "3".to_string(),
        ])
        .unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_and_bad_flags_error() {
        assert!(run(&[]).is_err());
        assert!(run(&["/nonexistent/events.jsonl".to_string()]).is_err());
        let err = run(&["--bin".to_string(), "3".to_string()]).unwrap_err();
        assert!(err.contains("did you mean --bins?"), "{err}");
    }
}
