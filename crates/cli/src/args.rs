//! Minimal flag parser shared by the subcommands (no external dependency
//! — the option space is tiny and errors must be first-class).

use std::collections::HashMap;

/// Parsed flags: `--key value` pairs, `--key` booleans, and positionals.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// Flags that take no value, per subcommand namespace.
const SWITCHES: &[&str] = &["json", "report", "no-json", "perf"];

impl Flags {
    /// Parses an argv slice.
    ///
    /// # Errors
    ///
    /// Returns a message when a value flag has no value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        Self::parse_with(argv, &[])
    }

    /// Parses an argv slice with subcommand-specific extra switches.
    ///
    /// `extra_switches` are treated as value-less on top of the shared
    /// [`SWITCHES`] set, so a name can take a value in one subcommand
    /// (`run --faults 0.5`) and act as a toggle in another
    /// (`report --faults`).
    ///
    /// # Errors
    ///
    /// Returns a message when a value flag has no value.
    pub fn parse_with(argv: &[String], extra_switches: &[&str]) -> Result<Self, String> {
        let mut flags = Flags::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if SWITCHES.contains(&name) || extra_switches.contains(&name) {
                    flags.switches.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.values.insert(name.to_string(), value.clone());
                }
            } else {
                flags.positionals.push(arg.clone());
            }
        }
        Ok(flags)
    }

    /// The positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: invalid value {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_switches_positionals() {
        let f = Flags::parse(&argv("gen --seed 7 --json file.txt --style mit")).unwrap();
        assert_eq!(f.positionals(), &["gen", "file.txt"]);
        assert_eq!(f.get("seed"), Some("7"));
        assert_eq!(f.get("style"), Some("mit"));
        assert!(f.has("json"));
        assert!(!f.has("report"));
    }

    #[test]
    fn numeric_parsing_with_default() {
        let f = Flags::parse(&argv("--seed 7")).unwrap();
        assert_eq!(f.num("seed", 0u64).unwrap(), 7);
        assert_eq!(f.num("hours", 12.5f64).unwrap(), 12.5);
        let bad = Flags::parse(&argv("--seed banana")).unwrap();
        assert!(bad.num("seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Flags::parse(&argv("--seed")).is_err());
    }

    #[test]
    fn extra_switches_are_per_call() {
        let f = Flags::parse_with(&argv("--faults file.txt"), &["faults"]).unwrap();
        assert!(f.has("faults"));
        assert_eq!(f.positionals(), &["file.txt"]);
        // without the extra switch, the same name consumes a value
        let f = Flags::parse(&argv("--faults 0.5")).unwrap();
        assert_eq!(f.get("faults"), Some("0.5"));
    }
}
