//! Minimal flag parser shared by the subcommands (no external dependency
//! — the option space is tiny and errors must be first-class).
//!
//! Each subcommand declares a [`Spec`] naming the flags it understands.
//! Anything else is rejected with a "did you mean" suggestion instead of
//! being silently swallowed (the old parser treated every unknown
//! `--name` as a value flag, so `photodtn run --sheme oracle` happily
//! ran the default scheme).

use std::collections::HashMap;

/// The flag vocabulary of one subcommand: names that take a value and
/// names that act as toggles. A name may be a value flag in one
/// subcommand (`run --faults 0.5`) and a switch in another
/// (`report --faults`).
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Flags that consume the following argument as their value.
    pub values: &'static [&'static str],
    /// Flags that take no value.
    pub switches: &'static [&'static str],
}

/// Parsed flags: `--key value` pairs, `--key` booleans, and positionals.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

impl Flags {
    /// Parses an argv slice against a subcommand's [`Spec`].
    ///
    /// # Errors
    ///
    /// Returns a message when a flag is not in the spec (with a
    /// nearest-name suggestion when one is close enough), when a value
    /// flag has no value, or when its value looks like another flag.
    pub fn parse(argv: &[String], spec: &Spec) -> Result<Self, String> {
        let mut flags = Flags::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                flags.positionals.push(arg.clone());
                continue;
            };
            if spec.switches.contains(&name) {
                flags.switches.push(name.to_string());
            } else if spec.values.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                if value.starts_with("--") {
                    return Err(format!(
                        "flag --{name} needs a value, but the next argument is {value:?}"
                    ));
                }
                flags.values.insert(name.to_string(), value.clone());
            } else {
                return Err(unknown_flag(name, spec));
            }
        }
        Ok(flags)
    }

    /// The positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: invalid value {v:?}")),
        }
    }
}

/// Builds the unknown-flag error, suggesting the closest known name when
/// one is within a small edit distance.
fn unknown_flag(name: &str, spec: &Spec) -> String {
    let suggestion = spec
        .values
        .iter()
        .chain(spec.switches.iter())
        .map(|known| (edit_distance(name, known), *known))
        .min()
        .filter(|(d, known)| *d <= (known.len() / 2).max(2))
        .map(|(_, known)| format!(" (did you mean --{known}?)"));
    format!("unknown flag --{name}{}", suggestion.unwrap_or_default())
}

/// Levenshtein distance over bytes — flag names are ASCII.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: Spec = Spec {
        values: &["seed", "style", "hours", "faults"],
        switches: &["json", "report"],
    };

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_switches_positionals() {
        let f = Flags::parse(&argv("gen --seed 7 --json file.txt --style mit"), &SPEC).unwrap();
        assert_eq!(f.positionals(), &["gen", "file.txt"]);
        assert_eq!(f.get("seed"), Some("7"));
        assert_eq!(f.get("style"), Some("mit"));
        assert!(f.has("json"));
        assert!(!f.has("report"));
    }

    #[test]
    fn numeric_parsing_with_default() {
        let f = Flags::parse(&argv("--seed 7"), &SPEC).unwrap();
        assert_eq!(f.num("seed", 0u64).unwrap(), 7);
        assert_eq!(f.num("hours", 12.5f64).unwrap(), 12.5);
        let bad = Flags::parse(&argv("--seed banana"), &SPEC).unwrap();
        assert!(bad.num("seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Flags::parse(&argv("--seed"), &SPEC).is_err());
    }

    #[test]
    fn value_that_looks_like_a_flag_is_an_error() {
        let err = Flags::parse(&argv("--seed --json"), &SPEC).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        assert!(err.contains("--json"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected_with_suggestion() {
        let err = Flags::parse(&argv("--sed 7"), &SPEC).unwrap_err();
        assert!(err.contains("unknown flag --sed"), "{err}");
        assert!(err.contains("did you mean --seed?"), "{err}");
    }

    #[test]
    fn unknown_flag_far_from_everything_gets_no_suggestion() {
        let err = Flags::parse(&argv("--zzzzzzzzzz 7"), &SPEC).unwrap_err();
        assert!(err.contains("unknown flag --zzzzzzzzzz"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn same_name_can_be_value_or_switch_per_spec() {
        const REPORT: Spec = Spec {
            values: &[],
            switches: &["faults"],
        };
        let f = Flags::parse(&argv("--faults file.txt"), &REPORT).unwrap();
        assert!(f.has("faults"));
        assert_eq!(f.positionals(), &["file.txt"]);
        // In the run-style spec the same name consumes a value.
        let f = Flags::parse(&argv("--faults 0.5"), &SPEC).unwrap();
        assert_eq!(f.get("faults"), Some("0.5"));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("seed", "seed"), 0);
        assert_eq!(edit_distance("sed", "seed"), 1);
        assert_eq!(edit_distance("", "seed"), 4);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
