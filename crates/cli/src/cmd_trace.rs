//! `photodtn trace gen` / `photodtn trace info`.

use photodtn_contacts::stats::{
    exponential_mle, inter_contact_times, ks_statistic_exponential, summarize,
};
use photodtn_contacts::synth::{
    CommunityTraceGenerator, MetroTraceGenerator, TraceStyle, WaypointTraceGenerator,
};
use photodtn_contacts::{parse_trace, write_trace, ContactTrace};

use crate::args::{Flags, Spec};

const SPEC: Spec = Spec {
    values: &["out", "seed", "hours", "nodes", "style", "region"],
    switches: &[],
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &SPEC)?;
    match flags.positionals().first().map(String::as_str) {
        Some("gen") => gen(&flags),
        Some("info") => info(&flags),
        Some("convert") => convert(&flags),
        other => Err(format!("trace: expected gen|info|convert, got {other:?}")),
    }
}

/// `photodtn trace convert FILE [--out FILE]` — converts a ONE-simulator
/// connectivity trace (`<t> CONN a b up/down`) to the native format.
fn convert(flags: &Flags) -> Result<(), String> {
    let path = flags
        .positionals()
        .get(1)
        .ok_or("trace convert: missing FILE argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = photodtn_contacts::one_format::parse_one_trace(&text).map_err(|e| e.to_string())?;
    let out_text = write_trace(&trace);
    match flags.get("out") {
        Some(out) => std::fs::write(out, out_text).map_err(|e| format!("writing {out}: {e}"))?,
        None => print!("{out_text}"),
    }
    eprintln!(
        "converted {} contacts over {} nodes",
        trace.len(),
        trace.num_nodes()
    );
    Ok(())
}

fn gen(flags: &Flags) -> Result<(), String> {
    let seed: u64 = flags.num("seed", 1)?;
    let hours: Option<f64> = match flags.get("hours") {
        Some(_) => Some(flags.num("hours", 0.0)?),
        None => None,
    };
    let nodes: Option<u32> = match flags.get("nodes") {
        Some(_) => Some(flags.num("nodes", 0u32)?),
        None => None,
    };
    let trace = match flags.get("style").unwrap_or("mit") {
        "mit" => community(TraceStyle::MitLike, nodes, hours, seed),
        "cambridge" => community(TraceStyle::CambridgeLike, nodes, hours, seed),
        "metro" => {
            let mut gen = MetroTraceGenerator::new();
            if let Some(n) = nodes {
                gen = gen.with_num_nodes(n);
            }
            if let Some(h) = hours {
                gen = gen.with_duration_hours(h);
            }
            gen.generate(seed)
        }
        "waypoint" => {
            let gen = WaypointTraceGenerator::new(
                nodes.unwrap_or(20),
                flags.num("region", 1000.0)?,
                hours.unwrap_or(24.0) * 3600.0,
            );
            gen.generate(seed)
        }
        other => return Err(format!("trace gen: unknown style {other:?}")),
    };
    let text = write_trace(&trace);
    match flags.get("out") {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{text}"),
    }
    eprintln!(
        "generated {} contacts over {} nodes",
        trace.len(),
        trace.num_nodes()
    );
    Ok(())
}

fn community(style: TraceStyle, nodes: Option<u32>, hours: Option<f64>, seed: u64) -> ContactTrace {
    let mut gen = CommunityTraceGenerator::new(style);
    if let Some(n) = nodes {
        gen = gen.with_num_nodes(n);
    }
    if let Some(h) = hours {
        gen = gen.with_duration_hours(h);
    }
    gen.generate(seed)
}

fn info(flags: &Flags) -> Result<(), String> {
    let path = flags
        .positionals()
        .get(1)
        .ok_or("trace info: missing FILE argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = parse_trace(&text).map_err(|e| e.to_string())?;
    let s = summarize(&trace);
    println!("nodes                 : {}", s.num_nodes);
    println!("contacts              : {}", s.num_events);
    println!("duration              : {:.1} h", s.duration / 3600.0);
    println!("mean contact duration : {:.1} s", s.mean_contact_duration);
    println!(
        "mean inter-contact    : {:.2} h",
        s.mean_inter_contact / 3600.0
    );
    println!("contacts/node/hour    : {:.3}", s.contacts_per_node_hour);
    let gaps = inter_contact_times(&trace);
    let lambda = exponential_mle(&gaps);
    if lambda > 0.0 {
        println!(
            "exponential fit       : λ = {:.3e} s⁻¹ (KS distance {:.3})",
            lambda,
            ks_statistic_exponential(&gaps, lambda)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn gen_then_info_roundtrip() {
        let dir = std::env::temp_dir().join("photodtn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let out = path.to_str().unwrap().to_string();
        run(&argv(&format!(
            "gen --style mit --nodes 10 --hours 20 --seed 3 --out {out}"
        )))
        .unwrap();
        run(&argv(&format!("info {out}"))).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_style_rejected() {
        assert!(run(&argv("gen --style bogus")).is_err());
    }

    #[test]
    fn info_missing_file() {
        assert!(run(&argv("info /nonexistent/file.trace")).is_err());
        assert!(run(&argv("info")).is_err());
    }

    #[test]
    fn convert_one_format() {
        let dir = std::env::temp_dir().join("photodtn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let one = dir.join("one.txt");
        let native = dir.join("native.trace");
        std::fs::write(&one, "0 CONN n1 n2 up\n60 CONN n1 n2 down\n").unwrap();
        run(&argv(&format!(
            "convert {} --out {}",
            one.display(),
            native.display()
        )))
        .unwrap();
        run(&argv(&format!("info {}", native.display()))).unwrap();
        std::fs::remove_file(&one).unwrap();
        std::fs::remove_file(&native).unwrap();
    }

    #[test]
    fn waypoint_gen_works() {
        // stdout path (no --out): just exercise generation
        run(&argv(
            "gen --style waypoint --nodes 5 --hours 1 --seed 2 --out /tmp/photodtn-wp.trace",
        ))
        .unwrap();
        std::fs::remove_file("/tmp/photodtn-wp.trace").unwrap();
    }
}
