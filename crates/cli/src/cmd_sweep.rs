//! `photodtn sweep` — crash-tolerant batch runs over a TOML grid spec.
//!
//! The subcommand fans a (scheme × config-variant × seed) grid across the
//! supervisor ([`photodtn_sim::supervisor`]): panicking cells are
//! isolated, hung cells hit the `--cell-deadline` watchdog, transient
//! trace-IO failures retry with backoff, and every resolved cell is
//! journaled so `--resume` after a kill skips completed work and produces
//! a byte-identical merged report.
//!
//! Exit-code contract (stable, scriptable):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | every cell completed |
//! | 2    | bad spec / bad invocation (nothing ran) |
//! | 3    | partial failure: some cells failed, some completed |
//! | 4    | total failure: every cell failed |

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use photodtn_bench::{try_scheme_by_name, ALL_SCHEME_NAMES};
use photodtn_contacts::ContactTrace;
use photodtn_sim::supervisor::journal;
use photodtn_sim::supervisor::spec::{SweepPlan, SweepSpec};
use photodtn_sim::{
    checkpoint, run_batch, BatchPolicy, BatchReport, CellError, CellFailure, CellId, CellState,
    CheckpointPolicy, Scenario, ScenarioPlan, SimConfig, SimResult, Simulation,
};

use crate::args::{Flags, Spec};

/// Every cell completed.
pub const EXIT_OK: u8 = 0;
/// The spec or invocation was invalid; nothing ran.
pub const EXIT_BAD_SPEC: u8 = 2;
/// Some cells failed, some completed (partial results written).
pub const EXIT_PARTIAL: u8 = 3;
/// Every cell failed.
pub const EXIT_TOTAL: u8 = 4;

const SPEC: Spec = Spec {
    values: &[
        "out",
        "journal",
        "workers",
        "cell-deadline",
        "retries",
        "backoff-ms",
        "cell-checkpoint",
    ],
    switches: &["resume", "sync", "quiet"],
};

/// One grid to execute — either a classic sweep spec or a declarative
/// scenario ([`Scenario`]), distinguished by the file's sections. Both
/// expand into the same (scheme × variant × seed) cell list; only the
/// per-cell world construction differs.
enum Plan {
    Sweep(SweepPlan),
    Scenario(Box<ScenarioPlan>),
}

impl Plan {
    fn fingerprint(&self) -> u64 {
        match self {
            Plan::Sweep(p) => p.fingerprint,
            Plan::Scenario(p) => p.fingerprint,
        }
    }

    fn cells(&self) -> &[CellId] {
        match self {
            Plan::Sweep(p) => &p.cells,
            Plan::Scenario(p) => &p.cells,
        }
    }

    fn config_of(&self, variant: &str) -> Option<&SimConfig> {
        match self {
            Plan::Sweep(p) => p.config_of(variant),
            Plan::Scenario(p) => p.config_of(variant),
        }
    }

    fn build_trace(&self, seed: u64) -> Result<ContactTrace, CellError> {
        match self {
            Plan::Sweep(p) => p.build_trace(seed),
            Plan::Scenario(p) => p.build_trace(seed),
        }
    }

    /// Builds one cell's world. Panics on an unbuildable world (like
    /// `Simulation::new`); the supervisor's catch_unwind classifies that
    /// as a deterministic failure.
    fn build_simulation(&self, config: &SimConfig, trace: &ContactTrace, seed: u64) -> Simulation {
        match self {
            Plan::Sweep(_) => Simulation::new(config, trace, seed),
            Plan::Scenario(p) => p
                .build_simulation(config, trace, seed)
                .unwrap_or_else(|e| panic!("building scenario world: {e}")),
        }
    }
}

/// The per-cell snapshot directory name: the cell id with filesystem-
/// hostile characters replaced, so every cell maps to a distinct,
/// portable path under `{journal}.ckpt/`.
fn cell_dir_name(cell: &CellId) -> String {
    cell.to_string()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || "-_.=".contains(c) {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Runs the subcommand, printing its own errors; the return value is the
/// process exit code (see the module docs for the contract).
pub fn run(argv: &[String]) -> u8 {
    match execute(argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("photodtn sweep: {e}");
            EXIT_BAD_SPEC
        }
    }
}

fn validate_schemes(spec_path: &str, schemes: &[String]) -> Result<(), String> {
    for scheme in schemes {
        if try_scheme_by_name(scheme).is_none() {
            return Err(format!(
                "{spec_path}: unknown scheme {scheme:?} (known: {})",
                ALL_SCHEME_NAMES.join(", ")
            ));
        }
    }
    Ok(())
}

fn execute(argv: &[String]) -> Result<u8, String> {
    let flags = Flags::parse(argv, &SPEC)?;
    let [spec_path] = flags.positionals() else {
        return Err(
            "usage: photodtn sweep SPEC.toml [--out FILE] [--journal FILE] [--resume] \
             [--workers N] [--cell-deadline SECS] [--retries N] [--backoff-ms MS] \
             [--cell-checkpoint SIMSECS] [--sync] [--quiet]"
                .into(),
        );
    };
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    // One flag, two formats: a [scenario] document or a [sweep] grid.
    let plan = if Scenario::is_scenario_text(&text) {
        let mut sc = Scenario::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;
        if sc.schemes == ["all"] {
            sc.schemes = ALL_SCHEME_NAMES.iter().map(|s| (*s).to_string()).collect();
        }
        validate_schemes(spec_path, &sc.schemes)?;
        Plan::Scenario(Box::new(sc.plan()))
    } else {
        let sweep = SweepSpec::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;
        validate_schemes(spec_path, &sweep.schemes)?;
        Plan::Sweep(sweep.plan())
    };

    let journal_path: PathBuf = flags
        .get("journal")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{spec_path}.journal")));
    let sync = flags.has("sync");
    let deadline = match flags.get("cell-deadline") {
        None => None,
        Some(_) => {
            let secs: f64 = flags.num("cell-deadline", 0.0)?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(format!(
                    "--cell-deadline must be a positive number of seconds, got {secs}"
                ));
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    let policy = BatchPolicy {
        workers: flags.num("workers", 0usize)?,
        deadline,
        // --retries counts *extra* attempts after the first.
        max_attempts: flags.num("retries", 2u32)?.saturating_add(1),
        backoff: Duration::from_millis(flags.num("backoff-ms", 100u64)?),
    };
    let cell_checkpoint: Option<f64> = match flags.get("cell-checkpoint") {
        None => None,
        Some(_) => {
            let secs: f64 = flags.num("cell-checkpoint", 0.0)?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(format!(
                    "--cell-checkpoint must be a positive number of simulated seconds, got {secs}"
                ));
            }
            Some(secs)
        }
    };

    // Journal: fresh, or resumed (healing a torn tail atomically).
    let (done, mut journal) = if flags.has("resume") {
        let state = journal::load(&journal_path, plan.fingerprint())
            .map_err(|e| format!("resume from {}: {e}", journal_path.display()))?;
        if state.torn_tail {
            eprintln!("sweep: dropped a torn journal tail (that cell will rerun)");
        }
        let journal = journal::Journal::resume(&journal_path, &state, sync)
            .map_err(|e| format!("rewriting {}: {e}", journal_path.display()))?;
        (state.done, journal)
    } else {
        let journal = journal::Journal::create(
            &journal_path,
            plan.fingerprint(),
            plan.cells().len() as u64,
            sync,
        )
        .map_err(|e| format!("creating {}: {e}", journal_path.display()))?;
        (BTreeMap::new(), journal)
    };

    let remaining: Vec<CellId> = plan
        .cells()
        .iter()
        .filter(|c| !done.contains_key(*c))
        .cloned()
        .collect();
    eprintln!(
        "sweep: {} cells ({} journaled, {} to run), journal at {}",
        plan.cells().len(),
        done.len(),
        remaining.len(),
        journal_path.display()
    );

    let plan_runner = Arc::new(plan);
    let ckpt_root: PathBuf = PathBuf::from(format!("{}.ckpt", journal_path.display()));
    let runner = {
        let plan = Arc::clone(&plan_runner);
        let ckpt_root = ckpt_root.clone();
        move |cell: &CellId| -> Result<SimResult, CellError> {
            let config = plan
                .config_of(&cell.variant)
                .expect("cells only name variants from the plan")
                .clone();
            let trace = plan.build_trace(cell.seed)?;
            let mut scheme =
                try_scheme_by_name(&cell.scheme).expect("schemes validated before the batch");
            // World building panics on a bad world; the supervisor's
            // catch_unwind classifies that as a deterministic failure.
            let mut sim = plan.build_simulation(&config, &trace, cell.seed);
            let Some(every) = cell_checkpoint else {
                return Ok(sim.run(&mut scheme));
            };

            // Within-cell durability: snapshot into a per-cell directory
            // and resume from it when a previous attempt (retry, rerun
            // after a kill, or a timed-out attempt's last snapshot) left
            // one behind. Any load failure degrades to a clean start —
            // a sweep cell must never be wedged by a stale snapshot.
            let dir = ckpt_root.join(cell_dir_name(cell));
            // Scenario worlds fold the scenario text's fingerprint in:
            // PoI weights and schedules live outside SimConfig, so two
            // scenarios sharing a config must not cross-resume.
            let mut fp = checkpoint::run_fingerprint(&config, &trace, cell.seed, &cell.scheme);
            if let Plan::Scenario(_) = &*plan {
                fp ^= plan.fingerprint();
            }
            match checkpoint::load_latest(&dir, Some(fp)) {
                Ok((payload, path)) => match sim.resume_from(payload, &scheme) {
                    Ok(()) => eprintln!("sweep: {cell} resumes from {}", path.display()),
                    Err(e) => eprintln!("sweep: {cell} restarts clean ({e})"),
                },
                Err(checkpoint::CheckpointError::Io { .. }) => {} // no snapshots yet
                Err(e) => eprintln!("sweep: {cell} restarts clean ({e})"),
            }
            sim.set_checkpoints(CheckpointPolicy::new(&dir, every, fp, cell.to_string()));
            let (result, _, stats) = sim.run_instrumented(&mut scheme);
            if stats.interrupted {
                return Err(CellError::interrupted(format!(
                    "stopped mid-run; snapshot in {}",
                    dir.display()
                )));
            }
            let _ = std::fs::remove_dir_all(&dir);
            Ok(result)
        }
    };

    let quiet = flags.has("quiet");
    let report = run_batch(&remaining, Arc::new(runner), &policy, |cell, state| {
        if let Err(e) = journal.record(cell, state) {
            eprintln!("sweep: journal write failed: {e}");
        }
        if !quiet {
            match state {
                CellState::Done(_) => eprintln!("sweep: ok     {cell}"),
                CellState::Failed(f) => {
                    eprintln!("sweep: FAILED {cell} ({}: {})", f.kind, f.message);
                }
            }
        }
    });

    // Merge journaled results with this run's outcomes; canonical order
    // makes the report byte-stable regardless of interruptions.
    let mut outcomes = report.outcomes;
    for (cell, result) in done {
        outcomes.push((cell, CellState::Done(result)));
    }
    let merged = BatchReport::from_outcomes(outcomes);

    let rendered = render_report(&merged);
    match flags.get("out") {
        Some(path) => {
            journal::write_atomic(Path::new(path), &rendered)
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("sweep: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    let failures = merged.failures();
    if !failures.is_empty() {
        eprint!("{}", failure_table(&failures, merged.outcomes.len()));
    }
    Ok(if merged.all_ok() {
        EXIT_OK
    } else if merged.total_failure() {
        EXIT_TOTAL
    } else {
        EXIT_PARTIAL
    })
}

/// Renders the merged report as deterministic JSON: cells in canonical
/// order, one `results` entry per completed cell (final-sample metrics),
/// one `failures` entry per failed cell.
pub(crate) fn render_report(report: &BatchReport) -> String {
    let results: Vec<serde_json::Value> = report
        .completed()
        .map(|(cell, result)| {
            let f = result.final_sample();
            serde_json::json!({
                "scheme": cell.scheme,
                "variant": cell.variant,
                "seed": cell.seed,
                "samples": result.samples.len(),
                "t_hours": f.t_hours,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
            })
        })
        .collect();
    let failures: Vec<serde_json::Value> = report
        .failures()
        .iter()
        .map(|f| {
            serde_json::json!({
                "scheme": f.cell.scheme,
                "variant": f.cell.variant,
                "seed": f.cell.seed,
                "kind": f.kind.to_string(),
                "attempts": f.attempts,
                "message": f.message,
            })
        })
        .collect();
    let value = serde_json::json!({
        "cells": report.outcomes.len(),
        "completed": results.len(),
        "failed": failures.len(),
        "results": results,
        "failures": failures,
    });
    format!("{value}\n")
}

/// The failure-summary table printed to stderr on any failure.
pub(crate) fn failure_table(failures: &[&CellFailure], total_cells: usize) -> String {
    let mut out = format!(
        "sweep failures ({} of {} cells):\n",
        failures.len(),
        total_cells
    );
    for f in failures {
        out.push_str(&format!(
            "  {:<8} {:<32} attempts={}  {}\n",
            f.kind.to_string(),
            f.cell.to_string(),
            f.attempts,
            f.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_sim::{FailureKind, MetricSample};

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("photodtn-sweep-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cell(scheme: &str, seed: u64) -> CellId {
        CellId {
            scheme: scheme.into(),
            variant: "base".into(),
            seed,
        }
    }

    fn done(cell: &CellId) -> CellState {
        CellState::Done(SimResult {
            scheme: cell.scheme.clone(),
            seed: cell.seed,
            samples: vec![MetricSample {
                t_hours: 10.0,
                point_coverage: 0.5,
                aspect_coverage_deg: 120.0,
                delivered_photos: 42,
                ..MetricSample::default()
            }],
        })
    }

    fn failed(cell: &CellId, kind: FailureKind, message: &str, attempts: u32) -> CellState {
        CellState::Failed(CellFailure {
            cell: cell.clone(),
            kind,
            message: message.into(),
            attempts,
        })
    }

    #[test]
    fn missing_spec_is_a_usage_error() {
        assert_eq!(run(&argv("")), EXIT_BAD_SPEC);
        assert_eq!(run(&argv("/nonexistent/sweep.toml")), EXIT_BAD_SPEC);
    }

    #[test]
    fn bad_spec_exits_2_without_running() {
        let dir = tmp_dir();
        let spec = dir.join("bad.toml");
        std::fs::write(
            &spec,
            "[sweep]\nschemes = [\"no-such-scheme\"]\nseeds = [1]\n",
        )
        .unwrap();
        assert_eq!(run(&[spec.to_str().unwrap().into()]), EXIT_BAD_SPEC);
        let syntactically_bad = dir.join("syntax.toml");
        std::fs::write(&syntactically_bad, "[sweep\nschemes = 1\n").unwrap();
        assert_eq!(
            run(&[syntactically_bad.to_str().unwrap().into()]),
            EXIT_BAD_SPEC
        );
    }

    #[test]
    fn unknown_flag_exits_2() {
        assert_eq!(run(&argv("spec.toml --resum")), EXIT_BAD_SPEC);
    }

    #[test]
    fn small_sweep_runs_to_exit_0_and_resume_is_idempotent() {
        let dir = tmp_dir();
        let spec = dir.join("ok.toml");
        std::fs::write(
            &spec,
            "[sweep]\nschemes = [\"best-possible\"]\nseeds = [1, 2]\n\
             [trace]\nnodes = 8\nhours = 6.0\n[config]\nphotos_per_hour = 10.0\n",
        )
        .unwrap();
        let out = dir.join("report.json");
        let journal = dir.join("ok.journal");
        let base: Vec<String> = vec![
            spec.to_str().unwrap().into(),
            "--out".into(),
            out.to_str().unwrap().into(),
            "--journal".into(),
            journal.to_str().unwrap().into(),
            "--quiet".into(),
        ];
        assert_eq!(run(&base), EXIT_OK);
        let first = std::fs::read_to_string(&out).unwrap();
        assert!(first.contains("\"completed\":2"), "{first}");

        // Resuming a finished sweep reruns nothing and reproduces the
        // report byte-for-byte.
        let mut resumed = base.clone();
        resumed.push("--resume".into());
        assert_eq!(run(&resumed), EXIT_OK);
        let second = std::fs::read_to_string(&out).unwrap();
        assert_eq!(first, second, "resume must be byte-identical");
    }

    #[test]
    fn exit_code_mapping_covers_partial_and_total_failure() {
        let a = cell("ours", 1);
        let b = cell("ours", 2);
        let partial = BatchReport::from_outcomes(vec![
            (a.clone(), done(&a)),
            (b.clone(), failed(&b, FailureKind::Panic, "boom", 1)),
        ]);
        assert!(!partial.all_ok());
        assert!(!partial.total_failure());
        let total = BatchReport::from_outcomes(vec![
            (a.clone(), failed(&a, FailureKind::Panic, "boom", 1)),
            (b.clone(), failed(&b, FailureKind::TraceIo, "gone", 3)),
        ]);
        assert!(total.total_failure());
    }

    #[test]
    fn report_rendering_is_deterministic_and_ordered() {
        let a = cell("ours", 2);
        let b = cell("best-possible", 1);
        let report = BatchReport::from_outcomes(vec![(a.clone(), done(&a)), (b.clone(), done(&b))]);
        let rendered = render_report(&report);
        assert_eq!(rendered, render_report(&report));
        // Canonical order: best-possible sorts before ours.
        let bp = rendered.find("best-possible").unwrap();
        let ours = rendered.find("\"ours\"").unwrap();
        assert!(bp < ours, "{rendered}");
        assert!(rendered.ends_with('\n'));
    }

    #[test]
    fn failure_table_golden_output() {
        let a = cell("ours", 3);
        let b = CellId {
            scheme: "spray-wait".into(),
            variant: "storage_gb=0.3".into(),
            seed: 7,
        };
        let failures = [
            CellFailure {
                cell: a,
                kind: FailureKind::Panic,
                message: "index out of bounds".into(),
                attempts: 1,
            },
            CellFailure {
                cell: b,
                kind: FailureKind::TraceIo,
                message: "reading contacts.trace: not found".into(),
                attempts: 3,
            },
        ];
        let refs: Vec<&CellFailure> = failures.iter().collect();
        let table = failure_table(&refs, 12);
        assert_eq!(
            table,
            "sweep failures (2 of 12 cells):\n  \
             panic    ours/base/seed3                  attempts=1  index out of bounds\n  \
             trace-io spray-wait/storage_gb=0.3/seed7  attempts=3  reading contacts.trace: not found\n"
        );
    }

    #[test]
    fn scenario_sweep_runs_and_resumes_byte_identically() {
        let dir = tmp_dir();
        let spec = dir.join("scenario.toml");
        std::fs::write(
            &spec,
            "[scenario]\nversion = 1\nseeds = [1, 2]\n[world]\nstyle = \"mit\"\nnodes = 8\n\
             hours = 6.0\n[workload]\nphotos_per_hour = 10.0\n\
             [schemes]\nnames = [\"best-possible\", \"direct\"]\n",
        )
        .unwrap();
        let out = dir.join("scenario-report.json");
        let journal = dir.join("scenario.journal");
        let base: Vec<String> = vec![
            spec.to_str().unwrap().into(),
            "--out".into(),
            out.to_str().unwrap().into(),
            "--journal".into(),
            journal.to_str().unwrap().into(),
            "--quiet".into(),
        ];
        assert_eq!(run(&base), EXIT_OK);
        let first = std::fs::read_to_string(&out).unwrap();
        assert!(first.contains("\"completed\":4"), "{first}");
        let mut resumed = base.clone();
        resumed.push("--resume".into());
        assert_eq!(run(&resumed), EXIT_OK);
        assert_eq!(first, std::fs::read_to_string(&out).unwrap());
    }

    #[test]
    fn scenario_sweep_rejects_unknown_scheme() {
        let dir = tmp_dir();
        let spec = dir.join("scenario-bad-scheme.toml");
        std::fs::write(
            &spec,
            "[scenario]\nversion = 1\n[schemes]\nnames = [\"no-such\"]\n",
        )
        .unwrap();
        assert_eq!(run(&[spec.to_str().unwrap().into()]), EXIT_BAD_SPEC);
    }

    #[test]
    fn shipped_example_spec_parses_and_plans() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/sweep.toml");
        let text = std::fs::read_to_string(path).expect("examples/sweep.toml readable");
        let spec = SweepSpec::parse(&text).expect("examples/sweep.toml parses");
        for scheme in &spec.schemes {
            assert!(
                photodtn_bench::try_scheme_by_name(scheme).is_some(),
                "example spec names unknown scheme {scheme:?}"
            );
        }
        let plan = spec.plan();
        // 4 schemes x 3 storage variants x 3 seeds.
        assert_eq!(plan.cells.len(), 36);
    }

    /// Every shipped example scenario parses, names only known schemes,
    /// plans, and builds its world end-to-end (trace + simulation for the
    /// first cell) — the files in examples/scenarios/ are living docs and
    /// must not rot.
    #[test]
    fn shipped_example_scenarios_parse_and_build() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/scenarios");
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("examples/scenarios/ readable") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("toml") {
                continue;
            }
            seen += 1;
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(Scenario::is_scenario_text(&text), "{path:?} not a scenario");
            let mut sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            if sc.schemes == ["all"] {
                sc.schemes = ALL_SCHEME_NAMES.iter().map(|s| (*s).to_string()).collect();
            }
            for scheme in &sc.schemes {
                assert!(
                    try_scheme_by_name(scheme).is_some(),
                    "{path:?} names unknown scheme {scheme:?}"
                );
            }
            let plan = sc.plan();
            assert!(!plan.cells.is_empty(), "{path:?} plans no cells");
            let cell = &plan.cells[0];
            let config = plan.config_of(&cell.variant).unwrap();
            let trace = plan
                .build_trace(cell.seed)
                .unwrap_or_else(|e| panic!("{path:?}: building trace: {e}"));
            assert!(!trace.is_empty(), "{path:?} generates a contactless world");
            plan.build_simulation(config, &trace, cell.seed)
                .unwrap_or_else(|e| panic!("{path:?}: building world: {e}"));
        }
        assert!(seen >= 3, "expected the shipped scenario set, saw {seen}");
    }
}
