//! `photodtn` — command-line front end for the photodtn toolkit.
//!
//! ```text
//! photodtn trace gen   --style mit|cambridge|waypoint [--seed N] [--nodes N] [--hours H] [--out FILE]
//! photodtn trace info  FILE
//! photodtn run         --scheme NAME [--trace FILE | --style mit|cambridge] [options]
//! photodtn demo        [--seed N]
//! photodtn schemes
//! ```
//!
//! Run `photodtn help` for the full option list.

use std::process::ExitCode;

mod args;
mod cmd_demo;
mod cmd_inspect;
mod cmd_report;
mod cmd_run;
mod cmd_sweep;
mod cmd_trace;
mod signals;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("photodtn: {e}");
            eprintln!("run `photodtn help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(argv: &[String]) -> Result<ExitCode, String> {
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match argv.first().map(String::as_str) {
        Some("trace") => done(cmd_trace::run(&argv[1..])),
        // run returns its own exit code: 0 ok, 75 gracefully interrupted
        // (a final snapshot was written; rerun with --resume-from).
        Some("run") => cmd_run::run(&argv[1..]).map(ExitCode::from),
        Some("demo") => done(cmd_demo::run(&argv[1..])),
        Some("inspect") => done(cmd_inspect::run(&argv[1..])),
        Some("report") => done(cmd_report::run(&argv[1..])),
        // sweep owns its exit-code contract (0/2/3/4) and prints its own
        // errors — partial failure must be distinguishable in scripts.
        Some("sweep") => Ok(ExitCode::from(cmd_sweep::run(&argv[1..]))),
        Some("schemes") => {
            for name in photodtn_bench::LINEUP
                .iter()
                .chain(&["photonet", "epidemic", "direct", "oracle", "prophet"])
            {
                println!("{name}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

const USAGE: &str = "\
photodtn — resource-aware photo crowdsourcing through DTNs (ICDCS'16 reproduction)

USAGE:
  photodtn trace gen  --style mit|cambridge|waypoint [--seed N] [--nodes N]
                      [--hours H] [--out FILE]
      Generate a synthetic contact trace (text format on stdout or FILE).

  photodtn trace info FILE
      Summarize a contact trace: volume, durations, inter-contact
      statistics and the exponential fit behind the metadata-validity
      model.

  photodtn run [--scenario FILE | --trace FILE | --style mit|cambridge]
               [--scheme NAME] [--seed N] [--hours H]
               [--photos-per-hour R] [--storage-gb G] [--deadline H]
               [--failures F] [--faults K] [--trace-out FILE]
               [--report] [--json]
               [--checkpoint-dir D [--checkpoint-every SIMSECS]
                [--checkpoint-keep K]] [--resume-from D]
      Run one crowdsourcing simulation and print the coverage series.
      --scenario FILE loads the whole world — topology, mobility,
      relays, PoI layout and importance schedule, workload, fault
      plan — from a declarative TOML scenario (see
      examples/scenarios/); the world-shaping flags then live in the
      file and conflict with their CLI spellings. --scheme and
      --seed still override the scenario's defaults, and the
      run-mechanics flags (--shards, checkpoints, --trace-out)
      compose as usual.
      --report adds a full-view analysis of the delivered photos.
      --faults K enables deterministic fault injection at chaos
      intensity K in 0..=1 (contact interruptions, transfer loss and
      corruption, node crash/reboot churn, degraded uplinks) and prints
      the fault counters.
      --trace-out FILE records every engine decision (contacts,
      selections, metadata exchanges, uploads, faults) as JSON lines
      for `photodtn inspect`; the simulated result is byte-identical
      with or without it.
      --checkpoint-dir D snapshots the full simulation state into D
      every --checkpoint-every simulated seconds (default 3600),
      keeping the last --checkpoint-keep rotations (default 3).
      SIGINT/SIGTERM then stop gracefully: the trace sink is flushed,
      a final snapshot is written, and the process exits with code 75.
      --resume-from D continues from the newest snapshot in D; the
      resumed run (same world flags required — snapshots are
      fingerprinted) reproduces the uninterrupted result byte-for-
      byte and keeps checkpointing into D.

  photodtn inspect EVENTS.jsonl [--bins N] [--top N]
      Summarize a --trace-out file: run header, event counts,
      per-node and per-contact-pair tables, and latency /
      buffer-occupancy histograms.

  photodtn sweep SPEC.toml [--out FILE] [--journal FILE] [--resume]
                 [--workers N] [--cell-deadline SECS] [--retries N]
                 [--backoff-ms MS] [--cell-checkpoint SIMSECS]
                 [--sync] [--quiet]
      Run a (scheme \u{d7} config \u{d7} seed) grid under the crash-tolerant
      supervisor. Panicking cells are isolated and never retried,
      hung cells time out against --cell-deadline, transient trace-IO
      failures retry with exponential backoff, and every resolved
      cell is journaled (--sync adds fsync). After a crash or kill,
      rerun with --resume to skip completed cells; the merged report
      is byte-identical to an uninterrupted run. --cell-checkpoint
      additionally snapshots each in-flight cell every SIMSECS
      simulated seconds under {journal}.ckpt/, so retried or rerun
      cells resume mid-run instead of starting over. Exit codes: 0
      all cells ok, 2 bad spec, 3 partial failure, 4 total failure.
      SPEC.toml is either a classic [sweep] grid (examples/sweep.toml)
      or a [scenario] world (examples/scenarios/) — a scenario sweeps
      its [schemes] names over its [grid] axes and seeds.

  photodtn demo [--seed N]
      Run the paper's \u{a7}IV-B prototype demo (Fig. 3) with our scheme,
      PhotoNet and Spray&Wait.

  photodtn report [--faults] FILE...
      Consolidate the JSON blocks from figure-binary outputs into one
      markdown table. --faults adds fault-counter columns for rows
      produced by fault-injected runs.

  photodtn schemes
      List available scheme names.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_schemes_succeed() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["help".into()]).is_ok());
        assert!(dispatch(&["schemes".into()]).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }
}
