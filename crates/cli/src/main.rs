//! `photodtn` — command-line front end for the photodtn toolkit.
//!
//! ```text
//! photodtn trace gen   --style mit|cambridge|waypoint [--seed N] [--nodes N] [--hours H] [--out FILE]
//! photodtn trace info  FILE
//! photodtn run         --scheme NAME [--trace FILE | --style mit|cambridge] [options]
//! photodtn demo        [--seed N]
//! photodtn schemes
//! ```
//!
//! Run `photodtn help` for the full option list.

use std::process::ExitCode;

mod args;
mod cmd_demo;
mod cmd_inspect;
mod cmd_report;
mod cmd_run;
mod cmd_trace;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("photodtn: {e}");
            eprintln!("run `photodtn help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("trace") => cmd_trace::run(&argv[1..]),
        Some("run") => cmd_run::run(&argv[1..]),
        Some("demo") => cmd_demo::run(&argv[1..]),
        Some("inspect") => cmd_inspect::run(&argv[1..]),
        Some("report") => cmd_report::run(&argv[1..]),
        Some("schemes") => {
            for name in photodtn_bench::LINEUP
                .iter()
                .chain(&["photonet", "epidemic", "direct", "oracle", "prophet"])
            {
                println!("{name}");
            }
            Ok(())
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

const USAGE: &str = "\
photodtn — resource-aware photo crowdsourcing through DTNs (ICDCS'16 reproduction)

USAGE:
  photodtn trace gen  --style mit|cambridge|waypoint [--seed N] [--nodes N]
                      [--hours H] [--out FILE]
      Generate a synthetic contact trace (text format on stdout or FILE).

  photodtn trace info FILE
      Summarize a contact trace: volume, durations, inter-contact
      statistics and the exponential fit behind the metadata-validity
      model.

  photodtn run --scheme NAME [--trace FILE | --style mit|cambridge]
               [--seed N] [--hours H] [--photos-per-hour R]
               [--storage-gb G] [--deadline H] [--failures F]
               [--faults K] [--trace-out FILE] [--report] [--json]
      Run one crowdsourcing simulation and print the coverage series.
      --report adds a full-view analysis of the delivered photos.
      --faults K enables deterministic fault injection at chaos
      intensity K in 0..=1 (contact interruptions, transfer loss and
      corruption, node crash/reboot churn, degraded uplinks) and prints
      the fault counters.
      --trace-out FILE records every engine decision (contacts,
      selections, metadata exchanges, uploads, faults) as JSON lines
      for `photodtn inspect`; the simulated result is byte-identical
      with or without it.

  photodtn inspect EVENTS.jsonl [--bins N] [--top N]
      Summarize a --trace-out file: run header, event counts,
      per-node and per-contact-pair tables, and latency /
      buffer-occupancy histograms.

  photodtn demo [--seed N]
      Run the paper's \u{a7}IV-B prototype demo (Fig. 3) with our scheme,
      PhotoNet and Spray&Wait.

  photodtn report [--faults] FILE...
      Consolidate the JSON blocks from figure-binary outputs into one
      markdown table. --faults adds fault-counter columns for rows
      produced by fault-injected runs.

  photodtn schemes
      List available scheme names.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_schemes_succeed() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["help".into()]).is_ok());
        assert!(dispatch(&["schemes".into()]).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }
}
