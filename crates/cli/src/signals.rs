//! Graceful-stop signal handling for checkpointed runs.
//!
//! SIGINT/SIGTERM set the engine's stop flag; the run flushes its trace
//! sink, writes a final snapshot at the next event boundary, and exits
//! with code 75 (EX_TEMPFAIL: "try again later" — i.e. resume with
//! `--resume-from`). A second signal during shutdown is harmless: the
//! flag is already set.
//!
//! The handler must be async-signal-safe, so it does exactly one atomic
//! store ([`photodtn_sim::checkpoint::request_stop`]) — no allocation,
//! no locks, no I/O.

/// Installs SIGINT and SIGTERM handlers that request a graceful stop.
///
/// Only installed when the run actually checkpoints: a plain run keeps
/// the default die-on-signal behavior.
#[cfg(unix)]
pub fn install_graceful_stop() {
    extern "C" fn on_signal(_signum: i32) {
        photodtn_sim::checkpoint::request_stop();
    }
    // Minimal libc-free binding: `signal(2)` returns the previous
    // handler, which we do not need.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No signals to hook on non-Unix targets; `--halt-after` still works.
#[cfg(not(unix))]
pub fn install_graceful_stop() {}
