//! `photodtn run` — one simulation with a chosen scheme and knobs.

use std::path::Path;

use photodtn_bench::scheme_by_name;
use photodtn_contacts::parse_trace;
use photodtn_contacts::synth::{CommunityTraceGenerator, MetroTraceGenerator, TraceStyle};
use photodtn_coverage::fullview::{redundancy_degrees, FullViewReport};
use photodtn_coverage::PhotoMeta;
use photodtn_sim::{
    checkpoint, CheckpointPolicy, FaultConfig, JsonlSink, Scenario, SimConfig, Simulation,
};

use crate::args::{Flags, Spec};

const GB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Exit code of a gracefully interrupted checkpointed run (EX_TEMPFAIL:
/// rerun with `--resume-from` to continue).
pub const EXIT_INTERRUPTED: u8 = 75;

const SPEC: Spec = Spec {
    values: &[
        "scenario",
        "scheme",
        "seed",
        "trace",
        "style",
        "hours",
        "nodes",
        "photos-per-hour",
        "storage-gb",
        "deadline",
        "failures",
        "faults",
        "trace-out",
        "shards",
        "checkpoint-every",
        "checkpoint-dir",
        "checkpoint-keep",
        "resume-from",
        "halt-after",
    ],
    switches: &["report", "json", "perf", "trace-sync"],
};

/// The value flags that shape the simulated world; everything a snapshot
/// fingerprint covers. Reproduced in error messages when a resume's
/// flags disagree with the snapshot's.
const WORLD_FLAGS: &[&str] = &[
    "trace",
    "style",
    "hours",
    "nodes",
    "photos-per-hour",
    "storage-gb",
    "deadline",
    "failures",
    "faults",
];

/// A canonical human-readable description of the run's world, embedded
/// in snapshots so fingerprint mismatches can say what the snapshot was
/// actually written for.
fn describe_world(flags: &Flags, scheme: &str, seed: u64) -> String {
    let mut out = format!("photodtn run --scheme {scheme} --seed {seed}");
    for name in WORLD_FLAGS {
        if let Some(v) = flags.get(name) {
            out.push_str(&format!(" --{name} {v}"));
        }
    }
    out
}

pub fn run(argv: &[String]) -> Result<u8, String> {
    let flags = Flags::parse(argv, &SPEC)?;

    // --scenario FILE: the whole world comes from a declarative TOML
    // scenario; the world-shaping flags would silently fight it, so they
    // are rejected outright. --scheme/--seed (and the run-mechanics
    // flags: shards, checkpoints, tracing) still compose.
    let scenario = match flags.get("scenario") {
        Some(path) => {
            for name in WORLD_FLAGS {
                if flags.get(name).is_some() {
                    return Err(format!(
                        "run: --{name} conflicts with --scenario (declare it in the file)"
                    ));
                }
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Some(Scenario::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };

    let scheme_name = match (flags.get("scheme"), &scenario) {
        (Some(name), _) => name,
        (None, Some(sc)) => sc.schemes.first().map(String::as_str).unwrap_or("ours"),
        (None, None) => "ours",
    };
    let default_seed = scenario.as_ref().map_or(1, |sc| sc.seed);
    let seed: u64 = flags.num("seed", default_seed)?;

    // the trace: a scenario world, a file, or a synthetic style
    let trace = match (&scenario, flags.get("trace")) {
        (Some(sc), _) => sc.build_trace(seed).map_err(|e| format!("run: {e}"))?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_trace(&text).map_err(|e| e.to_string())?
        }
        (None, None) => match flags.get("style").unwrap_or("mit") {
            "metro" => {
                let mut gen = MetroTraceGenerator::new();
                if flags.get("hours").is_some() {
                    gen = gen.with_duration_hours(flags.num("hours", 0.0)?);
                }
                if flags.get("nodes").is_some() {
                    gen = gen.with_num_nodes(flags.num("nodes", 0u32)?);
                }
                gen.generate(seed)
            }
            style => {
                let style = match style {
                    "mit" => TraceStyle::MitLike,
                    "cambridge" => TraceStyle::CambridgeLike,
                    other => return Err(format!("run: unknown style {other:?}")),
                };
                let mut gen = CommunityTraceGenerator::new(style);
                if flags.get("hours").is_some() {
                    gen = gen.with_duration_hours(flags.num("hours", 0.0)?);
                }
                if flags.get("nodes").is_some() {
                    gen = gen.with_num_nodes(flags.num("nodes", 0u32)?);
                }
                gen.generate(seed)
            }
        },
    };

    let mut config = match &scenario {
        Some(sc) => sc.base.clone(),
        None => SimConfig::mit_default().with_photos_per_hour(flags.num("photos-per-hour", 250.0)?),
    };
    if flags.get("storage-gb").is_some() {
        config = config.with_storage_bytes((flags.num("storage-gb", 0.6)? * GB) as u64);
    }
    if flags.get("deadline").is_some() {
        config = config.with_deadline_hours(flags.num("deadline", 0.0)?);
    }
    if flags.get("failures").is_some() {
        config = config.with_failure_fraction(flags.num("failures", 0.0)?);
    }
    // A scenario's [faults] intensity survives as the chaos preset's
    // interrupt probability (0.5 × k); recover it for the summary line.
    let mut fault_intensity: f64 = config.faults.contact_interrupt_prob * 2.0;
    if flags.get("faults").is_some() {
        fault_intensity = flags.num("faults", 0.0)?;
        if !(0.0..=1.0).contains(&fault_intensity) {
            return Err(format!(
                "run: --faults must be an intensity in 0..=1, got {fault_intensity}"
            ));
        }
        if fault_intensity > 0.0 {
            config = config.with_faults(FaultConfig::chaos(fault_intensity));
        }
    }
    // 0 auto-sizes to the machine's cores; 1 (the default) stays on the
    // plain sequential path.
    if flags.get("shards").is_some() {
        config = config.with_shards(flags.num("shards", 1usize)?);
    }

    // --- checkpoint / resume flag-compatibility matrix ---
    let resume_dir = flags.get("resume-from");
    let ckpt_dir_flag = flags.get("checkpoint-dir");
    for dependent in ["checkpoint-every", "checkpoint-keep", "halt-after"] {
        if flags.get(dependent).is_some() && ckpt_dir_flag.is_none() && resume_dir.is_none() {
            return Err(format!(
                "run: --{dependent} needs --checkpoint-dir (or --resume-from)"
            ));
        }
    }
    if let (Some(r), Some(c)) = (resume_dir, ckpt_dir_flag) {
        if r != c {
            return Err(format!(
                "run: --resume-from {r} conflicts with --checkpoint-dir {c}: a resumed \
                 run keeps checkpointing into its own directory (did you mean just \
                 --resume-from {r}?)"
            ));
        }
    }
    // A resumed run keeps checkpointing into the directory it resumed
    // from, so a second interruption is also resumable.
    let ckpt_dir = resume_dir.or(ckpt_dir_flag);

    let mut scheme = scheme_by_name(scheme_name);
    let mut sim = match &scenario {
        Some(sc) => sc
            .build_simulation(&config, &trace, seed)
            .map_err(|e| format!("run: {e}"))?,
        None => Simulation::try_new(&config, &trace, seed).map_err(|e| format!("run: {e}"))?,
    };
    if let Some(sc) = &scenario {
        if !sc.pois.phases.is_empty() && config.shards != 1 {
            eprintln!("note: the PoI schedule forces the sequential path; --shards is ignored");
        }
    }

    // The fingerprint binds snapshots to this exact (config, trace,
    // seed, scheme) world; conflicting world flags on resume surface as
    // a typed mismatch error from the loader, never a panic. Scenario
    // worlds fold in the scenario text's fingerprint too — PoI weights
    // and schedules live outside SimConfig, so two scenarios sharing a
    // config must not cross-resume each other's snapshots.
    let world = match (&scenario, flags.get("scenario")) {
        (Some(_), Some(path)) => {
            format!("photodtn run --scenario {path} --scheme {scheme_name} --seed {seed}")
        }
        _ => describe_world(&flags, scheme_name, seed),
    };
    let mut fingerprint = checkpoint::run_fingerprint(&config, &trace, seed, scheme_name);
    if let Some(sc) = &scenario {
        fingerprint ^= sc.fingerprint;
    }

    let resume_payload = match resume_dir {
        Some(dir) => {
            let (payload, path) = checkpoint::load_latest(Path::new(dir), Some(fingerprint))
                .map_err(|e| format!("run: {e}"))?;
            eprintln!(
                "resuming from {} (event {}, t = {:.0} s)",
                path.display(),
                payload.next_event_idx,
                payload.now
            );
            Some(payload)
        }
        None => None,
    };

    if let Some(path) = flags.get("trace-out") {
        let sink = match &resume_payload {
            // Truncate any trace lines past the snapshot's sequence
            // number, then append: the resumed file is byte-identical
            // to an uninterrupted traced run.
            Some(payload) => JsonlSink::resume_append(path, payload.trace_seq)
                .map_err(|e| format!("run: resuming trace {path}: {e}"))?,
            None => JsonlSink::create(path).map_err(|e| format!("run: opening {path}: {e}"))?,
        }
        .with_sync(flags.has("trace-sync"));
        sim.set_trace_sink(Box::new(sink));
        eprintln!("tracing run events to {path}");
        if config.shards != 1 {
            eprintln!("note: tracing forces the sequential path; --shards is ignored");
        }
    } else if flags.has("trace-sync") {
        return Err("run: --trace-sync requires --trace-out".into());
    }

    if let Some(dir) = ckpt_dir {
        let every: f64 = flags.num("checkpoint-every", 3600.0)?;
        let keep: usize = flags.num("checkpoint-keep", 3usize)?;
        let mut policy = CheckpointPolicy::new(dir, every, fingerprint, world).with_keep(keep);
        if flags.get("halt-after").is_some() {
            policy = policy.with_halt_after(flags.num("halt-after", 0.0)?);
        }
        sim.set_checkpoints(policy);
        checkpoint::reset_stop();
        crate::signals::install_graceful_stop();
        eprintln!("checkpointing every {every} sim-seconds to {dir} (keep {keep})");
        if config.shards != 1 && flags.get("trace-out").is_none() {
            eprintln!("note: checkpointing forces the sequential path; --shards is ignored");
        }
    }

    if let Some(payload) = resume_payload {
        sim.resume_from(payload, &scheme)
            .map_err(|e| format!("run: {e}"))?;
    }

    eprintln!(
        "running {scheme_name} on {} nodes / {} events (seed {seed})…",
        trace.num_nodes(),
        sim.event_count()
    );
    let pois = sim.pois_shared();
    let (result, delivered, stats) = sim.run_instrumented(&mut scheme);

    if stats.interrupted {
        let dir = ckpt_dir.expect("only checkpointed runs can be interrupted");
        eprintln!(
            "run interrupted; a final snapshot is in {dir} — continue with \
             `photodtn run --resume-from {dir}` plus the same world flags"
        );
        return Ok(EXIT_INTERRUPTED);
    }

    println!(
        "{:>7} {:>9} {:>10} {:>11}",
        "t (h)", "point%", "aspect°", "delivered"
    );
    let step = (result.samples.len() / 12).max(1);
    for s in result.samples.iter().step_by(step) {
        println!(
            "{:>7.0} {:>8.1}% {:>9.1}° {:>11}",
            s.t_hours,
            100.0 * s.point_coverage,
            s.aspect_coverage_deg,
            s.delivered_photos
        );
    }

    if !config.faults.is_noop() {
        let f = result.final_sample();
        println!("\nfault injection (intensity {fault_intensity}):");
        println!("  contacts interrupted : {}", f.contacts_interrupted);
        println!("  transfers lost       : {}", f.transfers_lost);
        println!("  transfers corrupt    : {}", f.transfers_corrupt);
        println!("  node crashes         : {}", f.node_crashes);
        println!("  uplinks degraded     : {}", f.uplinks_degraded);
    }

    if flags.has("perf") {
        println!("\nperformance (wall clock; not part of the deterministic result):");
        println!("  wall clock     : {:.3} s", stats.wall_seconds());
        println!(
            "  events         : {} ({:.0} events/s)",
            stats.events,
            stats.events_per_sec()
        );
        println!(
            "  contacts       : {} ({:.0} ns/contact)",
            stats.contacts,
            stats.ns_per_contact()
        );
        println!("  uploads        : {}", stats.uploads);
        println!("  shard workers  : {}", stats.workers);
        println!(
            "  coverage cache : {} hits / {} misses ({:.1}% hit rate, {} evictions)",
            stats.cache.hits,
            stats.cache.misses,
            100.0 * stats.cache.hit_rate(),
            stats.cache.evictions
        );
    }

    if flags.has("report") {
        let metas: Vec<PhotoMeta> = delivered.metas().copied().collect();
        let report = FullViewReport::analyze(&pois, metas.iter(), config.coverage);
        println!("\nfull-view report on the delivered set:");
        println!(
            "  point-covered PoIs : {}/{}",
            report.point_covered_count(),
            pois.len()
        );
        println!("  full-view PoIs     : {}", report.full_view_count());
        println!(
            "  aspect redundancy  : {:.1}° total overlap across {} photos",
            redundancy_degrees(&pois, &metas, config.coverage),
            metas.len()
        );
        if let Some(worst) = report.tasking_priorities().first() {
            println!(
                "  neediest PoI       : {} ({:.0}° covered, biggest gap {:.0}° around {})",
                worst.poi,
                worst.aspect.to_degrees(),
                worst.largest_gap.to_degrees(),
                worst.gap_center
            );
        }
    }

    if flags.has("json") {
        let f = result.final_sample();
        // Only emit the fault counters when injection is on, so zero-fault
        // output stays byte-compatible with earlier versions.
        let mut value = if config.faults.is_noop() {
            serde_json::json!({
                "scheme": result.scheme,
                "seed": seed,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
            })
        } else {
            serde_json::json!({
                "scheme": result.scheme,
                "seed": seed,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
                "fault_intensity": fault_intensity,
                "contacts_interrupted": f.contacts_interrupted,
                "transfers_lost": f.transfers_lost,
                "transfers_corrupt": f.transfers_corrupt,
                "node_crashes": f.node_crashes,
                "uplinks_degraded": f.uplinks_degraded,
            })
        };
        // Perf numbers are wall-clock (nondeterministic), so they join
        // the JSON only on request — default output stays byte-stable.
        if flags.has("perf") {
            let serde_json::Value::Object(obj) = &mut value else {
                unreachable!("run JSON is an object");
            };
            obj.insert("cache_hits".into(), serde_json::json!(stats.cache.hits));
            obj.insert("cache_misses".into(), serde_json::json!(stats.cache.misses));
            obj.insert(
                "cache_hit_rate".into(),
                serde_json::json!(stats.cache.hit_rate()),
            );
            obj.insert("events".into(), serde_json::json!(stats.events));
            obj.insert(
                "events_per_sec".into(),
                serde_json::json!(stats.events_per_sec()),
            );
            obj.insert(
                "wall_seconds".into(),
                serde_json::json!(stats.wall_seconds()),
            );
        }
        println!("{value}");
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn small_run_each_knob() {
        run(&argv(
            "--scheme spray-wait --style mit --nodes 8 --hours 6 --photos-per-hour 10 \
             --storage-gb 0.1 --deadline 5 --failures 0.2 --seed 2 --report --json --perf",
        ))
        .unwrap();
    }

    #[test]
    fn metro_style_sharded_run() {
        run(&argv(
            "--scheme ours --style metro --nodes 300 --hours 1 --photos-per-hour 50 \
             --shards 2 --seed 2 --json --perf",
        ))
        .unwrap();
    }

    #[test]
    fn unknown_scheme_panics_cleanly() {
        // scheme_by_name panics on unknown names; ensure the flag reaches it
        let result = std::panic::catch_unwind(|| {
            run(&argv("--scheme bogus --style mit --nodes 6 --hours 2"))
        });
        assert!(result.is_err());
    }

    #[test]
    fn bad_trace_file() {
        assert!(run(&argv("--trace /nonexistent.trace")).is_err());
    }

    #[test]
    fn faulted_run_emits_counters() {
        run(&argv(
            "--scheme ours --style mit --nodes 8 --hours 6 --photos-per-hour 10 \
             --faults 0.6 --seed 3 --json",
        ))
        .unwrap();
    }

    #[test]
    fn faults_out_of_range_rejected() {
        let err = run(&argv("--style mit --nodes 6 --hours 2 --faults 1.5")).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("photodtn-run-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scenario_run_end_to_end() {
        let dir = tmp_dir("scenario");
        let path = dir.join("world.toml");
        std::fs::write(
            &path,
            "[scenario]\nversion = 1\nseed = 2\n[world]\nstyle = \"mit\"\nnodes = 8\nhours = 6\n\
             [workload]\nphotos_per_hour = 10\n[schemes]\nnames = [\"spray-wait\"]\n",
        )
        .unwrap();
        let code = run(&[
            "--scenario".into(),
            path.to_str().unwrap().into(),
            "--json".into(),
        ])
        .unwrap();
        assert_eq!(code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_conflicts_with_world_flags() {
        let dir = tmp_dir("scenario-conflict");
        let path = dir.join("world.toml");
        std::fs::write(&path, "[scenario]\nversion = 1\n").unwrap();
        for flag in ["--style mit", "--nodes 8", "--hours 4", "--faults 0.5"] {
            let mut args: Vec<String> = vec!["--scenario".into(), path.to_str().unwrap().into()];
            args.extend(flag.split_whitespace().map(String::from));
            let err = run(&args).unwrap_err();
            assert!(err.contains("conflicts with --scenario"), "{flag}: {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_parse_errors_name_the_file() {
        let dir = tmp_dir("scenario-bad");
        let path = dir.join("bad.toml");
        std::fs::write(&path, "[scenario]\nversion = 99\n").unwrap();
        let err = run(&["--scenario".into(), path.to_str().unwrap().into()]).unwrap_err();
        assert!(
            err.contains("bad.toml") && err.contains("unsupported"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The `--shards` × `--checkpoint-dir`/`--resume-from` compatibility
    /// matrix, as documented: every dependent checkpoint flag needs a
    /// directory, resume and checkpoint directories must agree, and
    /// shards compose with checkpointing (the engine falls back to the
    /// sequential path with a stderr note rather than erroring).
    #[test]
    fn checkpoint_shards_flag_matrix() {
        let dir = tmp_dir("flag-matrix");
        let ckpt = dir.join("ckpt");
        let ckpt = ckpt.to_str().unwrap();
        let world =
            "--scheme best-possible --style mit --nodes 8 --hours 6 --photos-per-hour 10 --seed 2";

        // Dependent flags without a directory: rejected.
        for dependent in [
            "--checkpoint-every 600",
            "--checkpoint-keep 2",
            "--halt-after 3600",
        ] {
            let err = run(&argv(&format!("{world} {dependent}"))).unwrap_err();
            assert!(err.contains("--checkpoint-dir"), "{dependent}: {err}");
        }
        // Disagreeing resume/checkpoint directories: rejected.
        let err = run(&argv(&format!(
            "{world} --resume-from {ckpt} --checkpoint-dir {dir}/other",
            dir = dir.display()
        )))
        .unwrap_err();
        assert!(err.contains("conflicts"), "{err}");

        // Checkpointing alone, sharded checkpointing, and sharded
        // checkpointing with every dependent flag: all accepted, and the
        // sharded spellings produce the same world (sequential fallback).
        for accepted in [
            format!("{world} --checkpoint-dir {ckpt}"),
            format!("{world} --shards 2 --checkpoint-dir {ckpt}"),
            format!("{world} --shards 2 --checkpoint-dir {ckpt} --checkpoint-every 600 --checkpoint-keep 2"),
        ] {
            assert_eq!(run(&argv(&accepted)).unwrap(), 0, "{accepted}");
        }
        // Plain sharding without checkpoints still works.
        assert_eq!(run(&argv(&format!("{world} --shards 2"))).unwrap(), 0);
        // Resuming from the snapshots the accepted runs left behind,
        // sharded and not, completes cleanly too.
        for resumed in [
            format!("{world} --resume-from {ckpt}"),
            format!("{world} --shards 2 --resume-from {ckpt}"),
        ] {
            assert_eq!(run(&argv(&resumed)).unwrap(), 0, "{resumed}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_trace_is_a_clean_error_not_a_panic() {
        let dir = std::env::temp_dir().join("photodtn-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.trace");
        std::fs::write(&path, "# a trace with no contacts\n").unwrap();
        let err = run(&["--trace".into(), path.to_str().unwrap().into()]).unwrap_err();
        assert!(err.contains("no nodes"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
