//! `photodtn run` — one simulation with a chosen scheme and knobs.

use std::path::Path;

use photodtn_bench::scheme_by_name;
use photodtn_contacts::parse_trace;
use photodtn_contacts::synth::{CommunityTraceGenerator, MetroTraceGenerator, TraceStyle};
use photodtn_coverage::fullview::{redundancy_degrees, FullViewReport};
use photodtn_coverage::PhotoMeta;
use photodtn_sim::{checkpoint, CheckpointPolicy, FaultConfig, JsonlSink, SimConfig, Simulation};

use crate::args::{Flags, Spec};

const GB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Exit code of a gracefully interrupted checkpointed run (EX_TEMPFAIL:
/// rerun with `--resume-from` to continue).
pub const EXIT_INTERRUPTED: u8 = 75;

const SPEC: Spec = Spec {
    values: &[
        "scheme",
        "seed",
        "trace",
        "style",
        "hours",
        "nodes",
        "photos-per-hour",
        "storage-gb",
        "deadline",
        "failures",
        "faults",
        "trace-out",
        "shards",
        "checkpoint-every",
        "checkpoint-dir",
        "checkpoint-keep",
        "resume-from",
        "halt-after",
    ],
    switches: &["report", "json", "perf", "trace-sync"],
};

/// The value flags that shape the simulated world; everything a snapshot
/// fingerprint covers. Reproduced in error messages when a resume's
/// flags disagree with the snapshot's.
const WORLD_FLAGS: &[&str] = &[
    "trace",
    "style",
    "hours",
    "nodes",
    "photos-per-hour",
    "storage-gb",
    "deadline",
    "failures",
    "faults",
];

/// A canonical human-readable description of the run's world, embedded
/// in snapshots so fingerprint mismatches can say what the snapshot was
/// actually written for.
fn describe_world(flags: &Flags, scheme: &str, seed: u64) -> String {
    let mut out = format!("photodtn run --scheme {scheme} --seed {seed}");
    for name in WORLD_FLAGS {
        if let Some(v) = flags.get(name) {
            out.push_str(&format!(" --{name} {v}"));
        }
    }
    out
}

pub fn run(argv: &[String]) -> Result<u8, String> {
    let flags = Flags::parse(argv, &SPEC)?;
    let scheme_name = flags.get("scheme").unwrap_or("ours");
    let seed: u64 = flags.num("seed", 1)?;

    // the trace: a file, or a synthetic style
    let trace = match flags.get("trace") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_trace(&text).map_err(|e| e.to_string())?
        }
        None => match flags.get("style").unwrap_or("mit") {
            "metro" => {
                let mut gen = MetroTraceGenerator::new();
                if flags.get("hours").is_some() {
                    gen = gen.with_duration_hours(flags.num("hours", 0.0)?);
                }
                if flags.get("nodes").is_some() {
                    gen = gen.with_num_nodes(flags.num("nodes", 0u32)?);
                }
                gen.generate(seed)
            }
            style => {
                let style = match style {
                    "mit" => TraceStyle::MitLike,
                    "cambridge" => TraceStyle::CambridgeLike,
                    other => return Err(format!("run: unknown style {other:?}")),
                };
                let mut gen = CommunityTraceGenerator::new(style);
                if flags.get("hours").is_some() {
                    gen = gen.with_duration_hours(flags.num("hours", 0.0)?);
                }
                if flags.get("nodes").is_some() {
                    gen = gen.with_num_nodes(flags.num("nodes", 0u32)?);
                }
                gen.generate(seed)
            }
        },
    };

    let mut config = SimConfig::mit_default();
    config = config.with_photos_per_hour(flags.num("photos-per-hour", 250.0)?);
    if flags.get("storage-gb").is_some() {
        config = config.with_storage_bytes((flags.num("storage-gb", 0.6)? * GB) as u64);
    }
    if flags.get("deadline").is_some() {
        config = config.with_deadline_hours(flags.num("deadline", 0.0)?);
    }
    if flags.get("failures").is_some() {
        config = config.with_failure_fraction(flags.num("failures", 0.0)?);
    }
    let fault_intensity: f64 = flags.num("faults", 0.0)?;
    if !(0.0..=1.0).contains(&fault_intensity) {
        return Err(format!(
            "run: --faults must be an intensity in 0..=1, got {fault_intensity}"
        ));
    }
    if fault_intensity > 0.0 {
        config = config.with_faults(FaultConfig::chaos(fault_intensity));
    }
    // 0 auto-sizes to the machine's cores; 1 (the default) stays on the
    // plain sequential path.
    if flags.get("shards").is_some() {
        config = config.with_shards(flags.num("shards", 1usize)?);
    }

    // --- checkpoint / resume flag-compatibility matrix ---
    let resume_dir = flags.get("resume-from");
    let ckpt_dir_flag = flags.get("checkpoint-dir");
    for dependent in ["checkpoint-every", "checkpoint-keep", "halt-after"] {
        if flags.get(dependent).is_some() && ckpt_dir_flag.is_none() && resume_dir.is_none() {
            return Err(format!(
                "run: --{dependent} needs --checkpoint-dir (or --resume-from)"
            ));
        }
    }
    if let (Some(r), Some(c)) = (resume_dir, ckpt_dir_flag) {
        if r != c {
            return Err(format!(
                "run: --resume-from {r} conflicts with --checkpoint-dir {c}: a resumed \
                 run keeps checkpointing into its own directory (did you mean just \
                 --resume-from {r}?)"
            ));
        }
    }
    // A resumed run keeps checkpointing into the directory it resumed
    // from, so a second interruption is also resumable.
    let ckpt_dir = resume_dir.or(ckpt_dir_flag);

    let mut scheme = scheme_by_name(scheme_name);
    let mut sim = Simulation::try_new(&config, &trace, seed).map_err(|e| format!("run: {e}"))?;

    // The fingerprint binds snapshots to this exact (config, trace,
    // seed, scheme) world; conflicting world flags on resume surface as
    // a typed mismatch error from the loader, never a panic.
    let world = describe_world(&flags, scheme_name, seed);
    let fingerprint = checkpoint::run_fingerprint(&config, &trace, seed, scheme_name);

    let resume_payload = match resume_dir {
        Some(dir) => {
            let (payload, path) = checkpoint::load_latest(Path::new(dir), Some(fingerprint))
                .map_err(|e| format!("run: {e}"))?;
            eprintln!(
                "resuming from {} (event {}, t = {:.0} s)",
                path.display(),
                payload.next_event_idx,
                payload.now
            );
            Some(payload)
        }
        None => None,
    };

    if let Some(path) = flags.get("trace-out") {
        let sink = match &resume_payload {
            // Truncate any trace lines past the snapshot's sequence
            // number, then append: the resumed file is byte-identical
            // to an uninterrupted traced run.
            Some(payload) => JsonlSink::resume_append(path, payload.trace_seq)
                .map_err(|e| format!("run: resuming trace {path}: {e}"))?,
            None => JsonlSink::create(path).map_err(|e| format!("run: opening {path}: {e}"))?,
        }
        .with_sync(flags.has("trace-sync"));
        sim.set_trace_sink(Box::new(sink));
        eprintln!("tracing run events to {path}");
        if config.shards != 1 {
            eprintln!("note: tracing forces the sequential path; --shards is ignored");
        }
    } else if flags.has("trace-sync") {
        return Err("run: --trace-sync requires --trace-out".into());
    }

    if let Some(dir) = ckpt_dir {
        let every: f64 = flags.num("checkpoint-every", 3600.0)?;
        let keep: usize = flags.num("checkpoint-keep", 3usize)?;
        let mut policy = CheckpointPolicy::new(dir, every, fingerprint, world).with_keep(keep);
        if flags.get("halt-after").is_some() {
            policy = policy.with_halt_after(flags.num("halt-after", 0.0)?);
        }
        sim.set_checkpoints(policy);
        checkpoint::reset_stop();
        crate::signals::install_graceful_stop();
        eprintln!("checkpointing every {every} sim-seconds to {dir} (keep {keep})");
        if config.shards != 1 && flags.get("trace-out").is_none() {
            eprintln!("note: checkpointing forces the sequential path; --shards is ignored");
        }
    }

    if let Some(payload) = resume_payload {
        sim.resume_from(payload, &scheme)
            .map_err(|e| format!("run: {e}"))?;
    }

    eprintln!(
        "running {scheme_name} on {} nodes / {} events (seed {seed})…",
        trace.num_nodes(),
        sim.event_count()
    );
    let pois = sim.pois_shared();
    let (result, delivered, stats) = sim.run_instrumented(&mut scheme);

    if stats.interrupted {
        let dir = ckpt_dir.expect("only checkpointed runs can be interrupted");
        eprintln!(
            "run interrupted; a final snapshot is in {dir} — continue with \
             `photodtn run --resume-from {dir}` plus the same world flags"
        );
        return Ok(EXIT_INTERRUPTED);
    }

    println!(
        "{:>7} {:>9} {:>10} {:>11}",
        "t (h)", "point%", "aspect°", "delivered"
    );
    let step = (result.samples.len() / 12).max(1);
    for s in result.samples.iter().step_by(step) {
        println!(
            "{:>7.0} {:>8.1}% {:>9.1}° {:>11}",
            s.t_hours,
            100.0 * s.point_coverage,
            s.aspect_coverage_deg,
            s.delivered_photos
        );
    }

    if !config.faults.is_noop() {
        let f = result.final_sample();
        println!("\nfault injection (intensity {fault_intensity}):");
        println!("  contacts interrupted : {}", f.contacts_interrupted);
        println!("  transfers lost       : {}", f.transfers_lost);
        println!("  transfers corrupt    : {}", f.transfers_corrupt);
        println!("  node crashes         : {}", f.node_crashes);
        println!("  uplinks degraded     : {}", f.uplinks_degraded);
    }

    if flags.has("perf") {
        println!("\nperformance (wall clock; not part of the deterministic result):");
        println!("  wall clock     : {:.3} s", stats.wall_seconds());
        println!(
            "  events         : {} ({:.0} events/s)",
            stats.events,
            stats.events_per_sec()
        );
        println!(
            "  contacts       : {} ({:.0} ns/contact)",
            stats.contacts,
            stats.ns_per_contact()
        );
        println!("  uploads        : {}", stats.uploads);
        println!("  shard workers  : {}", stats.workers);
        println!(
            "  coverage cache : {} hits / {} misses ({:.1}% hit rate, {} evictions)",
            stats.cache.hits,
            stats.cache.misses,
            100.0 * stats.cache.hit_rate(),
            stats.cache.evictions
        );
    }

    if flags.has("report") {
        let metas: Vec<PhotoMeta> = delivered.metas().copied().collect();
        let report = FullViewReport::analyze(&pois, metas.iter(), config.coverage);
        println!("\nfull-view report on the delivered set:");
        println!(
            "  point-covered PoIs : {}/{}",
            report.point_covered_count(),
            pois.len()
        );
        println!("  full-view PoIs     : {}", report.full_view_count());
        println!(
            "  aspect redundancy  : {:.1}° total overlap across {} photos",
            redundancy_degrees(&pois, &metas, config.coverage),
            metas.len()
        );
        if let Some(worst) = report.tasking_priorities().first() {
            println!(
                "  neediest PoI       : {} ({:.0}° covered, biggest gap {:.0}° around {})",
                worst.poi,
                worst.aspect.to_degrees(),
                worst.largest_gap.to_degrees(),
                worst.gap_center
            );
        }
    }

    if flags.has("json") {
        let f = result.final_sample();
        // Only emit the fault counters when injection is on, so zero-fault
        // output stays byte-compatible with earlier versions.
        let mut value = if config.faults.is_noop() {
            serde_json::json!({
                "scheme": result.scheme,
                "seed": seed,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
            })
        } else {
            serde_json::json!({
                "scheme": result.scheme,
                "seed": seed,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
                "fault_intensity": fault_intensity,
                "contacts_interrupted": f.contacts_interrupted,
                "transfers_lost": f.transfers_lost,
                "transfers_corrupt": f.transfers_corrupt,
                "node_crashes": f.node_crashes,
                "uplinks_degraded": f.uplinks_degraded,
            })
        };
        // Perf numbers are wall-clock (nondeterministic), so they join
        // the JSON only on request — default output stays byte-stable.
        if flags.has("perf") {
            let serde_json::Value::Object(obj) = &mut value else {
                unreachable!("run JSON is an object");
            };
            obj.insert("cache_hits".into(), serde_json::json!(stats.cache.hits));
            obj.insert("cache_misses".into(), serde_json::json!(stats.cache.misses));
            obj.insert(
                "cache_hit_rate".into(),
                serde_json::json!(stats.cache.hit_rate()),
            );
            obj.insert("events".into(), serde_json::json!(stats.events));
            obj.insert(
                "events_per_sec".into(),
                serde_json::json!(stats.events_per_sec()),
            );
            obj.insert(
                "wall_seconds".into(),
                serde_json::json!(stats.wall_seconds()),
            );
        }
        println!("{value}");
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn small_run_each_knob() {
        run(&argv(
            "--scheme spray-wait --style mit --nodes 8 --hours 6 --photos-per-hour 10 \
             --storage-gb 0.1 --deadline 5 --failures 0.2 --seed 2 --report --json --perf",
        ))
        .unwrap();
    }

    #[test]
    fn metro_style_sharded_run() {
        run(&argv(
            "--scheme ours --style metro --nodes 300 --hours 1 --photos-per-hour 50 \
             --shards 2 --seed 2 --json --perf",
        ))
        .unwrap();
    }

    #[test]
    fn unknown_scheme_panics_cleanly() {
        // scheme_by_name panics on unknown names; ensure the flag reaches it
        let result = std::panic::catch_unwind(|| {
            run(&argv("--scheme bogus --style mit --nodes 6 --hours 2"))
        });
        assert!(result.is_err());
    }

    #[test]
    fn bad_trace_file() {
        assert!(run(&argv("--trace /nonexistent.trace")).is_err());
    }

    #[test]
    fn faulted_run_emits_counters() {
        run(&argv(
            "--scheme ours --style mit --nodes 8 --hours 6 --photos-per-hour 10 \
             --faults 0.6 --seed 3 --json",
        ))
        .unwrap();
    }

    #[test]
    fn faults_out_of_range_rejected() {
        let err = run(&argv("--style mit --nodes 6 --hours 2 --faults 1.5")).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
    }

    #[test]
    fn empty_trace_is_a_clean_error_not_a_panic() {
        let dir = std::env::temp_dir().join("photodtn-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.trace");
        std::fs::write(&path, "# a trace with no contacts\n").unwrap();
        let err = run(&["--trace".into(), path.to_str().unwrap().into()]).unwrap_err();
        assert!(err.contains("no nodes"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
