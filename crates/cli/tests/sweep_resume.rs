//! Kill-and-resume integration tests for `photodtn sweep`: SIGKILL a
//! sweep mid-batch, resume it, and require the merged report to be
//! byte-identical to an uninterrupted run — including recovery from a
//! torn journal tail.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SPEC_TEXT: &str = "\
[sweep]
schemes = [\"best-possible\", \"spray-wait\"]
seeds = [1, 2, 3]

[trace]
style = \"mit\"
nodes = 10
hours = 12.0

[config]
photos_per_hour = 20.0
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_photodtn"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "photodtn-sweep-resume-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep_args(spec: &Path, out: &Path, journal: &Path) -> Vec<String> {
    vec![
        "sweep".into(),
        spec.to_str().unwrap().into(),
        "--out".into(),
        out.to_str().unwrap().into(),
        "--journal".into(),
        journal.to_str().unwrap().into(),
        "--quiet".into(),
    ]
}

/// Runs an uninterrupted sweep and returns the report bytes.
fn uninterrupted_report(dir: &Path, spec: &Path) -> String {
    let out = dir.join("uninterrupted.json");
    let journal = dir.join("uninterrupted.journal");
    let status = bin()
        .args(sweep_args(spec, &out, &journal))
        .stderr(Stdio::null())
        .status()
        .expect("spawn photodtn");
    assert_eq!(status.code(), Some(0), "uninterrupted sweep must succeed");
    std::fs::read_to_string(&out).unwrap()
}

/// Starts a sweep, SIGKILLs it once the journal shows progress but the
/// batch is not done, and returns how many cells were journaled.
/// `--workers 1` serializes cells so a mid-batch kill window exists.
fn start_and_kill(spec: &Path, out: &Path, journal: &Path) -> usize {
    let mut args = sweep_args(spec, out, journal);
    args.push("--workers".into());
    args.push("1".into());
    let mut child = bin()
        .args(&args)
        .stderr(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn photodtn");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done_lines = std::fs::read_to_string(journal)
            .map(|t| t.lines().filter(|l| l.contains("\"Done\"")).count())
            .unwrap_or(0);
        if done_lines >= 1 {
            // Progress exists; kill before (hopefully) the batch ends.
            child.kill().expect("SIGKILL the sweep");
            let _ = child.wait();
            return done_lines;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            // The sweep finished before we could kill it — still a valid
            // resume scenario (resume skips everything).
            assert_eq!(status.code(), Some(0));
            return usize::MAX;
        }
        assert!(Instant::now() < deadline, "sweep made no progress in 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn resume(spec: &Path, out: &Path, journal: &Path) -> std::process::Output {
    let mut args = sweep_args(spec, out, journal);
    args.push("--resume".into());
    bin().args(&args).output().expect("spawn photodtn")
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = tmp_dir("kill");
    let spec = dir.join("sweep.toml");
    std::fs::write(&spec, SPEC_TEXT).unwrap();
    let baseline = uninterrupted_report(&dir, &spec);

    let out = dir.join("report.json");
    let journal = dir.join("sweep.journal");
    start_and_kill(&spec, &out, &journal);

    let output = resume(&spec, &out, &journal);
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let resumed = std::fs::read_to_string(&out).unwrap();
    assert_eq!(
        resumed, baseline,
        "merged report after kill+resume must be byte-identical"
    );
}

#[test]
fn torn_journal_tail_recovers_on_resume() {
    let dir = tmp_dir("torn");
    let spec = dir.join("sweep.toml");
    std::fs::write(&spec, SPEC_TEXT).unwrap();
    let baseline = uninterrupted_report(&dir, &spec);

    let out = dir.join("report.json");
    let journal = dir.join("sweep.journal");
    start_and_kill(&spec, &out, &journal);

    // Simulate the kill landing mid-write: chop the journal's final line
    // in half (no trailing newline).
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(!text.is_empty());
    let cut = text.trim_end().len().saturating_sub(20).max(
        text.find('\n').map(|i| i + 1).unwrap_or(0), // keep the header intact
    );
    std::fs::write(&journal, &text[..cut]).unwrap();

    let output = resume(&spec, &out, &journal);
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("torn journal tail"),
        "torn tail must be reported: {stderr}"
    );
    let resumed = std::fs::read_to_string(&out).unwrap();
    assert_eq!(resumed, baseline, "torn-tail recovery must merge cleanly");
}

#[test]
fn edited_spec_is_rejected_on_resume_with_exit_2() {
    let dir = tmp_dir("fingerprint");
    let spec = dir.join("sweep.toml");
    std::fs::write(&spec, SPEC_TEXT).unwrap();
    let out = dir.join("report.json");
    let journal = dir.join("sweep.journal");
    let status = bin()
        .args(sweep_args(&spec, &out, &journal))
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));

    // Any byte change to the spec invalidates the journal.
    std::fs::write(&spec, format!("{SPEC_TEXT}# edited\n")).unwrap();
    let output = resume(&spec, &out, &journal);
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("different spec"), "{stderr}");
}

#[test]
fn unreadable_trace_file_is_total_failure_with_exit_4() {
    let dir = tmp_dir("total");
    let spec = dir.join("sweep.toml");
    std::fs::write(
        &spec,
        "[sweep]\nschemes = [\"best-possible\"]\nseeds = [1, 2]\n\
         [trace]\nfile = \"/nonexistent/contacts.trace\"\n",
    )
    .unwrap();
    let out = dir.join("report.json");
    let journal = dir.join("sweep.journal");
    let mut args = sweep_args(&spec, &out, &journal);
    args.push("--retries".into());
    args.push("0".into());
    let output = bin().args(&args).output().unwrap();
    assert_eq!(output.status.code(), Some(4), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("sweep failures (2 of 2 cells)"), "{stderr}");
    assert!(stderr.contains("trace-io"), "{stderr}");
    // The report still exists, with full failure attribution.
    let report = std::fs::read_to_string(&out).unwrap();
    assert!(report.contains("\"failed\":2"), "{report}");
}

#[test]
fn bad_spec_exits_2_and_writes_nothing() {
    let dir = tmp_dir("badspec");
    let spec = dir.join("sweep.toml");
    std::fs::write(&spec, "[sweep]\nschemes = [\"nope\"]\nseeds = [1]\n").unwrap();
    let out = dir.join("report.json");
    let journal = dir.join("sweep.journal");
    let output = bin()
        .args(sweep_args(&spec, &out, &journal))
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    assert!(!out.exists(), "no report on a bad spec");
    assert!(!journal.exists(), "no journal on a bad spec");
}
