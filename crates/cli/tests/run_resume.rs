//! Kill-and-resume integration tests for `photodtn run`: SIGKILL (or
//! gracefully signal) a checkpointed run mid-simulation, resume it from
//! the snapshot directory, and require the final `--json` output to be
//! byte-identical to an uninterrupted run. Also pins the flag-compat
//! matrix and the fingerprint guard at the process level.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const EXIT_INTERRUPTED: i32 = 75;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_photodtn"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("photodtn-run-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The world every test runs: small enough to finish fast in debug
/// builds, long enough that a mid-run kill window exists.
fn world_args() -> Vec<String> {
    [
        "run",
        "--scheme",
        "ours",
        "--style",
        "mit",
        "--seed",
        "7",
        "--hours",
        "24",
        "--photos-per-hour",
        "30",
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn uninterrupted_json() -> String {
    let output = bin()
        .args(world_args())
        .stderr(Stdio::null())
        .output()
        .expect("spawn photodtn");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    String::from_utf8(output.stdout).unwrap()
}

fn snapshot_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".snap"))
                })
                .count()
        })
        .unwrap_or(0)
}

/// Starts a checkpointed run, waits for the first snapshot to land, and
/// sends `sig` (e.g. "KILL" or "TERM"). Returns the exit status if the
/// child was signalled before finishing, `None` if it won the race.
fn start_and_signal(ckpt: &Path, sig: &str) -> Option<std::process::ExitStatus> {
    let mut args = world_args();
    args.extend([
        "--checkpoint-dir".to_string(),
        ckpt.to_str().unwrap().to_string(),
        "--checkpoint-every".to_string(),
        "600".to_string(),
    ]);
    let mut child = bin()
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn photodtn");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if snapshot_count(ckpt) >= 1 {
            let status = Command::new("kill")
                .args([format!("-{sig}"), child.id().to_string()])
                .status()
                .expect("spawn kill");
            assert!(status.success(), "kill -{sig} failed");
            let status = child.wait().expect("wait for signalled child");
            return Some(status);
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            // The run finished before a snapshot appeared or before the
            // signal landed — still a valid resume scenario below.
            assert_eq!(status.code(), Some(0));
            return None;
        }
        assert!(
            Instant::now() < deadline,
            "run wrote no snapshot within 120s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn resume_json(ckpt: &Path) -> std::process::Output {
    let mut args = world_args();
    args.extend([
        "--resume-from".to_string(),
        ckpt.to_str().unwrap().to_string(),
    ]);
    bin().args(&args).output().expect("spawn photodtn")
}

/// SIGKILL mid-run (no cleanup possible), then `--resume-from`: the
/// resumed run's `--json` output must be byte-identical to an
/// uninterrupted run's.
#[test]
fn sigkill_then_resume_is_byte_identical() {
    let dir = tmp_dir("sigkill");
    let baseline = uninterrupted_json();
    let ckpt = dir.join("ckpt");
    if start_and_signal(&ckpt, "KILL").is_some() {
        assert!(snapshot_count(&ckpt) >= 1, "killed run left no snapshot");
        let output = resume_json(&ckpt);
        assert_eq!(output.status.code(), Some(0), "{output:?}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("resuming"), "no resume banner: {stderr}");
        let resumed = String::from_utf8(output.stdout).unwrap();
        assert_eq!(resumed, baseline, "resumed --json diverged from baseline");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM is handled gracefully: the run writes a final snapshot,
/// exits with code 75, and the resumed run completes byte-identically.
#[test]
fn sigterm_exits_75_and_resumes_byte_identical() {
    let dir = tmp_dir("sigterm");
    let baseline = uninterrupted_json();
    let ckpt = dir.join("ckpt");
    if let Some(status) = start_and_signal(&ckpt, "TERM") {
        assert_eq!(
            status.code(),
            Some(EXIT_INTERRUPTED),
            "graceful SIGTERM must exit {EXIT_INTERRUPTED}, got {status:?}"
        );
        let output = resume_json(&ckpt);
        assert_eq!(output.status.code(), Some(0), "{output:?}");
        let resumed = String::from_utf8(output.stdout).unwrap();
        assert_eq!(resumed, baseline, "resumed --json diverged from baseline");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The non-racy determinism path: `--halt-after` stops the run at a
/// fixed simulated time (exit 75), and resume reproduces the baseline.
/// This is the variant CI can rely on even under extreme load.
#[test]
fn halt_after_then_resume_is_byte_identical() {
    let dir = tmp_dir("halt");
    let baseline = uninterrupted_json();
    let ckpt = dir.join("ckpt");
    let mut args = world_args();
    args.extend([
        "--checkpoint-dir".to_string(),
        ckpt.to_str().unwrap().to_string(),
        "--halt-after".to_string(),
        "43200".to_string(), // 12 of 24 simulated hours
    ]);
    let output = bin().args(&args).output().expect("spawn photodtn");
    assert_eq!(output.status.code(), Some(EXIT_INTERRUPTED), "{output:?}");

    let output = resume_json(&ckpt);
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let resumed = String::from_utf8(output.stdout).unwrap();
    assert_eq!(resumed, baseline, "resumed --json diverged from baseline");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming under different world flags is refused with the recorded
/// world string in the error — snapshots are fingerprinted.
#[test]
fn resume_under_different_flags_is_rejected() {
    let dir = tmp_dir("fingerprint");
    let ckpt = dir.join("ckpt");
    let mut args = world_args();
    args.extend([
        "--checkpoint-dir".to_string(),
        ckpt.to_str().unwrap().to_string(),
        "--halt-after".to_string(),
        "43200".to_string(),
    ]);
    let status = bin()
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(EXIT_INTERRUPTED));

    let mut args = world_args();
    let i = args.iter().position(|a| a == "30").unwrap();
    args[i] = "31".to_string(); // different --photos-per-hour
    args.extend([
        "--resume-from".to_string(),
        ckpt.to_str().unwrap().to_string(),
    ]);
    let output = bin().args(&args).output().unwrap();
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("different run"),
        "fingerprint mismatch must explain itself: {stderr}"
    );
    assert!(
        stderr.contains("photodtn run"),
        "error must echo the snapshot's recorded command line: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The flag-compat matrix at the process level: dependents without a
/// directory, and a conflicting resume/checkpoint-dir pair, are typed
/// CLI errors (exit 1 with a did-you-mean), never panics.
#[test]
fn conflicting_checkpoint_flags_are_typed_errors() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["--checkpoint-every", "600"],
            "needs --checkpoint-dir (or --resume-from)",
        ),
        (
            &["--checkpoint-keep", "5"],
            "needs --checkpoint-dir (or --resume-from)",
        ),
        (
            &["--halt-after", "600"],
            "needs --checkpoint-dir (or --resume-from)",
        ),
        (
            &["--resume-from", "/tmp/a", "--checkpoint-dir", "/tmp/b"],
            "conflicts with --checkpoint-dir",
        ),
    ];
    for (extra, needle) in cases {
        let mut args = world_args();
        args.extend(extra.iter().map(|s| s.to_string()));
        let output = bin().args(&args).output().unwrap();
        assert_eq!(output.status.code(), Some(1), "{extra:?}: {output:?}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(needle),
            "{extra:?}: expected {needle:?} in stderr: {stderr}"
        );
    }
}

/// Resuming from an empty directory is a clean, typed failure.
#[test]
fn resume_from_empty_directory_fails_cleanly() {
    let dir = tmp_dir("empty");
    let output = resume_json(&dir);
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("nothing to resume"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
