//! Ablation benchmark for DESIGN.md decision #1: the exact
//! segment-decomposition expected coverage vs the paper's 2^m outcome
//! enumeration (Definition 2) vs Monte-Carlo sampling.
//!
//! The segment algorithm makes per-contact selection affordable; this
//! bench quantifies the gap (enumeration explodes past ~12 nodes, while
//! the exact algorithm stays polynomial).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use photodtn_core::expected::enumerate::expected_coverage_enumerate;
use photodtn_core::expected::montecarlo::expected_coverage_montecarlo;
use photodtn_core::expected::segment::expected_coverage_exact;
use photodtn_core::expected::{DeliveryNode, ExpectedEngine};
use photodtn_coverage::{CoverageParams, PhotoCoverage, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn world(num_pois: u32, nodes: usize, photos_per_node: usize) -> (PoiList, Vec<DeliveryNode>) {
    let mut rng = SmallRng::seed_from_u64(9);
    let pois = PoiList::new(
        (0..num_pois)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..2000.0)),
                )
            })
            .collect(),
    );
    let nodes = (0..nodes)
        .map(|_| {
            let metas = (0..photos_per_node)
                .map(|_| {
                    PhotoMeta::new(
                        Point::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..2000.0)),
                        rng.gen_range(100.0..300.0),
                        Angle::from_degrees(rng.gen_range(30.0..60.0)),
                        Angle::from_degrees(rng.gen_range(0.0..360.0)),
                    )
                })
                .collect();
            DeliveryNode::new(rng.gen_range(0.05..0.95), metas)
        })
        .collect();
    (pois, nodes)
}

fn bench_algorithms(c: &mut Criterion) {
    let params = CoverageParams::default();
    let mut group = c.benchmark_group("expected_coverage");
    for m in [4usize, 8, 12] {
        let (pois, nodes) = world(50, m, 6);
        group.bench_with_input(BenchmarkId::new("enumerate_2^m", m), &m, |b, _| {
            b.iter(|| black_box(expected_coverage_enumerate(&pois, &nodes, params)));
        });
        group.bench_with_input(BenchmarkId::new("segment_exact", m), &m, |b, _| {
            b.iter(|| black_box(expected_coverage_exact(&pois, &nodes, params)));
        });
        group.bench_with_input(BenchmarkId::new("montecarlo_1k", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                black_box(expected_coverage_montecarlo(
                    &pois, &nodes, params, 1000, &mut rng,
                ))
            });
        });
    }
    // The segment algorithm keeps scaling where enumeration cannot go.
    for m in [32usize, 64] {
        let (pois, nodes) = world(250, m, 10);
        group.bench_with_input(BenchmarkId::new("segment_exact", m), &m, |b, _| {
            b.iter(|| black_box(expected_coverage_exact(&pois, &nodes, params)));
        });
    }
    group.finish();
}

/// Incremental gain preview: linear PoI scan vs the contact-scoped
/// coverage index, while the PoI count scales.
///
/// `gain_of` walks the spatial grid per evaluation; `gain_of_indexed`
/// consumes a [`PhotoCoverage`] table built once per contact, so each
/// preview only touches the PoIs the candidate actually covers.
fn bench_gain_paths(c: &mut Criterion) {
    let params = CoverageParams::default();
    let mut group = c.benchmark_group("expected_coverage/gain");
    for num_pois in [10u32, 100, 1000] {
        let (pois, nodes) = world(num_pois, 6, 8);
        let mut engine = ExpectedEngine::new(&pois, params);
        for n in &nodes {
            let h = engine.add_node(n.delivery_prob);
            engine.add_collection(h, n.metas.iter());
        }
        let probe = engine.add_node(0.5);
        let metas: Vec<PhotoMeta> = nodes.iter().flat_map(|n| n.metas.iter().cloned()).collect();
        let covs: Vec<PhotoCoverage> = metas
            .iter()
            .map(|m| PhotoCoverage::build(m, &pois, params))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("gain_of_linear", num_pois),
            &num_pois,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for m in &metas {
                        acc += engine.gain_of(probe, m).aspect;
                    }
                    black_box(acc)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gain_of_indexed", num_pois),
            &num_pois,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for cov in &covs {
                        acc += engine.gain_of_indexed(probe, cov).aspect;
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_algorithms, bench_gain_paths
}
criterion_main!(benches);
