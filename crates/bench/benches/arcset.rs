//! Microbenchmarks for the circular-arc union algebra — the innermost
//! data structure of every coverage computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use photodtn_geo::{Angle, Arc, ArcSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_arcs(n: usize, seed: u64) -> Vec<Arc> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Arc::centered(
                Angle::from_degrees(rng.gen_range(0.0..360.0)),
                Angle::from_degrees(rng.gen_range(5.0..45.0)),
            )
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("arcset/insert");
    for n in [4usize, 16, 64, 256] {
        let arcs = random_arcs(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &arcs, |b, arcs| {
            b.iter(|| {
                let mut set = ArcSet::new();
                for &a in arcs {
                    set.insert(a);
                }
                black_box(set.measure())
            });
        });
    }
    group.finish();
}

fn bench_set_ops(c: &mut Criterion) {
    let left: ArcSet = random_arcs(32, 2).into_iter().collect();
    let right: ArcSet = random_arcs(32, 3).into_iter().collect();
    c.bench_function("arcset/union", |b| b.iter(|| black_box(left.union(&right))));
    c.bench_function("arcset/intersection", |b| {
        b.iter(|| black_box(left.intersection(&right)))
    });
    c.bench_function("arcset/difference", |b| {
        b.iter(|| black_box(left.difference(&right)))
    });
    c.bench_function("arcset/complement", |b| {
        b.iter(|| black_box(left.complement()))
    });
    let probe = Angle::from_degrees(123.0);
    c.bench_function("arcset/contains", |b| {
        b.iter(|| black_box(left.contains(probe)))
    });
    let arc = Arc::centered(Angle::from_degrees(200.0), Angle::from_degrees(30.0));
    c.bench_function("arcset/uncovered_measure", |b| {
        b.iter(|| black_box(left.uncovered_measure(arc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert, bench_set_ops
}
criterion_main!(benches);
