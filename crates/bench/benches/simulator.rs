//! End-to-end simulator throughput per scheme on a reduced MIT-like
//! scenario — how expensive is each protocol per simulated world?

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use photodtn_bench::scheme_by_name;
use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_sim::{SimConfig, Simulation};

fn bench_schemes(c: &mut Criterion) {
    let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(30)
        .with_duration_hours(48.0)
        .generate(1);
    let config = SimConfig::mit_default().with_photos_per_hour(100.0);

    let mut group = c.benchmark_group("simulator/48h_30nodes");
    group.sample_size(10);
    for name in [
        "best-possible",
        "ours",
        "no-metadata",
        "modified-spray",
        "spray-wait",
        "photonet",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| {
                let mut scheme = scheme_by_name(name);
                black_box(Simulation::new(&config, &trace, 1).run(&mut scheme))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
