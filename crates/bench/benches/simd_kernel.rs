//! Microbenchmark of the `#[inline(never)]` batched sector-prefilter
//! kernel in isolation — the loop `PhotoCoverage::build` runs over the
//! SoA candidate lanes. Compare against the per-candidate exact test to
//! see the batching + trigonometry-elimination win, and inspect the
//! kernel's machine code (it is a standalone symbol) to verify the eight
//! `f32` lanes autovectorize:
//!
//! ```sh
//! cargo bench -p photodtn-bench --bench simd_kernel
//! objdump -d target/release/deps/photodtn_coverage-*.rlib | \
//!     grep -A 80 sector_prefilter
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use photodtn_coverage::batch::{sector_prefilter, SectorKernel};
use photodtn_geo::{Angle, Point, Sector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn lanes(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<Point>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(-600.0..600.0), rng.gen_range(-600.0..600.0)))
        .collect();
    let xs = pts.iter().map(|p| p.x as f32).collect();
    let ys = pts.iter().map(|p| p.y as f32).collect();
    (xs, ys, pts)
}

fn sector() -> Sector {
    Sector::new(
        Point::new(10.0, -20.0),
        400.0,
        Angle::from_degrees(70.0),
        Angle::from_degrees(30.0),
    )
}

fn bench_prefilter(c: &mut Criterion) {
    let s = sector();
    let kernel = SectorKernel::new(&s);
    let mut group = c.benchmark_group("simd_kernel/prefilter");
    for n in [64usize, 512, 4096] {
        let (xs, ys, _) = lanes(n, 7);
        let mut keep = vec![0u8; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                sector_prefilter(&kernel, black_box(&xs), black_box(&ys), &mut keep);
                black_box(keep.iter().map(|&k| u32::from(k)).sum::<u32>())
            });
        });
    }
    group.finish();
}

fn bench_exact_scalar(c: &mut Criterion) {
    // The trigonometric per-candidate test the prefilter screens for:
    // the batched path only pays this for survivors.
    let s = sector();
    let mut group = c.benchmark_group("simd_kernel/exact_contains");
    for n in [64usize, 512, 4096] {
        let (_, _, pts) = lanes(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    pts.iter()
                        .map(|p| u32::from(s.contains(black_box(*p))))
                        .sum::<u32>(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefilter, bench_exact_scalar);
criterion_main!(benches);
