//! PROPHET state-maintenance throughput: contacts per second processed
//! including both encounter updates and the transitivity exchange.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::NodeId;
use photodtn_prophet::{ProphetParams, ProphetRouter};

fn bench_learn_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("prophet/learn_trace");
    for nodes in [16u32, 48, 97] {
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(nodes)
            .with_duration_hours(100.0)
            .generate(1);
        group.throughput(criterion::Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &trace, |b, trace| {
            b.iter(|| {
                let mut router = ProphetRouter::new(nodes, ProphetParams::paper_default());
                router.learn_trace(trace);
                black_box(router.predictability(NodeId(0), NodeId(1), trace.duration()))
            });
        });
    }
    group.finish();
}

fn bench_predictability_query(c: &mut Criterion) {
    let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(97)
        .with_duration_hours(100.0)
        .generate(1);
    let mut router = ProphetRouter::new(97, ProphetParams::paper_default());
    router.learn_trace(&trace);
    let now = trace.duration();
    c.bench_function("prophet/predictability_query", |b| {
        b.iter(|| black_box(router.predictability(NodeId(3), NodeId(77), now)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_learn_trace, bench_predictability_query
}
criterion_main!(benches);
