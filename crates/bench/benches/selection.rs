//! Ablation benchmark for DESIGN.md decision #3: lazy (accelerated)
//! greedy vs naive greedy in the per-contact photo reallocation, scaling
//! the pool size — plus the indexed-vs-linear comparison behind the
//! spatial coverage index (DESIGN.md decision on the contact-scoped
//! index), scaling the PoI count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use photodtn_contacts::NodeId;
use photodtn_core::selection::{
    reallocate, reallocate_lazy_linear, reallocate_naive, PeerState, SelectionInput,
};
use photodtn_coverage::{CoverageParams, Photo, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn world(pool: usize) -> (PoiList, Vec<Photo>, Vec<Photo>) {
    world_with_pois(250, pool)
}

fn world_with_pois(num_pois: u32, pool: usize) -> (PoiList, Vec<Photo>, Vec<Photo>) {
    let mut rng = SmallRng::seed_from_u64(5);
    let pois = PoiList::new(
        (0..num_pois)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(rng.gen_range(0.0..6300.0), rng.gen_range(0.0..6300.0)),
                )
            })
            .collect(),
    );
    let mut mk = |id: u64| {
        Photo::new(
            id,
            PhotoMeta::new(
                Point::new(rng.gen_range(0.0..6300.0), rng.gen_range(0.0..6300.0)),
                rng.gen_range(100.0..300.0),
                Angle::from_degrees(rng.gen_range(30.0..60.0)),
                Angle::from_degrees(rng.gen_range(0.0..360.0)),
            ),
            0.0,
        )
        .with_size(4 * 1024 * 1024)
    };
    let a: Vec<Photo> = (0..pool as u64 / 2).map(&mut mk).collect();
    let b: Vec<Photo> = (pool as u64 / 2..pool as u64).map(&mut mk).collect();
    (pois, a, b)
}

fn bench_reallocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/reallocate");
    for pool in [40usize, 120, 300] {
        let (pois, a, b) = world(pool);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: PeerState {
                node: NodeId(0),
                delivery_prob: 0.7,
                capacity: (pool as u64 / 2) * 4 * 1024 * 1024,
                photos: a,
            },
            b: PeerState {
                node: NodeId(1),
                delivery_prob: 0.2,
                capacity: (pool as u64 / 2) * 4 * 1024 * 1024,
                photos: b,
            },
            others: vec![],
        };
        group.bench_with_input(BenchmarkId::new("lazy", pool), &input, |bch, input| {
            bch.iter(|| black_box(reallocate(input)));
        });
        group.bench_with_input(BenchmarkId::new("naive", pool), &input, |bch, input| {
            bch.iter(|| black_box(reallocate_naive(input)));
        });
    }
    group.finish();
}

/// Indexed vs pre-index lazy vs naive greedy while the PoI count scales.
///
/// The pool is fixed at 120 photos so the only variable is how much of
/// the map each gain evaluation has to look at: the linear paths scan
/// every PoI per candidate, the indexed path only touches the PoIs
/// inside each candidate's sector bounding box.
fn bench_poi_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/poi_scaling");
    for num_pois in [10u32, 100, 1000] {
        let (pois, a, b) = world_with_pois(num_pois, 120);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: PeerState {
                node: NodeId(0),
                delivery_prob: 0.7,
                capacity: 60 * 4 * 1024 * 1024,
                photos: a,
            },
            b: PeerState {
                node: NodeId(1),
                delivery_prob: 0.2,
                capacity: 60 * 4 * 1024 * 1024,
                photos: b,
            },
            others: vec![],
        };
        group.bench_with_input(
            BenchmarkId::new("indexed", num_pois),
            &input,
            |bch, input| {
                bch.iter(|| black_box(reallocate(input)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lazy_linear", num_pois),
            &input,
            |bch, input| {
                bch.iter(|| black_box(reallocate_lazy_linear(input)));
            },
        );
        group.bench_with_input(BenchmarkId::new("naive", num_pois), &input, |bch, input| {
            bch.iter(|| black_box(reallocate_naive(input)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reallocate, bench_poi_scaling
}
criterion_main!(benches);
