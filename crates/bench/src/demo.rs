//! The §IV-B prototype demo world (Figs. 2–4), shared by the `fig3`
//! binary and the `church_demo` example.
//!
//! Reconstruction of the paper's setup:
//!
//! * **9 trace nodes** — 8 crowdsourcing participants and one command
//!   center (a data mule / satellite-radio carrier). Participants meet
//!   each other far more often than they meet the command center, so the
//!   demo window contains only a handful of upload opportunities (the
//!   paper counts four).
//! * **40 photos, 5 per participant**, spread around the area like the
//!   V-shapes of Fig. 2(b): some aimed at the church from the node's
//!   vantage point, the rest pointing elsewhere — only a minority of
//!   photos actually cover the target.
//! * **Last 48 contacts** drive the exchange; all earlier contacts train
//!   PROPHET.
//! * **Constraints**: 5 photos of storage per device, 3 photos per
//!   contact, effective angle 40°.

use photodtn_contacts::synth::PairwiseExponentialGenerator;
use photodtn_contacts::{ContactTrace, NodeId};
use photodtn_coverage::{
    CoverageParams, Photo, PhotoGenerator, Poi, PoiList, TargetedGenerator, UniformGenerator,
};
use photodtn_geo::{Angle, Point};
use photodtn_sim::{CommandCenterMode, Scheme, SimConfig, SimResult, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of crowdsourcing participants.
pub const PARTICIPANTS: u32 = 8;
/// The command-center trace node.
pub const COMMAND_CENTER: NodeId = NodeId(8);
/// Photo bookkeeping size (one "photo unit").
pub const PHOTO_SIZE: u64 = 1024 * 1024;

/// A fully constructed demo world.
#[derive(Clone, Debug)]
pub struct DemoWorld {
    /// Contacts used only to train PROPHET.
    pub history: ContactTrace,
    /// The 48 contacts the demo replays.
    pub recent: ContactTrace,
    /// The single target (the church).
    pub pois: PoiList,
    /// `(owner, photo)` for all 40 photos.
    pub photos: Vec<(NodeId, Photo)>,
    /// The demo's resource constraints.
    pub config: SimConfig,
    seed: u64,
}

impl DemoWorld {
    /// Builds the demo world deterministically from `seed`.
    #[must_use]
    pub fn build(seed: u64) -> Self {
        let church = Point::new(500.0, 500.0);
        let pois = PoiList::new(vec![Poi::new(0, church)]);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDE30);

        // Participants meet every ~8 h pairwise. The command center is a
        // data mule: like the paper's demo window, the 48 replayed
        // contacts contain exactly 4 participant–command-center contacts
        // (evenly spread), and the historical trace carries periodic
        // command-center visits so PROPHET can learn who reaches it.
        let mut gen = PairwiseExponentialGenerator::new(PARTICIPANTS, 500.0 * 3600.0)
            .with_scan_interval(300.0)
            .with_mean_contact_duration(600.0);
        for a in 0..PARTICIPANTS {
            for b in (a + 1)..PARTICIPANTS {
                gen.set_rate(NodeId(a), NodeId(b), 1.0 / (8.0 * 3600.0));
            }
        }
        let participants_only = gen.generate(seed);
        let mut mule_visit = |events: &mut Vec<photodtn_contacts::ContactEvent>, t: f64| {
            let peer = NodeId(rng.gen_range(0..PARTICIPANTS));
            events.push(photodtn_contacts::ContactEvent::new(
                peer,
                COMMAND_CENTER,
                t,
                t + 600.0,
            ));
        };
        let (history_base, recent_base) = participants_only.split_tail(44);
        let t0 = recent_base.events().first().map_or(0.0, |e| e.start);
        // History: participant contacts plus a mule visit every ~30 h.
        let mut history_events: Vec<_> = history_base.shifted(-t0).events().to_vec();
        let history_start = history_events.first().map_or(0.0, |e| e.start);
        let mut t = history_start;
        while t < -1.0 {
            mule_visit(&mut history_events, t);
            t += 30.0 * 3600.0;
        }
        let history = ContactTrace::new(PARTICIPANTS + 1, history_events);
        // Demo window: 44 participant contacts + 4 mule visits at the
        // 20/40/60/80 % marks of the window → 48 contacts total.
        let recent_shifted = recent_base.shifted(-t0);
        let window = recent_shifted.duration();
        let mut recent_events: Vec<_> = recent_shifted.events().to_vec();
        for k in 1..=4 {
            mule_visit(&mut recent_events, window * 0.2 * f64::from(k));
        }
        let recent = ContactTrace::new(PARTICIPANTS + 1, recent_events);

        // 40 photos: per participant, 1 aimed at the church plus 4
        // pointing elsewhere in the area (most photos miss the target,
        // as in Fig. 2(b)).
        let mut aimed = TargetedGenerator::new(church);
        aimed.photo_size = PHOTO_SIZE;
        let mut wandering = UniformGenerator::new(1000.0, 1000.0).with_first_id(1000);
        wandering.photo_size = PHOTO_SIZE;
        // Capture times spread over the day before the demo window, so
        // PhotoNet's time-diversity term behaves as it would on real
        // photos.
        let mut photos = Vec::with_capacity(40);
        for node in 0..PARTICIPANTS {
            let t = rng.gen_range(-24.0 * 3600.0..0.0);
            photos.push((NodeId(node), aimed.next_photo(&mut rng, t)));
            for _ in 0..4 {
                let t = rng.gen_range(-24.0 * 3600.0..0.0);
                photos.push((NodeId(node), wandering.next_photo(&mut rng, t)));
            }
        }

        let config = SimConfig {
            photo_size: PHOTO_SIZE,
            storage_bytes: 5 * PHOTO_SIZE,   // 5 photos per device
            bandwidth: PHOTO_SIZE,           // 1 photo per second…
            contact_duration_cap: Some(3.0), // …so 3 photos per contact
            photos_per_hour: 0.0,            // photos are pre-seeded
            num_pois: 1,
            coverage: CoverageParams::new(Angle::from_degrees(40.0)),
            command_center: CommandCenterMode::TraceNode(COMMAND_CENTER),
            sample_interval: recent.duration().max(1.0),
            ..SimConfig::mit_default()
        };

        DemoWorld {
            history,
            recent,
            pois,
            photos,
            config,
            seed,
        }
    }

    /// Number of upload opportunities in the demo window.
    #[must_use]
    pub fn upload_contacts(&self) -> usize {
        self.recent.contacts_of(COMMAND_CENTER).count()
    }

    /// Runs the demo under `scheme`, returning the metric series and the
    /// photos the command center received.
    pub fn run<S: Scheme + ?Sized>(
        &self,
        scheme: &mut S,
    ) -> (SimResult, photodtn_coverage::PhotoCollection) {
        Simulation::new(&self.config, &self.recent, self.seed)
            .with_pois(self.pois.clone())
            .with_prophet_warmup(&self.history)
            .with_seeded_photos(self.photos.iter().copied(), 0.0)
            .run_detailed(scheme)
    }

    /// Aspect coverage (degrees) of the church achieved by a delivered
    /// collection, with the demo's 40° effective angle.
    #[must_use]
    pub fn church_aspect_deg(&self, delivered: &photodtn_coverage::PhotoCollection) -> f64 {
        photodtn_coverage::aspect_set(
            &self.pois[photodtn_coverage::PoiId(0)],
            delivered.metas(),
            Angle::from_degrees(40.0),
        )
        .measure()
        .to_degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_schemes::{OurScheme, SprayAndWait};

    #[test]
    fn world_is_deterministic_and_sized() {
        let w1 = DemoWorld::build(1);
        let w2 = DemoWorld::build(1);
        assert_eq!(w1.photos.len(), 40);
        assert_eq!(w1.recent.len(), 48);
        assert_eq!(
            w1.photos.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            w2.photos.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        // a handful of upload opportunities, not dozens
        let uploads = w1.upload_contacts();
        assert!((1..=12).contains(&uploads), "uploads = {uploads}");
    }

    #[test]
    fn some_photos_cover_the_church_some_do_not() {
        let w = DemoWorld::build(2);
        let church = &w.pois[photodtn_coverage::PoiId(0)];
        let covering = w
            .photos
            .iter()
            .filter(|(_, p)| p.meta.covers(church))
            .count();
        assert!(
            covering >= 6,
            "expected the aimed photos to cover: {covering}"
        );
        assert!(
            covering <= 20,
            "expected the wandering photos to miss: {covering}"
        );
    }

    #[test]
    fn ours_beats_spray_on_aspect_per_photo() {
        // Average over a few layouts: our scheme should achieve at least
        // as much aspect coverage while delivering fewer photos.
        let mut ours_aspect = 0.0;
        let mut spray_aspect = 0.0;
        let mut ours_photos = 0usize;
        let mut spray_photos = 0usize;
        for seed in [1, 2, 3] {
            let w = DemoWorld::build(seed);
            let (_, d_ours) = w.run(&mut OurScheme::new());
            let (_, d_spray) = w.run(&mut SprayAndWait::new());
            ours_aspect += w.church_aspect_deg(&d_ours);
            spray_aspect += w.church_aspect_deg(&d_spray);
            ours_photos += d_ours.len();
            spray_photos += d_spray.len();
        }
        assert!(
            ours_aspect >= spray_aspect,
            "ours {ours_aspect}° < spray {spray_aspect}°"
        );
        assert!(
            ours_photos <= spray_photos,
            "ours delivered {ours_photos} > spray {spray_photos}"
        );
    }
}
