//! Minimal SVG rendering of a demo world — the Fig. 2(b)/Fig. 3 style
//! plot: photos as V-shaped field-of-view marks, the target with its
//! covered aspects shaded, delivered photos highlighted.
//!
//! Pure `std` string building; no drawing dependency. The output is a
//! self-contained `.svg` the figure binaries drop next to their numeric
//! results.

use std::fmt::Write as _;

use photodtn_coverage::{PhotoCollection, PhotoMeta, PoiId};
use photodtn_geo::Angle;

use crate::demo::DemoWorld;

/// Canvas size in pixels.
const SIZE: f64 = 640.0;
/// World size rendered (meters); the demo area is 1 km².
const WORLD: f64 = 1000.0;

/// Renders the demo world: every photo as a V, the delivered ones in
/// color, the church with its covered-aspect arcs.
#[must_use]
pub fn render_demo(world: &DemoWorld, delivered: &PhotoCollection, title: &str) -> String {
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{SIZE}" height="{SIZE}" viewBox="0 0 {SIZE} {SIZE}">"#
    );
    let _ = writeln!(
        svg,
        r##"<rect width="{SIZE}" height="{SIZE}" fill="#fcfcf8"/>"##
    );
    let _ = writeln!(
        svg,
        r#"<text x="12" y="24" font-family="sans-serif" font-size="16">{title}</text>"#
    );

    // Undelivered photos first (grey), delivered on top (colored).
    for (_, photo) in &world.photos {
        if !delivered.contains(photo.id) {
            v_mark(&mut svg, &photo.meta, "#b8b8b8", 1.0);
        }
    }
    for (_, photo) in &world.photos {
        if delivered.contains(photo.id) {
            v_mark(&mut svg, &photo.meta, "#d4442c", 1.8);
        }
    }

    // The church and its covered aspects (2θ arcs around each delivered
    // viewing direction).
    let church = world.pois[PoiId(0)].location;
    let (cx, cy) = to_px(church.x, church.y);
    let theta = Angle::from_degrees(40.0);
    let covered = photodtn_coverage::aspect_set(&world.pois[PoiId(0)], delivered.metas(), theta);
    for (lo, hi) in covered.iter() {
        arc_path(&mut svg, cx, cy, 28.0, lo, hi);
    }
    let _ = writeln!(
        svg,
        r##"<circle cx="{cx:.1}" cy="{cy:.1}" r="6" fill="#1a1a96"/>"##
    );
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">church ({:.0}&#176; covered)</text>"#,
        cx + 10.0,
        cy - 10.0,
        covered.measure().to_degrees()
    );
    svg.push_str("</svg>\n");
    svg
}

/// World meters → canvas pixels (y flipped: north is up).
fn to_px(x: f64, y: f64) -> (f64, f64) {
    (x / WORLD * SIZE, SIZE - y / WORLD * SIZE)
}

/// Draws a photo as a V: two rays from the camera along the FoV edges.
fn v_mark(svg: &mut String, meta: &PhotoMeta, color: &str, width: f64) {
    let (x0, y0) = to_px(meta.location.x, meta.location.y);
    let len = (meta.range.min(150.0)) / WORLD * SIZE;
    let half = meta.fov.radians() / 2.0;
    for sign in [-1.0, 1.0] {
        let ang = meta.orientation.radians() + sign * half;
        let x1 = x0 + len * ang.cos();
        let y1 = y0 - len * ang.sin();
        let _ = writeln!(
            svg,
            r#"<line x1="{x0:.1}" y1="{y0:.1}" x2="{x1:.1}" y2="{y1:.1}" stroke="{color}" stroke-width="{width}"/>"#
        );
    }
}

/// Shades one covered-aspect interval as an annular arc around the PoI.
fn arc_path(svg: &mut String, cx: f64, cy: f64, r: f64, lo: f64, hi: f64) {
    let (sx, sy) = (cx + r * lo.cos(), cy - r * lo.sin());
    let (ex, ey) = (cx + r * hi.cos(), cy - r * hi.sin());
    let large = if hi - lo > std::f64::consts::PI { 1 } else { 0 };
    // sweep = 0 because the canvas y-axis is flipped
    let _ = writeln!(
        svg,
        r##"<path d="M {sx:.1} {sy:.1} A {r} {r} 0 {large} 0 {ex:.1} {ey:.1}" fill="none" stroke="#2c8a2c" stroke-width="5" stroke-linecap="round" opacity="0.8"/>"##
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_schemes::OurScheme;

    #[test]
    fn renders_valid_svg_with_marks() {
        let world = DemoWorld::build(1);
        let (_, delivered) = world.run(&mut OurScheme::new());
        let svg = render_demo(&world, &delivered, "test");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // every photo contributes 2 ray lines
        assert_eq!(svg.matches("<line").count(), 80);
        // delivered photos drawn in the highlight color
        assert!(svg.contains("#d4442c"));
        // covered aspects drawn when something was delivered
        if !delivered.is_empty() {
            assert!(svg.contains("<path"));
        }
        assert!(svg.contains("church"));
    }

    #[test]
    fn empty_delivery_renders_without_arcs() {
        let world = DemoWorld::build(2);
        let svg = render_demo(&world, &PhotoCollection::new(), "empty");
        assert!(!svg.contains("<path"));
        assert!(svg.contains("0&#176; covered"));
    }
}
