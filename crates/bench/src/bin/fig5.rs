//! Fig. 5 — point and aspect coverage over time (MIT trace, five
//! schemes), storage 0.6 GB, 250 photos/hour.
//!
//! Paper shape to reproduce: BestPossible ≥ Ours ≳ NoMetadata ≫
//! ModifiedSpray ≫ Spray&Wait; our scheme within ~10 % point / ~17 %
//! aspect of BestPossible, ~70 % of PoIs covered by 150 h.
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin fig5 -- --runs 5
//! ```

use photodtn_bench::{print_json, print_series_table, run_averaged_or_exit, scheme_by_name, Args};

fn main() {
    let args = Args::parse();
    let config = args.config();
    let seeds = args.seeds();

    let series: Vec<_> = args
        .lineup()
        .iter()
        .map(|name| {
            eprintln!("fig5: running {name} over {} seeds…", seeds.len());
            run_averaged_or_exit(
                "fig5",
                &config,
                |seed| args.trace(seed),
                || scheme_by_name(name),
                &seeds,
            )
        })
        .collect();

    print_series_table(
        "Fig. 5: coverage over time (storage 0.6 GB, 250 photos/h)",
        &series,
        25,
    );
    print_json("fig5", &args, &series);
}
