//! Selection hot-path harness: times one full contact reallocation on a
//! large world (1000 PoIs, 200-photo pool, 4 MB photos) for the three
//! greedy implementations and writes `BENCH_selection.json`.
//!
//! Unlike the criterion benches this is a plain binary with hand-rolled
//! [`std::time::Instant`] timing, so it runs anywhere and emits a
//! machine-readable artifact the acceptance gate can check: the indexed
//! production path (`reallocate`) must beat the pre-change exhaustive
//! greedy (`reallocate_naive`) by at least 3x on this workload.
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin bench_selection
//! ```

use std::time::Instant;

use photodtn_contacts::NodeId;
use photodtn_core::selection::{
    reallocate, reallocate_lazy_linear, reallocate_naive, PeerState, SelectionInput,
    SelectionResult,
};
use photodtn_coverage::{CoverageParams, Photo, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NUM_POIS: u32 = 1000;
const POOL: u64 = 200;
const PHOTO_BYTES: u64 = 4 * 1024 * 1024;
const WARMUP: usize = 3;
const ITERS: usize = 21;

fn world() -> (PoiList, Vec<Photo>, Vec<Photo>) {
    let mut rng = SmallRng::seed_from_u64(5);
    let pois = PoiList::new(
        (0..NUM_POIS)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(rng.gen_range(0.0..6300.0), rng.gen_range(0.0..6300.0)),
                )
            })
            .collect(),
    );
    let mut mk = |id: u64| {
        Photo::new(
            id,
            PhotoMeta::new(
                Point::new(rng.gen_range(0.0..6300.0), rng.gen_range(0.0..6300.0)),
                rng.gen_range(100.0..300.0),
                Angle::from_degrees(rng.gen_range(30.0..60.0)),
                Angle::from_degrees(rng.gen_range(0.0..360.0)),
            ),
            0.0,
        )
        .with_size(PHOTO_BYTES)
    };
    let a: Vec<Photo> = (0..POOL / 2).map(&mut mk).collect();
    let b: Vec<Photo> = (POOL / 2..POOL).map(&mut mk).collect();
    (pois, a, b)
}

/// Median wall time of one `f(input)` call, in nanoseconds.
fn median_ns(
    input: &SelectionInput<'_>,
    f: fn(&SelectionInput<'_>) -> SelectionResult,
) -> (u128, SelectionResult) {
    let mut last = f(input);
    for _ in 1..WARMUP {
        last = f(input);
    }
    let mut times: Vec<u128> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            last = f(input);
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    (times[ITERS / 2], last)
}

fn main() {
    let (pois, a, b) = world();
    let input = SelectionInput {
        pois: &pois,
        params: CoverageParams::default(),
        a: PeerState {
            node: NodeId(0),
            delivery_prob: 0.7,
            capacity: (POOL / 2) * PHOTO_BYTES,
            photos: a,
        },
        b: PeerState {
            node: NodeId(1),
            delivery_prob: 0.2,
            capacity: (POOL / 2) * PHOTO_BYTES,
            photos: b,
        },
        others: vec![],
    };

    println!(
        "bench_selection: one contact reallocation, {NUM_POIS} PoIs, {POOL}-photo pool, \
         median of {ITERS} iterations"
    );
    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>10}",
        "strategy", "median ns", "evals", "refreshes", "commits"
    );

    let (naive_ns, naive) = median_ns(&input, reallocate_naive);
    let (linear_ns, linear) = median_ns(&input, reallocate_lazy_linear);
    let (indexed_ns, indexed) = median_ns(&input, reallocate);
    assert_eq!(indexed, naive, "indexed and naive selections diverged");
    assert_eq!(
        indexed, linear,
        "indexed and lazy-linear selections diverged"
    );

    for (name, ns, r) in [
        ("naive", naive_ns, &naive),
        ("lazy_linear", linear_ns, &linear),
        ("indexed", indexed_ns, &indexed),
    ] {
        println!(
            "{:<14} {:>14} {:>12} {:>12} {:>10}",
            name, ns, r.stats.evaluations, r.stats.refreshes, r.stats.commits
        );
    }

    let speedup_vs_naive = naive_ns as f64 / indexed_ns as f64;
    let speedup_vs_linear = linear_ns as f64 / indexed_ns as f64;
    println!("\nindexed vs naive:       {speedup_vs_naive:.2}x");
    println!("indexed vs lazy_linear: {speedup_vs_linear:.2}x");

    let json = format!(
        "{{\n  \"workload\": {{\n    \"num_pois\": {NUM_POIS},\n    \"pool_photos\": {POOL},\n    \
         \"photo_bytes\": {PHOTO_BYTES},\n    \"iterations\": {ITERS}\n  }},\n  \
         \"median_ns_per_reallocation\": {{\n    \"naive\": {naive_ns},\n    \
         \"lazy_linear\": {linear_ns},\n    \"indexed\": {indexed_ns}\n  }},\n  \
         \"speedup_indexed_vs_naive\": {speedup_vs_naive:.3},\n  \
         \"speedup_indexed_vs_lazy_linear\": {speedup_vs_linear:.3},\n  \
         \"selections_identical\": true\n}}\n"
    );
    std::fs::write("BENCH_selection.json", &json).expect("write BENCH_selection.json");
    eprintln!("bench_selection: wrote BENCH_selection.json");

    assert!(
        speedup_vs_naive >= 3.0,
        "acceptance: expected >= 3x speedup over the pre-change engine, got {speedup_vs_naive:.2}x"
    );
}
