//! Selection hot-path harness: times one full contact reallocation on a
//! large world (1000 PoIs, 200-photo pool, 150-photo command-center
//! collection, 4 MB photos) for every greedy implementation and writes
//! `BENCH_selection.json`.
//!
//! Unlike the criterion benches this is a plain binary with hand-rolled
//! [`std::time::Instant`] timing, so it runs anywhere and emits a
//! machine-readable artifact the acceptance gates can check:
//!
//! * `indexed` (the per-contact production path, [`reallocate`]) must
//!   beat the exhaustive greedy (`reallocate_naive`) by at least 3x;
//! * `incremental` (the steady-state [`SelectionSession`] path: warm
//!   coverage-table cache + checkpointed third-party base) must beat
//!   `indexed_scalar` — the pre-SIMD per-contact path, i.e. the PR-1
//!   baseline measured in this same process — by at least 3x.
//!
//! Both baselines are timed in-process on the same workload, so the
//! gates are machine-independent. `--smoke` shrinks the workload for CI
//! while keeping both gates armed.
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin bench_selection
//! cargo run --release -p photodtn-bench --bin bench_selection -- --smoke
//! ```

use std::sync::Arc;
use std::time::Instant;

use photodtn_contacts::NodeId;
use photodtn_core::expected::DeliveryNode;
use photodtn_core::selection::{
    reallocate, reallocate_indexed_scalar, reallocate_lazy_linear, reallocate_naive, PeerState,
    SelectionInput, SelectionResult, SelectionSession,
};
use photodtn_coverage::{
    CoverageParams, CoverageTableCache, Photo, PhotoId, PhotoMeta, Poi, PoiList,
};
use photodtn_geo::{Angle, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PHOTO_BYTES: u64 = 4 * 1024 * 1024;

struct Workload {
    num_pois: u32,
    /// Pooled photos across the two contacting peers.
    pool: u64,
    /// Photos the command center (the third-party base) already holds —
    /// the part of the per-contact cost the incremental path eliminates.
    cc_photos: u64,
    warmup: usize,
    iters: usize,
    smoke: bool,
}

impl Workload {
    fn large() -> Self {
        Workload {
            num_pois: 1000,
            pool: 200,
            cc_photos: 150,
            warmup: 3,
            iters: 21,
            smoke: false,
        }
    }

    fn smoke() -> Self {
        Workload {
            num_pois: 300,
            pool: 64,
            cc_photos: 64,
            warmup: 2,
            iters: 9,
            smoke: true,
        }
    }
}

#[allow(clippy::type_complexity)]
fn world(w: &Workload) -> (PoiList, Vec<Photo>, Vec<Photo>, Vec<(PhotoId, PhotoMeta)>) {
    let mut rng = SmallRng::seed_from_u64(5);
    let side = if w.smoke { 3400.0 } else { 6300.0 };
    let pois = PoiList::new(
        (0..w.num_pois)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                )
            })
            .collect(),
    );
    let mut mk = |id: u64| {
        Photo::new(
            id,
            PhotoMeta::new(
                Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                rng.gen_range(100.0..300.0),
                Angle::from_degrees(rng.gen_range(30.0..60.0)),
                Angle::from_degrees(rng.gen_range(0.0..360.0)),
            ),
            0.0,
        )
        .with_size(PHOTO_BYTES)
    };
    let a: Vec<Photo> = (0..w.pool / 2).map(&mut mk).collect();
    let b: Vec<Photo> = (w.pool / 2..w.pool).map(&mut mk).collect();
    let cc: Vec<(PhotoId, PhotoMeta)> = (w.pool..w.pool + w.cc_photos)
        .map(|id| {
            let p = mk(id);
            (p.id, p.meta)
        })
        .collect();
    (pois, a, b, cc)
}

/// Median wall time of one `f()` call, in nanoseconds.
fn median_ns<F: FnMut() -> SelectionResult>(w: &Workload, mut f: F) -> (u128, SelectionResult) {
    let mut last = f();
    for _ in 1..w.warmup {
        last = f();
    }
    let mut times: Vec<u128> = (0..w.iters)
        .map(|_| {
            let t = Instant::now();
            last = f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    (times[w.iters / 2], last)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |name: &str| argv.iter().any(|a| a == name);
    let workload = if has("--smoke") {
        Workload::smoke()
    } else {
        Workload::large()
    };
    let w = &workload;

    let (pois, a, b, cc) = world(w);
    let pois = Arc::new(pois);
    let params = CoverageParams::default();
    let input = SelectionInput {
        pois: &pois,
        params,
        a: PeerState {
            node: NodeId(0),
            delivery_prob: 0.7,
            capacity: (w.pool / 2) * PHOTO_BYTES,
            photos: a,
        },
        b: PeerState {
            node: NodeId(1),
            delivery_prob: 0.2,
            capacity: (w.pool / 2) * PHOTO_BYTES,
            photos: b,
        },
        // The command center's collection: id-tagged, so the session path
        // can both resolve cached tables and checkpoint the committed
        // base. The per-contact paths ignore the ids (metadata scan).
        others: vec![DeliveryNode::with_ids(1.0, cc)],
    };

    println!(
        "bench_selection: one contact reallocation, {} PoIs, {}-photo pool, \
         {}-photo command-center base, median of {} iterations",
        w.num_pois, w.pool, w.cc_photos, w.iters
    );
    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>10}",
        "strategy", "median ns", "evals", "refreshes", "commits"
    );

    let (naive_ns, naive) = median_ns(w, || reallocate_naive(&input));
    let (linear_ns, linear) = median_ns(w, || reallocate_lazy_linear(&input));
    let (scalar_ns, scalar) = median_ns(w, || reallocate_indexed_scalar(&input));
    let (indexed_ns, indexed) = median_ns(w, || reallocate(&input));

    // Steady state of the production simulator wiring: a per-run session
    // (checkpointed command-center base, warm engine scratch) over a
    // per-run coverage-table cache. The warmup iterations populate both;
    // the timed iterations pay neither table builds nor base commits.
    let mut session = SelectionSession::new(Arc::clone(&pois), params);
    let mut cache = CoverageTableCache::new(4096);
    let (incr_ns, incr) = median_ns(w, || {
        session.reallocate_with(&input, |id, meta| {
            cache.get_or_build(id, meta, &pois, params)
        })
    });

    for (name, ns, r) in [
        ("naive", naive_ns, &naive),
        ("lazy_linear", linear_ns, &linear),
        ("indexed_scalar", scalar_ns, &scalar),
        ("indexed", indexed_ns, &indexed),
        ("incremental", incr_ns, &incr),
    ] {
        println!(
            "{:<16} {:>14} {:>12} {:>12} {:>10}",
            name, ns, r.stats.evaluations, r.stats.refreshes, r.stats.commits
        );
    }

    assert_eq!(indexed, naive, "indexed and naive selections diverged");
    assert_eq!(
        indexed, linear,
        "indexed and lazy-linear selections diverged"
    );
    assert_eq!(
        indexed, scalar,
        "indexed and indexed-scalar selections diverged"
    );
    assert_eq!(indexed, incr, "indexed and incremental selections diverged");
    assert_eq!(
        indexed.expected.point.to_bits(),
        incr.expected.point.to_bits(),
        "incremental expected point coverage not bit-identical"
    );
    assert_eq!(
        indexed.expected.aspect.to_bits(),
        incr.expected.aspect.to_bits(),
        "incremental expected aspect coverage not bit-identical"
    );

    let speedup_vs_naive = naive_ns as f64 / indexed_ns as f64;
    let speedup_vs_linear = linear_ns as f64 / indexed_ns as f64;
    let speedup_incr = scalar_ns as f64 / incr_ns as f64;
    println!("\nindexed vs naive:              {speedup_vs_naive:.2}x");
    println!("indexed vs lazy_linear:        {speedup_vs_linear:.2}x");
    println!("incremental vs indexed_scalar: {speedup_incr:.2}x");

    let json = format!(
        "{{\n  \"workload\": {{\n    \"num_pois\": {},\n    \"pool_photos\": {},\n    \
         \"cc_photos\": {},\n    \"photo_bytes\": {PHOTO_BYTES},\n    \"iterations\": {},\n    \
         \"smoke\": {}\n  }},\n  \
         \"median_ns_per_reallocation\": {{\n    \"naive\": {naive_ns},\n    \
         \"lazy_linear\": {linear_ns},\n    \"indexed_scalar\": {scalar_ns},\n    \
         \"indexed\": {indexed_ns},\n    \"incremental\": {incr_ns}\n  }},\n  \
         \"speedup_indexed_vs_naive\": {speedup_vs_naive:.3},\n  \
         \"speedup_indexed_vs_lazy_linear\": {speedup_vs_linear:.3},\n  \
         \"speedup_incremental_vs_indexed_scalar\": {speedup_incr:.3},\n  \
         \"selections_identical\": true\n}}\n",
        w.num_pois, w.pool, w.cc_photos, w.iters, w.smoke
    );
    std::fs::write("BENCH_selection.json", &json).expect("write BENCH_selection.json");
    eprintln!("bench_selection: wrote BENCH_selection.json");

    assert!(
        speedup_vs_naive >= 3.0,
        "acceptance: expected >= 3x speedup over the exhaustive greedy, got {speedup_vs_naive:.2}x"
    );
    assert!(
        speedup_incr >= 3.0,
        "acceptance: expected >= 3x steady-state speedup over the pre-SIMD indexed baseline, \
         got {speedup_incr:.2}x"
    );
}
