//! Fig. 7 — the effect of storage capacity (§V-D).
//!
//! Sweeps per-node storage and reports the end-of-run point coverage,
//! aspect coverage, and delivered-photo count for each scheme —
//! Fig. 7(a–c) with `--trace mit`, Fig. 7(d–f) with `--trace cambridge`.
//!
//! Paper shape: more storage helps every coverage-aware scheme (more
//! replicas of useful photos survive); ModifiedSpray barely moves (its
//! copies are capped at 4); ours and NoMetadata deliver dramatically
//! fewer photos than the spray family (log-scale panel (c)/(f)).
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin fig7 -- --trace mit --runs 2
//! ```

use photodtn_bench::{run_averaged_or_exit, scheme_by_name, Args, LINEUP};

const GB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    let args = Args::parse();
    let seeds = args.seeds();
    let storages_gb = [0.15, 0.3, 0.6, 1.2];

    println!(
        "Fig. 7 ({} trace): end-of-run metrics vs storage, {} runs each",
        args.style.name(),
        args.runs
    );
    println!(
        "{:<15} {:>9} | {:>8} {:>9} {:>10}",
        "scheme", "storage", "point%", "aspect°", "delivered"
    );

    let mut rows = Vec::new();
    for name in LINEUP {
        for gb in storages_gb {
            let config = args.config().with_storage_bytes((gb * GB) as u64);
            eprintln!("fig7: {name} at {gb} GB…");
            let s = run_averaged_or_exit(
                "fig7",
                &config,
                |seed| args.trace(seed),
                || scheme_by_name(name),
                &seeds,
            );
            let f = s.final_sample();
            println!(
                "{:<15} {:>6.2}GB | {:>7.1}% {:>8.1}° {:>10}",
                name,
                gb,
                100.0 * f.point_coverage,
                f.aspect_coverage_deg,
                f.delivered_photos
            );
            rows.push(serde_json::json!({
                "figure": "fig7",
                "trace": args.style.name(),
                "scheme": name,
                "storage_gb": gb,
                "runs": args.runs,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
            }));
        }
    }
    if args.json {
        println!(
            "\nJSON {}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
    }
}
