//! Fig. 6 — the effect of short contact durations (§V-C) at 2 MB/s.
//!
//! Our scheme is run with usable contact durations of 10 min (effectively
//! unconstrained), 2 min and 30 s; ModifiedSpray at 10 min is the
//! reference. Paper shape: 2 min costs only ~1 % because the most
//! valuable photos are transmitted first; 30 s degrades to roughly
//! ModifiedSpray-at-10-min territory.
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin fig6 -- --runs 3
//! ```

use photodtn_bench::{print_json, print_series_table, run_averaged_or_exit, scheme_by_name, Args};

fn main() {
    let args = Args::parse();
    let seeds = args.seeds();

    let mut series = Vec::new();
    for (label, cap) in [("10min", 600.0), ("2min", 120.0), ("30s", 30.0)] {
        eprintln!("fig6: ours with {label} contacts…");
        let config = args.config().with_contact_duration_cap(cap);
        let mut s = run_averaged_or_exit(
            "fig6",
            &config,
            |seed| args.trace(seed),
            || scheme_by_name("ours"),
            &seeds,
        );
        s.scheme = format!("ours@{label}");
        series.push(s);
    }
    eprintln!("fig6: modified-spray reference at 10min…");
    let config = args.config().with_contact_duration_cap(600.0);
    let mut reference = run_averaged_or_exit(
        "fig6",
        &config,
        |seed| args.trace(seed),
        || scheme_by_name("modified-spray"),
        &seeds,
    );
    reference.scheme = "modspray@10min".to_string();
    series.push(reference);

    print_series_table("Fig. 6: effect of contact duration (2 MB/s)", &series, 25);
    print_json("fig6", &args, &series);
}
