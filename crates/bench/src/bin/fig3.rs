//! Fig. 3 (and the §IV-B demo, Figs. 2–4) — which photos of the church
//! reach the command center under our scheme, PhotoNet and Spray&Wait.
//!
//! See [`photodtn_bench::demo`] for the full world reconstruction: 9
//! trace nodes, 40 photos (a minority of which cover the church), last
//! 48 contacts, 5-photo storage, 3 photos per contact, θ = 40°.
//!
//! Paper results (real photos): ours delivers **6** photos covering
//! **346°**; PhotoNet **12** covering **160°**; Spray&Wait **12** (3
//! useful) covering **171°**.
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin fig3 -- --runs 5
//! ```

use photodtn_bench::demo::DemoWorld;
use photodtn_bench::Args;
use photodtn_schemes::{OurScheme, PhotoNet, SprayAndWait};
use photodtn_sim::Scheme;

fn main() {
    let args = Args::parse();

    println!(
        "Fig. 3: §IV-B demo, averaged over {} random layouts/traces",
        args.runs
    );
    println!(
        "{:<12} {:>18} {:>22}",
        "scheme", "photos delivered", "church aspect covered"
    );

    let mut rows = Vec::new();
    for name in ["ours", "photonet", "spray-wait"] {
        let mut delivered_sum = 0.0;
        let mut aspect_sum = 0.0;
        for seed in args.seeds() {
            let world = DemoWorld::build(seed);
            let mut scheme: Box<dyn Scheme> = match name {
                "ours" => Box::new(OurScheme::new()),
                "photonet" => Box::new(PhotoNet::new()),
                _ => Box::new(SprayAndWait::new()),
            };
            let (_, delivered) = world.run(&mut scheme);
            delivered_sum += delivered.len() as f64;
            aspect_sum += world.church_aspect_deg(&delivered);
            // Fig. 3-style plot of the first layout, per scheme.
            if seed == 1 {
                let svg = photodtn_bench::svg::render_demo(
                    &world,
                    &delivered,
                    &format!("Fig. 3 — {name} (seed {seed})"),
                );
                let dir = if std::path::Path::new("results").is_dir() {
                    "results/"
                } else {
                    ""
                };
                let path = format!("{dir}fig3_{name}.svg");
                if std::fs::write(&path, svg).is_ok() {
                    eprintln!("fig3: wrote {path}");
                }
            }
        }
        let n = args.runs as f64;
        println!(
            "{:<12} {:>18.1} {:>21.0}°",
            name,
            delivered_sum / n,
            aspect_sum / n
        );
        rows.push(serde_json::json!({
            "figure": "fig3",
            "scheme": name,
            "runs": args.runs,
            "delivered_photos": delivered_sum / n,
            "church_aspect_deg": aspect_sum / n,
        }));
    }
    println!("\n(paper: ours 6 / 346°, PhotoNet 12 / 160°, Spray&Wait 12 / 171°)");
    if args.json {
        println!(
            "\nJSON {}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
    }
}
