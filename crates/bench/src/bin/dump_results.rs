//! Dumps every scheme's full `SimResult` as JSON for byte-identity
//! comparison across builds.
//!
//! Runs the exact determinism-test matrix (the 10-scheme lineup on the
//! MIT-like 16-node/36-hour trace, fault intensities 0.0 and 0.5, run
//! seed 42) and writes one `<scheme>_<intensity>.json` per cell into the
//! directory given as the first argument. Running this against two
//! builds and `diff -r`-ing the directories proves the optimized
//! simulator produces byte-identical results — every sample, every
//! counter.
//!
//! With `--trace TRACEDIR` every cell additionally records its full
//! event stream to `TRACEDIR/<scheme>_<intensity>.jsonl`. Diffing the
//! *result* directories of a traced and an untraced invocation proves
//! the tracing subsystem is a pure observer (CI does exactly that).
//!
//! With `--shards N` every cell runs through the sharded parallel
//! executor. Diffing against an unsharded invocation's directory proves
//! the cross-shard merge is byte-exact (CI does exactly that too).
//!
//! With `--resume-split HOURS` every cell runs **twice**: a first run
//! that checkpoints and deterministically halts at the split time (its
//! partial result is discarded), then a fresh simulation that resumes
//! from the snapshot and finishes. Diffing against a plain invocation's
//! directory proves mid-run checkpoint/restore is byte-exact for every
//! scheme and fault intensity (CI does exactly that as well).
//!
//! With `--scenario FILE` the world (trace, config, PoI layout) comes
//! from a declarative TOML scenario instead of the built-in preset; the
//! fault-intensity sweep, run seed, scheme lineup and output layout stay
//! the same. Pointing it at a scenario that restates the preset world
//! (examples/scenarios/matrix.toml) and diffing against a plain
//! invocation proves the scenario engine is a pure re-spelling — CI does
//! exactly that.
//!
//! The core dump path sticks to long-stable APIs so the source drops
//! into older checkouts with little friction; `--shards` naturally needs
//! a build that has `SimConfig::with_shards`, and `--resume-split` one
//! that has the checkpoint module.

use photodtn_bench::scheme_by_name;
use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_sim::{
    checkpoint, CheckpointPolicy, FaultConfig, JsonlSink, MetricSample, Scenario, SimConfig,
    SimResult, Simulation,
};

const SCHEMES: [&str; 10] = [
    "best-possible",
    "ours",
    "no-metadata",
    "modified-spray",
    "spray-wait",
    "photonet",
    "epidemic",
    "direct",
    "oracle",
    "prophet",
];

/// Hand-rolled JSON (the vendored serde_json cannot serialize arbitrary
/// types). `{:?}` on finite `f64`s is the shortest round-trip
/// representation — a valid JSON number, and bit-exact for comparison.
fn sample_json(s: &MetricSample) -> String {
    format!(
        "    {{ \"t_hours\": {:?}, \"point_coverage\": {:?}, \"aspect_coverage_deg\": {:?}, \
         \"delivered_photos\": {}, \"uploaded_bytes\": {}, \"mean_latency_hours\": {:?}, \
         \"metadata_bytes\": {}, \"contacts_interrupted\": {}, \"transfers_lost\": {}, \
         \"transfers_corrupt\": {}, \"node_crashes\": {}, \"uplinks_degraded\": {} }}",
        s.t_hours,
        s.point_coverage,
        s.aspect_coverage_deg,
        s.delivered_photos,
        s.uploaded_bytes,
        s.mean_latency_hours,
        s.metadata_bytes,
        s.contacts_interrupted,
        s.transfers_lost,
        s.transfers_corrupt,
        s.node_crashes,
        s.uplinks_degraded
    )
}

fn result_json(r: &SimResult) -> String {
    let samples: Vec<String> = r.samples.iter().map(sample_json).collect();
    format!(
        "{{\n  \"scheme\": \"{}\",\n  \"seed\": {},\n  \"samples\": [\n{}\n  ]\n}}\n",
        r.scheme,
        r.seed,
        samples.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: dump_results OUTDIR [--scenario FILE] [--trace TRACEDIR] [--shards N] \
                 [--resume-split HOURS]";
    let outdir = args.first().cloned().unwrap_or_else(|| panic!("{usage}"));
    let mut tracedir = None;
    let mut shards = 1usize;
    let mut resume_split: Option<f64> = None;
    let mut scenario: Option<Scenario> = None;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => {
                let path = it.next().cloned().unwrap_or_else(|| panic!("{usage}"));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("reading {path}: {e}"));
                scenario = Some(Scenario::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}")));
            }
            "--trace" => {
                tracedir = Some(it.next().cloned().unwrap_or_else(|| panic!("{usage}")));
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{usage}"));
            }
            "--resume-split" => {
                resume_split = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|h: &f64| h.is_finite() && *h > 0.0)
                        .unwrap_or_else(|| panic!("{usage}")),
                );
            }
            other => panic!("unknown argument {other:?}\n{usage}"),
        }
    }
    assert!(
        !(shards > 1 && tracedir.is_some()),
        "--shards and --trace are mutually exclusive: a trace sink forces \
         the sequential path, so the sharded executor would not run"
    );
    assert!(
        !(resume_split.is_some() && (shards > 1 || tracedir.is_some())),
        "--resume-split is exclusive with --shards and --trace: the \
         checkpointed halves run sequentially and untraced"
    );
    std::fs::create_dir_all(&outdir).expect("create output directory");
    if let Some(dir) = &tracedir {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }

    // The run seed and trace: the preset matrix pins (trace seed 3, run
    // seed 42); a scenario supplies both (its trace_seed defaults to the
    // run seed, exactly like the CLI).
    let run_seed = scenario.as_ref().map_or(42, |sc| sc.seed);
    let trace = match &scenario {
        Some(sc) => sc
            .build_trace(run_seed)
            .unwrap_or_else(|e| panic!("building scenario trace: {e}")),
        None => CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(16)
            .with_duration_hours(36.0)
            .generate(3),
    };

    for intensity in [0.0_f64, 0.5] {
        // The intensity sweep overrides any [faults] block in a scenario
        // so the output layout is identical either way.
        let mut config = match &scenario {
            Some(sc) => sc.base.clone(),
            None => {
                let mut c = SimConfig::mit_default()
                    .with_photos_per_hour(30.0)
                    .with_storage_bytes(40 * 4 * 1024 * 1024);
                c.num_pois = 60;
                c
            }
        };
        config = config
            .with_faults(FaultConfig::chaos(intensity))
            .with_shards(shards);

        for name in SCHEMES {
            let mut scheme = scheme_by_name(name);
            let mut sim = match &scenario {
                Some(sc) => sc
                    .build_simulation(&config, &trace, run_seed)
                    .unwrap_or_else(|e| panic!("building scenario world: {e}")),
                None => Simulation::new(&config, &trace, run_seed),
            };
            if let Some(dir) = &tracedir {
                let trace_path = format!("{dir}/{name}_{intensity}.jsonl");
                let sink = JsonlSink::create(&trace_path)
                    .unwrap_or_else(|e| panic!("creating {trace_path}: {e}"));
                sim.set_trace_sink(Box::new(sink));
            }
            let result = match resume_split {
                None => sim.run(&mut *scheme),
                Some(hours) => {
                    // Phase 1: checkpoint and deterministically halt at
                    // the split; the partial result is discarded.
                    let ckpt = format!("{outdir}/.ckpt-{name}_{intensity}");
                    let _ = std::fs::remove_dir_all(&ckpt);
                    let mut fp = checkpoint::run_fingerprint(&config, &trace, run_seed, name);
                    if let Some(sc) = &scenario {
                        fp ^= sc.fingerprint;
                    }
                    let world = format!("dump_results {name} intensity={intensity}");
                    sim.set_checkpoints(
                        CheckpointPolicy::new(&ckpt, f64::INFINITY, fp, world.as_str())
                            .with_halt_after(hours * 3600.0),
                    );
                    let (_, _, stats) = sim.run_instrumented(&mut *scheme);
                    assert!(
                        stats.interrupted,
                        "{name}: --resume-split {hours} h did not interrupt the run \
                         (split past the end of the trace?)"
                    );
                    // Phase 2: a fresh simulation and scheme resume from
                    // the snapshot and run to completion.
                    let (payload, _) =
                        checkpoint::load_latest(std::path::Path::new(&ckpt), Some(fp))
                            .unwrap_or_else(|e| panic!("{name}: loading snapshot: {e}"));
                    let mut scheme = scheme_by_name(name);
                    let mut sim = match &scenario {
                        Some(sc) => sc
                            .build_simulation(&config, &trace, run_seed)
                            .unwrap_or_else(|e| panic!("building scenario world: {e}")),
                        None => Simulation::new(&config, &trace, run_seed),
                    };
                    sim.resume_from(payload, &*scheme)
                        .unwrap_or_else(|e| panic!("{name}: resuming: {e}"));
                    let result = sim.run(&mut *scheme);
                    let _ = std::fs::remove_dir_all(&ckpt);
                    result
                }
            };
            let json = result_json(&result);
            let path = format!("{outdir}/{name}_{intensity}.json");
            std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("dump_results: wrote {path}");
        }
    }
}
