//! End-to-end simulation throughput harness: times whole `Simulation`
//! runs per scheme on a large synthetic trace and writes `BENCH_sim.json`
//! (median events/sec and ns/contact).
//!
//! Like `bench_selection` this is a plain binary with hand-rolled
//! [`std::time::Instant`] timing so it runs anywhere, and it deliberately
//! uses only APIs that exist in pre-optimization builds
//! (`Simulation::new` / `run` / `event_count`), so the *same source*
//! compiles against an old checkout to produce baseline numbers:
//!
//! ```sh
//! # in the old checkout (bench_sim.rs copied in):
//! cargo run --release -p photodtn-bench --bin bench_sim -- \
//!     --emit-baseline /tmp/bench_before.txt
//! # in the current checkout:
//! cargo run --release -p photodtn-bench --bin bench_sim -- \
//!     --baseline /tmp/bench_before.txt
//! ```
//!
//! With `--baseline` the output JSON carries before/after medians and
//! speedups. `--smoke` shrinks the workload for CI: it only checks that
//! the harness runs end-to-end and emits valid JSON — no timing
//! thresholds, because CI machines are noisy.
//!
//! `--scaling-nodes 12,24,48,96` overrides the node counts of the
//! nodes-vs-throughput scaling curve. The harness also times the sharded
//! executor on a metro-scale grid-city trace across worker counts
//! (`shard_scaling` in the JSON); the parallel-speedup acceptance gate
//! only arms on machines with at least 4 available cores, because a
//! single-core box cannot demonstrate parallelism however correct the
//! executor is.

use std::time::Instant;

use photodtn_bench::scheme_by_name;
use photodtn_contacts::synth::{CommunityTraceGenerator, MetroTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_sim::{default_worker_count, SimConfig, Simulation};

/// Schemes timed by the harness: ours (the acceptance target), its
/// ablation, and the strongest baselines by per-contact work.
const SCHEMES: [&str; 5] = [
    "ours",
    "no-metadata",
    "oracle",
    "modified-spray",
    "epidemic",
];

struct Workload {
    nodes: u32,
    hours: f64,
    num_pois: u32,
    photos_per_hour: f64,
    /// Mean intra-community inter-contact time, hours. The MIT-like
    /// preset is sparse; the large workload densifies contacts so the
    /// per-contact costs under test dominate photo generation.
    intra_mean_hours: f64,
    inter_mean_hours: f64,
    trace_seed: u64,
    run_seed: u64,
    iters: usize,
}

impl Workload {
    fn large() -> Self {
        Workload {
            nodes: 30,
            hours: 48.0,
            num_pois: 800,
            photos_per_hour: 30.0,
            intra_mean_hours: 6.0,
            inter_mean_hours: 200.0,
            trace_seed: 11,
            run_seed: 42,
            // 9 iterations: the cheap schemes (epidemic ~5 ms/run) need
            // the extra samples for a stable median; 5 was noisy enough
            // to swing the regression gate by +-5%.
            iters: 9,
        }
    }

    fn smoke() -> Self {
        Workload {
            nodes: 8,
            hours: 6.0,
            num_pois: 60,
            photos_per_hour: 10.0,
            intra_mean_hours: 6.0,
            inter_mean_hours: 200.0,
            trace_seed: 11,
            run_seed: 42,
            iters: 1,
        }
    }

    fn trace(&self) -> ContactTrace {
        let mut gen = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(self.nodes)
            .with_duration_hours(self.hours);
        gen.intra_mean_hours = self.intra_mean_hours;
        gen.inter_mean_hours = self.inter_mean_hours;
        gen.generate(self.trace_seed)
    }

    fn config(&self) -> SimConfig {
        let mut config = SimConfig::mit_default()
            .with_photos_per_hour(self.photos_per_hour)
            .with_storage_bytes(40 * 4 * 1024 * 1024);
        config.num_pois = self.num_pois;
        config
    }
}

/// Metro-scale workload driving the sharded executor's
/// workers-vs-throughput curve.
struct MetroWorkload {
    nodes: u32,
    hours: f64,
    grid: u32,
    photos_per_hour: f64,
    trace_seed: u64,
    run_seed: u64,
    iters: usize,
}

impl MetroWorkload {
    fn full() -> Self {
        MetroWorkload {
            nodes: 5000,
            hours: 6.0,
            grid: 8,
            photos_per_hour: 1000.0,
            trace_seed: 17,
            run_seed: 42,
            iters: 3,
        }
    }

    fn smoke() -> Self {
        MetroWorkload {
            nodes: 400,
            hours: 1.0,
            grid: 4,
            photos_per_hour: 200.0,
            trace_seed: 17,
            run_seed: 42,
            iters: 1,
        }
    }

    fn trace(&self) -> ContactTrace {
        MetroTraceGenerator::new()
            .with_num_nodes(self.nodes)
            .with_duration_hours(self.hours)
            .with_grid(self.grid)
            .generate(self.trace_seed)
    }

    fn config(&self, shards: usize) -> SimConfig {
        SimConfig::mit_default()
            .with_photos_per_hour(self.photos_per_hour)
            .with_shards(shards)
    }
}

/// One point of the shard workers-vs-throughput curve.
struct ShardTiming {
    /// Requested `--shards` value.
    workers: usize,
    /// Workers the engine actually used (1 = it fell back to the
    /// sequential path, which would make the point meaningless).
    reported_workers: u64,
    median_ns: u128,
    min_ns: u128,
    events: u64,
}

impl ShardTiming {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.median_ns as f64 / 1e9)
    }
}

/// Times `ours` on the metro trace at one shard count.
fn time_shards(workload: &MetroWorkload, trace: &ContactTrace, shards: usize) -> ShardTiming {
    let config = workload.config(shards);
    let mut events = 0u64;
    let mut reported_workers = 0u64;
    let mut times: Vec<u128> = (0..workload.iters.max(1))
        .map(|_| {
            let mut s = scheme_by_name("ours");
            let mut sim = Simulation::new(&config, trace, workload.run_seed);
            let t = Instant::now();
            let (_, _, stats) = sim.run_instrumented(&mut *s);
            let elapsed = t.elapsed().as_nanos();
            events = stats.events;
            reported_workers = stats.workers;
            elapsed
        })
        .collect();
    times.sort_unstable();
    ShardTiming {
        workers: shards,
        reported_workers,
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        events,
    }
}

struct Timing {
    scheme: &'static str,
    median_ns: u128,
    /// Fastest observed run. Wall-clock noise is one-sided (interrupts
    /// and frequency dips only ever slow a run down), so the minimum is
    /// far more stable across processes than the median and is what the
    /// before/after regression gates compare.
    min_ns: u128,
    events: u64,
    contacts: u64,
}

impl Timing {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.median_ns as f64 / 1e9)
    }

    fn ns_per_contact(&self) -> f64 {
        self.median_ns as f64 / self.contacts as f64
    }
}

/// Median wall time of a full run of `scheme` (fresh `Simulation` and
/// scheme instance per iteration; construction is outside the timer).
fn time_scheme(workload: &Workload, trace: &ContactTrace, scheme: &'static str) -> Timing {
    let config = workload.config();
    // warmup: populate allocator/page caches, and get a rough per-run
    // cost for sizing the sample count below
    let mut events = 0u64;
    let warm_ns = {
        let mut s = scheme_by_name(scheme);
        let mut sim = Simulation::new(&config, trace, workload.run_seed);
        events = events.max(sim.event_count() as u64);
        let t = Instant::now();
        let _ = sim.run(&mut *s);
        t.elapsed().as_nanos().max(1)
    };
    // Cheap schemes (epidemic finishes in single-digit milliseconds)
    // need far more samples than expensive ones for a stable median:
    // take at least `workload.iters`, but keep timing until ~150 ms of
    // measured work has accumulated, capped so pathological cases
    // cannot spin forever.
    let target_total_ns: u128 = 150_000_000;
    let iters = workload
        .iters
        .max(((target_total_ns / warm_ns) as usize).min(41));
    let mut times: Vec<u128> = (0..iters)
        .map(|_| {
            let mut s = scheme_by_name(scheme);
            let mut sim = Simulation::new(&config, trace, workload.run_seed);
            let t = Instant::now();
            let _ = sim.run(&mut *s);
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Timing {
        scheme,
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        events,
        // Contact count comes from the trace, which is identical across
        // builds, so before/after ns/contact divide by the same number.
        contacts: trace.len() as u64,
    }
}

/// Parses "scheme median_ns [min_ns]" lines; the third column is
/// missing in baselines from older harness revisions, in which case the
/// median stands in for the minimum.
fn baseline_from(path: &str) -> Vec<(String, u128, u128)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_sim: reading baseline {path}: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next().expect("baseline line: scheme name").to_string();
            let median: u128 = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("baseline line: median ns");
            let min: u128 = it.next().and_then(|v| v.parse().ok()).unwrap_or(median);
            (name, median, min)
        })
        .collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |name: &str| argv.iter().any(|a| a == name);
    let value_of = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };

    let smoke = has("--smoke");
    let workload = if smoke {
        Workload::smoke()
    } else {
        Workload::large()
    };
    let trace = workload.trace();
    println!(
        "bench_sim: {} nodes / {:.0} h / {} PoIs / {} contacts, median of {} full runs per scheme",
        workload.nodes,
        workload.hours,
        workload.num_pois,
        trace.len(),
        workload.iters
    );

    let timings: Vec<Timing> = SCHEMES
        .iter()
        .map(|s| {
            let t = time_scheme(&workload, &trace, s);
            println!(
                "{:<16} {:>14} ns  {:>10.0} events/s  {:>12.0} ns/contact",
                t.scheme,
                t.median_ns,
                t.events_per_sec(),
                t.ns_per_contact()
            );
            t
        })
        .collect();

    // Nodes-vs-throughput scaling curve for the headline scheme: per-node
    // contact rates are fixed, so the contact count (and the per-contact
    // pool the selection core chews through) grows with the node count —
    // the curve shows how throughput holds up as the world scales.
    let scaling_nodes: Vec<u32> = match value_of("--scaling-nodes") {
        Some(csv) => csv
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("bench_sim: --scaling-nodes entry {v:?}: {e}"))
            })
            .collect(),
        None if smoke => vec![4, 8],
        None => vec![12, 24, 36, 48],
    };
    println!("\nscaling (ours):");
    let scaling: Vec<(u32, Timing)> = scaling_nodes
        .iter()
        .map(|&n| {
            let wl = Workload {
                nodes: n,
                iters: 3, // time_scheme tops this up to ~150 ms of samples
                ..if smoke {
                    Workload::smoke()
                } else {
                    Workload::large()
                }
            };
            let trace = wl.trace();
            let t = time_scheme(&wl, &trace, "ours");
            println!(
                "{:>6} nodes {:>14} ns  {:>10.0} events/s  {:>12.0} ns/contact  ({} contacts)",
                n,
                t.median_ns,
                t.events_per_sec(),
                t.ns_per_contact(),
                t.contacts
            );
            (n, t)
        })
        .collect();

    // Sharded-executor curve: the same metro-scale run at increasing
    // worker counts. Speedups compare against `--shards 1`, which takes
    // the plain sequential path.
    let metro = if smoke {
        MetroWorkload::smoke()
    } else {
        MetroWorkload::full()
    };
    let metro_trace = metro.trace();
    let machine_workers = default_worker_count();
    let mut shard_counts = vec![1usize, 2, 4];
    if machine_workers >= 8 {
        shard_counts.push(8);
    }
    println!(
        "\nshard scaling (ours, metro): {} nodes / {:.0} h / {} contacts, {} cores available",
        metro.nodes,
        metro.hours,
        metro_trace.len(),
        machine_workers
    );
    let shard_curve: Vec<ShardTiming> = shard_counts
        .iter()
        .map(|&w| {
            let t = time_shards(&metro, &metro_trace, w);
            println!(
                "{:>3} workers {:>14} ns  {:>10.0} events/s{}",
                t.workers,
                t.median_ns,
                t.events_per_sec(),
                if t.reported_workers == t.workers as u64 {
                    String::new()
                } else {
                    format!("  (engine used {})", t.reported_workers)
                }
            );
            t
        })
        .collect();

    // --emit-baseline FILE: plain "scheme median_ns" lines for an old
    // build to hand to a new one; deliberately not JSON so the old binary
    // needs no parser.
    if let Some(path) = value_of("--emit-baseline") {
        let mut out = String::new();
        for t in &timings {
            out.push_str(&format!("{} {} {}\n", t.scheme, t.median_ns, t.min_ns));
        }
        std::fs::write(&path, out).expect("write baseline");
        eprintln!("bench_sim: wrote baseline {path}");
        return;
    }

    let baseline = value_of("--baseline").map(|p| baseline_from(&p));

    // Hand-rolled JSON, matching bench_selection's artifact style.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\n    \"nodes\": {},\n    \"hours\": {},\n    \"num_pois\": {},\n    \
         \"photos_per_hour\": {},\n    \"contacts\": {},\n    \"iterations\": {},\n    \
         \"smoke\": {}\n  }},\n",
        workload.nodes,
        workload.hours,
        workload.num_pois,
        workload.photos_per_hour,
        trace.len(),
        workload.iters,
        smoke
    ));
    json.push_str("  \"schemes\": {\n");
    for (i, t) in timings.iter().enumerate() {
        let before = baseline
            .as_ref()
            .and_then(|b| b.iter().find(|(n, _, _)| n == t.scheme))
            .map(|(_, median, min)| (*median, *min));
        json.push_str(&format!(
            "    \"{}\": {{\n      \"events\": {},\n      \"contacts\": {},\n      \
             \"after\": {{ \"median_ns\": {}, \"min_ns\": {}, \"events_per_sec\": {:.1}, \
             \"ns_per_contact\": {:.1} }}",
            t.scheme,
            t.events,
            t.contacts,
            t.median_ns,
            t.min_ns,
            t.events_per_sec(),
            t.ns_per_contact()
        ));
        if let Some((before_ns, before_min)) = before {
            let before_eps = t.events as f64 / (before_ns as f64 / 1e9);
            let before_npc = before_ns as f64 / t.contacts as f64;
            let speedup = before_ns as f64 / t.median_ns as f64;
            let speedup_min = before_min as f64 / t.min_ns as f64;
            json.push_str(&format!(
                ",\n      \"before\": {{ \"median_ns\": {before_ns}, \"min_ns\": {before_min}, \
                 \"events_per_sec\": {before_eps:.1}, \"ns_per_contact\": {before_npc:.1} }},\n      \
                 \"speedup\": {speedup:.3},\n      \"speedup_min\": {speedup_min:.3}"
            ));
        }
        json.push_str("\n    }");
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    json.push_str("  \"scaling\": {\n    \"scheme\": \"ours\",\n    \"points\": [\n");
    for (i, (n, t)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"nodes\": {}, \"contacts\": {}, \"events\": {}, \"median_ns\": {}, \
             \"min_ns\": {}, \"events_per_sec\": {:.1}, \"ns_per_contact\": {:.1} }}{}\n",
            n,
            t.contacts,
            t.events,
            t.median_ns,
            t.min_ns,
            t.events_per_sec(),
            t.ns_per_contact(),
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    let sequential_min = shard_curve
        .iter()
        .find(|t| t.workers == 1)
        .map_or(1, |t| t.min_ns)
        .max(1);
    json.push_str(&format!(
        "  \"shard_scaling\": {{\n    \"scheme\": \"ours\",\n    \"machine_workers\": {},\n    \
         \"workload\": {{ \"nodes\": {}, \"hours\": {}, \"grid\": {}, \"contacts\": {} }},\n    \
         \"points\": [\n",
        machine_workers,
        metro.nodes,
        metro.hours,
        metro.grid,
        metro_trace.len()
    ));
    for (i, t) in shard_curve.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"workers\": {}, \"reported_workers\": {}, \"median_ns\": {}, \
             \"min_ns\": {}, \"events_per_sec\": {:.1}, \"speedup_vs_sequential\": {:.3} }}{}\n",
            t.workers,
            t.reported_workers,
            t.median_ns,
            t.min_ns,
            t.events_per_sec(),
            sequential_min as f64 / t.min_ns as f64,
            if i + 1 < shard_curve.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    eprintln!("bench_sim: wrote BENCH_sim.json");

    // Parallel-speedup acceptance: >= 2.5x events/sec for ours with >= 4
    // workers against the sequential path on the metro workload. Only
    // armed when the machine can actually run 4 workers in parallel — on
    // fewer cores the threads timeshare and the measurement would say
    // nothing about the executor.
    if !smoke {
        if machine_workers >= 4 {
            let best = shard_curve
                .iter()
                .filter(|t| t.workers >= 4)
                .map(|t| sequential_min as f64 / t.min_ns as f64)
                .fold(0.0f64, f64::max);
            assert!(
                best >= 2.5,
                "acceptance: expected >= 2.5x events/sec for ours at >= 4 shard workers, \
                 got {best:.2}x"
            );
            println!("shard acceptance: {best:.2}x at >= 4 workers (gate >= 2.5x)");
        } else {
            println!(
                "shard acceptance: skipped — {machine_workers} core(s) available, \
                 need >= 4 to demonstrate parallel speedup"
            );
        }
    }

    if let Some(baseline) = &baseline {
        for t in &timings {
            if let Some((_, before_ns, before_min)) =
                baseline.iter().find(|(n, _, _)| n == t.scheme)
            {
                let speedup = *before_ns as f64 / t.median_ns as f64;
                let speedup_min = *before_min as f64 / t.min_ns as f64;
                println!(
                    "{:<16} speedup {speedup:.2}x (min-based {speedup_min:.2}x)",
                    t.scheme
                );
            }
        }
        // The gates compare minima, not medians: between-process median
        // drift on shared machines runs to ~10% for millisecond-scale
        // schemes, while the fastest-run floor is stable.
        if !smoke {
            let ours = timings.iter().find(|t| t.scheme == "ours").unwrap();
            let (_, _, before_min) = baseline
                .iter()
                .find(|(n, _, _)| n == "ours")
                .expect("baseline has ours");
            let speedup = *before_min as f64 / ours.min_ns as f64;
            assert!(
                speedup >= 3.0,
                "acceptance: expected >= 3x events/sec for ours, got {speedup:.2}x"
            );
            // No scheme may regress: a speedup for the headline scheme
            // must not be paid for by slowing any baseline down (the
            // PR 3 event-queue change cost epidemic 10% exactly this
            // way). 1.0x with a small allowance for timer noise.
            for t in &timings {
                if let Some((_, _, before_min)) = baseline.iter().find(|(n, _, _)| n == t.scheme) {
                    let speedup = *before_min as f64 / t.min_ns as f64;
                    assert!(
                        speedup >= 0.97,
                        "acceptance: {} regressed to {speedup:.2}x vs baseline \
                         (every scheme must hold >= 1.0x modulo noise)",
                        t.scheme
                    );
                }
            }
        }
    }
}
