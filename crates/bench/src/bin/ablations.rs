//! Design-choice ablations (DESIGN.md §5) that the paper leaves to
//! simulation:
//!
//! 1. **`P_thld` sweep** — §III-B: "The value of `P_thld` is currently
//!    determined by simulations." We sweep the staleness threshold from
//!    never-trust (0.01) to always-trust (0.999) around Table I's 0.8.
//! 2. **Command-center acknowledgment relay** — whether nodes forward the
//!    freshest command-center metadata ("works as an acknowledgment",
//!    §III-B) to peers, or only learn it first-hand.
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin ablations -- --runs 2
//! ```

use photodtn_bench::{run_averaged_or_exit, Args};
use photodtn_core::validity::ValidityModel;
use photodtn_schemes::OurScheme;

fn main() {
    let args = Args::parse();
    let seeds = args.seeds();
    let config = args.config();

    println!("Ablation 1: metadata validity threshold P_thld (Table I uses 0.8)");
    println!(
        "{:>8} | {:>8} {:>9} {:>10}",
        "P_thld", "point%", "aspect°", "delivered"
    );
    let mut rows = Vec::new();
    for p_thld in [0.01, 0.2, 0.5, 0.8, 0.95, 0.999] {
        eprintln!("ablations: P_thld = {p_thld}…");
        let s = run_averaged_or_exit(
            "ablations",
            &config,
            |seed| args.trace(seed),
            || OurScheme::new().with_validity(ValidityModel::new(p_thld)),
            &seeds,
        );
        let f = s.final_sample();
        println!(
            "{:>8.3} | {:>7.1}% {:>8.1}° {:>10}",
            p_thld,
            100.0 * f.point_coverage,
            f.aspect_coverage_deg,
            f.delivered_photos
        );
        rows.push(serde_json::json!({
            "ablation": "p_thld", "p_thld": p_thld, "runs": args.runs,
            "point_coverage": f.point_coverage,
            "aspect_coverage_deg": f.aspect_coverage_deg,
            "delivered_photos": f.delivered_photos,
        }));
    }

    println!("\nAblation 2: relaying command-center acknowledgments");
    println!(
        "{:>10} | {:>8} {:>9} {:>10}",
        "ack relay", "point%", "aspect°", "delivered"
    );
    for (label, relay) in [("on", true), ("off", false)] {
        eprintln!("ablations: ack relay {label}…");
        let s = run_averaged_or_exit(
            "ablations",
            &config,
            |seed| args.trace(seed),
            || {
                if relay {
                    OurScheme::new()
                } else {
                    OurScheme::new().without_ack_relay()
                }
            },
            &seeds,
        );
        let f = s.final_sample();
        println!(
            "{:>10} | {:>7.1}% {:>8.1}° {:>10}",
            label,
            100.0 * f.point_coverage,
            f.aspect_coverage_deg,
            f.delivered_photos
        );
        rows.push(serde_json::json!({
            "ablation": "ack_relay", "relay": relay, "runs": args.runs,
            "point_coverage": f.point_coverage,
            "aspect_coverage_deg": f.aspect_coverage_deg,
            "delivered_photos": f.delivered_photos,
        }));
    }

    if args.json {
        println!(
            "\nJSON {}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
    }
}
