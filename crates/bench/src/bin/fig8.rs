//! Fig. 8 — the effect of the photo generation rate (§V-E).
//!
//! Sweeps photos/hour at fixed 0.6 GB storage and reports end-of-run
//! metrics — Fig. 8(a–c) with `--trace mit`, Fig. 8(d–f) with
//! `--trace cambridge`.
//!
//! Paper shape: coverage-aware schemes *improve* with more generated
//! photos (more useful candidates beat the added contention) while
//! Spray&Wait fluctuates or degrades; ours delivers few, nearly
//! redundancy-free photos (at 250/h ≈ 3.2 photos per covered PoI with
//! only ~12° of aspect overlap).
//!
//! ```sh
//! cargo run --release -p photodtn-bench --bin fig8 -- --trace mit --runs 2
//! ```

use photodtn_bench::{run_averaged_or_exit, scheme_by_name, Args, LINEUP};

fn main() {
    let args = Args::parse();
    let seeds = args.seeds();
    let rates = [50.0, 150.0, 250.0, 350.0];

    println!(
        "Fig. 8 ({} trace): end-of-run metrics vs photo generation rate, {} runs each",
        args.style.name(),
        args.runs
    );
    println!(
        "{:<15} {:>9} | {:>8} {:>9} {:>10} {:>14}",
        "scheme", "photos/h", "point%", "aspect°", "delivered", "aspect/covered"
    );

    let mut rows = Vec::new();
    for name in LINEUP {
        for rate in rates {
            let config = args.config().with_photos_per_hour(rate);
            eprintln!("fig8: {name} at {rate} photos/h…");
            let s = run_averaged_or_exit(
                "fig8",
                &config,
                |seed| args.trace(seed),
                || scheme_by_name(name),
                &seeds,
            );
            let f = s.final_sample();
            // aspect coverage per *covered* PoI — the paper's redundancy
            // discussion divides by covered PoIs (≈180° at 250/h).
            let per_covered = if f.point_coverage > 0.0 {
                f.aspect_coverage_deg / f.point_coverage
            } else {
                0.0
            };
            println!(
                "{:<15} {:>9.0} | {:>7.1}% {:>8.1}° {:>10} {:>13.0}°",
                name,
                rate,
                100.0 * f.point_coverage,
                f.aspect_coverage_deg,
                f.delivered_photos,
                per_covered
            );
            rows.push(serde_json::json!({
                "figure": "fig8",
                "trace": args.style.name(),
                "scheme": name,
                "photos_per_hour": rate,
                "runs": args.runs,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "aspect_per_covered_poi_deg": per_covered,
                "delivered_photos": f.delivered_photos,
            }));
        }
    }
    if args.json {
        println!(
            "\nJSON {}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
    }
}
