//! Shared harness for the figure-reproduction binaries (`fig3` … `fig8`).
//!
//! Each binary regenerates one figure of the paper's evaluation: it
//! builds the Table I scenario, runs the scheme lineup over several
//! seeds, and prints the same series the figure plots (plus a JSON block
//! for machine consumption). See `EXPERIMENTS.md` at the repository root
//! for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
pub mod svg;

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{ModifiedSpray, OurScheme, PhotoNet, SprayAndWait};
use photodtn_sim::{try_run_averaged, AveragedSeries, Scheme, SimConfig};

/// Command-line options shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Number of independent runs to average (the paper uses 50; the
    /// default here is 5 to keep a laptop run in minutes).
    pub runs: u64,
    /// Which trace family to use.
    pub style: TraceStyle,
    /// Optional override of the trace length in hours.
    pub hours: Option<f64>,
    /// Emit the machine-readable JSON block.
    pub json: bool,
    /// Include the extra baselines (epidemic, prophet, oracle) beyond the
    /// paper's lineup.
    pub extended: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            runs: 3,
            style: TraceStyle::MitLike,
            hours: None,
            json: true,
            extended: false,
        }
    }
}

impl Args {
    /// The scheme lineup for this invocation: the paper's five, plus the
    /// extra baselines when `--extended` was given.
    #[must_use]
    pub fn lineup(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = LINEUP.to_vec();
        if self.extended {
            names.extend_from_slice(EXTENDED_LINEUP);
        }
        names
    }

    /// Parses `--runs N`, `--trace mit|cambridge`, `--hours H`,
    /// `--no-json`, `--extended` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--runs" => {
                    args.runs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs a positive integer");
                }
                "--trace" => {
                    args.style = match it.next().as_deref() {
                        Some("mit") => TraceStyle::MitLike,
                        Some("cambridge") => TraceStyle::CambridgeLike,
                        other => panic!("--trace must be mit or cambridge, got {other:?}"),
                    };
                }
                "--hours" => {
                    args.hours = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--hours needs a number"),
                    );
                }
                "--no-json" => args.json = false,
                "--extended" => args.extended = true,
                other => panic!(
                    "unknown flag {other:?} (use --runs/--trace/--hours/--no-json/--extended)"
                ),
            }
        }
        args
    }

    /// The seeds of the averaged runs.
    #[must_use]
    pub fn seeds(&self) -> Vec<u64> {
        (1..=self.runs).collect()
    }

    /// Builds this experiment's trace for one seed.
    #[must_use]
    pub fn trace(&self, seed: u64) -> ContactTrace {
        let mut gen = CommunityTraceGenerator::new(self.style);
        if let Some(h) = self.hours {
            gen = gen.with_duration_hours(h);
        }
        gen.generate(seed)
    }

    /// The Table I configuration matching the selected trace style.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        match self.style {
            TraceStyle::MitLike => SimConfig::mit_default(),
            TraceStyle::CambridgeLike => SimConfig::cambridge_default(),
        }
    }
}

/// Identifier of every scheme in the Fig. 5–8 lineup.
pub const LINEUP: &[&str] = &[
    "best-possible",
    "ours",
    "no-metadata",
    "modified-spray",
    "spray-wait",
];

/// The extra baselines appended by `--extended`.
pub const EXTENDED_LINEUP: &[&str] = &["epidemic", "prophet", "oracle"];

/// Every name [`scheme_by_name`] understands, for validation and error
/// messages.
pub const ALL_SCHEME_NAMES: &[&str] = &[
    "best-possible",
    "ours",
    "no-metadata",
    "modified-spray",
    "spray-wait",
    "photonet",
    "epidemic",
    "direct",
    "oracle",
    "prophet",
];

/// Instantiates a scheme by its lineup name, or `None` for an unknown
/// name (so callers can validate a sweep spec up front instead of
/// panicking mid-batch).
#[must_use]
pub fn try_scheme_by_name(name: &str) -> Option<Box<dyn Scheme + Send>> {
    Some(match name {
        "best-possible" => Box::new(photodtn_schemes::BestPossible),
        "ours" => Box::new(OurScheme::new()),
        "no-metadata" => Box::new(OurScheme::no_metadata()),
        "modified-spray" => Box::new(ModifiedSpray::new()),
        "spray-wait" => Box::new(SprayAndWait::new()),
        "photonet" => Box::new(PhotoNet::new()),
        "epidemic" => Box::new(photodtn_schemes::Epidemic::new()),
        "direct" => Box::new(photodtn_schemes::DirectDelivery::new()),
        "oracle" => Box::new(photodtn_schemes::CentralizedOracle::new()),
        "prophet" => Box::new(photodtn_schemes::ProphetRouting::new()),
        _ => return None,
    })
}

/// Instantiates a scheme by its lineup name.
///
/// # Panics
///
/// Panics on an unknown name.
#[must_use]
pub fn scheme_by_name(name: &str) -> Box<dyn Scheme + Send> {
    try_scheme_by_name(name).unwrap_or_else(|| panic!("unknown scheme {name:?}"))
}

/// Runs one averaged experiment under supervisor panic isolation.
///
/// A panicking seed no longer aborts the whole figure binary: the
/// failure is attributed on stderr (scheme, seed, payload) and the
/// experiment degrades to the surviving seeds' average. The process
/// exits (code 1) only when *every* seed failed — there is nothing left
/// to plot.
pub fn run_averaged_or_exit<S, TF, SF>(
    tag: &str,
    config: &SimConfig,
    trace_for_seed: TF,
    scheme_factory: SF,
    seeds: &[u64],
) -> AveragedSeries
where
    S: Scheme,
    TF: Fn(u64) -> ContactTrace + Sync,
    SF: Fn() -> S + Sync,
{
    match try_run_averaged(config, trace_for_seed, scheme_factory, seeds) {
        Ok(series) => series,
        Err(err) => {
            eprintln!("{tag}: {err}");
            match err.surviving {
                Some(series) => {
                    eprintln!(
                        "{tag}: continuing with the {} surviving seed(s) of {}",
                        series.runs,
                        seeds.len()
                    );
                    series
                }
                None => {
                    eprintln!("{tag}: every seed failed; nothing to average");
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Prints one experiment's averaged series as an aligned table.
pub fn print_series_table(title: &str, series: &[AveragedSeries], every: usize) {
    println!("\n── {title} ──");
    print!("{:>7}", "t (h)");
    for s in series {
        print!(" | {:^30}", s.scheme);
    }
    println!();
    print!("{:>7}", "");
    for _ in series {
        print!(" | {:>8} {:>9} {:>10}", "point%", "aspect°", "delivered");
    }
    println!();
    let len = series.iter().map(|s| s.samples.len()).min().unwrap_or(0);
    for i in (0..len).step_by(every.max(1)) {
        print!("{:>7.0}", series[0].samples[i].t_hours);
        for s in series {
            let x = &s.samples[i];
            print!(
                " | {:>7.1}% {:>8.1}° {:>10}",
                100.0 * x.point_coverage,
                x.aspect_coverage_deg,
                x.delivered_photos
            );
        }
        println!();
    }
}

/// Prints one experiment's final samples as JSON rows for EXPERIMENTS.md.
pub fn print_json(figure: &str, args: &Args, series: &[AveragedSeries]) {
    if !args.json {
        return;
    }
    let rows: Vec<serde_json::Value> = series
        .iter()
        .map(|s| {
            let f = s.final_sample();
            serde_json::json!({
                "figure": figure,
                "trace": args.style.name(),
                "runs": s.runs,
                "scheme": s.scheme,
                "point_coverage": f.point_coverage,
                "aspect_coverage_deg": f.aspect_coverage_deg,
                "delivered_photos": f.delivered_photos,
            })
        })
        .collect();
    println!(
        "\nJSON {}",
        serde_json::to_string_pretty(&rows).expect("series serialize")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_names_resolve() {
        for name in LINEUP {
            assert_eq!(scheme_by_name(name).name(), *name);
        }
        assert_eq!(scheme_by_name("photonet").name(), "photonet");
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn unknown_scheme_panics() {
        let _ = scheme_by_name("bogus");
    }

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.runs, 3);
        assert_eq!(a.seeds(), vec![1, 2, 3]);
        let t = a.trace(1);
        assert_eq!(t.num_nodes(), 97);
    }
}
