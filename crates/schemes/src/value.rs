use std::collections::HashMap;

use photodtn_coverage::{Coverage, CoverageParams, Photo, PhotoId, PoiList};

/// Memoized *individual* photo coverage `C_ph({f})`, quantized for total
/// ordering.
///
/// ModifiedSpray ranks photos by their standalone coverage ("transmits the
/// photo with the most photo coverage first", §V-B) and our scheme uses
/// the same quantity as a cheap storage-eviction heuristic at photo
/// generation time. The value of a photo in isolation never changes, so
/// it is computed once per photo id.
#[derive(Clone, Debug, Default)]
pub struct PhotoValueCache {
    values: HashMap<PhotoId, (i64, i64)>,
}

impl PhotoValueCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        PhotoValueCache::default()
    }

    /// The quantized `(point, aspect)` value of `photo` in isolation.
    pub fn value(&mut self, photo: &Photo, pois: &PoiList, params: CoverageParams) -> (i64, i64) {
        if let Some(v) = self.values.get(&photo.id) {
            return *v;
        }
        let c = Coverage::of(pois, [&photo.meta], params);
        const SCALE: f64 = 1e9;
        let q = (
            (c.point * SCALE).round() as i64,
            (c.aspect * SCALE).round() as i64,
        );
        self.values.insert(photo.id, q);
        q
    }

    /// Forgets a photo (e.g. after permanent deletion everywhere).
    pub fn forget(&mut self, id: PhotoId) {
        self.values.remove(&id);
    }

    /// Number of memoized photos.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::{PhotoMeta, Poi};
    use photodtn_geo::{Angle, Point};

    fn pois() -> PoiList {
        PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))])
    }

    fn shot(id: u64, covers: bool) -> Photo {
        let dir = if covers { Angle::PI } else { Angle::ZERO };
        Photo::new(
            id,
            PhotoMeta::new(Point::new(50.0, 0.0), 100.0, Angle::from_degrees(40.0), dir),
            0.0,
        )
    }

    #[test]
    fn values_ordered_and_cached() {
        let pois = pois();
        let mut cache = PhotoValueCache::new();
        let good = cache.value(&shot(1, true), &pois, CoverageParams::default());
        let bad = cache.value(&shot(2, false), &pois, CoverageParams::default());
        assert!(good > bad);
        assert_eq!(bad, (0, 0));
        assert_eq!(cache.len(), 2);
        // cached lookup returns the same value
        assert_eq!(
            cache.value(&shot(1, true), &pois, CoverageParams::default()),
            good
        );
        cache.forget(PhotoId(1));
        assert_eq!(cache.len(), 1);
    }
}
