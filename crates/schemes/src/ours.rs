use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use photodtn_contacts::{NodeId, RateMatrix};
use photodtn_core::expected::DeliveryNode;
use photodtn_core::selection::{PeerState, SelectionInput, SelectionSession};
use photodtn_core::transmission::{execute_plan_with, plan_transfers};
use photodtn_core::validity::ValidityModel;
use photodtn_core::MetadataCache;
use photodtn_coverage::{Photo, PhotoCoverage, PhotoId, PhotoMeta, PoiList};
use photodtn_sim::{Scheme, SimCtx, TraceEvent};

use crate::upload_base::UploadBase;
use crate::value::PhotoValueCache;

/// The paper's resource-aware photo selection scheme (§III), wired into
/// the simulator.
///
/// Per-contact behaviour:
///
/// 1. learn contact rates (`λ`) for the metadata-validity model;
/// 2. assemble the node set `M`: both endpoints (live collections), every
///    third node with **valid** cached metadata at either endpoint
///    (equation (1)), and the command center's known collection
///    (delivery probability 1 — its metadata "is always valid");
/// 3. run the greedy reallocation of §III-D under both storage limits;
/// 4. transmit in selection order under the contact's byte budget
///    (§III-D, network-constrained adjustment);
/// 5. exchange metadata snapshots + `λ` for future validity checks.
///
/// On an uplink window the node greedily sends the photos with the
/// largest marginal coverage on what the command center already has, and
/// drops delivered photos locally (the returned metadata acts as the
/// acknowledgment described in §III-B).
///
/// [`OurScheme::no_metadata`] constructs the §V-B *NoMetadata* ablation:
/// identical except that step 2's node set contains only the two
/// endpoints.
#[derive(Debug)]
pub struct OurScheme {
    use_metadata: bool,
    /// Relay command-center acknowledgments between nodes (the paper's
    /// "works as an acknowledgment" behaviour). On by default; disable
    /// for ablations.
    relay_acks: bool,
    validity: ValidityModel,
    caches: HashMap<u32, MetadataCache>,
    rates: RateMatrix,
    values: PhotoValueCache,
    /// Per-run selection context, lazily bound to the current world's PoI
    /// list (a new run — new `Arc` — replaces it).
    session: Option<SelectionSession>,
    /// Persistent greedy-upload engine whose command-center base is
    /// maintained incrementally across uplink windows (checkpoint +
    /// rollback; same `Arc`-staleness rule as `session`).
    upload: UploadBase,
}

impl OurScheme {
    /// The full scheme with Table I parameters.
    #[must_use]
    pub fn new() -> Self {
        OurScheme {
            use_metadata: true,
            relay_acks: true,
            validity: ValidityModel::paper_default(),
            caches: HashMap::new(),
            rates: RateMatrix::new(0.0),
            values: PhotoValueCache::new(),
            session: None,
            upload: UploadBase::default(),
        }
    }

    /// The *NoMetadata* ablation: no metadata caching or validity
    /// management; selection sees only the two contacting nodes.
    #[must_use]
    pub fn no_metadata() -> Self {
        OurScheme {
            use_metadata: false,
            relay_acks: false,
            ..Self::new()
        }
    }

    /// Overrides the validity threshold (builder-style).
    #[must_use]
    pub fn with_validity(mut self, validity: ValidityModel) -> Self {
        self.validity = validity;
        self
    }

    /// Disables relaying of command-center acknowledgments
    /// (builder-style; for ablation benches).
    #[must_use]
    pub fn without_ack_relay(mut self) -> Self {
        self.relay_acks = false;
        self
    }

    fn cache_mut(&mut self, node: NodeId) -> &mut MetadataCache {
        self.caches.entry(node.0).or_default()
    }

    /// The per-run [`SelectionSession`], (re)created when the world's PoI
    /// list changes identity (i.e. a new simulation run started).
    fn session_for(
        &mut self,
        pois: &Arc<PoiList>,
        params: photodtn_coverage::CoverageParams,
    ) -> &mut SelectionSession {
        let stale = self
            .session
            .as_ref()
            .is_none_or(|s| !Arc::ptr_eq(s.pois_shared(), pois));
        if stale {
            self.session = Some(SelectionSession::new(Arc::clone(pois), params));
        }
        self.session.as_mut().expect("just ensured")
    }

    /// Collects the valid third-party records both endpoints know about,
    /// converting them to [`DeliveryNode`]s (§III-C: "M contains all nodes
    /// of which n_a and n_b have valid metadata", plus `n_0`).
    fn gather_others(&self, ctx: &SimCtx, a: NodeId, b: NodeId) -> Vec<DeliveryNode> {
        if !self.use_metadata {
            return Vec::new();
        }
        let now = ctx.now();
        let cc = ctx.command_center_id();
        // peer id -> (snapshot time, (id, meta) records). Ordered map so
        // the node set M reaches selection in the same (ascending peer)
        // order on every replica — the selection's f64 accumulation order
        // is part of the byte-identical determinism contract.
        let mut merged: BTreeMap<u32, (f64, Vec<(PhotoId, PhotoMeta)>)> = BTreeMap::new();
        for endpoint in [a, b] {
            let Some(cache) = self.caches.get(&endpoint.0) else {
                continue;
            };
            for (peer, record) in cache.valid_records(&self.validity, now) {
                if peer == a || peer == b {
                    continue; // live collections take precedence
                }
                let entry = merged
                    .entry(peer.0)
                    .or_insert((f64::NEG_INFINITY, Vec::new()));
                if record.snapshot_at > entry.0 {
                    *entry = (record.snapshot_at, record.photos.clone());
                }
            }
        }
        merged
            .into_iter()
            .map(|(peer, (_, photos))| {
                let prob = if NodeId(peer) == cc {
                    1.0
                } else {
                    ctx.delivery_prob(NodeId(peer))
                };
                // Ids are known here, so the session can commit these
                // photos through the cached indexed path.
                DeliveryNode::with_ids(prob, photos)
            })
            .collect()
    }

    /// Stores `peer`'s current snapshot (photos + λ) in `owner`'s cache,
    /// and optionally relays the freshest command-center record.
    fn exchange_metadata(&mut self, ctx: &mut SimCtx, owner: NodeId, peer: NodeId) {
        if !self.use_metadata {
            return;
        }
        let now = ctx.now();
        let snapshot: Vec<(PhotoId, PhotoMeta)> = ctx
            .collection(peer)
            .iter()
            .map(|p| (p.id, p.meta))
            .collect();
        let snapshot_bytes = snapshot.len() as u64 * PhotoMeta::wire_size() + 8;
        ctx.note_metadata_bytes(snapshot_bytes);
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::MetadataSnapshot {
                t: now,
                from: peer.0,
                to: owner.0,
                entries: snapshot.len() as u64,
                bytes: snapshot_bytes,
            });
        }
        let lambda = self.rates.node_rate(peer, now);
        let cc = ctx.command_center_id();
        // Relay the peer's command-center knowledge if fresher than ours.
        let relayed_cc = if self.relay_acks {
            self.caches.get(&peer.0).and_then(|c| c.record(cc)).cloned()
        } else {
            None
        };
        let validity = self.validity;
        let cache = self.cache_mut(owner);
        cache.update(peer, snapshot, lambda, now);
        if let Some(peer_cc) = relayed_cc {
            let ours_older = cache
                .record(cc)
                .is_none_or(|r| r.snapshot_at < peer_cc.snapshot_at);
            if ours_older {
                cache.update(cc, peer_cc.photos, 0.0, peer_cc.snapshot_at);
            }
        }
        let purged = cache.purge_stale(&validity, now);
        if purged > 0 && ctx.trace_enabled() {
            ctx.trace(TraceEvent::MetadataInvalidated {
                t: now,
                node: owner.0,
                purged: purged as u64,
            });
        }
    }
}

impl Default for OurScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheme for OurScheme {
    fn name(&self) -> &'static str {
        if self.use_metadata {
            "ours"
        } else {
            "no-metadata"
        }
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        let capacity = ctx.storage_bytes();
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        let collection = ctx.collection_mut(node);
        // Make room by evicting the lowest standalone-coverage photo while
        // the new one is worth more than the worst stored one.
        while collection.total_size() + photo.size > capacity {
            let new_value = self.values.value(&photo, &pois, params);
            let worst = collection
                .iter()
                .map(|p| (self.values.value(p, &pois, params), p.id))
                .min();
            match worst {
                Some((value, id)) if (value, id) < (new_value, photo.id) => {
                    collection.remove(id);
                }
                _ => return, // the new photo is the least valuable: skip it
            }
        }
        collection.insert(photo);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        let now = ctx.now();
        self.rates.record(a, b, now);

        let others = self.gather_others(ctx, a, b);
        let pois = ctx.pois_shared();
        let input = SelectionInput {
            pois: &pois,
            params: ctx.coverage_params(),
            a: PeerState {
                node: a,
                delivery_prob: ctx.delivery_prob(a),
                capacity: ctx.storage_bytes(),
                photos: ctx.collection(a).iter().copied().collect(),
            },
            b: PeerState {
                node: b,
                delivery_prob: ctx.delivery_prob(b),
                capacity: ctx.storage_bytes(),
                photos: ctx.collection(b).iter().copied().collect(),
            },
            others,
        };
        let session = self.session_for(&pois, input.params);
        let result = session.reallocate_with(&input, |id, meta| ctx.photo_coverage(id, meta));
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::Selection {
                t: now,
                a: a.0,
                b: b.0,
                a_first: result.a_first,
                a_selected: result.a_selected.iter().map(|p| p.0).collect(),
                b_selected: result.b_selected.iter().map(|p| p.0).collect(),
                expected_point: result.expected.point,
                expected_aspect_deg: result.expected.aspect.to_degrees(),
                evaluations: result.stats.evaluations,
                refreshes: result.stats.refreshes,
                commits: result.stats.commits,
            });
        }
        let capacity = ctx.storage_bytes();
        let (faults, ca, cb) = ctx.faults_and_pair_mut(a, b);
        let plan = plan_transfers(&result, ca, cb);
        // Transmit in selection order over the (possibly faulty) link:
        // lost/corrupt sends burn budget but never store (§III-D —
        // whatever prefix survives is still the most valuable one).
        execute_plan_with(&plan, &result, ca, capacity, cb, capacity, budget, |_| {
            faults.roll_transfer()
        });

        // Exchange metadata snapshots of the post-contact collections.
        self.exchange_metadata(ctx, a, b);
        self.exchange_metadata(ctx, b, a);
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let now = ctx.now();

        // Greedy marginal-gain order against what the command center has.
        // The engine persists across uplink windows with its command-
        // center base checkpointed: rollback discards the previous
        // window's commits (which also fire for lost/corrupt uploads, so
        // they must never leak into the base), and only the photos the
        // command center gained since last window are committed on top.
        let (engine, _cc_node) = self.upload.prepare(ctx);
        let uploader = engine.add_node(1.0);

        // Snapshot the (id-ordered) collection and resolve each photo's
        // coverage table through the per-run cache; the greedy loop then
        // evaluates gains through the engine's allocation-free fast path.
        let photos: Vec<Photo> = ctx.collection(node).iter().copied().collect();
        let covs: Vec<Arc<PhotoCoverage>> = photos
            .iter()
            .map(|p| ctx.photo_coverage(p.id, &p.meta))
            .collect();
        let mut taken = vec![false; photos.len()];

        let mut remaining = budget;
        let mut bytes = 0u64;
        loop {
            let candidate = photos
                .iter()
                .enumerate()
                .filter(|(i, p)| !taken[*i] && p.size <= remaining)
                .map(|(i, p)| (engine.gain_of_indexed(uploader, &covs[i]), p.id, i))
                .max_by(|(ga, ida, _), (gb, idb, _)| {
                    ga.point
                        .total_cmp(&gb.point)
                        .then(ga.aspect.total_cmp(&gb.aspect))
                        .then(idb.cmp(ida))
                });
            let Some((gain, _, i)) = candidate else { break };
            if gain.point < 1e-9 && gain.aspect < 1e-9 {
                break; // nothing left that adds coverage
            }
            let photo = photos[i];
            engine.commit_indexed(uploader, &covs[i], gain);
            taken[i] = true;
            // The uplink burns the bytes either way; only an acknowledged
            // arrival lets the node drop its local copy (§III-B — the
            // returned metadata is the acknowledgment).
            let outcome = ctx.upload_photo(photo);
            if ctx.trace_enabled() {
                ctx.trace(TraceEvent::UploadCommit {
                    t: now,
                    node: node.0,
                    photo: photo.id.0,
                    bytes: photo.size,
                    gain_point: gain.point,
                    gain_aspect_deg: gain.aspect.to_degrees(),
                    outcome,
                });
            }
            if outcome.acked() {
                ctx.collection_mut(node).remove(photo.id);
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);

        // The command center's metadata (acknowledgments) is cached with
        // λ = 0: always valid.
        if self.use_metadata {
            let cc = ctx.command_center_id();
            let snapshot: Vec<(PhotoId, PhotoMeta)> =
                ctx.cc_collection().iter().map(|p| (p.id, p.meta)).collect();
            ctx.note_metadata_bytes(snapshot.len() as u64 * PhotoMeta::wire_size() + 8);
            self.cache_mut(node).update(cc, snapshot, 0.0, now);
        }
    }

    fn on_node_crashed(&mut self, _ctx: &mut SimCtx, node: NodeId) {
        // The metadata cache lives in the node's RAM: a crash destroys it.
        // Other nodes' cached records *about* this node survive and go
        // stale — exactly what the §III-B validity model must absorb.
        self.caches.remove(&node.0);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        // Copy the configuration knobs; everything else (caches, rates,
        // session, upload base, value memoization) is per-node state that
        // migrates through export/import, or pure per-replica caches.
        Some(Box::new(OurScheme {
            use_metadata: self.use_metadata,
            relay_acks: self.relay_acks,
            validity: self.validity,
            ..OurScheme::new()
        }))
    }

    fn export_node_state(&mut self, node: NodeId) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(OursNodeState {
            cache: self.caches.remove(&node.0),
            contact_count: self.rates.take_node_count(node),
        }))
    }

    fn import_node_state(&mut self, node: NodeId, state: Box<dyn Any + Send>) {
        let state = state
            .downcast::<OursNodeState>()
            .expect("ours replica handed foreign node state");
        if let Some(cache) = state.cache {
            self.caches.insert(node.0, cache);
        }
        self.rates.add_node_count(node, state.contact_count);
    }

    fn export_global_state(&self) -> Option<String> {
        // Persistent protocol state only: every node's metadata cache and
        // the λ estimator. The selection session, upload base, and photo-
        // value memoization are derived — they rebuild lazily and carry
        // byte-identity contracts ("cold caches must not influence
        // results"), so a resumed run reproduces the original bit-for-bit.
        let state = OursGlobalState {
            caches: self.caches.clone(),
            rates: self.rates.snapshot(),
        };
        Some(serde_json::to_string(&state).expect("ours state serialization is infallible"))
    }

    fn import_global_state(&mut self, state: &str) -> Result<(), String> {
        let state: OursGlobalState = serde_json::from_str(state).map_err(|e| e.to_string())?;
        self.caches = state.caches;
        self.rates = RateMatrix::from_snapshot(&state.rates);
        // Derived state restarts cold on purpose (DESIGN.md decision #14).
        self.values = PhotoValueCache::new();
        self.session = None;
        self.upload = UploadBase::default();
        Ok(())
    }
}

/// The checkpointable protocol state of [`OurScheme`]: metadata caches
/// keyed by node, plus the flattened λ estimator (the raw
/// [`RateMatrix`] is tuple-keyed, which JSON cannot express as a map).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct OursGlobalState {
    caches: HashMap<u32, photodtn_core::MetadataCache>,
    rates: photodtn_contacts::RateMatrixSnapshot,
}

/// One node's migratable protocol state: its metadata cache and its
/// contact-participation count (the numerator of its `λ` estimate).
///
/// The pairwise counts of [`RateMatrix`] do not migrate: the simulator
/// path reads only per-node rates
/// ([`node_rate`](RateMatrix::node_rate) in
/// [`OurScheme::exchange_metadata`]), and those are kept exact by moving
/// the node counts alone.
#[derive(Debug)]
struct OursNodeState {
    cache: Option<MetadataCache>,
    contact_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
    use photodtn_sim::{SimConfig, Simulation};

    fn trace() -> photodtn_contacts::ContactTrace {
        CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(15)
            .with_duration_hours(40.0)
            .generate(3)
    }

    fn config() -> SimConfig {
        SimConfig::mit_default().with_photos_per_hour(30.0)
    }

    #[test]
    fn runs_and_delivers() {
        let result = Simulation::new(&config(), &trace(), 1).run(&mut OurScheme::new());
        assert_eq!(result.scheme, "ours");
        assert!(
            result.final_sample().delivered_photos > 0,
            "must deliver photos"
        );
        assert!(result.final_sample().point_coverage > 0.0);
    }

    #[test]
    fn no_metadata_variant_runs() {
        let result = Simulation::new(&config(), &trace(), 1).run(&mut OurScheme::no_metadata());
        assert_eq!(result.scheme, "no-metadata");
        assert!(result.final_sample().delivered_photos > 0);
    }

    #[test]
    fn deterministic() {
        let r1 = Simulation::new(&config(), &trace(), 5).run(&mut OurScheme::new());
        let r2 = Simulation::new(&config(), &trace(), 5).run(&mut OurScheme::new());
        assert_eq!(r1, r2);
    }

    #[test]
    fn storage_never_exceeded() {
        // small storage to force evictions
        let config = config().with_storage_bytes(20 * 1024 * 1024); // 5 photos
        let trace = trace();
        let mut sim = Simulation::new(&config, &trace, 2);
        let _ = sim.run(&mut OurScheme::new()); // debug_assert in engine checks
    }

    #[test]
    fn metadata_overhead_is_negligible() {
        // The paper's core resource argument: metadata is "just a couple
        // of floating point numbers". Verify the accounted metadata
        // traffic is a small fraction of the photo bytes delivered.
        let result = Simulation::new(&config(), &trace(), 6).run(&mut OurScheme::new());
        let f = result.final_sample();
        assert!(f.metadata_bytes > 0, "metadata exchange must be accounted");
        assert!(
            (f.metadata_bytes as f64) < 0.05 * (f.uploaded_bytes as f64),
            "metadata {} B not ≪ photo traffic {} B",
            f.metadata_bytes,
            f.uploaded_bytes
        );
        // metadata-free baselines report zero
        let spray = Simulation::new(&config(), &trace(), 6).run(&mut crate::SprayAndWait::new());
        assert_eq!(spray.final_sample().metadata_bytes, 0);
    }

    #[test]
    fn delivers_fewer_photos_than_flood() {
        // "the number of delivered photos in our scheme … is dramatically
        // less" — flooding delivers everything it can.
        let trace = trace();
        let flood =
            Simulation::new(&config(), &trace, 4).run(&mut photodtn_sim::schemes_api::FloodScheme);
        let ours = Simulation::new(&config(), &trace, 4).run(&mut OurScheme::new());
        assert!(
            ours.final_sample().delivered_photos <= flood.final_sample().delivered_photos,
            "ours {} vs flood {}",
            ours.final_sample().delivered_photos,
            flood.final_sample().delivered_photos
        );
    }
}
