//! Pluggable buffer-management policies.
//!
//! DTN routing papers (including the ones the paper compares against)
//! differ as much in *what they drop* as in what they forward. This
//! module factors the drop decision out of the schemes so policies can
//! be compared on otherwise-identical protocols — e.g.
//! [`SprayAndWait::with_policies`](crate::SprayAndWait::with_policies).

use photodtn_coverage::{CoverageParams, Photo, PhotoCollection, PhotoId, PoiList};

use crate::value::PhotoValueCache;

/// What to do when a photo arrives at a full buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Refuse the incoming photo (drop-tail). The classic Spray&Wait
    /// receive behaviour.
    DropIncoming,
    /// Evict the oldest stored photo (FIFO). The classic generation
    /// behaviour.
    #[default]
    DropOldest,
    /// Evict the photo with the least *individual* photo coverage — the
    /// ModifiedSpray rule, where ties resolve against the incoming photo
    /// too (a worthless incoming photo is refused rather than displacing
    /// an equally worthless but older one).
    DropLeastValue,
}

impl BufferPolicy {
    /// Makes room for `incoming` in `collection` under `capacity`.
    ///
    /// Returns `Some(evicted_ids)` when the incoming photo should be
    /// inserted afterwards (possibly evicting nothing if there is room),
    /// or `None` when the incoming photo is refused. The caller inserts
    /// the photo and cleans up per-photo bookkeeping for the evicted ids.
    pub fn make_room(
        self,
        collection: &mut PhotoCollection,
        incoming: &Photo,
        capacity: u64,
        values: &mut PhotoValueCache,
        pois: &PoiList,
        params: CoverageParams,
    ) -> Option<Vec<PhotoId>> {
        if incoming.size > capacity {
            return None; // can never fit
        }
        // Plan the evictions on a scratch copy so a refusal midway leaves
        // the buffer untouched (relevant with heterogeneous photo sizes).
        let mut scratch = collection.clone();
        let mut evicted = Vec::new();
        while scratch.total_size() + incoming.size > capacity {
            let victim = match self {
                BufferPolicy::DropIncoming => None,
                BufferPolicy::DropOldest => scratch.ids().next(),
                BufferPolicy::DropLeastValue => {
                    let incoming_rank = (values.value(incoming, pois, params), incoming.id);
                    scratch
                        .iter()
                        .map(|p| (values.value(p, pois, params), p.id))
                        .min()
                        .filter(|victim| *victim < incoming_rank)
                        .map(|(_, id)| id)
                }
            };
            match victim {
                Some(id) => {
                    scratch.remove(id);
                    evicted.push(id);
                }
                None => return None,
            }
        }
        for id in &evicted {
            collection.remove(*id);
        }
        Some(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::{PhotoMeta, Poi};
    use photodtn_geo::{Angle, Point};

    fn pois() -> PoiList {
        PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))])
    }

    fn covering(id: u64) -> Photo {
        let meta = PhotoMeta::new(
            Point::new(50.0, 0.0),
            100.0,
            Angle::from_degrees(40.0),
            Angle::PI,
        );
        Photo::new(id, meta, 0.0).with_size(1)
    }

    fn junk(id: u64) -> Photo {
        let meta = PhotoMeta::new(
            Point::new(900.0, 900.0),
            50.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        );
        Photo::new(id, meta, 0.0).with_size(1)
    }

    fn run(
        policy: BufferPolicy,
        stored: Vec<Photo>,
        incoming: Photo,
        cap: u64,
    ) -> (Option<Vec<PhotoId>>, PhotoCollection) {
        let mut c: PhotoCollection = stored.into_iter().collect();
        let mut values = PhotoValueCache::new();
        let out = policy.make_room(
            &mut c,
            &incoming,
            cap,
            &mut values,
            &pois(),
            CoverageParams::default(),
        );
        (out, c)
    }

    #[test]
    fn room_available_accepts_without_eviction() {
        for policy in [
            BufferPolicy::DropIncoming,
            BufferPolicy::DropOldest,
            BufferPolicy::DropLeastValue,
        ] {
            let (out, c) = run(policy, vec![junk(1)], junk(2), 2);
            assert_eq!(out, Some(vec![]), "{policy:?}");
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn drop_incoming_refuses_when_full() {
        let (out, c) = run(
            BufferPolicy::DropIncoming,
            vec![junk(1), junk(2)],
            covering(3),
            2,
        );
        assert_eq!(out, None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn drop_oldest_evicts_smallest_id() {
        let (out, c) = run(BufferPolicy::DropOldest, vec![junk(1), junk(2)], junk(3), 2);
        assert_eq!(out, Some(vec![PhotoId(1)]));
        assert!(c.contains(PhotoId(2)));
        assert!(!c.contains(PhotoId(1)));
    }

    #[test]
    fn drop_least_value_protects_covering_photos() {
        // full of one junk + one covering photo; a covering incoming
        // photo evicts the junk, a junk incoming photo is refused when
        // only better-or-equal-newer photos remain.
        let (out, _) = run(
            BufferPolicy::DropLeastValue,
            vec![junk(1), covering(2)],
            covering(3),
            2,
        );
        assert_eq!(out, Some(vec![PhotoId(1)]));
        let (out, _) = run(
            BufferPolicy::DropLeastValue,
            vec![covering(1), covering(2)],
            junk(3),
            2,
        );
        assert_eq!(out, None);
        // junk vs older junk: ties resolve by id — older junk evicted
        let (out, _) = run(
            BufferPolicy::DropLeastValue,
            vec![junk(1), junk(2)],
            junk(3),
            2,
        );
        assert_eq!(out, Some(vec![PhotoId(1)]));
    }

    #[test]
    fn oversized_incoming_always_refused() {
        let big = junk(9).with_size(10);
        let (out, _) = run(BufferPolicy::DropOldest, vec![], big, 2);
        assert_eq!(out, None);
    }
}
