//! All routing/selection schemes evaluated in the paper (§IV-B, §V-B):
//!
//! | Scheme | Paper role |
//! |---|---|
//! | [`OurScheme`] | The proposed resource-aware photo selection algorithm |
//! | [`OurScheme::no_metadata`] | Ablation: metadata caching/management disabled |
//! | [`BestPossible`] | Upper bound: epidemic with unlimited storage/bandwidth |
//! | [`SprayAndWait`] | Binary Spray&Wait, 4 copies — content-oblivious baseline |
//! | [`ModifiedSpray`] | Spray&Wait prioritizing *individual* photo coverage |
//! | [`PhotoNet`] | Diversity-driven picture delivery (location/time/color) |
//! | [`Epidemic`] | Resource-constrained epidemic replication (extra baseline) |
//! | [`DirectDelivery`] | Source-only delivery floor (extra baseline) |
//! | [`CentralizedOracle`] | SmartPhoto-style server with global knowledge (extra baseline) |
//! | [`ProphetRouting`] | PROPHET with the GRTR forwarding rule (extra baseline) |
//!
//! Every scheme implements [`photodtn_sim::Scheme`] and can be handed to
//! [`photodtn_sim::Simulation::run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classic;
mod oracle;
mod ours;
mod photonet;
pub mod policy;
mod prophet_routing;
mod spray;
mod upload_base;
mod value;

pub use classic::{DirectDelivery, Epidemic};
pub use oracle::CentralizedOracle;
pub use ours::OurScheme;
pub use photodtn_sim::schemes_api::FloodScheme as BestPossible;
pub use photonet::PhotoNet;
pub use prophet_routing::ProphetRouting;
pub use spray::{ModifiedSpray, SprayAndWait, SPRAY_COPIES};
pub use value::PhotoValueCache;

use photodtn_sim::Scheme;

/// The scheme lineup of Fig. 5, in the paper's order.
///
/// Returns boxed trait objects so experiment drivers can iterate over the
/// whole lineup uniformly.
#[must_use]
pub fn fig5_lineup() -> Vec<Box<dyn Scheme + Send>> {
    vec![
        Box::new(BestPossible),
        Box::new(OurScheme::new()),
        Box::new(OurScheme::no_metadata()),
        Box::new(ModifiedSpray::new()),
        Box::new(SprayAndWait::new()),
    ]
}
