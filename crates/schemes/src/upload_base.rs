//! Incremental command-center base for greedy upload selection.
//!
//! Every uplink window evaluates marginal gains *on top of what the
//! command center already holds*. Rebuilding that base per window costs
//! one commit per command-center photo — and the command-center
//! collection only ever grows, so almost all of that work repeats the
//! previous window verbatim.
//!
//! [`UploadBase`] keeps the base alive across windows behind an
//! [`ExpectedEngine`] checkpoint: each window rolls back the previous
//! uploader's commits, appends only the photos the command center gained
//! since the last window, and re-checkpoints. Rollback restores the base
//! bitwise (the engine stores the exact pre-commit `f64` state), so the
//! incremental path is byte-identical to a fresh rebuild.
//!
//! Two situations fall back to a full rebuild:
//!
//! * the world's PoI list changed identity (a new simulation run);
//! * the command center's id-ordered photo sequence is not an append of
//!   the checkpointed one (an older id arrived from another node, so the
//!   new photos would interleave rather than extend the commit order).

use std::sync::Arc;

use photodtn_core::expected::ExpectedEngine;
use photodtn_coverage::PhotoId;
use photodtn_sim::SimCtx;

/// A persistent upload-selection engine whose command-center base is
/// maintained incrementally across uplink windows.
#[derive(Debug, Default)]
pub(crate) struct UploadBase {
    engine: Option<ExpectedEngine>,
    /// Photo ids committed into the checkpointed base, in id order
    /// (the command-center collection's iteration order).
    cc_ids: Vec<PhotoId>,
}

impl UploadBase {
    /// Positions the engine on the current command-center collection and
    /// returns it together with the command-center node index.
    ///
    /// On return the engine holds exactly one node (the command center,
    /// delivery probability 1) with the full command-center collection
    /// committed, and a fresh checkpoint marking that base — the caller
    /// adds the uploader node and commits freely; the next call rolls all
    /// of it back.
    pub(crate) fn prepare(&mut self, ctx: &SimCtx) -> (&mut ExpectedEngine, usize) {
        let pois = ctx.pois_shared();
        let stale = self
            .engine
            .as_ref()
            .is_none_or(|e| !Arc::ptr_eq(e.pois_shared(), &pois));
        if stale {
            self.engine = Some(ExpectedEngine::new_shared(
                Arc::clone(&pois),
                ctx.coverage_params(),
            ));
            self.cc_ids.clear();
        }
        let engine = self.engine.as_mut().expect("just ensured");
        let cc = ctx.cc_collection();
        let append_only = cc
            .ids()
            .take(self.cc_ids.len())
            .eq(self.cc_ids.iter().copied());
        let (cc_node, skip) = if engine.has_checkpoint() && append_only {
            engine.rollback();
            (0, self.cc_ids.len())
        } else {
            engine.reset();
            self.cc_ids.clear();
            (engine.add_node(1.0), 0)
        };
        // Commit only the photos the base does not yet contain, through
        // the per-run coverage-table cache (bit-identical to the scalar
        // metadata scan by the coverage determinism contract).
        for p in cc.iter().skip(skip) {
            let cov = ctx.photo_coverage(p.id, &p.meta);
            engine.add_photo_indexed(cc_node, &cov);
            self.cc_ids.push(p.id);
        }
        engine.checkpoint();
        (engine, cc_node)
    }
}
