//! A SmartPhoto-style *centralized* selector (§VI): "SmartPhoto assumes
//! that reliable communication such as cellular network is available to
//! all users, and then develops centralized photo selection algorithms
//! running on the server."
//!
//! [`CentralizedOracle`] models that regime inside the DTN world: the
//! server has global knowledge of every photo in the network, and at
//! every uplink window it requests exactly the photos with the highest
//! marginal coverage **among those the uploading node happens to carry**.
//! Relaying between nodes is still DTN-opportunistic (epidemic under the
//! resource limits), so the oracle isolates how much of our scheme's gap
//! to BestPossible is *selection* quality versus *knowledge* quality:
//!
//! * `BestPossible`  — perfect knowledge, no resource limits;
//! * `CentralizedOracle` — perfect knowledge at the uplink, real resource
//!   limits, content-oblivious storage/relaying;
//! * `OurScheme`     — distributed (cached, staleness-checked) knowledge,
//!   real resource limits, coverage-aware storage/relaying.
//!
//! Empirically the oracle *loses* to `OurScheme` under tight storage:
//! a perfect uplink cannot recover photos that content-oblivious storage
//! already evicted. That is precisely the paper's argument for making the
//! in-network selection coverage-aware.

use std::sync::Arc;

use photodtn_contacts::NodeId;
use photodtn_coverage::{Coverage, Photo, PhotoCoverage};
use photodtn_sim::{Scheme, SimCtx};

use crate::upload_base::UploadBase;
use crate::value::PhotoValueCache;

/// Centralized photo selection with global knowledge (SmartPhoto regime).
#[derive(Debug, Default)]
pub struct CentralizedOracle {
    values: PhotoValueCache,
    /// Persistent upload engine whose server base is maintained
    /// incrementally across uplink windows (rebound when the world's PoI
    /// list changes identity, i.e. a new run).
    upload: UploadBase,
}

impl CentralizedOracle {
    /// Creates the oracle.
    #[must_use]
    pub fn new() -> Self {
        CentralizedOracle::default()
    }
}

impl Scheme for CentralizedOracle {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        // Keep the per-node storage discipline of our scheme: evict the
        // lowest standalone-value photo under pressure.
        let capacity = ctx.storage_bytes();
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        let collection = ctx.collection_mut(node);
        while collection.total_size() + photo.size > capacity {
            let new_value = self.values.value(&photo, &pois, params);
            let worst = collection
                .iter()
                .map(|p| (self.values.value(p, &pois, params), p.id))
                .min();
            match worst {
                Some((value, id)) if (value, id) < (new_value, photo.id) => {
                    collection.remove(id);
                }
                _ => return,
            }
        }
        collection.insert(photo);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        // Epidemic relaying under the budget; the oracle's advantage is
        // at the uplink, not in routing.
        let mut remaining = budget;
        for (src, dst) in [(a, b), (b, a)] {
            let missing: Vec<Photo> = ctx
                .collection(src)
                .iter()
                .filter(|p| !ctx.collection(dst).contains(p.id))
                .copied()
                .collect();
            for photo in missing {
                if photo.size > remaining {
                    return;
                }
                if ctx.collection(dst).total_size() + photo.size > ctx.storage_bytes() {
                    continue;
                }
                remaining -= photo.size;
                if ctx.contact_transfer().arrived() {
                    ctx.collection_mut(dst).insert(photo);
                }
            }
        }
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        // The server knows exactly what it has and asks for the photos
        // with the highest marginal coverage, greedily. The server base
        // persists across windows behind a checkpoint; rollback discards
        // the previous window's commits (which also fire for lost/corrupt
        // uploads, so they must never leak into the base).
        let (engine, server) = self.upload.prepare(ctx);

        // Snapshot the (id-ordered) collection and resolve each photo's
        // coverage through the per-run cache; gains then come from the
        // engine's fast path.
        let photos: Vec<Photo> = ctx.collection(node).iter().copied().collect();
        let covs: Vec<Arc<PhotoCoverage>> = photos
            .iter()
            .map(|p| ctx.photo_coverage(p.id, &p.meta))
            .collect();
        let mut taken = vec![false; photos.len()];

        let mut remaining = budget;
        let mut bytes = 0;
        loop {
            let candidate = photos
                .iter()
                .enumerate()
                .filter(|(i, p)| !taken[*i] && p.size <= remaining)
                .map(|(i, p)| (engine.gain_of_indexed(server, &covs[i]), p.id, i))
                .max_by(|(ga, ida, _), (gb, idb, _)| {
                    ga.point
                        .total_cmp(&gb.point)
                        .then(ga.aspect.total_cmp(&gb.aspect))
                        .then(idb.cmp(ida))
                });
            let Some((gain, _, i)) = candidate else { break };
            if Coverage::new(gain.point, gain.aspect) <= Coverage::ZERO {
                break; // nothing this node carries helps the server
            }
            let photo = photos[i];
            engine.commit_indexed(server, &covs[i], gain);
            taken[i] = true;
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        // The server base and value cache only ever mutate during uplink
        // windows, which are boundary events executed at the coordinator —
        // a replica's copies stay untouched, so fresh ones suffice.
        Some(Box::new(CentralizedOracle::new()))
    }

    fn export_global_state(&self) -> Option<String> {
        // Fully derived: the value cache is pure memoization, and
        // `UploadBase::prepare` rebuilds the server base from the
        // command-center collection byte-identically when cold.
        Some("{}".to_string())
    }

    fn import_global_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BestPossible;
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
    use photodtn_sim::{SimConfig, Simulation};

    fn trace() -> photodtn_contacts::ContactTrace {
        CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(16)
            .with_duration_hours(40.0)
            .generate(12)
    }

    fn config() -> SimConfig {
        SimConfig::mit_default().with_photos_per_hour(40.0)
    }

    #[test]
    fn oracle_runs_and_is_bounded_by_best_possible() {
        let trace = trace();
        let oracle = Simulation::new(&config(), &trace, 1).run(&mut CentralizedOracle::new());
        let best = Simulation::new(&config(), &trace, 1).run(&mut BestPossible);
        assert_eq!(oracle.scheme, "oracle");
        assert!(oracle.final_sample().delivered_photos > 0);
        assert!(oracle.final_sample().point_coverage <= best.final_sample().point_coverage + 1e-9);
    }

    #[test]
    fn oracle_upload_selection_beats_plain_epidemic() {
        // The oracle is epidemic relaying + perfect uplink selection, so
        // it must not lose to plain epidemic (identical relaying, naive
        // uploads). Note it CAN lose to OurScheme: distributed but
        // coverage-aware *storage* beats centralized upload selection
        // over content-oblivious storage — which is the paper's thesis.
        let mut oracle_sum = 0.0;
        let mut epidemic_sum = 0.0;
        for seed in [1, 2, 3] {
            let trace = trace();
            oracle_sum += Simulation::new(&config(), &trace, seed)
                .run(&mut CentralizedOracle::new())
                .final_sample()
                .point_coverage;
            epidemic_sum += Simulation::new(&config(), &trace, seed)
                .run(&mut crate::Epidemic::new())
                .final_sample()
                .point_coverage;
        }
        assert!(
            oracle_sum >= epidemic_sum - 0.05,
            "oracle {oracle_sum} clearly below epidemic {epidemic_sum}"
        );
    }

    #[test]
    fn deterministic() {
        let trace = trace();
        let a = Simulation::new(&config(), &trace, 7).run(&mut CentralizedOracle::new());
        let b = Simulation::new(&config(), &trace, 7).run(&mut CentralizedOracle::new());
        assert_eq!(a, b);
    }
}
