use photodtn_contacts::NodeId;
use photodtn_coverage::{Photo, PhotoCollection};
use photodtn_sim::{Scheme, SimCtx};

/// PhotoNet-style diversity-driven picture delivery (the §IV-B baseline).
///
/// PhotoNet "prioritizes the transmission of photos by considering
/// location, time stamp, and color difference, with the goal of maximizing
/// the diversity of the photos". We reproduce that with a weighted
/// feature distance
///
/// ```text
/// d(f, g) = |l_f − l_g| / L  +  |t_f − t_g| / T  +  ‖hist_f − hist_g‖₁ / 2
/// ```
///
/// and greedy max–min-distance selection: the next photo transmitted (or
/// kept under storage pressure) is the one farthest from the receiver's
/// current collection. No coverage or orientation information is used —
/// which is exactly why it captures less of the target than our scheme in
/// the demo (160° vs 346° in Fig. 3).
#[derive(Clone, Debug)]
pub struct PhotoNet {
    /// Location normalizer `L`, meters.
    pub location_scale: f64,
    /// Time normalizer `T`, seconds.
    pub time_scale: f64,
}

impl PhotoNet {
    /// Creates the baseline with the default normalizers (1 km, 1 h).
    #[must_use]
    pub fn new() -> Self {
        PhotoNet {
            location_scale: 1000.0,
            time_scale: 3600.0,
        }
    }

    /// Feature distance between two photos.
    #[must_use]
    pub fn distance(&self, a: &Photo, b: &Photo) -> f64 {
        let loc = a.meta.location.distance(b.meta.location) / self.location_scale;
        let time = (a.taken_at - b.taken_at).abs() / self.time_scale;
        let color = a.histogram.distance(&b.histogram) / 2.0;
        loc + time + color
    }

    /// Min distance from `photo` to any photo in `collection`
    /// (`f64::INFINITY` for an empty collection — maximally novel).
    fn novelty(&self, photo: &Photo, collection: &PhotoCollection) -> f64 {
        collection
            .iter()
            .filter(|p| p.id != photo.id)
            .map(|p| self.distance(photo, p))
            .fold(f64::INFINITY, f64::min)
    }

    /// The most redundant stored photo (smallest novelty), if any.
    fn most_redundant(&self, collection: &PhotoCollection) -> Option<(f64, Photo)> {
        collection
            .iter()
            .map(|p| (self.novelty(p, collection), *p))
            .min_by(|(na, pa), (nb, pb)| na.total_cmp(nb).then(pa.id.cmp(&pb.id)))
    }

    /// Frees `need` bytes on `node` by evicting most-redundant photos, as
    /// long as they are more redundant than the incoming photo's novelty.
    fn make_room(&self, ctx: &mut SimCtx, node: NodeId, need: u64, incoming_novelty: f64) -> bool {
        let capacity = ctx.storage_bytes();
        loop {
            if ctx.collection(node).total_size() + need <= capacity {
                return true;
            }
            match self.most_redundant(ctx.collection(node)) {
                Some((novelty, victim)) if novelty < incoming_novelty => {
                    ctx.collection_mut(node).remove(victim.id);
                }
                _ => return false,
            }
        }
    }
}

impl Default for PhotoNet {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheme for PhotoNet {
    fn name(&self) -> &'static str {
        "photonet"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        let novelty = self.novelty(&photo, ctx.collection(node));
        if !self.make_room(ctx, node, photo.size, novelty) {
            return;
        }
        ctx.collection_mut(node).insert(photo);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        let mut remaining = budget;
        for (src, dst) in [(a, b), (b, a)] {
            // Greedy max–min: repeatedly send the sender photo most novel
            // with respect to the receiver's *current* collection. Photos
            // whose transmission the link ate are not retried this
            // contact (they would be re-picked forever otherwise).
            let mut failed: Vec<photodtn_coverage::PhotoId> = Vec::new();
            loop {
                let candidate = ctx
                    .collection(src)
                    .iter()
                    .filter(|p| {
                        !ctx.collection(dst).contains(p.id)
                            && p.size <= remaining
                            && !failed.contains(&p.id)
                    })
                    .map(|p| (self.novelty(p, ctx.collection(dst)), *p))
                    .max_by(|(na, pa), (nb, pb)| na.total_cmp(nb).then(pb.id.cmp(&pa.id)));
                let Some((novelty, photo)) = candidate else {
                    break;
                };
                if novelty <= 0.0 {
                    break; // receiver already has an identical-feature photo
                }
                if !self.make_room(ctx, dst, photo.size, novelty) {
                    break;
                }
                remaining -= photo.size;
                if ctx.contact_transfer().arrived() {
                    ctx.collection_mut(dst).insert(photo);
                } else {
                    failed.push(photo.id);
                }
            }
        }
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let mut remaining = budget;
        let mut bytes = 0;
        let mut failed: Vec<photodtn_coverage::PhotoId> = Vec::new();
        loop {
            let candidate = ctx
                .collection(node)
                .iter()
                .filter(|p| p.size <= remaining && !failed.contains(&p.id))
                .map(|p| (self.novelty(p, ctx.cc_collection()), *p))
                .max_by(|(na, pa), (nb, pb)| na.total_cmp(nb).then(pb.id.cmp(&pa.id)));
            let Some((_, photo)) = candidate else { break };
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
            } else {
                failed.push(photo.id);
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        // Pure configuration — the scoring weights are the whole state.
        Some(Box::new(self.clone()))
    }

    fn export_global_state(&self) -> Option<String> {
        // Pure configuration: the scoring weights come from the
        // constructor, not the run, so there is nothing to snapshot.
        Some("{}".to_string())
    }

    fn import_global_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
    use photodtn_coverage::{ColorHistogram, PhotoMeta};
    use photodtn_geo::{Angle, Point};
    use photodtn_sim::{SimConfig, Simulation};

    fn photo(id: u64, x: f64, t: f64) -> Photo {
        Photo::new(
            id,
            PhotoMeta::new(
                Point::new(x, 0.0),
                100.0,
                Angle::from_degrees(45.0),
                Angle::ZERO,
            ),
            t,
        )
        .with_size(1)
    }

    #[test]
    fn distance_components() {
        let pn = PhotoNet::new();
        let a = photo(1, 0.0, 0.0);
        let b = photo(2, 1000.0, 3600.0);
        // 1 km + 1 h → 1.0 + 1.0, identical (flat) histograms add 0
        assert!((pn.distance(&a, &b) - 2.0).abs() < 1e-9);
        assert_eq!(pn.distance(&a, &a), 0.0);
        let mut c = photo(3, 0.0, 0.0);
        c.histogram = ColorHistogram([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let mut d = photo(4, 0.0, 0.0);
        d.histogram = ColorHistogram([0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((pn.distance(&c, &d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn novelty_prefers_distant_photos() {
        let pn = PhotoNet::new();
        let collection: PhotoCollection = [photo(1, 0.0, 0.0), photo(2, 100.0, 0.0)]
            .into_iter()
            .collect();
        let near = photo(3, 10.0, 0.0);
        let far = photo(4, 5000.0, 0.0);
        assert!(pn.novelty(&far, &collection) > pn.novelty(&near, &collection));
        // empty collection → infinite novelty
        assert_eq!(pn.novelty(&near, &PhotoCollection::new()), f64::INFINITY);
    }

    #[test]
    fn eviction_removes_most_redundant() {
        let pn = PhotoNet::new();
        let collection: PhotoCollection = [
            photo(1, 0.0, 0.0),
            photo(2, 5.0, 0.0),
            photo(3, 4000.0, 0.0),
        ]
        .into_iter()
        .collect();
        let (_, victim) = pn.most_redundant(&collection).unwrap();
        assert!(
            victim.id.0 == 1 || victim.id.0 == 2,
            "redundant pair is 1/2, not 3"
        );
    }

    #[test]
    fn simulation_runs_and_delivers() {
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(12)
            .with_duration_hours(30.0)
            .generate(2);
        let config = SimConfig::mit_default().with_photos_per_hour(30.0);
        let result = Simulation::new(&config, &trace, 1).run(&mut PhotoNet::new());
        assert_eq!(result.scheme, "photonet");
        assert!(result.final_sample().delivered_photos > 0);
    }
}
