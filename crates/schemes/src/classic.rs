//! Two further classic DTN baselines from the routing literature the
//! paper surveys (§VI: "early works in DTN routing assume that packets
//! are equally important"). They bracket Spray&Wait: Epidemic replicates
//! maximally under the resource limits; DirectDelivery never relays.

use photodtn_contacts::NodeId;
use photodtn_coverage::Photo;
use photodtn_sim::{Scheme, SimCtx};

/// Storage- and bandwidth-constrained epidemic routing: at every contact,
/// both nodes copy everything the other lacks (photo-id order) while the
/// byte budget and the receiver's free space last; storage is FIFO.
///
/// Unlike [`BestPossible`](crate::BestPossible) this honors the resource
/// constraints, so it shows what unrestricted *replication* buys when
/// storage/bandwidth are real.
#[derive(Clone, Debug, Default)]
pub struct Epidemic;

impl Epidemic {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        Epidemic
    }
}

impl Scheme for Epidemic {
    fn name(&self) -> &'static str {
        "epidemic"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        let capacity = ctx.storage_bytes();
        let collection = ctx.collection_mut(node);
        while collection.total_size() + photo.size > capacity {
            let Some(oldest) = collection.ids().next() else {
                return;
            };
            collection.remove(oldest);
        }
        collection.insert(photo);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        let mut remaining = budget;
        for (src, dst) in [(a, b), (b, a)] {
            let missing: Vec<Photo> = ctx
                .collection(src)
                .iter()
                .filter(|p| !ctx.collection(dst).contains(p.id))
                .copied()
                .collect();
            for photo in missing {
                if photo.size > remaining {
                    return;
                }
                if ctx.collection(dst).total_size() + photo.size > ctx.storage_bytes() {
                    continue; // receiver full: epidemic does not evict for peers
                }
                remaining -= photo.size;
                if ctx.contact_transfer().arrived() {
                    ctx.collection_mut(dst).insert(photo);
                }
            }
        }
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let mut remaining = budget;
        let mut bytes = 0;
        let photos: Vec<Photo> = ctx.collection(node).iter().copied().collect();
        for photo in photos {
            if photo.size > remaining {
                break;
            }
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        // Stateless: every replica is the scheme.
        Some(Box::new(Epidemic))
    }

    fn export_global_state(&self) -> Option<String> {
        // Stateless: the photo collections the engine checkpoints are the
        // protocol's entire state.
        Some("{}".to_string())
    }

    fn import_global_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }
}

/// Direct delivery: a photo is only ever carried by the node that took it
/// and handed over during that node's own uplink windows. The floor of
/// DTN routing — zero replication cost, minimal delivery.
#[derive(Clone, Debug, Default)]
pub struct DirectDelivery;

impl DirectDelivery {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        DirectDelivery
    }
}

impl Scheme for DirectDelivery {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        let capacity = ctx.storage_bytes();
        let collection = ctx.collection_mut(node);
        while collection.total_size() + photo.size > capacity {
            let Some(oldest) = collection.ids().next() else {
                return;
            };
            collection.remove(oldest);
        }
        collection.insert(photo);
    }

    fn on_contact(&mut self, _ctx: &mut SimCtx, _a: NodeId, _b: NodeId, _budget: u64) {
        // never relays
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let mut remaining = budget;
        let mut bytes = 0;
        let photos: Vec<Photo> = ctx.collection(node).iter().copied().collect();
        for photo in photos {
            if photo.size > remaining {
                break;
            }
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        // Stateless: every replica is the scheme.
        Some(Box::new(DirectDelivery))
    }

    fn export_global_state(&self) -> Option<String> {
        // Stateless: the photo collections the engine checkpoints are the
        // protocol's entire state.
        Some("{}".to_string())
    }

    fn import_global_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BestPossible, SprayAndWait};
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
    use photodtn_sim::{SimConfig, Simulation};

    fn trace() -> photodtn_contacts::ContactTrace {
        CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(14)
            .with_duration_hours(36.0)
            .generate(6)
    }

    fn config() -> SimConfig {
        SimConfig::mit_default().with_photos_per_hour(40.0)
    }

    #[test]
    fn epidemic_runs_between_spray_and_best() {
        let trace = trace();
        let best = Simulation::new(&config(), &trace, 1).run(&mut BestPossible);
        let epi = Simulation::new(&config(), &trace, 1).run(&mut Epidemic::new());
        let spray = Simulation::new(&config(), &trace, 1).run(&mut SprayAndWait::new());
        let (b, e, s) = (
            best.final_sample().point_coverage,
            epi.final_sample().point_coverage,
            spray.final_sample().point_coverage,
        );
        assert!(
            e <= b + 1e-9,
            "epidemic {e} beat unconstrained flooding {b}"
        );
        assert!(e + 0.05 >= s, "epidemic {e} clearly below spray {s}");
    }

    #[test]
    fn direct_delivery_is_the_floor() {
        let trace = trace();
        let direct = Simulation::new(&config(), &trace, 1).run(&mut DirectDelivery::new());
        let epi = Simulation::new(&config(), &trace, 1).run(&mut Epidemic::new());
        assert!(
            direct.final_sample().delivered_photos <= epi.final_sample().delivered_photos,
            "direct delivered more than epidemic"
        );
        // invariants hold
        for w in direct.samples.windows(2) {
            assert!(w[1].delivered_photos >= w[0].delivered_photos);
        }
    }

    #[test]
    fn both_deterministic() {
        let trace = trace();
        let a = Simulation::new(&config(), &trace, 2).run(&mut Epidemic::new());
        let b = Simulation::new(&config(), &trace, 2).run(&mut Epidemic::new());
        assert_eq!(a, b);
        let c = Simulation::new(&config(), &trace, 2).run(&mut DirectDelivery::new());
        let d = Simulation::new(&config(), &trace, 2).run(&mut DirectDelivery::new());
        assert_eq!(c, d);
    }
}
