//! PROPHET as a *routing* baseline (Lindgren et al., ref. 16 of the
//! paper).
//!
//! The paper uses PROPHET's delivery predictability only as an input to
//! photo selection; the original protocol is itself a router: on a
//! contact, a node forwards a bundle to the peer iff the peer's delivery
//! predictability towards the destination is higher (the GRTR rule).
//! Implementing it closes the baseline set: content-oblivious like
//! Spray&Wait, but *contact-history-aware* like our scheme.

use photodtn_contacts::NodeId;
use photodtn_coverage::Photo;
use photodtn_sim::{Scheme, SimCtx};

/// PROPHET routing with the GRTR forwarding rule and FIFO buffers.
///
/// Forwarding *copies* (the common PROPHET deployment): the sender keeps
/// its replica, so predictability gradients pull photos towards the
/// command center without a copy cap.
#[derive(Clone, Debug, Default)]
pub struct ProphetRouting;

impl ProphetRouting {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        ProphetRouting
    }
}

impl Scheme for ProphetRouting {
    fn name(&self) -> &'static str {
        "prophet"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        let capacity = ctx.storage_bytes();
        let collection = ctx.collection_mut(node);
        while collection.total_size() + photo.size > capacity {
            let Some(oldest) = collection.ids().next() else {
                return;
            };
            collection.remove(oldest);
        }
        collection.insert(photo);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        let (pa, pb) = (ctx.delivery_prob(a), ctx.delivery_prob(b));
        let mut remaining = budget;
        // GRTR: forward only towards strictly higher predictability.
        for (src, dst, forward) in [(a, b, pb > pa), (b, a, pa > pb)] {
            if !forward {
                continue;
            }
            let missing: Vec<Photo> = ctx
                .collection(src)
                .iter()
                .filter(|p| !ctx.collection(dst).contains(p.id))
                .copied()
                .collect();
            for photo in missing {
                if photo.size > remaining {
                    return;
                }
                if ctx.collection(dst).total_size() + photo.size > ctx.storage_bytes() {
                    continue;
                }
                remaining -= photo.size;
                if ctx.contact_transfer().arrived() {
                    ctx.collection_mut(dst).insert(photo);
                }
            }
        }
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let mut remaining = budget;
        let mut bytes = 0;
        let photos: Vec<Photo> = ctx.collection(node).iter().copied().collect();
        for photo in photos {
            if photo.size > remaining {
                break;
            }
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        // Stateless: all routing state lives in the engine's PROPHET
        // tables, which replicas read through the frozen timeline.
        Some(Box::new(ProphetRouting))
    }

    fn export_global_state(&self) -> Option<String> {
        // Stateless: the PROPHET tables this router consults belong to
        // the engine, which checkpoints them itself.
        Some("{}".to_string())
    }

    fn import_global_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BestPossible, DirectDelivery};
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
    use photodtn_sim::{SimConfig, Simulation};

    fn trace() -> photodtn_contacts::ContactTrace {
        CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(16)
            .with_duration_hours(48.0)
            .generate(8)
    }

    fn config() -> SimConfig {
        SimConfig::mit_default().with_photos_per_hour(40.0)
    }

    #[test]
    fn prophet_routing_delivers_between_direct_and_best() {
        let trace = trace();
        let prophet = Simulation::new(&config(), &trace, 1).run(&mut ProphetRouting::new());
        let direct = Simulation::new(&config(), &trace, 1).run(&mut DirectDelivery::new());
        let best = Simulation::new(&config(), &trace, 1).run(&mut BestPossible);
        let (p, d, b) = (
            prophet.final_sample().delivered_photos,
            direct.final_sample().delivered_photos,
            best.final_sample().delivered_photos,
        );
        assert!(p > 0);
        assert!(p <= b, "prophet {p} beat unconstrained flooding {b}");
        // predictability gradients should clearly out-deliver no-relay
        assert!(p >= d, "prophet {p} below direct delivery {d}");
    }

    #[test]
    fn deterministic() {
        let trace = trace();
        let r1 = Simulation::new(&config(), &trace, 2).run(&mut ProphetRouting::new());
        let r2 = Simulation::new(&config(), &trace, 2).run(&mut ProphetRouting::new());
        assert_eq!(r1, r2);
    }

    #[test]
    fn forwards_only_uphill() {
        // After a gateway contact, the gateway's predictability is ~1, so
        // photos should accumulate on gateways, not drain away from them.
        let trace = trace();
        let mut scheme = ProphetRouting::new();
        let result = Simulation::new(&config(), &trace, 3).run(&mut scheme);
        // sanity: the run produces monotone coverage like every scheme
        for w in result.samples.windows(2) {
            assert!(w[1].point_coverage >= w[0].point_coverage - 1e-12);
        }
    }
}
