use std::any::Any;
use std::collections::HashMap;

use photodtn_contacts::NodeId;
use photodtn_coverage::{Photo, PhotoId};
use photodtn_sim::{Scheme, SimCtx};

use crate::value::PhotoValueCache;

/// Number of copies each new photo is allowed (§V-B: "binary spray and
/// wait protocol with four allowed copies").
pub const SPRAY_COPIES: u32 = 4;

/// Binary Spray&Wait (Spyropoulos et al.) — the content-oblivious DTN
/// routing baseline.
///
/// Each photo starts with [`SPRAY_COPIES`] (4) logical copies at its
/// source.
/// In the *spray* phase, a node holding `c > 1` copies hands `⌊c/2⌋` to a
/// peer that lacks the photo; with `c = 1` the node *waits* and delivers
/// only directly to the command center. Photos are transmitted in photo-id
/// (i.e. creation) order. Buffer management is pluggable
/// ([`with_policies`](Self::with_policies)); the classic defaults are
/// FIFO at photo generation and drop-tail on reception.
#[derive(Debug)]
pub struct SprayAndWait {
    /// Logical copies held: `(node, photo) → copies`.
    copies: HashMap<(u32, u64), u32>,
    generation_policy: crate::policy::BufferPolicy,
    receive_policy: crate::policy::BufferPolicy,
    values: PhotoValueCache,
}

impl Default for SprayAndWait {
    fn default() -> Self {
        Self::new()
    }
}

impl SprayAndWait {
    /// Creates the baseline with the classic policies (FIFO generation,
    /// drop-tail reception).
    #[must_use]
    pub fn new() -> Self {
        SprayAndWait {
            copies: HashMap::new(),
            generation_policy: crate::policy::BufferPolicy::DropOldest,
            receive_policy: crate::policy::BufferPolicy::DropIncoming,
            values: PhotoValueCache::new(),
        }
    }

    /// Overrides the buffer policies (builder-style) — for buffer-
    /// management ablations on an otherwise identical protocol.
    #[must_use]
    pub fn with_policies(
        mut self,
        generation: crate::policy::BufferPolicy,
        receive: crate::policy::BufferPolicy,
    ) -> Self {
        self.generation_policy = generation;
        self.receive_policy = receive;
        self
    }

    fn copies_of(&self, node: NodeId, photo: PhotoId) -> u32 {
        self.copies.get(&(node.0, photo.0)).copied().unwrap_or(0)
    }

    /// Applies a buffer policy on `node` for `incoming`; returns whether
    /// the photo may be inserted, cleaning up copy bookkeeping for
    /// evicted photos.
    fn admit(
        &mut self,
        ctx: &mut SimCtx,
        node: NodeId,
        incoming: &Photo,
        policy: crate::policy::BufferPolicy,
    ) -> bool {
        let capacity = ctx.storage_bytes();
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        let collection = ctx.collection_mut(node);
        match policy.make_room(
            collection,
            incoming,
            capacity,
            &mut self.values,
            &pois,
            params,
        ) {
            Some(evicted) => {
                for id in evicted {
                    self.copies.remove(&(node.0, id.0));
                }
                true
            }
            None => false,
        }
    }
}

impl Scheme for SprayAndWait {
    fn name(&self) -> &'static str {
        "spray-wait"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        if !self.admit(ctx, node, &photo, self.generation_policy) {
            return;
        }
        ctx.collection_mut(node).insert(photo);
        self.copies.insert((node.0, photo.id.0), SPRAY_COPIES);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        let mut remaining = budget;
        // Spray in both directions, photo-id order, while budget lasts.
        for (src, dst) in [(a, b), (b, a)] {
            let sprayable: Vec<Photo> = ctx
                .collection(src)
                .iter()
                .filter(|p| self.copies_of(src, p.id) > 1 && !ctx.collection(dst).contains(p.id))
                .copied()
                .collect();
            for photo in sprayable {
                if photo.size > remaining {
                    break;
                }
                if !self.admit(ctx, dst, &photo, self.receive_policy) {
                    continue;
                }
                remaining -= photo.size;
                // The handoff consumes budget even if the link eats it;
                // a failed handoff moves no copies.
                if !ctx.contact_transfer().arrived() {
                    continue;
                }
                let c = self.copies_of(src, photo.id);
                let give = c / 2;
                ctx.collection_mut(dst).insert(photo);
                self.copies.insert((dst.0, photo.id.0), give);
                self.copies.insert((src.0, photo.id.0), c - give);
            }
        }
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let mut remaining = budget;
        let mut bytes = 0;
        let photos: Vec<Photo> = ctx.collection(node).iter().copied().collect();
        for photo in photos {
            if photo.size > remaining {
                break;
            }
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
                self.copies.remove(&(node.0, photo.id.0));
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn on_node_crashed(&mut self, _ctx: &mut SimCtx, node: NodeId) {
        // Copy counters live on the node; the wipe takes them too.
        self.copies.retain(|&(n, _), _| n != node.0);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        Some(Box::new(SprayAndWait {
            copies: HashMap::new(),
            generation_policy: self.generation_policy,
            receive_policy: self.receive_policy,
            values: PhotoValueCache::new(),
        }))
    }

    fn export_node_state(&mut self, node: NodeId) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(drain_copies(&mut self.copies, node)))
    }

    fn import_node_state(&mut self, node: NodeId, state: Box<dyn Any + Send>) {
        let state = state
            .downcast::<SprayNodeState>()
            .expect("spray replica handed foreign node state");
        install_copies(&mut self.copies, node, *state);
    }

    fn export_global_state(&self) -> Option<String> {
        export_spray_copies(&self.copies)
    }

    fn import_global_state(&mut self, state: &str) -> Result<(), String> {
        self.copies = import_spray_copies(state)?;
        // The value cache is pure memoization over immutable photos —
        // rebuilt cold, byte-identically.
        self.values = PhotoValueCache::new();
        Ok(())
    }
}

/// The serialized copy-counter table of a spray scheme: `(node, photo,
/// copies)` triples, sorted so equal tables encode to identical bytes.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SprayGlobalState {
    copies: Vec<(u32, u64, u32)>,
}

fn export_spray_copies(copies: &HashMap<(u32, u64), u32>) -> Option<String> {
    let mut flat: Vec<(u32, u64, u32)> = copies
        .iter()
        .map(|(&(node, photo), &c)| (node, photo, c))
        .collect();
    flat.sort_unstable();
    serde_json::to_string(&SprayGlobalState { copies: flat }).ok()
}

fn import_spray_copies(state: &str) -> Result<HashMap<(u32, u64), u32>, String> {
    let state: SprayGlobalState = serde_json::from_str(state).map_err(|e| e.to_string())?;
    Ok(state
        .copies
        .into_iter()
        .map(|(node, photo, c)| ((node, photo), c))
        .collect())
}

/// One node's migratable spray state: its `(photo, copies)` counters.
/// Extraction order comes from a `HashMap` scan and is nondeterministic,
/// but installation re-inserts into a map, so the order never observes.
type SprayNodeState = Vec<(u64, u32)>;

fn drain_copies(copies: &mut HashMap<(u32, u64), u32>, node: NodeId) -> SprayNodeState {
    let drained: SprayNodeState = copies
        .iter()
        .filter(|(&(n, _), _)| n == node.0)
        .map(|(&(_, photo), &c)| (photo, c))
        .collect();
    copies.retain(|&(n, _), _| n != node.0);
    drained
}

fn install_copies(copies: &mut HashMap<(u32, u64), u32>, node: NodeId, state: SprayNodeState) {
    for (photo, c) in state {
        copies.insert((node.0, photo), c);
    }
}

/// Spray&Wait with coverage-aware prioritization (§V-B *ModifiedSpray*):
/// photos are transmitted highest-individual-coverage first, and when a
/// receiver's storage is full it evicts the photo with the least
/// individual coverage.
///
/// This represents classic utility-driven DTN routing: utility is
/// per-photo, so redundancy between photos is ignored — the property our
/// scheme exploits to beat it.
#[derive(Debug, Default)]
pub struct ModifiedSpray {
    copies: HashMap<(u32, u64), u32>,
    values: PhotoValueCache,
}

impl ModifiedSpray {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        ModifiedSpray::default()
    }

    fn copies_of(&self, node: NodeId, photo: PhotoId) -> u32 {
        self.copies.get(&(node.0, photo.0)).copied().unwrap_or(0)
    }

    /// Evicts lowest-value photos from `node` until `need` bytes fit,
    /// but only while the incoming `(value, id)` beats the victim.
    /// Returns whether the space was freed.
    fn make_room(
        &mut self,
        ctx: &mut SimCtx,
        node: NodeId,
        need: u64,
        incoming: ((i64, i64), PhotoId),
    ) -> bool {
        let capacity = ctx.storage_bytes();
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        loop {
            if ctx.collection(node).total_size() + need <= capacity {
                return true;
            }
            let worst = ctx
                .collection(node)
                .iter()
                .map(|p| (self.values.value(p, &pois, params), p.id))
                .min();
            match worst {
                Some(victim) if victim < incoming => {
                    ctx.collection_mut(node).remove(victim.1);
                    self.copies.remove(&(node.0, victim.1 .0));
                }
                _ => return false,
            }
        }
    }
}

impl Scheme for ModifiedSpray {
    fn name(&self) -> &'static str {
        "modified-spray"
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        let value = self.values.value(&photo, &pois, params);
        if !self.make_room(ctx, node, photo.size, (value, photo.id)) {
            return;
        }
        ctx.collection_mut(node).insert(photo);
        self.copies.insert((node.0, photo.id.0), SPRAY_COPIES);
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        let mut remaining = budget;
        for (src, dst) in [(a, b), (b, a)] {
            // Highest individual coverage first.
            let candidates: Vec<Photo> = ctx
                .collection(src)
                .iter()
                .filter(|p| self.copies_of(src, p.id) > 1 && !ctx.collection(dst).contains(p.id))
                .copied()
                .collect();
            let mut sprayable: Vec<((i64, i64), Photo)> = candidates
                .into_iter()
                .map(|p| (self.values.value(&p, &pois, params), p))
                .collect();
            sprayable.sort_by(|(va, pa), (vb, pb)| vb.cmp(va).then(pa.id.cmp(&pb.id)));
            for (value, photo) in sprayable {
                if photo.size > remaining {
                    break;
                }
                if !self.make_room(ctx, dst, photo.size, (value, photo.id)) {
                    continue;
                }
                remaining -= photo.size;
                if !ctx.contact_transfer().arrived() {
                    continue;
                }
                let c = self.copies_of(src, photo.id);
                let give = c / 2;
                ctx.collection_mut(dst).insert(photo);
                self.copies.insert((dst.0, photo.id.0), give);
                self.copies.insert((src.0, photo.id.0), c - give);
            }
        }
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        let pois = ctx.pois_shared();
        let params = ctx.coverage_params();
        let mut photos: Vec<((i64, i64), Photo)> = ctx
            .collection(node)
            .iter()
            .map(|p| (self.values.value(p, &pois, params), *p))
            .collect();
        photos.sort_by(|(va, pa), (vb, pb)| vb.cmp(va).then(pa.id.cmp(&pb.id)));
        let mut remaining = budget;
        let mut bytes = 0;
        for (_, photo) in photos {
            if photo.size > remaining {
                break;
            }
            if ctx.upload_photo(photo).acked() {
                ctx.collection_mut(node).remove(photo.id);
                self.copies.remove(&(node.0, photo.id.0));
            }
            remaining -= photo.size;
            bytes += photo.size;
        }
        ctx.note_upload_bytes(bytes);
    }

    fn on_node_crashed(&mut self, _ctx: &mut SimCtx, node: NodeId) {
        self.copies.retain(|&(n, _), _| n != node.0);
    }

    fn fork_shard(&self) -> Option<Box<dyn Scheme + Send>> {
        Some(Box::new(ModifiedSpray::new()))
    }

    fn export_node_state(&mut self, node: NodeId) -> Option<Box<dyn Any + Send>> {
        Some(Box::new(drain_copies(&mut self.copies, node)))
    }

    fn import_node_state(&mut self, node: NodeId, state: Box<dyn Any + Send>) {
        let state = state
            .downcast::<SprayNodeState>()
            .expect("modified-spray replica handed foreign node state");
        install_copies(&mut self.copies, node, *state);
    }

    fn export_global_state(&self) -> Option<String> {
        export_spray_copies(&self.copies)
    }

    fn import_global_state(&mut self, state: &str) -> Result<(), String> {
        self.copies = import_spray_copies(state)?;
        self.values = PhotoValueCache::new();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
    use photodtn_sim::{SimConfig, Simulation};

    fn trace() -> photodtn_contacts::ContactTrace {
        CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(15)
            .with_duration_hours(40.0)
            .generate(3)
    }

    fn config() -> SimConfig {
        SimConfig::mit_default().with_photos_per_hour(30.0)
    }

    #[test]
    fn spray_wait_runs_and_delivers() {
        let result = Simulation::new(&config(), &trace(), 1).run(&mut SprayAndWait::new());
        assert_eq!(result.scheme, "spray-wait");
        assert!(result.final_sample().delivered_photos > 0);
    }

    #[test]
    fn modified_spray_runs_and_delivers() {
        let result = Simulation::new(&config(), &trace(), 1).run(&mut ModifiedSpray::new());
        assert_eq!(result.scheme, "modified-spray");
        assert!(result.final_sample().delivered_photos > 0);
    }

    #[test]
    fn both_deterministic() {
        let r1 = Simulation::new(&config(), &trace(), 2).run(&mut SprayAndWait::new());
        let r2 = Simulation::new(&config(), &trace(), 2).run(&mut SprayAndWait::new());
        assert_eq!(r1, r2);
        let m1 = Simulation::new(&config(), &trace(), 2).run(&mut ModifiedSpray::new());
        let m2 = Simulation::new(&config(), &trace(), 2).run(&mut ModifiedSpray::new());
        assert_eq!(m1, m2);
    }

    #[test]
    fn modified_spray_beats_plain_on_coverage() {
        // Coverage-aware prioritization must not hurt: over a real
        // scenario ModifiedSpray ≥ Spray&Wait in point coverage (the
        // paper's Fig. 5 ordering).
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(20)
            .with_duration_hours(60.0)
            .generate(7);
        let config = config().with_storage_bytes(40 * 1024 * 1024); // tight: 10 photos
        let plain = Simulation::new(&config, &trace, 3).run(&mut SprayAndWait::new());
        let modified = Simulation::new(&config, &trace, 3).run(&mut ModifiedSpray::new());
        assert!(
            modified.final_sample().point_coverage >= plain.final_sample().point_coverage,
            "modified {} < plain {}",
            modified.final_sample().point_coverage,
            plain.final_sample().point_coverage
        );
    }

    #[test]
    fn value_aware_policies_improve_plain_spray() {
        // Swapping Spray&Wait's FIFO/drop-tail buffers for the
        // least-value policy (everything else identical) should not hurt
        // coverage — isolating the buffer-management contribution.
        use crate::policy::BufferPolicy;
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(20)
            .with_duration_hours(60.0)
            .generate(7);
        let config = config().with_storage_bytes(40 * 1024 * 1024); // tight
        let classic = Simulation::new(&config, &trace, 3).run(&mut SprayAndWait::new());
        let value_aware = Simulation::new(&config, &trace, 3).run(
            &mut SprayAndWait::new()
                .with_policies(BufferPolicy::DropLeastValue, BufferPolicy::DropLeastValue),
        );
        assert!(
            value_aware.final_sample().point_coverage
                >= classic.final_sample().point_coverage - 0.02,
            "value-aware buffers hurt: {} vs {}",
            value_aware.final_sample().point_coverage,
            classic.final_sample().point_coverage
        );
    }

    #[test]
    fn spray_respects_copy_limit() {
        // With L = 4 copies, a photo can live on at most 4 nodes at once
        // (before any delivery). Verify via internal copy accounting.
        let mut s = SprayAndWait::new();
        s.copies.insert((0, 1), 4);
        assert_eq!(s.copies_of(NodeId(0), PhotoId(1)), 4);
        assert_eq!(s.copies_of(NodeId(1), PhotoId(1)), 0);
    }
}
