//! Property tests for the aspect-weighted extension (§II-C): the weighted
//! segment algorithm must agree with weighted enumeration, weights must
//! only rescale aspects (never point coverage), and weighted selection
//! must actually chase the weighted objective.

use photodtn_contacts::NodeId;
use photodtn_core::expected::enumerate::expected_coverage_enumerate_weighted;
use photodtn_core::expected::segment::{expected_coverage_exact, expected_coverage_exact_weighted};
use photodtn_core::expected::{AspectMode, DeliveryNode, ExpectedEngine};
use photodtn_core::selection::{reallocate, reallocate_weighted, PeerState, SelectionInput};
use photodtn_coverage::{
    AspectWeightMap, AspectWeights, CoverageParams, Photo, PhotoMeta, Poi, PoiId, PoiList,
};
use photodtn_geo::{Angle, Arc, Point};
use proptest::prelude::*;

fn pois() -> PoiList {
    PoiList::new(vec![
        Poi::new(0, Point::new(0.0, 0.0)),
        Poi::new(1, Point::new(300.0, 0.0)),
    ])
}

fn arb_meta() -> impl Strategy<Value = PhotoMeta> {
    (
        -100.0..400.0f64,
        -100.0..300.0f64,
        30.0..60.0f64,
        0.0..360.0f64,
        60.0..150.0f64,
    )
        .prop_map(|(x, y, fov, dir, r)| {
            PhotoMeta::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            )
        })
}

fn arb_nodes() -> impl Strategy<Value = Vec<DeliveryNode>> {
    prop::collection::vec(
        (0.0..=1.0f64, prop::collection::vec(arb_meta(), 0..4)),
        0..6,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(p, m)| DeliveryNode::new(p, m))
            .collect()
    })
}

fn arb_weights() -> impl Strategy<Value = AspectWeightMap> {
    prop::collection::vec((0u32..2, 0.0..360.0f64, 5.0..90.0f64, 0.0..4.0f64), 0..4).prop_map(
        |regions| {
            let mut map = AspectWeightMap::new();
            for (poi, center, half, mult) in regions {
                map.entry(PoiId(poi))
                    .or_insert_with(AspectWeights::uniform)
                    .add_region(
                        Arc::centered(Angle::from_degrees(center), Angle::from_degrees(half)),
                        mult,
                    );
            }
            map
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn weighted_segment_equals_weighted_enumeration(
        nodes in arb_nodes(),
        weights in arb_weights(),
    ) {
        let params = CoverageParams::default();
        let fast = expected_coverage_exact_weighted(&pois(), &nodes, params, &weights);
        let slow = expected_coverage_enumerate_weighted(&pois(), &nodes, params, &weights);
        prop_assert!((fast.point - slow.point).abs() < 1e-8,
            "point {} vs {}", fast.point, slow.point);
        prop_assert!((fast.aspect - slow.aspect).abs() < 1e-8,
            "aspect {} vs {}", fast.aspect, slow.aspect);
    }

    #[test]
    fn weighted_engine_equals_weighted_segment(
        nodes in arb_nodes(),
        weights in arb_weights(),
    ) {
        let params = CoverageParams::default();
        // Pin Exact: this equivalence is the exact-arithmetic contract,
        // and `quantized-aspects` flips the engine's default mode.
        let mut engine = ExpectedEngine::new(&pois(), params)
            .with_aspect_mode(AspectMode::Exact)
            .with_aspect_weights(weights.clone());
        for n in &nodes {
            let h = engine.add_node(n.delivery_prob);
            engine.add_collection(h, n.metas.iter());
        }
        let batch = expected_coverage_exact_weighted(&pois(), &nodes, params, &weights);
        prop_assert!((engine.total().point - batch.point).abs() < 1e-8,
            "point {} vs {}", engine.total().point, batch.point);
        prop_assert!((engine.total().aspect - batch.aspect).abs() < 1e-8,
            "aspect {} vs {}", engine.total().aspect, batch.aspect);
    }

    #[test]
    fn weights_never_change_point_coverage(
        nodes in arb_nodes(),
        weights in arb_weights(),
    ) {
        let params = CoverageParams::default();
        let plain = expected_coverage_exact(&pois(), &nodes, params);
        let weighted = expected_coverage_exact_weighted(&pois(), &nodes, params, &weights);
        prop_assert!((plain.point - weighted.point).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_are_a_noop(nodes in arb_nodes()) {
        let params = CoverageParams::default();
        let empty = AspectWeightMap::new();
        let plain = expected_coverage_exact(&pois(), &nodes, params);
        let weighted = expected_coverage_exact_weighted(&pois(), &nodes, params, &empty);
        prop_assert!((plain.point - weighted.point).abs() < 1e-12);
        prop_assert!((plain.aspect - weighted.aspect).abs() < 1e-12);
    }
}

#[test]
fn weighted_selection_prefers_weighted_aspects() {
    // One storage slot; two photos of the same PoI from opposite sides.
    // Unweighted selection picks the lower photo id on the tie; with the
    // north side weighted 5×, selection must pick the north photo.
    let pois = pois();
    let target = Point::new(0.0, 0.0);
    let shot = |id: u64, deg: f64| {
        let dir = Angle::from_degrees(deg);
        Photo::new(
            id,
            PhotoMeta::new(
                target.offset(dir, 60.0),
                90.0,
                Angle::from_degrees(45.0),
                dir + Angle::PI,
            ),
            0.0,
        )
        .with_size(1)
    };
    let input = SelectionInput {
        pois: &pois,
        params: CoverageParams::default(),
        a: PeerState {
            node: NodeId(0),
            delivery_prob: 0.9,
            capacity: 1,
            photos: vec![shot(1, 270.0), shot(2, 90.0)], // south-side first by id
        },
        b: PeerState {
            node: NodeId(1),
            delivery_prob: 0.0,
            capacity: 0,
            photos: vec![],
        },
        others: vec![],
    };
    let plain = reallocate(&input);
    assert_eq!(plain.a_selected, vec![photodtn_coverage::PhotoId(1)]);

    let mut weights = AspectWeightMap::new();
    let mut w = AspectWeights::uniform();
    w.add_region(
        Arc::centered(Angle::from_degrees(90.0), Angle::from_degrees(40.0)),
        5.0,
    );
    weights.insert(PoiId(0), w);
    let weighted = reallocate_weighted(&input, &weights);
    assert_eq!(weighted.a_selected, vec![photodtn_coverage::PhotoId(2)]);
    assert!(weighted.expected.aspect > plain.expected.aspect);
}
