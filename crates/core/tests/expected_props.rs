//! Property tests establishing that the three expected-coverage
//! implementations agree and that greedy selection obeys its invariants.
//!
//! The segment-decomposition algorithm replaces the paper's exponential
//! Definition 2 in every hot path, so its equivalence to direct
//! enumeration *is* the correctness argument of this reproduction.

use photodtn_contacts::NodeId;
use photodtn_core::expected::enumerate::expected_coverage_enumerate;
use photodtn_core::expected::montecarlo::expected_coverage_montecarlo;
use photodtn_core::expected::segment::expected_coverage_exact;
use photodtn_core::expected::{AspectMode, DeliveryNode, ExpectedEngine};
use photodtn_core::selection::{
    reallocate, reallocate_lazy_linear, reallocate_naive, PeerState, SelectionInput,
};
use photodtn_coverage::{Coverage, CoverageParams, Photo, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pois() -> PoiList {
    PoiList::new(vec![
        Poi::new(0, Point::new(0.0, 0.0)),
        Poi::new(1, Point::new(300.0, 0.0)),
        Poi::with_weight(2, Point::new(0.0, 300.0), 2.0),
    ])
}

fn arb_meta() -> impl Strategy<Value = PhotoMeta> {
    (
        -100.0..400.0f64,
        -100.0..400.0f64,
        30.0..60.0f64,
        0.0..360.0f64,
        60.0..150.0f64,
    )
        .prop_map(|(x, y, fov, dir, r)| {
            PhotoMeta::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            )
        })
}

fn arb_node() -> impl Strategy<Value = DeliveryNode> {
    (0.0..=1.0f64, prop::collection::vec(arb_meta(), 0..4))
        .prop_map(|(p, metas)| DeliveryNode::new(p, metas))
}

fn arb_nodes() -> impl Strategy<Value = Vec<DeliveryNode>> {
    prop::collection::vec(arb_node(), 0..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segment_equals_enumeration(nodes in arb_nodes()) {
        let params = CoverageParams::default();
        let fast = expected_coverage_exact(&pois(), &nodes, params);
        let slow = expected_coverage_enumerate(&pois(), &nodes, params);
        prop_assert!((fast.point - slow.point).abs() < 1e-8,
            "point {} vs {}", fast.point, slow.point);
        prop_assert!((fast.aspect - slow.aspect).abs() < 1e-8,
            "aspect {} vs {}", fast.aspect, slow.aspect);
    }

    #[test]
    fn engine_equals_segment(nodes in arb_nodes()) {
        let params = CoverageParams::default();
        // Pin Exact: this equivalence is the exact-arithmetic contract,
        // and `quantized-aspects` flips the engine's default mode.
        let mut engine = ExpectedEngine::new(&pois(), params)
            .with_aspect_mode(AspectMode::Exact);
        for n in &nodes {
            let h = engine.add_node(n.delivery_prob);
            engine.add_collection(h, n.metas.iter());
        }
        let batch = expected_coverage_exact(&pois(), &nodes, params);
        prop_assert!((engine.total().point - batch.point).abs() < 1e-8);
        prop_assert!((engine.total().aspect - batch.aspect).abs() < 1e-8);
    }

    #[test]
    fn montecarlo_brackets_exact(nodes in arb_nodes()) {
        let params = CoverageParams::default();
        let exact = expected_coverage_exact(&pois(), &nodes, params);
        let mut rng = SmallRng::seed_from_u64(42);
        let est = expected_coverage_montecarlo(&pois(), &nodes, params, 4000, &mut rng);
        // crude 5-sigma-ish bound: components are bounded by 4 (weights)
        prop_assert!((est.point - exact.point).abs() < 0.35,
            "MC point {} vs exact {}", est.point, exact.point);
        prop_assert!((est.aspect - exact.aspect).abs() < 1.5,
            "MC aspect {} vs exact {}", est.aspect, exact.aspect);
    }

    #[test]
    fn expected_bounded_by_certain(nodes in arb_nodes()) {
        // C_ex ≤ C_ph with all photos delivered for sure.
        let params = CoverageParams::default();
        let e = expected_coverage_exact(&pois(), &nodes, params);
        let all: Vec<&PhotoMeta> = nodes.iter().flat_map(|n| n.metas.iter()).collect();
        let cap = Coverage::of(&pois(), all.iter().copied(), params);
        prop_assert!(e.point <= cap.point + 1e-9);
        prop_assert!(e.aspect <= cap.aspect + 1e-9);
        prop_assert!(e.point >= -1e-12 && e.aspect >= -1e-12);
    }

    #[test]
    fn raising_probability_helps(nodes in arb_nodes(), extra in 0.0..1.0f64) {
        prop_assume!(!nodes.is_empty());
        let params = CoverageParams::default();
        let base = expected_coverage_exact(&pois(), &nodes, params);
        let mut boosted = nodes.clone();
        let p0 = boosted[0].delivery_prob;
        boosted[0].delivery_prob = (p0 + extra).min(1.0);
        let up = expected_coverage_exact(&pois(), &boosted, params);
        prop_assert!(up.point + 1e-9 >= base.point);
        prop_assert!(up.aspect + 1e-9 >= base.aspect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lazy_greedy_equals_naive(
        a_metas in prop::collection::vec(arb_meta(), 0..6),
        b_metas in prop::collection::vec(arb_meta(), 0..6),
        others in prop::collection::vec(arb_node(), 0..3),
        pa in 0.0..1.0f64,
        pb in 0.0..1.0f64,
        cap_a in 0u64..6,
        cap_b in 0u64..6,
    ) {
        let pois = pois();
        let mut next_id = 0u64;
        let mut mk = |metas: Vec<PhotoMeta>| -> Vec<Photo> {
            metas.into_iter().map(|m| {
                next_id += 1;
                Photo::new(next_id, m, 0.0).with_size(1)
            }).collect()
        };
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: PeerState { node: NodeId(0), delivery_prob: pa, capacity: cap_a, photos: mk(a_metas) },
            b: PeerState { node: NodeId(1), delivery_prob: pb, capacity: cap_b, photos: mk(b_metas) },
            others,
        };
        // Three implementations, one answer: the indexed lazy production
        // path, the pre-index lazy greedy, and the exhaustive scan must
        // produce the exact same SelectionResult.
        let indexed = reallocate(&input);
        let naive = reallocate_naive(&input);
        let linear = reallocate_lazy_linear(&input);
        prop_assert_eq!(&indexed, &naive);
        prop_assert_eq!(&indexed, &linear);
        // Equality above is epsilon-tolerant on `expected`; the committed
        // totals of the two lazy paths must agree to the bit, since the
        // indexed engine is meant to be a drop-in replacement.
        prop_assert_eq!(indexed.expected.point.to_bits(), linear.expected.point.to_bits());
        prop_assert_eq!(indexed.expected.aspect.to_bits(), linear.expected.aspect.to_bits());
    }

    #[test]
    fn selection_fits_capacity_and_pool(
        a_metas in prop::collection::vec(arb_meta(), 0..8),
        b_metas in prop::collection::vec(arb_meta(), 0..8),
        pa in 0.0..1.0f64,
        pb in 0.0..1.0f64,
        cap_a in 0u64..8,
        cap_b in 0u64..8,
    ) {
        let pois = pois();
        let mut next_id = 0u64;
        let mut mk = |metas: Vec<PhotoMeta>| -> Vec<Photo> {
            metas.into_iter().map(|m| {
                next_id += 1;
                Photo::new(next_id, m, 0.0).with_size(1)
            }).collect()
        };
        let a_photos = mk(a_metas);
        let b_photos = mk(b_metas);
        let pool: std::collections::BTreeSet<_> =
            a_photos.iter().chain(&b_photos).map(|p| p.id).collect();
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: PeerState { node: NodeId(0), delivery_prob: pa, capacity: cap_a, photos: a_photos },
            b: PeerState { node: NodeId(1), delivery_prob: pb, capacity: cap_b, photos: b_photos },
            others: vec![],
        };
        let r = reallocate(&input);
        prop_assert!(r.a_selected.len() as u64 <= cap_a);
        prop_assert!(r.b_selected.len() as u64 <= cap_b);
        // no duplicates within one node, and everything comes from the pool
        let ua: std::collections::BTreeSet<_> = r.a_selected.iter().collect();
        prop_assert_eq!(ua.len(), r.a_selected.len());
        let ub: std::collections::BTreeSet<_> = r.b_selected.iter().collect();
        prop_assert_eq!(ub.len(), r.b_selected.len());
        prop_assert!(r.a_selected.iter().all(|id| pool.contains(id)));
        prop_assert!(r.b_selected.iter().all(|id| pool.contains(id)));
    }

    #[test]
    fn greedy_prefix_gains_decrease(
        metas in prop::collection::vec(arb_meta(), 1..8),
        p in 0.1..1.0f64,
    ) {
        // The gain sequence along the greedy order must be non-increasing
        // (submodularity + greedy choice).
        let pois = pois();
        let photos: Vec<Photo> = metas.into_iter().enumerate()
            .map(|(i, m)| Photo::new(i as u64, m, 0.0).with_size(1)).collect();
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: PeerState { node: NodeId(0), delivery_prob: p, capacity: 64, photos },
            b: PeerState { node: NodeId(1), delivery_prob: 0.0, capacity: 0, photos: vec![] },
            others: vec![],
        };
        let r = reallocate(&input);
        // replay gains
        let mut engine = ExpectedEngine::new(&pois, CoverageParams::default());
        let h = engine.add_node(p);
        let mut prev: Option<Coverage> = None;
        for id in &r.a_selected {
            let photo = input.a.photos.iter().find(|ph| ph.id == *id).unwrap();
            let g = engine.add_photo(h, &photo.meta);
            if let Some(pg) = prev {
                prop_assert!(g.point <= pg.point + 1e-9 || g <= pg,
                    "gain increased along greedy order: {g:?} after {pg:?}");
            }
            prev = Some(g);
        }
    }
}
