//! How good is the paper's greedy heuristic? The reallocation problem is
//! NP-hard, but tiny instances can be solved exactly by enumerating all
//! assignments. These tests compare the greedy solution against the true
//! optimum: for a monotone objective under per-node capacities the
//! accelerated greedy should stay within a constant factor — empirically
//! we require ≥ 60 % of the optimal expected point coverage and never a
//! *worse-than-half* outcome.

use photodtn_contacts::NodeId;
use photodtn_core::expected::{DeliveryNode, ExpectedEngine};
use photodtn_core::selection::{reallocate, PeerState, SelectionInput};
use photodtn_coverage::{Coverage, CoverageParams, Photo, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;

fn pois() -> PoiList {
    PoiList::new(vec![
        Poi::new(0, Point::new(0.0, 0.0)),
        Poi::new(1, Point::new(350.0, 0.0)),
        Poi::new(2, Point::new(0.0, 350.0)),
    ])
}

type RawPhoto = (bool, f64, f64, f64, f64, f64);

fn arb_raw_photos() -> impl Strategy<Value = Vec<RawPhoto>> {
    prop::collection::vec(
        (
            any::<bool>(),
            -80.0..430.0f64,
            -80.0..430.0f64,
            30.0..60.0f64,
            0.0..360.0f64,
            60.0..160.0f64,
        ),
        5..=7,
    )
}

fn materialize(raw: &[RawPhoto]) -> (Vec<Photo>, Vec<Photo>) {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, &(to_a, x, y, fov, dir, r)) in raw.iter().enumerate() {
        let photo = Photo::new(
            i as u64 + 1,
            PhotoMeta::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            ),
            0.0,
        )
        .with_size(1);
        if to_a {
            a.push(photo);
        } else {
            b.push(photo);
        }
    }
    (a, b)
}

/// Scalarizes an expected coverage for factor comparisons: point dominates
/// but aspects break ties smoothly.
fn scalar(c: Coverage) -> f64 {
    c.point * 100.0 + c.aspect
}

/// Exact optimum by enumerating every assignment of the pool into
/// {a only, b only, both, neither} under both capacities.
fn exhaustive_optimum(input: &SelectionInput<'_>) -> Coverage {
    let pool: Vec<Photo> = {
        let mut v = input.a.photos.clone();
        for p in &input.b.photos {
            if !v.iter().any(|q| q.id == p.id) {
                v.push(*p);
            }
        }
        v
    };
    let k = pool.len();
    assert!(k <= 8, "exhaustive search is 4^k");
    let mut best = Coverage::ZERO;
    for assign in 0..(4u32.pow(k as u32)) {
        let mut bits = assign;
        let mut size_a = 0u64;
        let mut size_b = 0u64;
        let mut in_a = Vec::new();
        let mut in_b = Vec::new();
        for p in &pool {
            let choice = bits % 4;
            bits /= 4;
            if choice == 1 || choice == 3 {
                size_a += p.size;
                in_a.push(p.meta);
            }
            if choice == 2 || choice == 3 {
                size_b += p.size;
                in_b.push(p.meta);
            }
        }
        if size_a > input.a.capacity || size_b > input.b.capacity {
            continue;
        }
        let mut engine = ExpectedEngine::new(input.pois, input.params);
        for other in &input.others {
            let n = engine.add_node(other.delivery_prob);
            engine.add_collection(n, other.metas.iter());
        }
        let na = engine.add_node(input.a.delivery_prob);
        engine.add_collection(na, in_a.iter());
        let nb = engine.add_node(input.b.delivery_prob);
        engine.add_collection(nb, in_b.iter());
        if scalar(engine.total()) > scalar(best) {
            best = engine.total();
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_within_factor_of_optimum(
        raw in arb_raw_photos(),
        pa in 0.2..1.0f64,
        pb in 0.1..0.9f64,
        cap_a in 2u64..5,
        cap_b in 1u64..4,
    ) {
        let pois = pois();
        let (a_photos, b_photos) = materialize(&raw);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: PeerState { node: NodeId(0), delivery_prob: pa, capacity: cap_a, photos: a_photos },
            b: PeerState { node: NodeId(1), delivery_prob: pb, capacity: cap_b, photos: b_photos },
            others: vec![DeliveryNode::new(1.0, vec![])],
        };
        let greedy = reallocate(&input);
        let optimum = exhaustive_optimum(&input);
        let (g, o) = (scalar(greedy.expected), scalar(optimum));
        prop_assert!(g <= o + 1e-6, "greedy {g} beat the optimum {o}?!");
        if o > 1e-9 {
            prop_assert!(
                g >= 0.6 * o,
                "greedy {g} below 60% of optimum {o} (greedy {:?} / {:?})",
                greedy.a_selected, greedy.b_selected
            );
        }
    }
}

#[test]
fn greedy_is_optimal_on_a_crafted_instance() {
    // Two complementary views of each PoI; capacities fit exactly the
    // optimum allocation, and greedy should find it.
    let pois = pois();
    let shot = |id: u64, target: Point, deg: f64| {
        let dir = Angle::from_degrees(deg);
        Photo::new(
            id,
            PhotoMeta::new(
                target.offset(dir, 60.0),
                90.0,
                Angle::from_degrees(45.0),
                dir + Angle::PI,
            ),
            0.0,
        )
        .with_size(1)
    };
    let t0 = Point::new(0.0, 0.0);
    let t1 = Point::new(350.0, 0.0);
    let input = SelectionInput {
        pois: &pois,
        params: CoverageParams::default(),
        a: PeerState {
            node: NodeId(0),
            delivery_prob: 0.9,
            capacity: 2,
            photos: vec![shot(1, t0, 0.0), shot(2, t0, 5.0)],
        },
        b: PeerState {
            node: NodeId(1),
            delivery_prob: 0.4,
            capacity: 2,
            photos: vec![shot(3, t1, 90.0), shot(4, t1, 95.0)],
        },
        others: vec![],
    };
    let greedy = reallocate(&input);
    let optimum = exhaustive_optimum(&input);
    assert!(
        (scalar(greedy.expected) - scalar(optimum)).abs() < 1e-6,
        "greedy {:?} vs optimum {:?}",
        greedy.expected,
        optimum
    );
}
