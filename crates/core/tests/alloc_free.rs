//! Verifies the engine's gain evaluation is allocation-free in steady
//! state: after a warm-up pass has sized the scratch buffers, repeated
//! `gain_of` / `gain_of_indexed` previews must not touch the heap.
//!
//! Uses a counting global allocator, so this lives in its own test binary
//! — the counter would otherwise see allocations from unrelated tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Count only while the measuring thread is inside a measured section:
    // the libtest harness and the runtime occasionally allocate from
    // *other* threads mid-measurement, which is noise for this assertion
    // (and made the test flaky). The const initializer and the Drop-less
    // Cell guarantee the gate itself never allocates.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting() -> bool {
    // try_with: the allocator can be called during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` with this thread's allocations counted, returning the count.
fn measured(f: impl FnOnce()) -> u64 {
    let before = allocations();
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    allocations() - before
}

use photodtn_core::expected::ExpectedEngine;
use photodtn_coverage::{CoverageParams, PhotoCoverage, PhotoMeta, Poi, PoiList};
use photodtn_geo::{Angle, Point};

fn world() -> (PoiList, Vec<PhotoMeta>) {
    // A ring of PoIs and a fan of overlapping photos so gains exercise
    // both the point and the aspect (integration) paths, including the
    // multi-coverer cut loop.
    let pois = PoiList::new(
        (0..40)
            .map(|i| {
                let ang = f64::from(i) * std::f64::consts::TAU / 40.0;
                Poi::new(i, Point::new(400.0 * ang.cos(), 400.0 * ang.sin()))
            })
            .collect(),
    );
    let metas = (0..25)
        .map(|i| {
            let deg = f64::from(i) * 14.4;
            PhotoMeta::new(
                Point::new(
                    300.0 * deg.to_radians().cos(),
                    300.0 * deg.to_radians().sin(),
                ),
                250.0,
                Angle::from_degrees(60.0),
                Angle::from_degrees(deg + 180.0),
            )
        })
        .collect();
    (pois, metas)
}

#[test]
fn gain_evaluation_is_allocation_free_when_warm() {
    let (pois, metas) = world();
    let params = CoverageParams::default();
    let covs: Vec<PhotoCoverage> = metas
        .iter()
        .map(|m| PhotoCoverage::build(m, &pois, params))
        .collect();

    let mut engine = ExpectedEngine::new(&pois, params);
    let relay = engine.add_node(0.6);
    // Commit a few photos so previews hit populated coverer lists (the
    // expensive integration path), then warm the scratch buffers.
    for cov in covs.iter().take(8) {
        engine.add_photo_indexed(relay, cov);
    }
    let probe = engine.add_node(0.4);
    for (meta, cov) in metas.iter().zip(&covs) {
        let _ = engine.gain_of(probe, meta);
        let _ = engine.gain_of_indexed(probe, cov);
    }

    // Steady state: repeated previews must not allocate at all.
    let mut acc = 0.0;
    let indexed_allocs = measured(|| {
        for _ in 0..50 {
            for cov in &covs {
                acc += engine.gain_of_indexed(probe, cov).aspect;
            }
        }
    });
    assert_eq!(
        indexed_allocs, 0,
        "gain_of_indexed allocated {indexed_allocs} times in steady state"
    );

    // The linear path shares the same scratch buffers; its per-preview
    // geometry (grid iterators) is allocation-free too.
    let linear_allocs = measured(|| {
        for _ in 0..50 {
            for meta in &metas {
                acc += engine.gain_of(probe, meta).aspect;
            }
        }
    });
    assert_eq!(
        linear_allocs, 0,
        "gain_of allocated {linear_allocs} times in steady state"
    );

    assert!(acc.is_finite());
}

#[test]
fn batched_candidate_scratch_is_allocation_free_when_warm() {
    // The SIMD prefilter gathers per-photo candidates into thread-local
    // SoA scratch buffers. Once a first pass has sized them, the whole
    // steady-state gather + prefilter cycle (what `PhotoCoverage::build`
    // runs per photo) must never touch the heap.
    use photodtn_coverage::batch::{sector_prefilter, with_scratch, SectorKernel};
    let (_, metas) = world();
    // Source lanes standing in for the grid's per-cell candidate slices.
    let n = 600usize;
    let items_src: Vec<u32> = (0..n as u32).collect();
    let xs_src: Vec<f32> = (0..n).map(|i| (i as f32 * 7.3) % 800.0 - 400.0).collect();
    let ys_src: Vec<f32> = (0..n).map(|i| (i as f32 * 3.1) % 800.0 - 400.0).collect();
    let gather = |s: &mut photodtn_coverage::batch::BatchScratch, kernel: &SectorKernel| {
        // several extends, like a bbox spanning several grid cells
        for (chunk_i, chunk_x) in items_src.chunks(37).zip(xs_src.chunks(37)) {
            s.items.extend_from_slice(chunk_i);
            s.xs.extend_from_slice(chunk_x);
        }
        for chunk_y in ys_src.chunks(37) {
            s.ys.extend_from_slice(chunk_y);
        }
        s.keep.resize(s.items.len(), 0);
        sector_prefilter(kernel, &s.xs, &s.ys, &mut s.keep);
        s.keep.iter().map(|&k| u64::from(k)).sum::<u64>()
    };
    let kernels: Vec<SectorKernel> = metas
        .iter()
        .map(|m| SectorKernel::new(&m.sector()))
        .collect();
    // warm-up sizes the scratch to the largest candidate set
    let mut kept = with_scratch(|s| gather(s, &kernels[0]));
    let scratch_allocs = measured(|| {
        for _ in 0..50 {
            for kernel in &kernels {
                kept += with_scratch(|s| gather(s, kernel));
            }
        }
    });
    assert!(kept > 0, "prefilter must keep some candidates");
    assert_eq!(
        scratch_allocs, 0,
        "warm SoA scratch allocated {scratch_allocs} times in steady state"
    );
}

#[test]
fn quantized_gain_path_is_allocation_free_when_warm() {
    // The bitset-based aspect gain (Quantized mode) must stay on the
    // stack: the per-bin survival loop walks fixed-width AspectBits with
    // no interval buffers at all.
    use photodtn_core::expected::AspectMode;
    let (pois, metas) = world();
    let params = CoverageParams::default();
    let covs: Vec<PhotoCoverage> = metas
        .iter()
        .map(|m| PhotoCoverage::build(m, &pois, params))
        .collect();
    let mut engine = ExpectedEngine::new(&pois, params).with_aspect_mode(AspectMode::Quantized);
    let relay = engine.add_node(0.6);
    for cov in covs.iter().take(8) {
        engine.add_photo_indexed(relay, cov);
    }
    let probe = engine.add_node(0.4);
    for cov in &covs {
        let _ = engine.gain_of_indexed(probe, cov);
    }
    let mut acc = 0.0;
    let quantized_allocs = measured(|| {
        for _ in 0..50 {
            for cov in &covs {
                acc += engine.gain_of_indexed(probe, cov).aspect;
            }
        }
    });
    assert_eq!(
        quantized_allocs, 0,
        "quantized gain_of_indexed allocated {quantized_allocs} times in steady state"
    );
    assert!(acc.is_finite());
}
