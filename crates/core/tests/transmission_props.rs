//! Property tests for the bandwidth-limited transmission executor: no
//! matter how the contact is truncated, storage capacities hold, budgets
//! hold, and photos the plan selected are never evicted.

use photodtn_core::selection::SelectionResult;
use photodtn_core::transmission::{execute_plan, plan_transfers};
use photodtn_coverage::{Coverage, Photo, PhotoCollection, PhotoId, PhotoMeta};
use photodtn_geo::{Angle, Point};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn photo(id: u64) -> Photo {
    let meta = PhotoMeta::new(
        Point::new(0.0, 0.0),
        100.0,
        Angle::from_degrees(45.0),
        Angle::ZERO,
    );
    Photo::new(id, meta, 0.0).with_size(1)
}

prop_compose! {
    fn arb_world()(
        a_ids in prop::collection::btree_set(0u64..20, 0..8),
        b_extra in prop::collection::btree_set(0u64..20, 0..8),
        a_sel in prop::collection::vec(0u64..20, 0..10),
        b_sel in prop::collection::vec(0u64..20, 0..10),
        a_first in any::<bool>(),
        cap_a in 0u64..12,
        cap_b in 0u64..12,
        budget in 0u64..16,
    ) -> (PhotoCollection, PhotoCollection, SelectionResult, u64, u64, u64) {
        let a: PhotoCollection = a_ids.iter().map(|&i| photo(i)).collect();
        let b: PhotoCollection = b_extra.iter().map(|&i| photo(i)).collect();
        let pool: BTreeSet<u64> = a_ids.union(&b_extra).copied().collect();
        // selections must come from the pool, be unique, and fit capacity
        let dedup = |sel: Vec<u64>, cap: u64| -> Vec<PhotoId> {
            let mut seen = BTreeSet::new();
            sel.into_iter()
                .filter(|i| pool.contains(i) && seen.insert(*i))
                .take(cap as usize)
                .map(PhotoId)
                .collect()
        };
        let result = SelectionResult {
            a_selected: dedup(a_sel, cap_a),
            b_selected: dedup(b_sel, cap_b),
            a_first,
            expected: Coverage::ZERO,
            stats: Default::default(),
        };
        (a, b, result, cap_a, cap_b, budget)
    }
}

proptest! {
    #[test]
    fn execution_respects_all_limits((a0, b0, result, cap_a, cap_b, budget) in arb_world()) {
        prop_assume!(a0.total_size() <= cap_a && b0.total_size() <= cap_b);
        let mut a = a0.clone();
        let mut b = b0.clone();
        let plan = plan_transfers(&result, &a, &b);
        let out = execute_plan(&plan, &result, &mut a, cap_a, &mut b, cap_b, budget);

        // capacities hold afterwards
        prop_assert!(a.total_size() <= cap_a, "a over capacity");
        prop_assert!(b.total_size() <= cap_b, "b over capacity");
        // the byte budget holds
        prop_assert!(out.bytes_transferred <= budget);
        prop_assert_eq!(u64::from(out.photos_transferred), out.bytes_transferred);
        // selected photos that were present at the start are never lost
        for id in &result.a_selected {
            if a0.contains(*id) {
                prop_assert!(a.contains(*id), "a lost selected {id}");
            }
        }
        for id in &result.b_selected {
            if b0.contains(*id) {
                prop_assert!(b.contains(*id), "b lost selected {id}");
            }
        }
        // no photo materializes out of thin air
        for p in a.iter().chain(b.iter()) {
            prop_assert!(a0.contains(p.id) || b0.contains(p.id));
        }
    }

    #[test]
    fn unlimited_budget_realizes_the_plan((a0, b0, result, cap_a, cap_b, _) in arb_world()) {
        prop_assume!(a0.total_size() <= cap_a && b0.total_size() <= cap_b);
        let mut a = a0.clone();
        let mut b = b0.clone();
        let plan = plan_transfers(&result, &a, &b);
        let out = execute_plan(&plan, &result, &mut a, cap_a, &mut b, cap_b, u64::MAX);
        prop_assert!(!out.truncated);
        // Every selected photo that exists in the pool ends up on its
        // node — except in the documented mutual-swap deadlock, where the
        // receiver is exactly full of photos some selection still needs.
        let keeps: BTreeSet<PhotoId> = result
            .a_selected
            .iter()
            .chain(&result.b_selected)
            .copied()
            .collect();
        let deadlocked = |coll: &PhotoCollection, cap: u64, extra: u64| {
            coll.total_size() + extra > cap && coll.ids().all(|id| keeps.contains(&id))
        };
        for id in &result.a_selected {
            if (a0.contains(*id) || b0.contains(*id)) && !a.contains(*id) {
                let size = b.get(*id).map_or(1, |p| p.size);
                prop_assert!(
                    deadlocked(&a, cap_a, size),
                    "a missing selected {id} despite ∞ budget and no deadlock"
                );
            }
        }
        for id in &result.b_selected {
            if (a0.contains(*id) || b0.contains(*id)) && !b.contains(*id) {
                let size = a.get(*id).map_or(1, |p| p.size);
                prop_assert!(
                    deadlocked(&b, cap_b, size),
                    "b missing selected {id} despite ∞ budget and no deadlock"
                );
            }
        }
    }

    #[test]
    fn truncation_is_a_prefix((a0, b0, result, cap_a, cap_b, budget) in arb_world()) {
        prop_assume!(a0.total_size() <= cap_a && b0.total_size() <= cap_b);
        // executing with a smaller budget transfers a prefix (by count) of
        // what a larger budget transfers
        let plan = plan_transfers(&result, &a0, &b0);
        let (mut a1, mut b1) = (a0.clone(), b0.clone());
        let small = execute_plan(&plan, &result, &mut a1, cap_a, &mut b1, cap_b, budget);
        let (mut a2, mut b2) = (a0.clone(), b0.clone());
        let large = execute_plan(&plan, &result, &mut a2, cap_a, &mut b2, cap_b, budget.saturating_add(8));
        prop_assert!(small.photos_transferred <= large.photos_transferred);
        prop_assert!(small.bytes_transferred <= large.bytes_transferred);
    }
}
