//! The resource-aware photo selection framework of Wu et al. (ICDCS'16) —
//! the paper's primary contribution, built on the coverage model from
//! [`photodtn_coverage`].
//!
//! # Components
//!
//! * [`validity`] / [`MetadataCache`] — metadata management (§III-B):
//!   nodes gossip photo metadata at contacts; a cached snapshot of node
//!   `a` is trusted only while
//!   `P{T_a < t} = 1 − e^{−λ_a t} ≤ P_thld`, i.e. while `a` probably has
//!   not met anyone since (and so probably still holds the same photos).
//! * [`expected`] — expected coverage (§III-C): the coverage the command
//!   center can *expect* to obtain, weighting each node's photos by its
//!   PROPHET delivery probability. Three evaluators are provided — exact
//!   outcome enumeration (the paper's Definition 2, exponential in the
//!   node count), an exact polynomial-time segment decomposition, and a
//!   Monte-Carlo estimator — plus the incremental
//!   [`ExpectedEngine`](expected::ExpectedEngine) that powers greedy
//!   selection.
//! * [`selection`] — the photo selection algorithm (§III-D): at each
//!   contact the two nodes greedily re-allocate the photo pool
//!   `F_a ∪ F_b` to maximize expected coverage under their storage
//!   limits, higher-delivery-probability node first.
//! * [`transmission`] — the contact-duration adjustment (§III-D): photos
//!   are transmitted in selection order so that a truncated contact still
//!   delivers the most valuable prefix.
//!
//! # Example: one contact, end to end
//!
//! ```
//! use photodtn_contacts::NodeId;
//! use photodtn_coverage::{CoverageParams, Photo, PhotoMeta, Poi, PoiList};
//! use photodtn_core::selection::{reallocate, PeerState, SelectionInput};
//! use photodtn_geo::{Angle, Point};
//!
//! let pois = PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))]);
//! let shot = |id: u64, deg: f64| {
//!     let dir = Angle::from_degrees(deg);
//!     let loc = Point::new(0.0, 0.0).offset(dir, 60.0);
//!     Photo::new(id, PhotoMeta::new(loc, 100.0, Angle::from_degrees(50.0),
//!                                   dir + Angle::PI), 0.0).with_size(1)
//! };
//! let input = SelectionInput {
//!     pois: &pois,
//!     params: CoverageParams::default(),
//!     a: PeerState { node: NodeId(0), delivery_prob: 0.9,
//!                    capacity: 2, photos: vec![shot(1, 0.0), shot(2, 5.0)] },
//!     b: PeerState { node: NodeId(1), delivery_prob: 0.2,
//!                    capacity: 2, photos: vec![shot(3, 180.0)] },
//!     others: vec![],
//! };
//! let result = reallocate(&input);
//! // The strong relay takes the two most complementary views.
//! assert_eq!(result.a_selected.len(), 2);
//! assert!(result.a_selected.contains(&photodtn_coverage::PhotoId(1)));
//! assert!(result.a_selected.contains(&photodtn_coverage::PhotoId(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expected;
mod metadata;
pub mod selection;
pub mod transmission;
pub mod validity;

pub use metadata::{MetadataCache, MetadataRecord};
