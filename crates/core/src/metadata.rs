use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use photodtn_contacts::NodeId;
use photodtn_coverage::{PhotoId, PhotoMeta};

use crate::validity::ValidityModel;

/// A cached snapshot of one peer's photo collection (§III-B).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetadataRecord {
    /// Metadata of every photo the peer held at snapshot time.
    pub photos: Vec<(PhotoId, PhotoMeta)>,
    /// When the snapshot was taken (our last direct contact), seconds.
    pub snapshot_at: f64,
    /// The peer's self-reported contact rate `λ_a` (s⁻¹) at that time.
    pub lambda: f64,
}

/// One node's cache of other nodes' photo metadata, with staleness-based
/// invalidation (§III-B).
///
/// Records are written at direct contacts (a node "sends its photo
/// metadata and parameter λ learned from historical contacts") and read
/// during selection; [`valid_records`](MetadataCache::valid_records)
/// filters by equation (1) at read time and
/// [`purge_stale`](MetadataCache::purge_stale) evicts lazily.
///
/// The command center's record is special: the paper assumes "the command
/// center does not drop photos, and thus the metadata of `n_0` is always
/// valid" — model that by caching its record with `lambda = 0`.
///
/// # Example
///
/// ```
/// use photodtn_contacts::NodeId;
/// use photodtn_core::{validity::ValidityModel, MetadataCache};
///
/// let mut cache = MetadataCache::new();
/// cache.update(NodeId(3), vec![], 1.0 / 3600.0, 1000.0);
/// let model = ValidityModel::paper_default();
/// assert_eq!(cache.valid_records(&model, 1000.0).count(), 1);
/// // ~1.6 mean inter-contact times later the record is distrusted
/// assert_eq!(cache.valid_records(&model, 1000.0 + 3.0 * 3600.0).count(), 0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetadataCache {
    records: HashMap<u32, MetadataRecord>,
}

impl MetadataCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        MetadataCache::default()
    }

    /// Number of cached records (valid or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Stores (replacing) the snapshot received from `peer` at `now`.
    pub fn update(
        &mut self,
        peer: NodeId,
        photos: Vec<(PhotoId, PhotoMeta)>,
        lambda: f64,
        now: f64,
    ) {
        self.records.insert(
            peer.0,
            MetadataRecord {
                photos,
                snapshot_at: now,
                lambda: lambda.max(0.0),
            },
        );
    }

    /// The raw record for `peer`, regardless of validity.
    #[must_use]
    pub fn record(&self, peer: NodeId) -> Option<&MetadataRecord> {
        self.records.get(&peer.0)
    }

    /// Whether the record for `peer` exists and is still valid at `now`.
    #[must_use]
    pub fn is_valid(&self, peer: NodeId, model: &ValidityModel, now: f64) -> bool {
        self.records
            .get(&peer.0)
            .is_some_and(|r| model.is_valid(r.lambda, now - r.snapshot_at))
    }

    /// Iterates over `(peer, record)` pairs whose records are valid at
    /// `now` under equation (1).
    pub fn valid_records<'a>(
        &'a self,
        model: &'a ValidityModel,
        now: f64,
    ) -> impl Iterator<Item = (NodeId, &'a MetadataRecord)> + 'a {
        self.records
            .iter()
            .filter(move |(_, r)| model.is_valid(r.lambda, now - r.snapshot_at))
            .map(|(&id, r)| (NodeId(id), r))
    }

    /// Drops every invalid record, returning how many were evicted.
    pub fn purge_stale(&mut self, model: &ValidityModel, now: f64) -> usize {
        let before = self.records.len();
        self.records
            .retain(|_, r| model.is_valid(r.lambda, now - r.snapshot_at));
        before - self.records.len()
    }

    /// Removes the record for `peer` (e.g. when fresher first-hand
    /// information supersedes it).
    pub fn remove(&mut self, peer: NodeId) -> Option<MetadataRecord> {
        self.records.remove(&peer.0)
    }

    /// Total cached photo-metadata entries across all records — the
    /// storage cost of the cache, for accounting ("caching metadata costs
    /// very little storage space").
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.records.values().map(|r| r.photos.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_geo::{Angle, Point};

    fn meta() -> PhotoMeta {
        PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(45.0),
            Angle::ZERO,
        )
    }

    #[test]
    fn update_and_query() {
        let mut c = MetadataCache::new();
        assert!(c.is_empty());
        c.update(NodeId(1), vec![(PhotoId(7), meta())], 0.001, 100.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.cached_entries(), 1);
        let r = c.record(NodeId(1)).unwrap();
        assert_eq!(r.snapshot_at, 100.0);
        assert_eq!(r.photos.len(), 1);
        assert!(c.record(NodeId(2)).is_none());
    }

    #[test]
    fn update_replaces_snapshot() {
        let mut c = MetadataCache::new();
        c.update(NodeId(1), vec![(PhotoId(1), meta())], 0.001, 100.0);
        c.update(
            NodeId(1),
            vec![(PhotoId(2), meta()), (PhotoId(3), meta())],
            0.002,
            200.0,
        );
        assert_eq!(c.len(), 1);
        let r = c.record(NodeId(1)).unwrap();
        assert_eq!(r.photos.len(), 2);
        assert_eq!(r.snapshot_at, 200.0);
        assert_eq!(r.lambda, 0.002);
    }

    #[test]
    fn validity_filtering_and_purge() {
        let model = ValidityModel::paper_default();
        let mut c = MetadataCache::new();
        let lambda = 1.0 / 3600.0;
        c.update(NodeId(1), vec![], lambda, 0.0);
        c.update(NodeId(2), vec![], lambda, 10_000.0); // fresher
        let now = 10_001.0;
        // node 1's record is ~2.8 mean inter-contacts old → stale
        assert!(!c.is_valid(NodeId(1), &model, now));
        assert!(c.is_valid(NodeId(2), &model, now));
        let valid: Vec<NodeId> = c.valid_records(&model, now).map(|(n, _)| n).collect();
        assert_eq!(valid, vec![NodeId(2)]);
        assert_eq!(c.purge_stale(&model, now), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn command_center_record_never_expires() {
        let model = ValidityModel::paper_default();
        let mut c = MetadataCache::new();
        c.update(NodeId(0), vec![(PhotoId(1), meta())], 0.0, 0.0);
        assert!(c.is_valid(NodeId(0), &model, 1e12));
    }

    #[test]
    fn negative_lambda_clamped() {
        let mut c = MetadataCache::new();
        c.update(NodeId(1), vec![], -5.0, 0.0);
        assert_eq!(c.record(NodeId(1)).unwrap().lambda, 0.0);
    }

    #[test]
    fn remove_record() {
        let mut c = MetadataCache::new();
        c.update(NodeId(1), vec![], 0.0, 0.0);
        assert!(c.remove(NodeId(1)).is_some());
        assert!(c.remove(NodeId(1)).is_none());
        assert!(c.is_empty());
    }
}
