//! Executing a reallocation under bandwidth limits (§III-D, last part).
//!
//! The selection algorithm assumes the contact lasts long enough to move
//! every photo. When it may not, the two nodes transmit photos **in
//! selection order** — first everything the higher-probability node
//! selected, then the other's — so that if the contact ends early, the
//! most valuable prefix of the plan has already been realized and "any
//! unfinished transmission is discarded".
//!
//! Storage is reconciled lazily: a receiver evicts photos *outside its
//! selection* only when it actually needs the space for an incoming
//! photo. This never loses a photo the plan wanted kept somewhere: a photo
//! is evicted from a node only if the plan excluded it from that node.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use photodtn_coverage::{PhotoCollection, PhotoId};

use crate::selection::SelectionResult;

/// One planned photo transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// The photo to move.
    pub photo: PhotoId,
    /// `true` → into node `a`; `false` → into node `b`.
    pub to_a: bool,
    /// Payload size, bytes.
    pub size: u64,
}

/// The ordered transmission schedule realizing a [`SelectionResult`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Transfers in transmission order.
    pub steps: Vec<Transfer>,
}

impl TransferPlan {
    /// Total bytes the full plan would move.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|t| t.size).sum()
    }
}

/// Outcome of executing a plan under a byte budget.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ContactOutcome {
    /// Bytes actually transmitted.
    pub bytes_transferred: u64,
    /// Photos actually transmitted.
    pub photos_transferred: u32,
    /// Photos evicted to make room.
    pub photos_evicted: u32,
    /// Whether the budget truncated the plan.
    pub truncated: bool,
}

/// Builds the transmission schedule for a contact: photos of the first
/// selector's solution the first selector lacks, then the second's, each
/// in selection order.
#[must_use]
pub fn plan_transfers(
    result: &SelectionResult,
    a_photos: &PhotoCollection,
    b_photos: &PhotoCollection,
) -> TransferPlan {
    let (first_is_a, first_sel, second_sel) = result.phases();
    let mut steps = Vec::new();
    let mut push_phase = |selection: &[PhotoId], to_a: bool| {
        let (receiver, sender) = if to_a {
            (a_photos, b_photos)
        } else {
            (b_photos, a_photos)
        };
        for &id in selection {
            if receiver.contains(id) {
                continue;
            }
            // The pool is F_a ∪ F_b, so the other node must hold it.
            if let Some(p) = sender.get(id) {
                steps.push(Transfer {
                    photo: id,
                    to_a,
                    size: p.size,
                });
            }
        }
    };
    push_phase(first_sel, first_is_a);
    push_phase(second_sel, !first_is_a);
    TransferPlan { steps }
}

/// Executes a plan in order, stopping at the first transfer that exceeds
/// the remaining byte budget (the contact ended). Mutates both
/// collections; evicts unselected photos from a receiver when space is
/// needed.
///
/// A receiver never evicts the **last copy** of a photo the peer's
/// selection still needs — such transfers are deferred and retried after
/// the rest of the plan has run (by then the blocking photo has usually
/// been copied across, making it evictable). A mutual-swap deadlock with
/// both storages exactly full can still leave a transfer unrealized; the
/// outcome's counters reflect what actually moved.
pub fn execute_plan(
    plan: &TransferPlan,
    result: &SelectionResult,
    a_photos: &mut PhotoCollection,
    a_capacity: u64,
    b_photos: &mut PhotoCollection,
    b_capacity: u64,
    budget_bytes: u64,
) -> ContactOutcome {
    let a_keep: BTreeSet<PhotoId> = result.a_selected.iter().copied().collect();
    let b_keep: BTreeSet<PhotoId> = result.b_selected.iter().copied().collect();
    let mut out = ContactOutcome::default();
    let mut budget = budget_bytes;

    let mut pending: Vec<Transfer> = plan.steps.clone();
    loop {
        let mut deferred: Vec<Transfer> = Vec::new();
        let mut progressed = false;
        for t in &pending {
            if out.truncated {
                break;
            }
            if t.size > budget {
                out.truncated = true;
                break;
            }
            let (receiver, sender, cap, keep, peer_keep) = if t.to_a {
                (&mut *a_photos, &mut *b_photos, a_capacity, &a_keep, &b_keep)
            } else {
                (&mut *b_photos, &mut *a_photos, b_capacity, &b_keep, &a_keep)
            };
            let Some(photo) = sender.get(t.photo).copied() else {
                continue;
            };
            if receiver.contains(t.photo) {
                continue;
            }
            // Make room by evicting photos this node's selection
            // excluded, highest id first (deterministic). A photo the
            // *peer's* selection wants is spared unless the peer already
            // holds a copy.
            while receiver.total_size() + photo.size > cap {
                let victim = receiver.ids().rev().find(|id| {
                    !keep.contains(id) && (!peer_keep.contains(id) || sender.contains(*id))
                });
                match victim {
                    Some(v) => {
                        receiver.remove(v);
                        out.photos_evicted += 1;
                    }
                    None => break,
                }
            }
            if receiver.total_size() + photo.size > cap {
                // Blocked on a spared photo (or on the receiver's own
                // selected set): retry after the rest of the plan.
                deferred.push(*t);
                continue;
            }
            receiver.insert(photo);
            budget -= photo.size;
            out.bytes_transferred += photo.size;
            out.photos_transferred += 1;
            progressed = true;
        }
        if out.truncated || deferred.is_empty() || !progressed {
            break;
        }
        pending = deferred;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::{Photo, PhotoMeta};
    use photodtn_geo::{Angle, Point};

    fn photo(id: u64, size: u64) -> Photo {
        let meta = PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(45.0),
            Angle::ZERO,
        );
        Photo::new(id, meta, 0.0).with_size(size)
    }

    fn collection(ids: &[(u64, u64)]) -> PhotoCollection {
        ids.iter().map(|&(id, s)| photo(id, s)).collect()
    }

    fn result(a: &[u64], b: &[u64], a_first: bool) -> SelectionResult {
        SelectionResult {
            a_selected: a.iter().map(|&i| PhotoId(i)).collect(),
            b_selected: b.iter().map(|&i| PhotoId(i)).collect(),
            a_first,
            expected: photodtn_coverage::Coverage::ZERO,
            stats: Default::default(),
        }
    }

    #[test]
    fn plan_skips_already_held() {
        let a = collection(&[(1, 10), (2, 10)]);
        let b = collection(&[(3, 10)]);
        let r = result(&[1, 3], &[2], true);
        let plan = plan_transfers(&r, &a, &b);
        // a lacks only 3; b lacks 2.
        assert_eq!(
            plan.steps,
            vec![
                Transfer {
                    photo: PhotoId(3),
                    to_a: true,
                    size: 10
                },
                Transfer {
                    photo: PhotoId(2),
                    to_a: false,
                    size: 10
                },
            ]
        );
        assert_eq!(plan.total_bytes(), 20);
    }

    #[test]
    fn phase_order_follows_first_selector() {
        let a = collection(&[(1, 10)]);
        let b = collection(&[(2, 10)]);
        let r = result(&[2], &[1], false); // b selects first
        let plan = plan_transfers(&r, &a, &b);
        assert!(!plan.steps[0].to_a);
        assert_eq!(plan.steps[0].photo, PhotoId(1));
        assert_eq!(plan.steps[1].photo, PhotoId(2));
    }

    #[test]
    fn execute_moves_photos() {
        let mut a = collection(&[(1, 10)]);
        let mut b = collection(&[(2, 10)]);
        let r = result(&[1, 2], &[1], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 100, &mut b, 100, 1000);
        assert!(a.contains(PhotoId(2)));
        assert!(b.contains(PhotoId(1)));
        assert_eq!(out.photos_transferred, 2);
        assert_eq!(out.bytes_transferred, 20);
        assert!(!out.truncated);
    }

    #[test]
    fn budget_truncates_in_order() {
        let mut a = collection(&[]);
        let mut b = collection(&[(1, 10), (2, 10), (3, 10)]);
        let r = result(&[1, 2, 3], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 100, &mut b, 100, 25);
        // Only the first two fit the 25-byte budget.
        assert!(a.contains(PhotoId(1)) && a.contains(PhotoId(2)));
        assert!(!a.contains(PhotoId(3)));
        assert!(out.truncated);
        assert_eq!(out.bytes_transferred, 20);
    }

    #[test]
    fn eviction_frees_space_for_selected() {
        // a holds an unselected photo filling its storage; the incoming
        // selected photo must evict it.
        let mut a = collection(&[(9, 10)]);
        let mut b = collection(&[(1, 10)]);
        let r = result(&[1], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 10, &mut b, 100, 1000);
        assert!(a.contains(PhotoId(1)));
        assert!(!a.contains(PhotoId(9)));
        assert_eq!(out.photos_evicted, 1);
    }

    #[test]
    fn never_evicts_selected_photos() {
        // a's storage is exactly filled by a selected photo; the second
        // transfer cannot fit and must not displace it.
        let mut a = collection(&[(1, 10)]);
        let mut b = collection(&[(2, 10)]);
        let r = result(&[1, 2], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 10, &mut b, 100, 1000);
        assert!(a.contains(PhotoId(1)));
        assert!(!a.contains(PhotoId(2)));
        assert_eq!(out.photos_evicted, 0);
        assert_eq!(out.photos_transferred, 0);
    }

    #[test]
    fn missing_source_skipped() {
        let mut a = collection(&[]);
        let mut b = collection(&[]);
        // plan references a photo neither holds (should not happen, but
        // must not panic)
        let r = result(&[42], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        assert!(plan.steps.is_empty());
        let out = execute_plan(&plan, &r, &mut a, 10, &mut b, 10, 10);
        assert_eq!(out, ContactOutcome::default());
    }

    #[test]
    fn zero_budget_transfers_nothing() {
        let mut a = collection(&[]);
        let mut b = collection(&[(1, 10)]);
        let r = result(&[1], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 100, &mut b, 100, 0);
        assert_eq!(out.photos_transferred, 0);
        assert!(out.truncated);
        assert!(b.contains(PhotoId(1)));
    }
}
