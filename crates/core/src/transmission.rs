//! Executing a reallocation under bandwidth limits (§III-D, last part).
//!
//! The selection algorithm assumes the contact lasts long enough to move
//! every photo. When it may not, the two nodes transmit photos **in
//! selection order** — first everything the higher-probability node
//! selected, then the other's — so that if the contact ends early, the
//! most valuable prefix of the plan has already been realized and "any
//! unfinished transmission is discarded".
//!
//! Storage is reconciled lazily: a receiver evicts photos *outside its
//! selection* only when it actually needs the space for an incoming
//! photo. This never loses a photo the plan wanted kept somewhere: a photo
//! is evicted from a node only if the plan excluded it from that node.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use photodtn_coverage::{PhotoCollection, PhotoId};

use crate::selection::SelectionResult;

/// One planned photo transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// The photo to move.
    pub photo: PhotoId,
    /// `true` → into node `a`; `false` → into node `b`.
    pub to_a: bool,
    /// Payload size, bytes.
    pub size: u64,
}

/// The ordered transmission schedule realizing a [`SelectionResult`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Transfers in transmission order.
    pub steps: Vec<Transfer>,
}

impl TransferPlan {
    /// Total bytes the full plan would move.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|t| t.size).sum()
    }
}

/// Fate of one in-flight photo transmission over a (possibly faulty)
/// link. The default, [`TransferFate::Intact`], is a perfect link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferFate {
    /// The photo arrived intact.
    #[default]
    Intact,
    /// The photo was lost in flight; the bytes were spent but nothing
    /// arrived.
    Lost,
    /// The photo arrived corrupted; the receiver detects this (checksum)
    /// and discards it without storing it.
    Corrupt,
}

impl TransferFate {
    /// Whether the photo arrived and was kept.
    #[must_use]
    pub fn arrived(self) -> bool {
        self == TransferFate::Intact
    }
}

/// Outcome of executing a plan under a byte budget.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ContactOutcome {
    /// Bytes actually transmitted — including bytes burned on lost or
    /// corrupt transmissions.
    pub bytes_transferred: u64,
    /// Photos transmitted *and stored* by their receiver.
    pub photos_transferred: u32,
    /// Photos evicted to make room.
    pub photos_evicted: u32,
    /// Transmissions lost in flight (bytes spent, nothing arrived).
    pub photos_lost: u32,
    /// Transmissions that arrived corrupted and were discarded.
    pub photos_corrupt: u32,
    /// Whether the budget truncated the plan.
    pub truncated: bool,
}

/// Builds the transmission schedule for a contact: photos of the first
/// selector's solution the first selector lacks, then the second's, each
/// in selection order.
#[must_use]
pub fn plan_transfers(
    result: &SelectionResult,
    a_photos: &PhotoCollection,
    b_photos: &PhotoCollection,
) -> TransferPlan {
    let (first_is_a, first_sel, second_sel) = result.phases();
    let mut steps = Vec::new();
    let mut push_phase = |selection: &[PhotoId], to_a: bool| {
        let (receiver, sender) = if to_a {
            (a_photos, b_photos)
        } else {
            (b_photos, a_photos)
        };
        for &id in selection {
            if receiver.contains(id) {
                continue;
            }
            // The pool is F_a ∪ F_b, so the other node must hold it.
            if let Some(p) = sender.get(id) {
                steps.push(Transfer {
                    photo: id,
                    to_a,
                    size: p.size,
                });
            }
        }
    };
    push_phase(first_sel, first_is_a);
    push_phase(second_sel, !first_is_a);
    TransferPlan { steps }
}

/// Executes a plan in order, stopping at the first transfer that exceeds
/// the remaining byte budget (the contact ended). Mutates both
/// collections; evicts unselected photos from a receiver when space is
/// needed.
///
/// A receiver never evicts the **last copy** of a photo the peer's
/// selection still needs — such transfers are deferred and retried after
/// the rest of the plan has run (by then the blocking photo has usually
/// been copied across, making it evictable). A mutual-swap deadlock with
/// both storages exactly full can still leave a transfer unrealized; the
/// outcome's counters reflect what actually moved.
pub fn execute_plan(
    plan: &TransferPlan,
    result: &SelectionResult,
    a_photos: &mut PhotoCollection,
    a_capacity: u64,
    b_photos: &mut PhotoCollection,
    b_capacity: u64,
    budget_bytes: u64,
) -> ContactOutcome {
    execute_plan_with(
        plan,
        result,
        a_photos,
        a_capacity,
        b_photos,
        b_capacity,
        budget_bytes,
        |_| TransferFate::Intact,
    )
}

/// Like [`execute_plan`], but every actual transmission is routed through
/// `link`, which decides its [`TransferFate`] — the hook a fault injector
/// uses to lose or corrupt individual transfers.
///
/// `link` is called once per transmission *attempt* (after the receiver
/// has secured storage for the photo), in transmission order, so a
/// deterministic `link` yields a deterministic outcome. Lost and corrupt
/// transmissions consume budget — the bytes went over the air — but the
/// photo is not stored, and the transfer is not retried.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_with(
    plan: &TransferPlan,
    result: &SelectionResult,
    a_photos: &mut PhotoCollection,
    a_capacity: u64,
    b_photos: &mut PhotoCollection,
    b_capacity: u64,
    budget_bytes: u64,
    mut link: impl FnMut(&Transfer) -> TransferFate,
) -> ContactOutcome {
    let a_keep: BTreeSet<PhotoId> = result.a_selected.iter().copied().collect();
    let b_keep: BTreeSet<PhotoId> = result.b_selected.iter().copied().collect();
    let mut out = ContactOutcome::default();
    let mut budget = budget_bytes;

    let mut pending: Vec<Transfer> = plan.steps.clone();
    loop {
        let mut deferred: Vec<Transfer> = Vec::new();
        let mut progressed = false;
        for t in &pending {
            if out.truncated {
                break;
            }
            if t.size > budget {
                out.truncated = true;
                break;
            }
            let (receiver, sender, cap, keep, peer_keep) = if t.to_a {
                (&mut *a_photos, &mut *b_photos, a_capacity, &a_keep, &b_keep)
            } else {
                (&mut *b_photos, &mut *a_photos, b_capacity, &b_keep, &a_keep)
            };
            let Some(photo) = sender.get(t.photo).copied() else {
                continue;
            };
            if receiver.contains(t.photo) {
                continue;
            }
            // Make room by evicting photos this node's selection
            // excluded, highest id first (deterministic). A photo the
            // *peer's* selection wants is spared unless the peer already
            // holds a copy.
            while receiver.total_size() + photo.size > cap {
                let victim = receiver.ids().rev().find(|id| {
                    !keep.contains(id) && (!peer_keep.contains(id) || sender.contains(*id))
                });
                match victim {
                    Some(v) => {
                        receiver.remove(v);
                        out.photos_evicted += 1;
                    }
                    None => break,
                }
            }
            if receiver.total_size() + photo.size > cap {
                // Blocked on a spared photo (or on the receiver's own
                // selected set): retry after the rest of the plan.
                deferred.push(*t);
                continue;
            }
            budget -= photo.size;
            out.bytes_transferred += photo.size;
            match link(t) {
                TransferFate::Intact => {
                    receiver.insert(photo);
                    out.photos_transferred += 1;
                    progressed = true;
                }
                TransferFate::Lost => out.photos_lost += 1,
                TransferFate::Corrupt => out.photos_corrupt += 1,
            }
        }
        if out.truncated || deferred.is_empty() || !progressed {
            break;
        }
        pending = deferred;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::{Photo, PhotoMeta};
    use photodtn_geo::{Angle, Point};

    fn photo(id: u64, size: u64) -> Photo {
        let meta = PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(45.0),
            Angle::ZERO,
        );
        Photo::new(id, meta, 0.0).with_size(size)
    }

    fn collection(ids: &[(u64, u64)]) -> PhotoCollection {
        ids.iter().map(|&(id, s)| photo(id, s)).collect()
    }

    fn result(a: &[u64], b: &[u64], a_first: bool) -> SelectionResult {
        SelectionResult {
            a_selected: a.iter().map(|&i| PhotoId(i)).collect(),
            b_selected: b.iter().map(|&i| PhotoId(i)).collect(),
            a_first,
            expected: photodtn_coverage::Coverage::ZERO,
            stats: Default::default(),
        }
    }

    #[test]
    fn plan_skips_already_held() {
        let a = collection(&[(1, 10), (2, 10)]);
        let b = collection(&[(3, 10)]);
        let r = result(&[1, 3], &[2], true);
        let plan = plan_transfers(&r, &a, &b);
        // a lacks only 3; b lacks 2.
        assert_eq!(
            plan.steps,
            vec![
                Transfer {
                    photo: PhotoId(3),
                    to_a: true,
                    size: 10
                },
                Transfer {
                    photo: PhotoId(2),
                    to_a: false,
                    size: 10
                },
            ]
        );
        assert_eq!(plan.total_bytes(), 20);
    }

    #[test]
    fn phase_order_follows_first_selector() {
        let a = collection(&[(1, 10)]);
        let b = collection(&[(2, 10)]);
        let r = result(&[2], &[1], false); // b selects first
        let plan = plan_transfers(&r, &a, &b);
        assert!(!plan.steps[0].to_a);
        assert_eq!(plan.steps[0].photo, PhotoId(1));
        assert_eq!(plan.steps[1].photo, PhotoId(2));
    }

    #[test]
    fn execute_moves_photos() {
        let mut a = collection(&[(1, 10)]);
        let mut b = collection(&[(2, 10)]);
        let r = result(&[1, 2], &[1], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 100, &mut b, 100, 1000);
        assert!(a.contains(PhotoId(2)));
        assert!(b.contains(PhotoId(1)));
        assert_eq!(out.photos_transferred, 2);
        assert_eq!(out.bytes_transferred, 20);
        assert!(!out.truncated);
    }

    #[test]
    fn budget_truncates_in_order() {
        let mut a = collection(&[]);
        let mut b = collection(&[(1, 10), (2, 10), (3, 10)]);
        let r = result(&[1, 2, 3], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 100, &mut b, 100, 25);
        // Only the first two fit the 25-byte budget.
        assert!(a.contains(PhotoId(1)) && a.contains(PhotoId(2)));
        assert!(!a.contains(PhotoId(3)));
        assert!(out.truncated);
        assert_eq!(out.bytes_transferred, 20);
    }

    #[test]
    fn eviction_frees_space_for_selected() {
        // a holds an unselected photo filling its storage; the incoming
        // selected photo must evict it.
        let mut a = collection(&[(9, 10)]);
        let mut b = collection(&[(1, 10)]);
        let r = result(&[1], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 10, &mut b, 100, 1000);
        assert!(a.contains(PhotoId(1)));
        assert!(!a.contains(PhotoId(9)));
        assert_eq!(out.photos_evicted, 1);
    }

    #[test]
    fn never_evicts_selected_photos() {
        // a's storage is exactly filled by a selected photo; the second
        // transfer cannot fit and must not displace it.
        let mut a = collection(&[(1, 10)]);
        let mut b = collection(&[(2, 10)]);
        let r = result(&[1, 2], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 10, &mut b, 100, 1000);
        assert!(a.contains(PhotoId(1)));
        assert!(!a.contains(PhotoId(2)));
        assert_eq!(out.photos_evicted, 0);
        assert_eq!(out.photos_transferred, 0);
    }

    #[test]
    fn missing_source_skipped() {
        let mut a = collection(&[]);
        let mut b = collection(&[]);
        // plan references a photo neither holds (should not happen, but
        // must not panic)
        let r = result(&[42], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        assert!(plan.steps.is_empty());
        let out = execute_plan(&plan, &r, &mut a, 10, &mut b, 10, 10);
        assert_eq!(out, ContactOutcome::default());
    }

    #[test]
    fn lost_transfers_burn_budget_without_storing() {
        let mut a = collection(&[]);
        let mut b = collection(&[(1, 10), (2, 10), (3, 10)]);
        let r = result(&[1, 2, 3], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        // Lose the first transfer, corrupt the second, let the third pass.
        let mut step = 0;
        let out = execute_plan_with(&plan, &r, &mut a, 100, &mut b, 100, 25, |_| {
            step += 1;
            match step {
                1 => TransferFate::Lost,
                2 => TransferFate::Corrupt,
                _ => TransferFate::Intact,
            }
        });
        // 25-byte budget: two failed 10-byte sends leave room for nothing
        // more — the clean third transfer no longer fits.
        assert_eq!(out.photos_lost, 1);
        assert_eq!(out.photos_corrupt, 1);
        assert_eq!(out.photos_transferred, 0);
        assert_eq!(out.bytes_transferred, 20);
        assert!(out.truncated);
        assert!(a.is_empty());
    }

    #[test]
    fn perfect_link_matches_execute_plan() {
        let build = || (collection(&[(1, 10)]), collection(&[(2, 10)]));
        let r = result(&[1, 2], &[1], true);
        let (mut a1, mut b1) = build();
        let plan = plan_transfers(&r, &a1, &b1);
        let plain = execute_plan(&plan, &r, &mut a1, 100, &mut b1, 100, 1000);
        let (mut a2, mut b2) = build();
        let with = execute_plan_with(&plan, &r, &mut a2, 100, &mut b2, 100, 1000, |_| {
            TransferFate::Intact
        });
        assert_eq!(plain, with);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn zero_budget_transfers_nothing() {
        let mut a = collection(&[]);
        let mut b = collection(&[(1, 10)]);
        let r = result(&[1], &[], true);
        let plan = plan_transfers(&r, &a, &b);
        let out = execute_plan(&plan, &r, &mut a, 100, &mut b, 100, 0);
        assert_eq!(out.photos_transferred, 0);
        assert!(out.truncated);
        assert!(b.contains(PhotoId(1)));
    }
}
