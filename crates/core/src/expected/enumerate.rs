//! Reference implementation of Definition 2 by exhaustive enumeration of
//! delivery outcomes. Exponential in the number of nodes — use it for
//! validation and small node sets only; the production path is
//! [`segment`](super::segment).

use photodtn_coverage::{AspectWeightMap, Coverage, CoverageParams, PhotoMeta, PoiList};

use super::DeliveryNode;

/// Maximum node-set size enumeration accepts (`2^20` outcomes ≈ 1 M
/// coverage evaluations).
pub const MAX_ENUMERATED_NODES: usize = 20;

/// Computes `C_ex(M)` by summing `P_B · C_ph(∪ F_i)` over every delivery
/// outcome `B ∈ {0,1}^m` — the paper's Definition 2, verbatim.
///
/// # Panics
///
/// Panics if `nodes.len() > MAX_ENUMERATED_NODES`; enumeration beyond that
/// is certainly a mistake (use
/// [`segment::expected_coverage_exact`](super::segment::expected_coverage_exact)).
#[must_use]
pub fn expected_coverage_enumerate(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
) -> Coverage {
    enumerate_inner(pois, nodes, params, None)
}

/// Enumeration with per-PoI aspect weights — the reference the weighted
/// segment algorithm is validated against.
///
/// # Panics
///
/// Panics if `nodes.len() > MAX_ENUMERATED_NODES`.
#[must_use]
pub fn expected_coverage_enumerate_weighted(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
    weights: &AspectWeightMap,
) -> Coverage {
    enumerate_inner(pois, nodes, params, Some(weights))
}

fn enumerate_inner(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
    weights: Option<&AspectWeightMap>,
) -> Coverage {
    assert!(
        nodes.len() <= MAX_ENUMERATED_NODES,
        "enumeration over {} nodes would need 2^{} coverage evaluations",
        nodes.len(),
        nodes.len()
    );
    let m = nodes.len();
    let mut total = Coverage::ZERO;
    for mask in 0u64..(1u64 << m) {
        let mut prob = 1.0;
        let mut delivered: Vec<&PhotoMeta> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            let p = super::clamp_prob(node.delivery_prob);
            if mask & (1 << i) != 0 {
                prob *= p;
                delivered.extend(node.metas.iter());
            } else {
                prob *= 1.0 - p;
            }
        }
        if prob == 0.0 {
            continue;
        }
        let c = match weights {
            Some(w) => Coverage::of_weighted(pois, delivered.iter().copied(), params, w),
            None => Coverage::of(pois, delivered.iter().copied(), params),
        };
        total.point += prob * c.point;
        total.aspect += prob * c.aspect;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::Poi;
    use photodtn_geo::{Angle, Point};

    fn pois() -> PoiList {
        PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))])
    }

    fn shot(deg: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(deg);
        PhotoMeta::new(
            Point::new(0.0, 0.0).offset(dir, 50.0),
            80.0,
            Angle::from_degrees(40.0),
            dir + Angle::PI,
        )
    }

    #[test]
    fn single_node_scales_linearly() {
        let params = CoverageParams::default();
        let full = Coverage::of(&pois(), [&shot(0.0)], params);
        let node = DeliveryNode::new(0.3, vec![shot(0.0)]);
        let e = expected_coverage_enumerate(&pois(), &[node], params);
        assert!((e.point - 0.3 * full.point).abs() < 1e-12);
        assert!((e.aspect - 0.3 * full.aspect).abs() < 1e-12);
    }

    #[test]
    fn certain_delivery_equals_plain_coverage() {
        let params = CoverageParams::default();
        let nodes = [
            DeliveryNode::new(1.0, vec![shot(0.0)]),
            DeliveryNode::new(1.0, vec![shot(180.0)]),
        ];
        let e = expected_coverage_enumerate(&pois(), &nodes, params);
        let all: Vec<PhotoMeta> = vec![shot(0.0), shot(180.0)];
        let c = Coverage::of(&pois(), all.iter(), params);
        assert!((e.point - c.point).abs() < 1e-12);
        assert!((e.aspect - c.aspect).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_formula_three_nodes() {
        // Reproduces formula (2): M = {n_0, n_a, n_b} with b_0 = 1.
        let params = CoverageParams::default();
        let f0 = vec![shot(90.0)];
        let fa = vec![shot(0.0)];
        let fb = vec![shot(180.0)];
        let (pa, pb) = (0.6, 0.25);
        let nodes = [
            DeliveryNode::new(1.0, f0.clone()),
            DeliveryNode::new(pa, fa.clone()),
            DeliveryNode::new(pb, fb.clone()),
        ];
        let e = expected_coverage_enumerate(&pois(), &nodes, params);

        let c = |sets: Vec<&Vec<PhotoMeta>>| {
            let metas: Vec<&PhotoMeta> = sets.into_iter().flatten().collect();
            Coverage::of(&pois(), metas.iter().copied(), params)
        };
        let manual_aspect = c(vec![&f0]).aspect * (1.0 - pa) * (1.0 - pb)
            + c(vec![&f0, &fa]).aspect * pa * (1.0 - pb)
            + c(vec![&f0, &fb]).aspect * (1.0 - pa) * pb
            + c(vec![&f0, &fa, &fb]).aspect * pa * pb;
        assert!((e.aspect - manual_aspect).abs() < 1e-12);
    }

    #[test]
    fn empty_node_set_is_zero() {
        let e = expected_coverage_enumerate(&pois(), &[], CoverageParams::default());
        assert!(e.is_zero());
    }

    #[test]
    #[should_panic(expected = "coverage evaluations")]
    fn refuses_huge_node_sets() {
        let nodes = vec![DeliveryNode::new(0.5, vec![]); 21];
        let _ = expected_coverage_enumerate(&pois(), &nodes, CoverageParams::default());
    }
}
