//! Exact polynomial-time expected coverage by segment decomposition.
//!
//! For each PoI, collect the aspect [`ArcSet`] each node covers on it.
//! Deliveries are independent, so for any aspect direction `v`
//! `P{v covered} = 1 − Π_{i: v ∈ S_i} (1 − p_i)`, and this product is
//! piecewise constant between arc endpoints. Splitting the circle at every
//! endpoint therefore yields the exact integral
//! `E[C_as(x)] = Σ_segments |seg| · (1 − Π (1 − p_i))`.
//!
//! Complexity: `O(k log k + k·c)` per PoI, where `k` is the number of arc
//! endpoints and `c` the number of covering nodes — versus the `2^m`
//! coverage evaluations of Definition 2's direct form. The two agree to
//! floating-point accuracy (see the `expected_equivalence` property
//! tests), which is the correctness argument for using this in the hot
//! path.

use photodtn_geo::{Angle, ArcSet, TAU};

use photodtn_coverage::{
    aspect_set, AspectWeightMap, AspectWeights, Coverage, CoverageParams, PoiList,
};

use super::DeliveryNode;

/// Computes `C_ex(M)` exactly in polynomial time.
#[must_use]
pub fn expected_coverage_exact(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
) -> Coverage {
    exact_inner(pois, nodes, params, None)
}

/// Computes `C_ex(M)` exactly with per-PoI aspect weights (§II-C
/// extension); PoIs absent from the map use uniform weights.
#[must_use]
pub fn expected_coverage_exact_weighted(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
    weights: &AspectWeightMap,
) -> Coverage {
    exact_inner(pois, nodes, params, Some(weights))
}

fn exact_inner(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
    weights: Option<&AspectWeightMap>,
) -> Coverage {
    let mut total = Coverage::ZERO;
    for poi in pois {
        // Covering nodes and their aspect sets on this PoI.
        let mut coverers: Vec<(f64, ArcSet)> = Vec::new();
        for node in nodes {
            let p = super::clamp_prob(node.delivery_prob);
            if node.metas.iter().any(|m| m.covers(poi)) {
                let set = aspect_set(poi, node.metas.iter(), params.effective_angle);
                coverers.push((p, set));
            }
        }
        if coverers.is_empty() {
            continue;
        }
        // E[point] = 1 − Π (1 − p_i)
        let survival: f64 = coverers.iter().map(|(p, _)| 1.0 - p).product();
        total.point += poi.weight * (1.0 - survival);
        // E[aspect] by segment decomposition.
        let poi_weights = weights.and_then(|m| m.get(&poi.id));
        total.aspect += poi.weight * integrate_union_probability(&coverers, poi_weights);
    }
    total
}

/// `∫_0^{2π} w(v) · (1 − Π_{i: v ∈ S_i} (1 − p_i)) dv` for
/// piecewise-constant membership, with `w ≡ 1` when `weights` is `None`.
fn integrate_union_probability(coverers: &[(f64, ArcSet)], weights: Option<&AspectWeights>) -> f64 {
    let mut cuts: Vec<f64> = vec![0.0, TAU];
    for (_, set) in coverers {
        cuts.extend(set.endpoints());
    }
    if let Some(w) = weights {
        cuts.extend(w.endpoints());
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut integral = 0.0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let len = hi - lo;
        if len <= 0.0 {
            continue;
        }
        let mid = Angle::from_radians(0.5 * (lo + hi));
        let survival: f64 = coverers
            .iter()
            .filter(|(_, set)| set.contains(mid))
            .map(|(p, _)| 1.0 - p)
            .product();
        let weight = weights.map_or(1.0, |w| w.weight_at(mid));
        integral += len * weight * (1.0 - survival);
    }
    integral
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::{PhotoMeta, Poi};
    use photodtn_geo::{Angle, Arc, Point};

    use crate::expected::enumerate::expected_coverage_enumerate;

    fn pois2() -> PoiList {
        PoiList::new(vec![
            Poi::new(0, Point::new(0.0, 0.0)),
            Poi::new(1, Point::new(400.0, 0.0)),
        ])
    }

    fn shot(target: Point, deg: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(deg);
        PhotoMeta::new(
            target.offset(dir, 50.0),
            80.0,
            Angle::from_degrees(40.0),
            dir + Angle::PI,
        )
    }

    #[test]
    fn matches_enumeration_small_cases() {
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(400.0, 0.0);
        let nodes = [
            DeliveryNode::new(1.0, vec![shot(t0, 90.0)]),
            DeliveryNode::new(0.7, vec![shot(t0, 0.0), shot(t1, 45.0)]),
            DeliveryNode::new(0.3, vec![shot(t0, 30.0)]),
            DeliveryNode::new(0.5, vec![shot(t1, 200.0), shot(t0, 180.0)]),
        ];
        for m in 0..=nodes.len() {
            let subset = &nodes[..m];
            let fast = expected_coverage_exact(&pois2(), subset, params);
            let slow = expected_coverage_enumerate(&pois2(), subset, params);
            assert!(
                (fast.point - slow.point).abs() < 1e-9,
                "point mismatch at m={m}: {} vs {}",
                fast.point,
                slow.point
            );
            assert!(
                (fast.aspect - slow.aspect).abs() < 1e-9,
                "aspect mismatch at m={m}: {} vs {}",
                fast.aspect,
                slow.aspect
            );
        }
    }

    #[test]
    fn zero_probability_contributes_nothing() {
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let nodes = vec![DeliveryNode::new(0.0, vec![shot(t0, 0.0)])];
        let e = expected_coverage_exact(&pois2(), &nodes, params);
        assert!(e.is_zero());
    }

    #[test]
    fn overlap_discounted() {
        // Two independent nodes covering the same 60° arc on one PoI:
        // E[aspect] = 60° · (1 − (1−p)²), not 2 · 60° · p.
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let p = 0.5;
        let nodes = vec![
            DeliveryNode::new(p, vec![shot(t0, 0.0)]),
            DeliveryNode::new(p, vec![shot(t0, 0.0)]),
        ];
        let e = expected_coverage_exact(&pois2(), &nodes, params);
        let arc_measure = 60f64.to_radians();
        assert!((e.aspect - arc_measure * (1.0 - 0.25)).abs() < 1e-9);
        assert!((e.point - (1.0 - 0.25)).abs() < 1e-9);
    }

    #[test]
    fn integrate_union_probability_simple() {
        // One coverer with prob 1 over a 90° arc → integral = π/2.
        let set = ArcSet::from_arc(Arc::new(Angle::ZERO, std::f64::consts::FRAC_PI_2));
        let val = integrate_union_probability(&[(1.0, set.clone())], None);
        assert!((val - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // prob 0.25 scales it
        let val = integrate_union_probability(&[(0.25, set)], None);
        assert!((val - 0.25 * std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn weighted_pois_scale() {
        let params = CoverageParams::default();
        let heavy = PoiList::new(vec![Poi::with_weight(0, Point::new(0.0, 0.0), 4.0)]);
        let light = PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))]);
        let nodes = vec![DeliveryNode::new(
            0.5,
            vec![shot(Point::new(0.0, 0.0), 0.0)],
        )];
        let h = expected_coverage_exact(&heavy, &nodes, params);
        let l = expected_coverage_exact(&light, &nodes, params);
        assert!((h.point - 4.0 * l.point).abs() < 1e-12);
        assert!((h.aspect - 4.0 * l.aspect).abs() < 1e-12);
    }
}
