//! Incremental expected-coverage engine.
//!
//! Greedy selection evaluates the marginal expected-coverage gain of
//! hundreds of candidate photos per contact; recomputing
//! [`expected_coverage_exact`](super::segment::expected_coverage_exact)
//! from scratch each time would be quadratic in the pool size. The engine
//! maintains, per PoI, which engine-nodes cover it and which aspects each
//! covers, so a candidate is evaluated in time proportional to the PoIs it
//! touches.

use std::cell::RefCell;
use std::sync::Arc as StdArc;

use photodtn_geo::{Angle, Arc, ArcSet, AspectBits, ASPECT_BIN_WIDTH};

use photodtn_coverage::{
    AspectWeightMap, AspectWeights, Coverage, CoverageParams, PhotoCoverage, PhotoMeta, PoiList,
};

/// How the engine computes aspect-coverage measures.
///
/// See `DESIGN.md` ("Aspect quantization contract") for the full contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AspectMode {
    /// Exact interval arithmetic over [`ArcSet`]s — the reference path.
    /// Bit-identical to the pre-quantization engine; all determinism dumps
    /// are produced in this mode.
    Exact,
    /// Fixed-width 128-bin bitsets ([`AspectBits`]): O(1) union/measure,
    /// aspect measures quantized to the bin width (`2π/128` ≈ 2.8°).
    /// Point coverage is never quantized. Selection tie-breaking uses the
    /// same comparator in both modes.
    Quantized,
}

impl Default for AspectMode {
    /// [`AspectMode::Exact`] unless the `quantized-aspects` cargo feature
    /// flips the fleet default to the bitset path.
    fn default() -> Self {
        if cfg!(feature = "quantized-aspects") {
            AspectMode::Quantized
        } else {
            AspectMode::Exact
        }
    }
}

/// Incrementally maintained `C_ex` over a set of engine-nodes.
///
/// An *engine-node* is one participant of the node set `M` of
/// Definition 2: it has a delivery probability and accumulates photos.
/// Typical use during a contact between `n_a` and `n_b`:
///
/// 1. add one engine-node per valid metadata record (including the
///    command center with probability 1) and commit their cached photos;
/// 2. add engine-nodes for `n_a` and `n_b`;
/// 3. repeatedly query [`gain_of`](Self::gain_of) for candidates and
///    [`add_photo`](Self::add_photo) the winner.
///
/// # Example
///
/// ```
/// use photodtn_core::expected::ExpectedEngine;
/// use photodtn_coverage::{CoverageParams, PhotoMeta, Poi, PoiList};
/// use photodtn_geo::{Angle, Point};
///
/// let pois = PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))]);
/// let mut engine = ExpectedEngine::new(&pois, CoverageParams::default());
/// let relay = engine.add_node(0.5);
/// let meta = PhotoMeta::new(Point::new(50.0, 0.0), 100.0,
///                           Angle::from_degrees(60.0), Angle::from_degrees(180.0));
/// let gain = engine.add_photo(relay, &meta);
/// assert!((gain.point - 0.5).abs() < 1e-12); // P{delivered} × weight 1
/// // the same photo again adds nothing
/// assert!(engine.gain_of(relay, &meta).is_zero());
/// ```
#[derive(Clone, Debug)]
pub struct ExpectedEngine {
    pois: StdArc<PoiList>,
    params: CoverageParams,
    probs: Vec<f64>,
    states: Vec<PoiState>,
    total: Coverage,
    /// Optional per-PoI aspect weights (§II-C extension); `None` means
    /// uniform weights everywhere.
    aspect_weights: Option<AspectWeightMap>,
    /// Aspect arithmetic mode (exact intervals vs quantized bitsets).
    mode: AspectMode,
    /// Checkpoint of the committed base layer, when one is active. While
    /// set, every commit records an [`UndoOp`] so
    /// [`rollback`](Self::rollback) can restore the base state bitwise.
    base: Option<BaseMark>,
    /// Undo log of commits since the checkpoint, applied in reverse.
    undo: Vec<UndoOp>,
    /// Reusable buffers for gain evaluation. Interior mutability keeps
    /// [`gain_of`](Self::gain_of) a `&self` method while letting repeated
    /// previews run without heap allocation once the buffers are warm.
    scratch: RefCell<Scratch>,
}

/// One node's aspect coverage of one PoI.
#[derive(Clone, Debug)]
struct Coverer {
    /// The engine-node; membership implies it point-covers this PoI.
    node: usize,
    /// Exact covered-aspect set (authoritative in [`AspectMode::Exact`]).
    set: ArcSet,
    /// Under-approximating bitset of `set`: every inner bin (dilated by
    /// the margin) lies inside `set`, so `outer(arc) ⊆ inner` proves a
    /// candidate arc is fully covered — an O(1) skip that cannot change
    /// exact-mode results.
    inner: AspectBits,
    /// Rounded quantization of `set` (authoritative in
    /// [`AspectMode::Quantized`]): the union of the rounded bits of every
    /// committed arc.
    rounded: AspectBits,
}

/// Per-PoI incremental state.
#[derive(Clone, Debug, Default)]
struct PoiState {
    /// The nodes covering this PoI, with their aspect coverage.
    coverers: Vec<Coverer>,
    /// `Π (1 − p_i)` over covering nodes.
    point_survival: f64,
}

/// Snapshot header of [`ExpectedEngine::checkpoint`].
#[derive(Clone, Copy, Debug)]
struct BaseMark {
    nodes: usize,
    total: Coverage,
}

/// One reversible commit effect. Stored values are the exact pre-commit
/// bits, so rollback restores them bit-for-bit.
#[derive(Clone, Debug)]
enum UndoOp {
    /// A commit pushed a new coverer onto `states[poi]`.
    NewCoverer { poi: u32, prev_survival: f64 },
    /// A commit extended the aspect set of `states[poi].coverers[idx]`.
    Extended {
        poi: u32,
        idx: u32,
        prev_set: ArcSet,
        prev_rounded: AspectBits,
    },
}

/// Reusable gain-evaluation buffers: the candidate's aspect region, the
/// region minus the node's own coverage, and the cut points of the
/// survival integral. All three are cleared (not freed) between
/// evaluations, so the steady state performs no allocation on the
/// uniform-weight path.
#[derive(Clone, Debug, Default)]
struct Scratch {
    region: ArcSet,
    novel: ArcSet,
    cuts: Vec<f64>,
}

impl ExpectedEngine {
    /// Creates an engine with no nodes.
    #[must_use]
    pub fn new(pois: &PoiList, params: CoverageParams) -> Self {
        Self::new_shared(StdArc::new(pois.clone()), params)
    }

    /// Creates an engine over a shared PoI list without cloning it — the
    /// hot-path constructor: a per-contact engine costs one refcount bump
    /// instead of a deep `PoiList` copy.
    #[must_use]
    pub fn new_shared(pois: StdArc<PoiList>, params: CoverageParams) -> Self {
        ExpectedEngine {
            states: vec![
                PoiState {
                    coverers: Vec::new(),
                    point_survival: 1.0
                };
                pois.len()
            ],
            pois,
            params,
            probs: Vec::new(),
            total: Coverage::ZERO,
            aspect_weights: None,
            mode: AspectMode::default(),
            base: None,
            undo: Vec::new(),
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Selects the aspect arithmetic mode (builder-style). Must be called
    /// before any photo is committed: the accumulated total and per-PoI
    /// state are only meaningful under a single mode.
    ///
    /// # Panics
    ///
    /// Panics if photos were already committed.
    #[must_use]
    pub fn with_aspect_mode(mut self, mode: AspectMode) -> Self {
        assert!(
            self.total.is_zero() && self.states.iter().all(|s| s.coverers.is_empty()),
            "aspect mode must be set before committing photos"
        );
        self.mode = mode;
        self
    }

    /// The engine's aspect arithmetic mode.
    #[must_use]
    pub fn aspect_mode(&self) -> AspectMode {
        self.mode
    }

    /// Clears all nodes and committed photos, returning the engine to its
    /// just-constructed state while **retaining every allocation**: the
    /// per-PoI coverer vectors, the scratch buffers, and the node table
    /// keep their capacity, so a reused engine stays on the
    /// zero-allocation warm path across contacts. PoI list, coverage
    /// parameters, and aspect weights are kept.
    pub fn reset(&mut self) {
        self.probs.clear();
        for state in &mut self.states {
            state.coverers.clear();
            state.point_survival = 1.0;
        }
        self.total = Coverage::ZERO;
        self.base = None;
        self.undo.clear();
    }

    /// Marks the current committed state as the *base layer*. Subsequent
    /// commits are recorded in an undo log; [`rollback`](Self::rollback)
    /// restores the engine to this point bitwise. Calling `checkpoint`
    /// again re-bases on the current state (absorbing anything committed
    /// since the previous checkpoint into the base).
    ///
    /// This is what lets callers keep an append-only base collection (the
    /// command center's photos across upload windows, a repeated metadata
    /// layer across contacts) committed once instead of rebuilding the
    /// whole engine per window.
    pub fn checkpoint(&mut self) {
        self.base = Some(BaseMark {
            nodes: self.probs.len(),
            total: self.total,
        });
        self.undo.clear();
    }

    /// Whether a checkpoint is active.
    #[must_use]
    pub fn has_checkpoint(&self) -> bool {
        self.base.is_some()
    }

    /// Reverts every commit and node added since the last
    /// [`checkpoint`](Self::checkpoint), restoring the engine to a state
    /// bit-identical to the one checkpointed (pinned by tests). The
    /// checkpoint stays active for the next round.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is active.
    pub fn rollback(&mut self) {
        let base = self.base.expect("rollback without an active checkpoint");
        while let Some(op) = self.undo.pop() {
            match op {
                UndoOp::NewCoverer { poi, prev_survival } => {
                    let state = &mut self.states[poi as usize];
                    state.coverers.pop();
                    state.point_survival = prev_survival;
                }
                UndoOp::Extended {
                    poi,
                    idx,
                    prev_set,
                    prev_rounded,
                } => {
                    let c = &mut self.states[poi as usize].coverers[idx as usize];
                    c.inner = AspectBits::inner_of_set(&prev_set);
                    c.set = prev_set;
                    c.rounded = prev_rounded;
                }
            }
        }
        self.probs.truncate(base.nodes);
        self.total = base.total;
    }

    /// The engine's PoI list.
    #[must_use]
    pub fn pois(&self) -> &PoiList {
        &self.pois
    }

    /// The shared handle to the engine's PoI list (for `Arc::ptr_eq`
    /// same-world checks by callers that reuse engines across runs).
    #[must_use]
    pub fn pois_shared(&self) -> &StdArc<PoiList> {
        &self.pois
    }

    /// Applies per-PoI aspect weights (builder-style). Must be called
    /// before any photo is committed so the accumulated total stays
    /// consistent.
    ///
    /// # Panics
    ///
    /// Panics if photos were already committed.
    #[must_use]
    pub fn with_aspect_weights(mut self, weights: AspectWeightMap) -> Self {
        assert!(
            self.total.is_zero() && self.states.iter().all(|s| s.coverers.is_empty()),
            "aspect weights must be set before committing photos"
        );
        self.aspect_weights = Some(weights);
        self
    }

    /// Registers an engine-node with the given delivery probability
    /// (clamped to `[0, 1]`) and returns its handle.
    pub fn add_node(&mut self, delivery_prob: f64) -> usize {
        self.probs.push(super::clamp_prob(delivery_prob));
        self.probs.len() - 1
    }

    /// Number of engine-nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.probs.len()
    }

    /// The delivery probability of an engine-node.
    #[must_use]
    pub fn prob(&self, node: usize) -> f64 {
        self.probs[node]
    }

    /// Current expected coverage `C_ex` of everything committed so far.
    #[must_use]
    pub fn total(&self) -> Coverage {
        self.total
    }

    /// Marginal expected-coverage gain of committing `meta` to `node`,
    /// without mutating the engine.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a handle returned by
    /// [`add_node`](Self::add_node).
    #[must_use]
    pub fn gain_of(&self, node: usize, meta: &PhotoMeta) -> Coverage {
        let p = self.probs[node];
        if p <= 0.0 {
            return Coverage::ZERO;
        }
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        let mut gain = Coverage::ZERO;
        for poi in meta.covered_pois(&self.pois) {
            let arc = meta.aspect_arc(poi, self.params.effective_angle);
            self.gain_at_poi(node, p, poi.id.index(), poi.weight, arc, scratch, &mut gain);
        }
        gain
    }

    /// Marginal gain of committing an indexed photo to `node` — the fast
    /// path of the selection loop.
    ///
    /// `cov` is the photo's precomputed [`PhotoCoverage`] against the
    /// engine's PoI list, built once per contact through the spatial grid.
    /// The evaluation performs no geometry and (on the uniform-weight
    /// path) no allocation: cost is proportional to the PoIs the photo
    /// touches, and the result is identical to
    /// [`gain_of`](Self::gain_of) on the metadata `cov` was built from.
    ///
    /// # Panics
    ///
    /// Panics if `cov` references PoIs outside the engine's list, or if
    /// `node` is not a valid handle.
    #[must_use]
    pub fn gain_of_indexed(&self, node: usize, cov: &PhotoCoverage) -> Coverage {
        let p = self.probs[node];
        if p <= 0.0 {
            return Coverage::ZERO;
        }
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        let mut gain = Coverage::ZERO;
        for e in cov.entries() {
            self.gain_at_poi(
                node,
                p,
                e.poi.index(),
                e.weight,
                Some(e.arc),
                scratch,
                &mut gain,
            );
        }
        gain
    }

    /// The gain contribution of one covered PoI — the single arithmetic
    /// path shared by [`gain_of`](Self::gain_of) and
    /// [`gain_of_indexed`](Self::gain_of_indexed), so the two produce
    /// bit-identical results.
    #[allow(clippy::too_many_arguments)]
    fn gain_at_poi(
        &self,
        node: usize,
        p: f64,
        poi_index: usize,
        weight: f64,
        arc: Option<Arc>,
        scratch: &mut Scratch,
        gain: &mut Coverage,
    ) {
        let state = &self.states[poi_index];
        let own = state.coverers.iter().find(|c| c.node == node);
        // Point: if this node is not yet a coverer, the survival product
        // gains a factor (1 − p): E[pt] rises by survival · p.
        if own.is_none() {
            gain.point += weight * state.point_survival * p;
        }
        // Aspect: on directions newly covered *by this node*, the survival
        // product gains the factor (1 − p).
        let Some(arc) = arc else { return };
        let poi_id = photodtn_coverage::PoiId(poi_index as u32);
        let weights = self.aspect_weights.as_ref().and_then(|m| m.get(&poi_id));
        if self.mode == AspectMode::Quantized {
            gain.aspect +=
                weight * p * quantized_aspect_gain(state, node, own, arc, &self.probs, weights);
            return;
        }
        if let Some(own_c) = own {
            // O(1) full-coverage short-circuit: if every bin the arc
            // touches is an inner bin of the node's own set, the exact
            // difference below is provably empty.
            if own_c.inner.contains_all(AspectBits::outer_of_arc(arc)) {
                return;
            }
        }
        scratch.region.assign_arc(arc);
        let region = if let Some(own_c) = own {
            scratch
                .region
                .difference_into(&own_c.set, &mut scratch.novel);
            &scratch.novel
        } else {
            &scratch.region
        };
        if region.is_empty() {
            return;
        }
        gain.aspect += weight
            * p
            * integrate_survival(
                &state.coverers,
                node,
                region,
                &self.probs,
                weights,
                &mut scratch.cuts,
            );
    }

    /// Records one committed arc on `(node, poi_index)`, logging an undo
    /// entry when a checkpoint is active — the single mutation path shared
    /// by [`add_photo`](Self::add_photo) and
    /// [`commit_indexed`](Self::commit_indexed).
    fn commit_arc(&mut self, node: usize, poi_index: usize, arc: Arc, p: f64) {
        let recording = self.base.is_some();
        let state = &mut self.states[poi_index];
        match state.coverers.iter().position(|c| c.node == node) {
            Some(k) => {
                if recording {
                    self.undo.push(UndoOp::Extended {
                        poi: poi_index as u32,
                        idx: k as u32,
                        prev_set: state.coverers[k].set.clone(),
                        prev_rounded: state.coverers[k].rounded,
                    });
                }
                let c = &mut state.coverers[k];
                c.set.insert(arc);
                c.inner = AspectBits::inner_of_set(&c.set);
                c.rounded.insert_arc_rounded(arc);
            }
            None => {
                if recording {
                    self.undo.push(UndoOp::NewCoverer {
                        poi: poi_index as u32,
                        prev_survival: state.point_survival,
                    });
                }
                let set = ArcSet::from_arc(arc);
                state.coverers.push(Coverer {
                    node,
                    inner: AspectBits::inner_of_set(&set),
                    rounded: AspectBits::rounded_of_arc(arc),
                    set,
                });
                state.point_survival *= 1.0 - p;
            }
        }
    }

    /// Commits `meta` to `node`, returning the gain (identical to what
    /// [`gain_of`](Self::gain_of) previewed).
    pub fn add_photo(&mut self, node: usize, meta: &PhotoMeta) -> Coverage {
        let gain = self.gain_of(node, meta);
        let p = self.probs[node];
        let touched: Vec<_> = meta.covered_pois(&self.pois).map(|poi| poi.id).collect();
        for id in touched {
            let poi = self.pois[id];
            let Some(arc) = meta.aspect_arc(&poi, self.params.effective_angle) else {
                continue;
            };
            self.commit_arc(node, id.index(), arc, p);
        }
        self.total += gain;
        gain
    }

    /// Commits an indexed photo whose gain was already previewed by
    /// [`gain_of_indexed`](Self::gain_of_indexed) — the *commit-from-
    /// preview* step of the selection loop. The previewed gain is applied
    /// to the running total without being recomputed, halving the
    /// evaluation cost of every committed photo.
    ///
    /// `previewed` must be the gain returned by `gain_of_indexed(node,
    /// cov)` against the engine's **current** state; passing a stale gain
    /// corrupts the accumulated total.
    pub fn commit_indexed(
        &mut self,
        node: usize,
        cov: &PhotoCoverage,
        previewed: Coverage,
    ) -> Coverage {
        let p = self.probs[node];
        for e in cov.entries() {
            self.commit_arc(node, e.poi.index(), e.arc, p);
        }
        self.total += previewed;
        previewed
    }

    /// Previews and commits an indexed photo in one call (the indexed
    /// equivalent of [`add_photo`](Self::add_photo)).
    pub fn add_photo_indexed(&mut self, node: usize, cov: &PhotoCoverage) -> Coverage {
        let gain = self.gain_of_indexed(node, cov);
        self.commit_indexed(node, cov, gain)
    }

    /// Commits a whole collection to `node`, returning the cumulative
    /// gain.
    pub fn add_collection<'a, M>(&mut self, node: usize, metas: M) -> Coverage
    where
        M: IntoIterator<Item = &'a PhotoMeta>,
    {
        let mut gain = Coverage::ZERO;
        for m in metas {
            gain += self.add_photo(node, m);
        }
        gain
    }
}

/// `∫_region w(v) · Π_{j ≠ node, region ∋ v ∈ S_j} (1 − p_j) dv`,
/// with `w ≡ 1` when `weights` is `None`.
///
/// `node`'s own set never overlaps `region` (the caller subtracted it), so
/// excluding it is belt-and-braces.
///
/// `cuts` is a caller-owned scratch buffer (cleared here) so the hot path
/// allocates nothing once the buffer is warm. The unstable sort is
/// value-equivalent to a stable one: `total_cmp` only ever calls two
/// *bitwise-identical* floats equal, so reordering "equal" elements cannot
/// change the sequence.
fn integrate_survival(
    coverers: &[Coverer],
    node: usize,
    region: &ArcSet,
    probs: &[f64],
    weights: Option<&AspectWeights>,
    cuts: &mut Vec<f64>,
) -> f64 {
    // Fast path: no other coverer and uniform weights — survival is 1
    // everywhere on region.
    if weights.is_none() && coverers.iter().all(|c| c.node == node) {
        return region.measure();
    }
    cuts.clear();
    for (lo, hi) in region.iter() {
        cuts.push(lo);
        cuts.push(hi);
    }
    for c in coverers {
        if c.node != node {
            for (lo, hi) in c.set.iter() {
                cuts.push(lo);
                cuts.push(hi);
            }
        }
    }
    if let Some(w) = weights {
        cuts.extend(w.endpoints());
    }
    cuts.sort_unstable_by(|a, b| a.total_cmp(b));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut integral = 0.0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let len = hi - lo;
        if len <= 0.0 {
            continue;
        }
        let mid = Angle::from_radians(0.5 * (lo + hi));
        if !region.contains(mid) {
            continue;
        }
        let survival: f64 = coverers
            .iter()
            .filter(|c| c.node != node && c.set.contains(mid))
            .map(|c| 1.0 - probs[c.node])
            .product();
        let weight = weights.map_or(1.0, |w| w.weight_at(mid));
        integral += len * weight * survival;
    }
    integral
}

/// The quantized-mode aspect gain at one PoI:
/// `Σ_{bin ∈ rounded(arc) \ rounded(own)} Δ · w(bin) · Π_{j ≠ node, bin ∈ rounded(S_j)} (1 − p_j)`.
///
/// All sets live in the same 128-bin quantization, so the novel region is
/// one `AND NOT` and the no-other-coverer fast path is a popcount. With
/// aspect weights, a bin's weight is sampled at its midpoint.
fn quantized_aspect_gain(
    state: &PoiState,
    node: usize,
    own: Option<&Coverer>,
    arc: Arc,
    probs: &[f64],
    weights: Option<&AspectWeights>,
) -> f64 {
    let mut novel = AspectBits::rounded_of_arc(arc);
    if let Some(own_c) = own {
        novel = novel.minus(own_c.rounded);
    }
    if novel.is_empty() {
        return 0.0;
    }
    if weights.is_none() && state.coverers.iter().all(|c| c.node == node) {
        return novel.measure();
    }
    let mut integral = 0.0;
    for bin in novel.iter_bins() {
        let survival: f64 = state
            .coverers
            .iter()
            .filter(|c| c.node != node && c.rounded.get(bin))
            .map(|c| 1.0 - probs[c.node])
            .product();
        let weight = weights.map_or(1.0, |w| {
            w.weight_at(Angle::from_radians((bin as f64 + 0.5) * ASPECT_BIN_WIDTH))
        });
        integral += ASPECT_BIN_WIDTH * weight * survival;
    }
    integral
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected::segment::expected_coverage_exact;
    use crate::expected::DeliveryNode;
    use photodtn_coverage::Poi;
    use photodtn_geo::Point;

    fn pois() -> PoiList {
        PoiList::new(vec![
            Poi::new(0, Point::new(0.0, 0.0)),
            Poi::new(1, Point::new(500.0, 0.0)),
        ])
    }

    fn shot(target: Point, deg: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(deg);
        PhotoMeta::new(
            target.offset(dir, 50.0),
            80.0,
            Angle::from_degrees(40.0),
            dir + Angle::PI,
        )
    }

    #[test]
    fn engine_matches_batch_exact() {
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(500.0, 0.0);
        let plan: Vec<(f64, Vec<PhotoMeta>)> = vec![
            (1.0, vec![shot(t0, 90.0)]),
            (0.7, vec![shot(t0, 0.0), shot(t1, 45.0)]),
            (0.3, vec![shot(t0, 30.0), shot(t0, 90.0)]),
            (0.5, vec![shot(t1, 200.0)]),
        ];
        // Pin Exact: under `--features quantized-aspects` the default
        // flips to Quantized, whose aspect totals differ by design.
        let mut engine = ExpectedEngine::new(&pois(), params).with_aspect_mode(AspectMode::Exact);
        for (p, metas) in &plan {
            let n = engine.add_node(*p);
            engine.add_collection(n, metas.iter());
        }
        let nodes: Vec<DeliveryNode> = plan
            .iter()
            .map(|(p, m)| DeliveryNode::new(*p, m.clone()))
            .collect();
        let batch = expected_coverage_exact(&pois(), &nodes, params);
        assert!((engine.total().point - batch.point).abs() < 1e-9);
        assert!((engine.total().aspect - batch.aspect).abs() < 1e-9);
    }

    #[test]
    fn gain_preview_equals_commit() {
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let mut engine = ExpectedEngine::new(&pois(), params);
        let a = engine.add_node(0.6);
        let b = engine.add_node(0.3);
        for (node, meta) in [
            (a, shot(t0, 0.0)),
            (b, shot(t0, 10.0)),
            (a, shot(t0, 180.0)),
            (b, shot(t0, 180.0)),
        ] {
            let preview = engine.gain_of(node, &meta);
            let actual = engine.add_photo(node, &meta);
            assert!((preview.point - actual.point).abs() < 1e-12);
            assert!((preview.aspect - actual.aspect).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_on_same_node_adds_nothing() {
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let mut engine = ExpectedEngine::new(&pois(), params);
        let a = engine.add_node(0.8);
        engine.add_photo(a, &shot(t0, 0.0));
        assert!(engine.gain_of(a, &shot(t0, 0.0)).is_zero());
    }

    #[test]
    fn replica_on_second_node_adds_probability() {
        // The same photo on an independent relay increases delivery odds:
        // E[pt] goes from p_a to 1 − (1−p_a)(1−p_b).
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let mut engine = ExpectedEngine::new(&pois(), params);
        let a = engine.add_node(0.6);
        let b = engine.add_node(0.5);
        engine.add_photo(a, &shot(t0, 0.0));
        let gain = engine.add_photo(b, &shot(t0, 0.0));
        assert!((gain.point - 0.4 * 0.5).abs() < 1e-12);
        assert!((engine.total().point - (1.0 - 0.4 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_node_gains_nothing() {
        let params = CoverageParams::default();
        let mut engine = ExpectedEngine::new(&pois(), params);
        let dead = engine.add_node(0.0);
        let gain = engine.add_photo(dead, &shot(Point::new(0.0, 0.0), 0.0));
        assert!(gain.is_zero());
        assert!(engine.total().is_zero());
    }

    #[test]
    fn command_center_saturates_point() {
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let mut engine = ExpectedEngine::new(&pois(), params);
        let cc = engine.add_node(1.0);
        engine.add_photo(cc, &shot(t0, 0.0));
        // A relay re-covering the same PoI from the same angle adds zero.
        let relay = engine.add_node(0.9);
        let gain = engine.gain_of(relay, &shot(t0, 0.0));
        assert!(gain.is_zero());
        // From the opposite side it still adds aspects (but no point).
        let gain = engine.gain_of(relay, &shot(t0, 180.0));
        assert!(gain.point.abs() < 1e-12);
        assert!(gain.aspect > 0.0);
    }

    #[test]
    fn indexed_path_matches_linear_bitwise() {
        // The fast path must be *bit-identical* to the metadata scan, not
        // merely close — selection determinism depends on it.
        let params = CoverageParams::default();
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(500.0, 0.0);
        let mut lin = ExpectedEngine::new(&pois, params);
        let mut idx = ExpectedEngine::new(&pois, params);
        let shots = [
            (1.0, shot(t0, 90.0)),
            (0.7, shot(t0, 0.0)),
            (0.7, shot(t1, 45.0)),
            (0.0, shot(t0, 30.0)), // zero-prob node still records arcs
            (0.3, shot(t0, 90.0)),
            (0.5, shot(t1, 200.0)),
        ];
        for (p, meta) in &shots {
            let node = lin.add_node(*p);
            assert_eq!(idx.add_node(*p), node);
            let cov = PhotoCoverage::build(meta, &pois, params);
            let g_lin = lin.gain_of(node, meta);
            let g_idx = idx.gain_of_indexed(node, &cov);
            assert_eq!(g_lin.point.to_bits(), g_idx.point.to_bits());
            assert_eq!(g_lin.aspect.to_bits(), g_idx.aspect.to_bits());
            lin.add_photo(node, meta);
            idx.add_photo_indexed(node, &cov);
        }
        assert_eq!(lin.total().point.to_bits(), idx.total().point.to_bits());
        assert_eq!(lin.total().aspect.to_bits(), idx.total().aspect.to_bits());
    }

    #[test]
    fn commit_from_preview_equals_add_photo() {
        let params = CoverageParams::default();
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let mut a = ExpectedEngine::new(&pois, params);
        let mut b = ExpectedEngine::new(&pois, params);
        let na = a.add_node(0.6);
        let nb = b.add_node(0.6);
        for deg in [0.0, 40.0, 180.0, 40.0] {
            let meta = shot(t0, deg);
            let cov = PhotoCoverage::build(&meta, &pois, params);
            let gain_a = a.add_photo(na, &meta);
            let preview = b.gain_of_indexed(nb, &cov);
            let gain_b = b.commit_indexed(nb, &cov, preview);
            assert_eq!(gain_a.point.to_bits(), gain_b.point.to_bits());
            assert_eq!(gain_a.aspect.to_bits(), gain_b.aspect.to_bits());
        }
        assert_eq!(a.total().point.to_bits(), b.total().point.to_bits());
        assert_eq!(a.total().aspect.to_bits(), b.total().aspect.to_bits());
    }

    #[test]
    fn reset_engine_is_bitwise_fresh() {
        // Engine reuse across contacts/uploads depends on reset being
        // indistinguishable from construction.
        let params = CoverageParams::default();
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(500.0, 0.0);
        let shots = [
            (1.0, shot(t0, 90.0)),
            (0.7, shot(t1, 45.0)),
            (0.3, shot(t0, 90.0)),
        ];
        let mut reused = ExpectedEngine::new(&pois, params);
        // Dirty it with an unrelated first run.
        let n = reused.add_node(0.9);
        reused.add_photo(n, &shot(t1, 10.0));
        reused.add_photo(n, &shot(t0, 200.0));
        reused.reset();
        assert!(reused.total().is_zero());
        assert_eq!(reused.node_count(), 0);

        let mut fresh = ExpectedEngine::new(&pois, params);
        for (p, meta) in &shots {
            let a = fresh.add_node(*p);
            let b = reused.add_node(*p);
            assert_eq!(a, b);
            let ga = fresh.add_photo(a, meta);
            let gb = reused.add_photo(b, meta);
            assert_eq!(ga.point.to_bits(), gb.point.to_bits());
            assert_eq!(ga.aspect.to_bits(), gb.aspect.to_bits());
        }
        assert_eq!(
            fresh.total().point.to_bits(),
            reused.total().point.to_bits()
        );
        assert_eq!(
            fresh.total().aspect.to_bits(),
            reused.total().aspect.to_bits()
        );
    }

    #[test]
    fn new_shared_avoids_clone_and_exposes_handle() {
        let pois = StdArc::new(pois());
        let engine = ExpectedEngine::new_shared(StdArc::clone(&pois), CoverageParams::default());
        assert!(StdArc::ptr_eq(engine.pois_shared(), &pois));
        assert_eq!(engine.pois().len(), pois.len());
    }

    /// Bit-compares two engines by driving identical queries through them.
    fn assert_same_behavior(a: &ExpectedEngine, b: &ExpectedEngine, probe: &[(usize, PhotoMeta)]) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.total().point.to_bits(), b.total().point.to_bits());
        assert_eq!(a.total().aspect.to_bits(), b.total().aspect.to_bits());
        for (node, meta) in probe {
            let ga = a.gain_of(*node, meta);
            let gb = b.gain_of(*node, meta);
            assert_eq!(ga.point.to_bits(), gb.point.to_bits());
            assert_eq!(ga.aspect.to_bits(), gb.aspect.to_bits());
        }
    }

    #[test]
    fn rollback_restores_checkpoint_bitwise() {
        let params = CoverageParams::default();
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(500.0, 0.0);
        let base_shots = [shot(t0, 90.0), shot(t1, 45.0)];

        // Reference: the base layer alone.
        let mut reference = ExpectedEngine::new(&pois, params);
        let cc_ref = reference.add_node(1.0);
        reference.add_collection(cc_ref, base_shots.iter());

        // Checkpointed engine: base layer, checkpoint, then a noisy session
        // touching both existing and new (node, poi) pairs.
        let mut engine = ExpectedEngine::new(&pois, params);
        let cc = engine.add_node(1.0);
        engine.add_collection(cc, base_shots.iter());
        engine.checkpoint();
        for round in 0..3 {
            let uploader = engine.add_node(0.7);
            engine.add_photo(uploader, &shot(t0, 90.0)); // duplicate of base
            engine.add_photo(uploader, &shot(t0, 200.0)); // new aspects
            engine.add_photo(cc, &shot(t1, 300.0)); // extends a base coverer
            engine.add_photo(uploader, &shot(t1, 300.0));
            engine.rollback();
            let probe = vec![
                (cc, shot(t0, 123.0)),
                (cc, shot(t1, 300.0)),
                (cc, shot(t0, 90.0)),
            ];
            assert_same_behavior(&engine, &reference, &probe);
            assert!(engine.has_checkpoint(), "checkpoint lost in round {round}");
        }

        // After rollback the engine must behave exactly like the reference
        // when the session is replayed (commits included).
        let ua = engine.add_node(0.4);
        let ub = reference.add_node(0.4);
        assert_eq!(ua, ub);
        let ga = engine.add_photo(ua, &shot(t0, 10.0));
        let gb = reference.add_photo(ub, &shot(t0, 10.0));
        assert_eq!(ga.point.to_bits(), gb.point.to_bits());
        assert_eq!(ga.aspect.to_bits(), gb.aspect.to_bits());
    }

    #[test]
    fn checkpoint_rebases_on_current_state() {
        let params = CoverageParams::default();
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let mut engine = ExpectedEngine::new(&pois, params);
        let cc = engine.add_node(1.0);
        engine.checkpoint();
        engine.add_photo(cc, &shot(t0, 90.0));
        // Re-checkpoint absorbs the commit into the base …
        engine.checkpoint();
        let n = engine.add_node(0.5);
        engine.add_photo(n, &shot(t0, 200.0));
        engine.rollback();
        // … so rollback keeps the first photo.
        assert_eq!(engine.node_count(), 1);
        assert!(engine.total().point > 0.0);
        assert!(engine.gain_of(cc, &shot(t0, 90.0)).is_zero());
    }

    #[test]
    #[should_panic(expected = "rollback without an active checkpoint")]
    fn rollback_without_checkpoint_panics() {
        let mut engine = ExpectedEngine::new(&pois(), CoverageParams::default());
        engine.rollback();
    }

    #[test]
    fn reset_clears_checkpoint() {
        let mut engine = ExpectedEngine::new(&pois(), CoverageParams::default());
        engine.checkpoint();
        assert!(engine.has_checkpoint());
        engine.reset();
        assert!(!engine.has_checkpoint());
    }

    #[test]
    fn quantized_mode_close_to_exact() {
        let params = CoverageParams::default();
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(500.0, 0.0);
        let mut exact = ExpectedEngine::new(&pois, params).with_aspect_mode(AspectMode::Exact);
        let mut quant = ExpectedEngine::new(&pois, params).with_aspect_mode(AspectMode::Quantized);
        assert_eq!(quant.aspect_mode(), AspectMode::Quantized);
        let shots = [
            (1.0, shot(t0, 90.0)),
            (0.7, shot(t0, 0.0)),
            (0.7, shot(t1, 45.0)),
            (0.3, shot(t0, 100.0)),
            (0.5, shot(t1, 200.0)),
        ];
        // Aspect measures agree within a few bin widths per committed arc;
        // point coverage (never quantized) stays bit-identical.
        let tolerance = 4.0 * ASPECT_BIN_WIDTH;
        for (p, meta) in &shots {
            let ne = exact.add_node(*p);
            let nq = quant.add_node(*p);
            assert_eq!(ne, nq);
            let ge = exact.add_photo(ne, meta);
            let gq = quant.add_photo(nq, meta);
            assert_eq!(ge.point.to_bits(), gq.point.to_bits());
            assert!(
                (ge.aspect - gq.aspect).abs() <= tolerance,
                "aspect gain diverged beyond quantization tolerance: {} vs {}",
                ge.aspect,
                gq.aspect
            );
        }
        assert_eq!(exact.total().point.to_bits(), quant.total().point.to_bits());
        assert!((exact.total().aspect - quant.total().aspect).abs() <= 5.0 * tolerance);
    }

    #[test]
    fn handles_accessors() {
        let mut engine = ExpectedEngine::new(&pois(), CoverageParams::default());
        let n = engine.add_node(2.5); // clamped
        assert_eq!(engine.prob(n), 1.0);
        assert_eq!(engine.node_count(), 1);
    }
}
