//! Monte-Carlo estimator for expected coverage — the third, independent
//! implementation of Definition 2, used to cross-validate the exact
//! algorithms and to gauge how many samples a sampling approach would need
//! (the ablation benchmark `expected_coverage`).

use rand::Rng;

use photodtn_coverage::{Coverage, CoverageParams, PhotoMeta, PoiList};

use super::DeliveryNode;

/// Estimates `C_ex(M)` by sampling `samples` delivery outcomes.
///
/// The estimator is unbiased; its standard error shrinks as
/// `O(1/√samples)`.
///
/// # Panics
///
/// Panics if `samples == 0`.
#[must_use]
pub fn expected_coverage_montecarlo<R: Rng + ?Sized>(
    pois: &PoiList,
    nodes: &[DeliveryNode],
    params: CoverageParams,
    samples: u32,
    rng: &mut R,
) -> Coverage {
    assert!(samples > 0, "need at least one sample");
    let mut acc = Coverage::ZERO;
    let mut delivered: Vec<&PhotoMeta> = Vec::new();
    for _ in 0..samples {
        delivered.clear();
        for node in nodes {
            let p = super::clamp_prob(node.delivery_prob);
            if p > 0.0 && rng.gen_bool(p) {
                delivered.extend(node.metas.iter());
            }
        }
        let c = Coverage::of(pois, delivered.iter().copied(), params);
        acc.point += c.point;
        acc.aspect += c.aspect;
    }
    Coverage::new(
        acc.point / f64::from(samples),
        acc.aspect / f64::from(samples),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected::segment::expected_coverage_exact;
    use photodtn_coverage::Poi;
    use photodtn_geo::{Angle, Point};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pois() -> PoiList {
        PoiList::new(vec![Poi::new(0, Point::new(0.0, 0.0))])
    }

    fn shot(deg: f64) -> PhotoMeta {
        let dir = Angle::from_degrees(deg);
        PhotoMeta::new(
            Point::new(0.0, 0.0).offset(dir, 50.0),
            80.0,
            Angle::from_degrees(40.0),
            dir + Angle::PI,
        )
    }

    #[test]
    fn converges_to_exact_value() {
        let params = CoverageParams::default();
        let nodes = vec![
            DeliveryNode::new(0.4, vec![shot(0.0)]),
            DeliveryNode::new(0.7, vec![shot(120.0)]),
            DeliveryNode::new(0.2, vec![shot(240.0), shot(100.0)]),
        ];
        let exact = expected_coverage_exact(&pois(), &nodes, params);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = expected_coverage_montecarlo(&pois(), &nodes, params, 20_000, &mut rng);
        assert!(
            (est.point - exact.point).abs() < 0.02,
            "{} vs {}",
            est.point,
            exact.point
        );
        assert!(
            (est.aspect - exact.aspect).abs() / exact.aspect < 0.05,
            "{} vs {}",
            est.aspect,
            exact.aspect
        );
    }

    #[test]
    fn deterministic_probabilities_are_exact() {
        let params = CoverageParams::default();
        let nodes = vec![DeliveryNode::new(1.0, vec![shot(0.0)])];
        let exact = expected_coverage_exact(&pois(), &nodes, params);
        let mut rng = SmallRng::seed_from_u64(2);
        let est = expected_coverage_montecarlo(&pois(), &nodes, params, 3, &mut rng);
        assert!((est.point - exact.point).abs() < 1e-12);
        assert!((est.aspect - exact.aspect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = expected_coverage_montecarlo(&pois(), &[], CoverageParams::default(), 0, &mut rng);
    }
}
