//! Expected coverage (§III-C, Definition 2).
//!
//! Given a node set `M = {n_0, n_1, …}` where node `n_i` holds photo
//! collection `F_i` and delivers it to the command center independently
//! with probability `p_i`, the *expected coverage* is
//!
//! ```text
//! C_ex(M) = Σ_{B ∈ {0,1}^m}  P_B · C_ph( ∪_{b_i = 1} F_i )
//! ```
//!
//! The paper presents this as a sum over all `2^m` delivery outcomes
//! ([`enumerate::expected_coverage_enumerate`]). Because deliveries are
//! independent and both coverage components are *union events* —
//! a PoI (or an aspect direction) is covered iff **some delivering node**
//! covers it — the expectation factorizes exactly:
//!
//! * `E[C_pt(x)] = 1 − Π_{i covers x} (1 − p_i)`
//! * `E[C_as(x)] = ∫ (1 − Π_{i covers aspect v} (1 − p_i)) dv`
//!
//! [`segment::expected_coverage_exact`] evaluates this in polynomial time
//! by decomposing each PoI's circle at arc endpoints, and
//! [`ExpectedEngine`] maintains it incrementally for greedy selection.
//! [`montecarlo::expected_coverage_montecarlo`] estimates it by sampling,
//! as a third cross-check. Property tests assert all three agree.
//!
//! ## Ordering expected coverages
//!
//! The paper orders coverage pairs lexicographically but leaves the order
//! of *expected* pairs implicit. We take componentwise expectations
//! `(E[ΣC_pt], E[ΣC_as])` and compare them lexicographically (reusing
//! [`Coverage`](photodtn_coverage::Coverage)'s epsilon-tolerant order).
//! This preserves the paper's
//! intent — covering new PoIs in expectation dominates adding aspects —
//! while keeping the objective additive and efficiently computable.

mod engine;
pub mod enumerate;
pub mod montecarlo;
pub mod segment;

pub use engine::{AspectMode, ExpectedEngine};

use photodtn_coverage::{PhotoId, PhotoMeta};

/// One node's contribution to expected coverage: its delivery probability
/// and the metadata of the photos it holds.
///
/// The command center itself participates with `delivery_prob = 1.0`
/// (it trivially "delivers" what it already received).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeliveryNode {
    /// Probability this node's photos reach the command center
    /// (PROPHET delivery predictability), clamped to `[0, 1]`.
    pub delivery_prob: f64,
    /// Metadata of the node's photo collection.
    pub metas: Vec<PhotoMeta>,
    /// Photo ids parallel to `metas`, when the caller knows them.
    ///
    /// Ids never change coverage math — they only let callers that keep a
    /// per-run [`PhotoCoverage`](photodtn_coverage::PhotoCoverage) cache
    /// (keyed by id) commit this node's photos through the indexed engine
    /// path instead of re-resolving geometry per contact. `None` falls
    /// back to the metadata scan; both paths are bit-identical.
    pub ids: Option<Vec<PhotoId>>,
}

impl DeliveryNode {
    /// Creates a node, clamping the probability into `[0, 1]`.
    #[must_use]
    pub fn new(delivery_prob: f64, metas: Vec<PhotoMeta>) -> Self {
        DeliveryNode {
            delivery_prob: clamp_prob(delivery_prob),
            metas,
            ids: None,
        }
    }

    /// Creates a node whose photo ids are known, enabling cached indexed
    /// commits. `photos` supplies `(id, meta)` pairs.
    ///
    /// The clamping matches [`new`](Self::new).
    #[must_use]
    pub fn with_ids(delivery_prob: f64, photos: Vec<(PhotoId, PhotoMeta)>) -> Self {
        let (ids, metas) = photos.into_iter().unzip();
        DeliveryNode {
            delivery_prob: clamp_prob(delivery_prob),
            metas,
            ids: Some(ids),
        }
    }
}

pub(crate) fn clamp_prob(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    }
}
