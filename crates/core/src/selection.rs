//! The photo selection algorithm (§III-D).
//!
//! When nodes `n_a` and `n_b` meet, they re-allocate the photo pool
//! `F_a ∪ F_b` between their storages to maximize the expected coverage
//! `C_ex(F_a, F_b)` — an NP-hard, non-convex problem (it embeds 0-1
//! knapsack). The paper's greedy heuristic:
//!
//! 1. the node with the higher delivery probability selects first,
//!    greedily picking the photo with the largest marginal expected
//!    coverage until its storage is full or no photo adds value;
//! 2. the other node then does the same against the *updated* state (so
//!    it avoids duplicating what the strong relay already took) but from
//!    the *original* pool (a very valuable photo may be replicated to
//!    both).
//!
//! [`reallocate`] implements this with *indexed* lazy greedy evaluation:
//! each pooled photo's `(PoI, aspect arc)` coverage list is precomputed
//! once per contact through the spatial grid ([`PhotoCoverage`]), gains
//! are previewed through the engine's allocation-free fast path, the
//! previewed gain is committed without recomputation, and staleness is
//! tracked per PoI with a generation counter so a committed photo only
//! invalidates candidates that share a PoI with it. Lazy evaluation is
//! valid because marginal gains only shrink as photos are committed
//! (submodularity).
//!
//! Two reference implementations are kept for validation and benchmarks:
//! [`reallocate_naive`] recomputes every candidate's gain at every step
//! (O(pool²·gain)), and [`reallocate_lazy_linear`] is the pre-index lazy
//! greedy that rescans the PoI list per evaluation and marks the whole
//! heap stale after each commit. All three produce identical
//! [`SelectionResult`]s.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::sync::Arc;

use photodtn_contacts::NodeId;
use photodtn_coverage::{
    AspectWeightMap, Coverage, CoverageParams, Photo, PhotoCoverage, PhotoId, PoiList,
};

use crate::expected::{DeliveryNode, ExpectedEngine};

/// One side of the contact, as seen by the selection algorithm.
#[derive(Clone, Debug)]
pub struct PeerState {
    /// The node's identity (used only for deterministic tie-breaking).
    pub node: NodeId,
    /// PROPHET delivery probability towards the command center.
    pub delivery_prob: f64,
    /// Storage capacity, bytes.
    pub capacity: u64,
    /// The node's current photo collection.
    pub photos: Vec<Photo>,
}

/// Everything the reallocation of one contact depends on.
#[derive(Clone, Debug)]
pub struct SelectionInput<'a> {
    /// The PoI list issued by the command center.
    pub pois: &'a PoiList,
    /// Coverage-model parameters.
    pub params: CoverageParams,
    /// First contacting node.
    pub a: PeerState,
    /// Second contacting node.
    pub b: PeerState,
    /// Valid third-party metadata: one [`DeliveryNode`] per node whose
    /// cached metadata passed the validity check, **including the command
    /// center** (delivery probability 1). Empty for the NoMetadata
    /// ablation.
    pub others: Vec<DeliveryNode>,
}

/// Work counters of one reallocation, for performance regression tests
/// and benchmark reporting.
///
/// Excluded from [`SelectionResult`] equality: two runs that select the
/// same photos are "equal" even if one worked harder to get there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Engine gain evaluations (initial heap fill + refreshes, or every
    /// scan probe of the naive path).
    pub evaluations: u64,
    /// Re-evaluations of candidates that had gone stale (lazy paths
    /// only).
    pub refreshes: u64,
    /// Photos committed across both peers.
    pub commits: u64,
}

/// The solution of the photo reallocation problem for one contact.
#[derive(Clone, Debug, Default)]
pub struct SelectionResult {
    /// Photos selected into `a`'s storage, in selection order.
    pub a_selected: Vec<PhotoId>,
    /// Photos selected into `b`'s storage, in selection order.
    pub b_selected: Vec<PhotoId>,
    /// Whether `a` selected first (i.e. had the higher delivery
    /// probability).
    pub a_first: bool,
    /// The expected coverage of the final allocation, including the
    /// third-party nodes.
    pub expected: Coverage,
    /// How much work the run performed (not part of equality).
    pub stats: SelectionStats,
}

impl PartialEq for SelectionResult {
    fn eq(&self, other: &Self) -> bool {
        self.a_selected == other.a_selected
            && self.b_selected == other.b_selected
            && self.a_first == other.a_first
            && self.expected == other.expected
    }
}

impl SelectionResult {
    /// Selections in execution order: `(first receiver is a?, first
    /// selection, second selection)`.
    #[must_use]
    pub fn phases(&self) -> (bool, &[PhotoId], &[PhotoId]) {
        if self.a_first {
            (true, &self.a_selected, &self.b_selected)
        } else {
            (false, &self.b_selected, &self.a_selected)
        }
    }
}

/// Which greedy implementation [`run_with`] drives. All strategies
/// produce identical [`SelectionResult`]s; they differ only in how much
/// work they perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Strategy {
    /// Full rescan of the pool at every step — the correctness reference.
    Naive,
    /// Lazy greedy over per-photo metadata: every evaluation rescans the
    /// PoI grid and every commit marks the whole heap stale.
    LazyLinear,
    /// Lazy greedy over precomputed [`PhotoCoverage`] lists with per-PoI
    /// generation tracking — the production path.
    LazyIndexed,
    /// [`Strategy::LazyIndexed`] with coverage tables built through the
    /// scalar reference path ([`PhotoCoverage::build_scalar`]) — the
    /// pre-SIMD data path, kept as a benchmark baseline.
    LazyIndexedScalar,
}

/// Runs the greedy reallocation with indexed lazy gain evaluation.
#[must_use]
pub fn reallocate(input: &SelectionInput<'_>) -> SelectionResult {
    run(input, Strategy::LazyIndexed, false)
}

/// Runs the greedy reallocation recomputing every candidate's gain at
/// every step (reference implementation).
#[must_use]
pub fn reallocate_naive(input: &SelectionInput<'_>) -> SelectionResult {
    run(input, Strategy::Naive, false)
}

/// Runs the pre-index lazy greedy: per-metadata gain evaluation and
/// whole-heap invalidation after each commit. Kept as a benchmark
/// baseline and equivalence witness for [`reallocate`].
#[must_use]
pub fn reallocate_lazy_linear(input: &SelectionInput<'_>) -> SelectionResult {
    run(input, Strategy::LazyLinear, false)
}

/// Runs the indexed lazy greedy with coverage tables built through the
/// scalar reference path ([`PhotoCoverage::build_scalar`]) instead of the
/// batched prefilter — i.e. the full pre-SIMD data path. Kept as the
/// benchmark baseline the batched/incremental speedups are gated against;
/// bit-identical to [`reallocate`].
#[must_use]
pub fn reallocate_indexed_scalar(input: &SelectionInput<'_>) -> SelectionResult {
    run(input, Strategy::LazyIndexedScalar, false)
}

/// Runs the greedy reallocation ranking candidates by **gain per byte**
/// instead of raw gain — an extension for heterogeneous photo sizes.
///
/// The paper's photos are uniformly 4 MB, so its greedy ignores size;
/// with mixed sizes the density rule is the classic knapsack heuristic
/// and dominates raw-gain greedy whenever small photos can substitute
/// for a large one.
#[must_use]
pub fn reallocate_density(input: &SelectionInput<'_>) -> SelectionResult {
    run(input, Strategy::LazyIndexed, true)
}

/// Runs the greedy reallocation with per-PoI aspect weights (§II-C:
/// "photos covering more important PoIs will have higher coverage, and
/// thus will be prioritized in routing" — here extended to important
/// *aspects*).
#[must_use]
pub fn reallocate_weighted(
    input: &SelectionInput<'_>,
    weights: &AspectWeightMap,
) -> SelectionResult {
    run_with(input, Strategy::LazyIndexed, false, Some(weights))
}

fn run(input: &SelectionInput<'_>, strategy: Strategy, per_byte: bool) -> SelectionResult {
    run_with(input, strategy, per_byte, None)
}

fn run_with(
    input: &SelectionInput<'_>,
    strategy: Strategy,
    per_byte: bool,
    weights: Option<&AspectWeightMap>,
) -> SelectionResult {
    let mut engine = ExpectedEngine::new(input.pois, input.params);
    if let Some(w) = weights {
        engine = engine.with_aspect_weights(w.clone());
    }
    for other in &input.others {
        let n = engine.add_node(other.delivery_prob);
        engine.add_collection(n, other.metas.iter());
    }

    // Shared selection pool F_a ∪ F_b, deduplicated by id.
    let pool: BTreeMap<PhotoId, Photo> = input
        .a
        .photos
        .iter()
        .chain(input.b.photos.iter())
        .map(|p| (p.id, *p))
        .collect();

    // The contact-scoped coverage index: each pooled photo's (PoI, arc)
    // list, computed once through the spatial grid and reused across both
    // peers' selection phases and every gain evaluation within them.
    let items: Vec<(Photo, PhotoCoverage)> = match strategy {
        Strategy::LazyIndexed => pool
            .values()
            .map(|p| (*p, PhotoCoverage::build(&p.meta, input.pois, input.params)))
            .collect(),
        Strategy::LazyIndexedScalar => pool
            .values()
            .map(|p| {
                (
                    *p,
                    PhotoCoverage::build_scalar(&p.meta, input.pois, input.params),
                )
            })
            .collect(),
        Strategy::Naive | Strategy::LazyLinear => Vec::new(),
    };
    // Per-PoI "last changed at commit #" stamps, reused across phases.
    let mut poi_gen = vec![0u32; input.pois.len()];
    let mut stats = SelectionStats::default();

    // Higher delivery probability selects first; ties break on node id so
    // both endpoints compute the identical plan independently.
    let a_first = match input.a.delivery_prob.total_cmp(&input.b.delivery_prob) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => input.a.node <= input.b.node,
    };
    let (first, second) = if a_first {
        (&input.a, &input.b)
    } else {
        (&input.b, &input.a)
    };

    let mut select = |engine: &mut ExpectedEngine, peer: &PeerState, stats: &mut SelectionStats| {
        match strategy {
            Strategy::Naive => select_naive(engine, peer, &pool, per_byte, stats),
            Strategy::LazyLinear => select_lazy_linear(engine, peer, &pool, per_byte, stats),
            Strategy::LazyIndexed | Strategy::LazyIndexedScalar => {
                select_lazy_indexed(engine, peer, &items, per_byte, &mut poi_gen, stats)
            }
        }
    };
    let first_sel = select(&mut engine, first, &mut stats);
    let second_sel = select(&mut engine, second, &mut stats);

    let (a_selected, b_selected) = if a_first {
        (first_sel, second_sel)
    } else {
        (second_sel, first_sel)
    };
    SelectionResult {
        a_selected,
        b_selected,
        a_first,
        expected: engine.total(),
        stats,
    }
}

/// A reusable reallocation context for one simulated world.
///
/// [`reallocate`] constructs a fresh [`ExpectedEngine`] (cloning the PoI
/// list), a fresh generation array, and a fresh item table on **every**
/// contact. A `SelectionSession` hoists all three to per-run lifetime:
/// the engine is [`reset`](ExpectedEngine::reset) instead of rebuilt
/// (keeping its scratch buffers warm, preserving the zero-allocation
/// preview property across contacts), and photo coverage tables are
/// supplied by the caller — typically from a per-run
/// [`CoverageTableCache`](photodtn_coverage::CoverageTableCache) — so
/// each table is built once per run instead of once per contact.
///
/// [`reallocate_with`](Self::reallocate_with) is bit-identical to
/// [`reallocate`] on the same input (equivalence-tested below): it runs
/// the identical indexed lazy greedy; only the provenance of the
/// allocations differs.
#[derive(Debug)]
pub struct SelectionSession {
    engine: ExpectedEngine,
    poi_gen: Vec<u32>,
    items: Vec<(Photo, Arc<PhotoCoverage>)>,
    /// Signature of the checkpointed third-party base: `(delivery-prob
    /// bits, photo ids)` per other node, in commit order. Empty when no
    /// base is checkpointed (first contact, or id-less records).
    base_sig: Vec<(u64, Vec<PhotoId>)>,
}

impl SelectionSession {
    /// Creates a session over a shared PoI list.
    #[must_use]
    pub fn new(pois: Arc<PoiList>, params: CoverageParams) -> Self {
        let poi_gen = vec![0u32; pois.len()];
        SelectionSession {
            engine: ExpectedEngine::new_shared(pois, params),
            poi_gen,
            items: Vec::new(),
            base_sig: Vec::new(),
        }
    }

    /// Whether the checkpointed third-party base can serve this contact:
    /// same nodes, same probabilities, same photo id sequences. Ids
    /// determine coverage (metadata is immutable), so an exact signature
    /// match makes rollback bit-identical to a rebuild.
    fn base_matches(&self, others: &[DeliveryNode]) -> bool {
        self.engine.has_checkpoint()
            && self.base_sig.len() == others.len()
            && self.base_sig.iter().zip(others).all(|((prob, ids), o)| {
                o.delivery_prob.to_bits() == *prob && o.ids.as_deref() == Some(ids.as_slice())
            })
    }

    /// The shared handle to the session's PoI list, for callers that must
    /// check (via [`Arc::ptr_eq`]) that a long-lived session still matches
    /// the world it is used in.
    #[must_use]
    pub fn pois_shared(&self) -> &Arc<PoiList> {
        self.engine.pois_shared()
    }

    /// Runs the indexed greedy reallocation, resolving coverage tables
    /// through `coverage` (called once per distinct pooled or third-party
    /// photo).
    ///
    /// `coverage(id, meta)` must return the photo's [`PhotoCoverage`]
    /// against the session's PoI list — either freshly built or from a
    /// cache; the two are interchangeable because `PhotoCoverage::build`
    /// is deterministic and metadata is immutable.
    ///
    /// `input.pois` must be the session's own PoI list.
    pub fn reallocate_with<F>(
        &mut self,
        input: &SelectionInput<'_>,
        mut coverage: F,
    ) -> SelectionResult
    where
        F: FnMut(PhotoId, &photodtn_coverage::PhotoMeta) -> Arc<PhotoCoverage>,
    {
        debug_assert_eq!(
            input.pois.len(),
            self.poi_gen.len(),
            "session used with a different world"
        );
        // The committed third-party base is kept behind an engine
        // checkpoint. When this contact's `others` exactly match the
        // checkpointed base (nodes, probabilities, id sequences),
        // rollback discards the previous contact's peer commits and
        // reuses the base bitwise; otherwise rebuild and re-checkpoint.
        if self.base_matches(&input.others) {
            self.engine.rollback();
        } else {
            self.engine.reset();
            self.base_sig.clear();
            let mut id_complete = true;
            for other in &input.others {
                let n = self.engine.add_node(other.delivery_prob);
                match &other.ids {
                    // Ids known: commit through the indexed path on cached
                    // tables (bit-identical to the metadata scan).
                    Some(ids) => {
                        for (id, meta) in ids.iter().zip(&other.metas) {
                            let cov = coverage(*id, meta);
                            self.engine.add_photo_indexed(n, &cov);
                        }
                        self.base_sig
                            .push((other.delivery_prob.to_bits(), ids.clone()));
                    }
                    None => {
                        self.engine.add_collection(n, other.metas.iter());
                        id_complete = false;
                    }
                }
            }
            // Id-less records cannot be signature-checked, so such a base
            // is never reused.
            if id_complete {
                self.engine.checkpoint();
            } else {
                self.base_sig.clear();
            }
        }

        let pool: BTreeMap<PhotoId, Photo> = input
            .a
            .photos
            .iter()
            .chain(input.b.photos.iter())
            .map(|p| (p.id, *p))
            .collect();
        self.items.clear();
        self.items
            .extend(pool.values().map(|p| (*p, coverage(p.id, &p.meta))));

        let mut stats = SelectionStats::default();
        let a_first = match input.a.delivery_prob.total_cmp(&input.b.delivery_prob) {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => input.a.node <= input.b.node,
        };
        let (first, second) = if a_first {
            (&input.a, &input.b)
        } else {
            (&input.b, &input.a)
        };
        let first_sel = select_lazy_indexed(
            &mut self.engine,
            first,
            &self.items,
            false,
            &mut self.poi_gen,
            &mut stats,
        );
        let second_sel = select_lazy_indexed(
            &mut self.engine,
            second,
            &self.items,
            false,
            &mut self.poi_gen,
            &mut stats,
        );
        let (a_selected, b_selected) = if a_first {
            (first_sel, second_sel)
        } else {
            (second_sel, first_sel)
        };
        SelectionResult {
            a_selected,
            b_selected,
            a_first,
            expected: self.engine.total(),
            stats,
        }
    }
}

/// Indexed lazy greedy fill of one peer's storage (problem (3) of the
/// paper) — the production hot path.
///
/// Differences from [`select_lazy_linear`]:
///
/// * gains are previewed through [`ExpectedEngine::gain_of_indexed`] on
///   the precomputed coverage lists (no PoI-grid rescans, no steady-state
///   allocation);
/// * the previewed gain is committed as-is via
///   [`ExpectedEngine::commit_indexed`] instead of being recomputed;
/// * staleness is per PoI: committing a photo bumps a generation counter
///   and stamps only the PoIs that photo touches, so a popped candidate
///   needs a refresh only if it shares a PoI with a later commit. A gain
///   depends solely on the states of the PoIs the photo covers, so an
///   entry whose PoIs are unstamped since its evaluation is exact — this
///   replaces the O(pool) whole-heap invalidation sweep after every
///   commit.
fn select_lazy_indexed<C: Borrow<PhotoCoverage>>(
    engine: &mut ExpectedEngine,
    peer: &PeerState,
    items: &[(Photo, C)],
    per_byte: bool,
    poi_gen: &mut [u32],
    stats: &mut SelectionStats,
) -> Vec<PhotoId> {
    let node = engine.add_node(peer.delivery_prob);
    let mut remaining = peer.capacity;
    let mut selected = Vec::new();
    poi_gen.fill(0);
    let mut cur_gen: u32 = 0;
    let mut heap: BinaryHeap<IndexedEntry> = items
        .iter()
        .enumerate()
        .map(|(i, (p, cov))| {
            stats.evaluations += 1;
            let raw = engine.gain_of_indexed(node, cov.borrow());
            IndexedEntry {
                gain: rank(raw, p.size, per_byte),
                raw,
                id: p.id,
                idx: i as u32,
                gen: 0,
            }
        })
        .collect();
    while let Some(mut top) = heap.pop() {
        if top.gain <= (0, 0) {
            break;
        }
        let (photo, cov) = &items[top.idx as usize];
        let cov = cov.borrow();
        if photo.size > remaining {
            continue; // cannot fit now or ever (remaining only shrinks)
        }
        // Fresh iff no PoI this photo touches changed after the entry's
        // gain was computed.
        let fresh = top.gen == cur_gen || cov.pois().all(|pid| poi_gen[pid.index()] <= top.gen);
        if !fresh {
            stats.evaluations += 1;
            stats.refreshes += 1;
            top.raw = engine.gain_of_indexed(node, cov);
            top.gain = rank(top.raw, photo.size, per_byte);
            top.gen = cur_gen;
            // Still at least as good as the next candidate's bound?
            if let Some(next) = heap.peek() {
                if next.key() > top.key() {
                    heap.push(top);
                    continue;
                }
            }
            if top.gain <= (0, 0) {
                continue;
            }
        }
        engine.commit_indexed(node, cov, top.raw);
        stats.commits += 1;
        cur_gen += 1;
        for pid in cov.pois() {
            poi_gen[pid.index()] = cur_gen;
        }
        remaining -= photo.size;
        selected.push(top.id);
    }
    selected
}

/// Pre-index lazy greedy (kept as baseline): per-metadata evaluation and
/// whole-heap invalidation after each commit.
fn select_lazy_linear(
    engine: &mut ExpectedEngine,
    peer: &PeerState,
    pool: &BTreeMap<PhotoId, Photo>,
    per_byte: bool,
    stats: &mut SelectionStats,
) -> Vec<PhotoId> {
    let node = engine.add_node(peer.delivery_prob);
    let mut remaining = peer.capacity;
    let mut selected = Vec::new();
    // Lazy greedy: gains only shrink as the engine state grows, so a
    // heap of stale upper bounds is safe — pop, refresh, and commit
    // only if the refreshed gain still tops the heap.
    let mut heap: BinaryHeap<HeapEntry> = pool
        .values()
        .map(|p| {
            stats.evaluations += 1;
            HeapEntry {
                gain: rank(engine.gain_of(node, &p.meta), p.size, per_byte),
                id: p.id,
                fresh: true,
            }
        })
        .collect();
    while let Some(mut top) = heap.pop() {
        if top.gain <= (0, 0) {
            break;
        }
        let photo = &pool[&top.id];
        if photo.size > remaining {
            continue; // cannot fit now or ever (remaining only shrinks)
        }
        if !top.fresh {
            stats.evaluations += 1;
            stats.refreshes += 1;
            top.gain = rank(engine.gain_of(node, &photo.meta), photo.size, per_byte);
            top.fresh = true;
            // Still at least as good as the next candidate's bound?
            if let Some(next) = heap.peek() {
                if next.key() > top.key() {
                    heap.push(top);
                    continue;
                }
            }
            if top.gain <= (0, 0) {
                continue;
            }
        }
        engine.add_photo(node, &photo.meta);
        stats.commits += 1;
        remaining -= photo.size;
        selected.push(top.id);
        // Every other bound is now stale.
        let drained: Vec<HeapEntry> = heap.drain().collect();
        heap.extend(drained.into_iter().map(|mut e| {
            e.fresh = false;
            e
        }));
    }
    selected
}

/// Exhaustive greedy fill (correctness reference): rescans the whole pool
/// at every step.
fn select_naive(
    engine: &mut ExpectedEngine,
    peer: &PeerState,
    pool: &BTreeMap<PhotoId, Photo>,
    per_byte: bool,
    stats: &mut SelectionStats,
) -> Vec<PhotoId> {
    let node = engine.add_node(peer.delivery_prob);
    let mut remaining = peer.capacity;
    let mut selected = Vec::new();
    loop {
        let mut best: Option<((i64, i64), PhotoId)> = None;
        for p in pool.values() {
            if p.size > remaining || selected.contains(&p.id) {
                continue;
            }
            stats.evaluations += 1;
            let g = rank(engine.gain_of(node, &p.meta), p.size, per_byte);
            if g <= (0, 0) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bg, bid)) => g > *bg || (g == *bg && p.id < *bid),
            };
            if better {
                best = Some((g, p.id));
            }
        }
        let Some((_, id)) = best else { break };
        let photo = &pool[&id];
        engine.add_photo(node, &photo.meta);
        stats.commits += 1;
        remaining -= photo.size;
        selected.push(id);
    }
    selected
}

/// Gains are compared at a fixed 1e-9 resolution so that floating-point
/// noise cannot make the lazy and naive paths break ties differently.
/// With `per_byte` the components are divided by the photo size first
/// (the gain-per-byte knapsack heuristic); positivity is unaffected.
fn rank(c: Coverage, size: u64, per_byte: bool) -> (i64, i64) {
    const SCALE: f64 = 1e9;
    let div = if per_byte { size.max(1) as f64 } else { 1.0 };
    (
        (c.point / div * SCALE).round() as i64,
        (c.aspect / div * SCALE).round() as i64,
    )
}

/// Heap entry ordered by quantized (point, aspect) descending with
/// ascending-id tie-break, so the heap pops the best candidate
/// deterministically.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    gain: (i64, i64),
    id: PhotoId,
    fresh: bool,
}

impl HeapEntry {
    fn key(&self) -> ((i64, i64), std::cmp::Reverse<PhotoId>) {
        (self.gain, std::cmp::Reverse(self.id))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Heap entry of the indexed lazy path. Carries the raw previewed
/// [`Coverage`] (so a commit needs no re-evaluation) and the commit
/// generation at which the gain was computed (so freshness is decided per
/// PoI instead of by a whole-heap stale flag).
#[derive(Clone, Copy, Debug)]
struct IndexedEntry {
    gain: (i64, i64),
    raw: Coverage,
    id: PhotoId,
    /// Index into the contact's `items` table.
    idx: u32,
    /// `cur_gen` at the time `raw` was computed.
    gen: u32,
}

impl IndexedEntry {
    fn key(&self) -> ((i64, i64), std::cmp::Reverse<PhotoId>) {
        (self.gain, std::cmp::Reverse(self.id))
    }
}

impl PartialEq for IndexedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for IndexedEntry {}
impl PartialOrd for IndexedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IndexedEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photodtn_coverage::{PhotoMeta, Poi};
    use photodtn_geo::{Angle, Point};

    fn pois() -> PoiList {
        PoiList::new(vec![
            Poi::new(0, Point::new(0.0, 0.0)),
            Poi::new(1, Point::new(600.0, 0.0)),
        ])
    }

    fn shot(id: u64, target: Point, deg: f64) -> Photo {
        let dir = Angle::from_degrees(deg);
        let meta = PhotoMeta::new(
            target.offset(dir, 50.0),
            80.0,
            Angle::from_degrees(40.0),
            dir + Angle::PI,
        );
        Photo::new(id, meta, 0.0).with_size(1)
    }

    fn peer(node: u32, p: f64, cap: u64, photos: Vec<Photo>) -> PeerState {
        PeerState {
            node: NodeId(node),
            delivery_prob: p,
            capacity: cap,
            photos,
        }
    }

    #[test]
    fn strong_relay_selects_first_and_takes_best() {
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(600.0, 0.0);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.9, 2, vec![shot(1, t0, 0.0), shot(2, t0, 5.0)]),
            b: peer(1, 0.1, 2, vec![shot(3, t1, 90.0)]),
            others: vec![],
        };
        let r = reallocate(&input);
        assert!(r.a_first);
        // a takes one photo of each PoI (point coverage dominates), not
        // the two nearly-identical shots of t0.
        assert_eq!(r.a_selected.len(), 2);
        assert!(r.a_selected.contains(&PhotoId(3)));
        assert!(r.a_selected.contains(&PhotoId(1)) || r.a_selected.contains(&PhotoId(2)));
    }

    #[test]
    fn lazy_and_naive_agree() {
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(600.0, 0.0);
        let mk = |caps: (u64, u64), pa: f64, pb: f64| SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(
                0,
                pa,
                caps.0,
                vec![
                    shot(1, t0, 0.0),
                    shot(2, t0, 120.0),
                    shot(3, t1, 10.0),
                    shot(4, t1, 15.0),
                ],
            ),
            b: peer(
                1,
                pb,
                caps.1,
                vec![shot(5, t0, 240.0), shot(6, t1, 200.0), shot(7, t0, 0.0)],
            ),
            others: vec![DeliveryNode::new(1.0, vec![shot(8, t0, 60.0).meta])],
        };
        for caps in [(2, 2), (3, 1), (7, 7), (0, 3)] {
            for (pa, pb) in [(0.9, 0.2), (0.2, 0.9), (0.5, 0.5)] {
                let input = mk(caps, pa, pb);
                let lazy = reallocate(&input);
                let naive = reallocate_naive(&input);
                let linear = reallocate_lazy_linear(&input);
                assert_eq!(
                    lazy, naive,
                    "indexed/naive divergence at caps {caps:?} p=({pa},{pb})"
                );
                assert_eq!(
                    lazy, linear,
                    "indexed/linear divergence at caps {caps:?} p=({pa},{pb})"
                );
            }
        }
    }

    #[test]
    fn zero_gain_duplicates_need_linear_refreshes() {
        // A pool of identical photos is the worst case for lazy greedy:
        // after the first commit every other candidate's gain collapses to
        // zero, so each gets refreshed exactly once and dropped. The
        // indexed path must do O(pool) refreshes — not O(pool²)
        // evaluations like the naive scan — and the duplicate-aware
        // generation tracking must not regress that.
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let n = 64u64;
        let photos: Vec<Photo> = (0..n).map(|i| shot(i, t0, 0.0)).collect();
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.8, n, photos),
            b: peer(1, 0.3, n, vec![]),
            others: vec![],
        };
        let r = reallocate(&input);
        // Each peer commits exactly one copy (second copies add nothing on
        // the same node).
        assert_eq!(r.stats.commits, 2);
        // Initial heap fills: one evaluation per pooled photo per peer.
        // Refreshes: bounded by one per non-committed candidate per peer.
        assert!(
            r.stats.refreshes <= 2 * n,
            "refreshes {} exceeded O(pool) bound {}",
            r.stats.refreshes,
            2 * n
        );
        assert!(
            r.stats.evaluations <= 4 * n,
            "evaluations {} exceeded initial fill + O(pool) refreshes",
            r.stats.evaluations
        );
        // Same allocation as the reference, never more evaluations. (In
        // this degenerate single-commit case naive also stops after two
        // scans, so the counts tie; the asymptotic gap opens with the
        // number of commits — see the selection benches.)
        let naive = reallocate_naive(&input);
        assert_eq!(naive, r);
        assert!(naive.stats.evaluations >= r.stats.evaluations);
    }

    #[test]
    fn respects_capacity() {
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let photos: Vec<Photo> = (0..6).map(|i| shot(i, t0, i as f64 * 60.0)).collect();
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.8, 3, photos.clone()),
            b: peer(1, 0.3, 2, vec![]),
            others: vec![],
        };
        let r = reallocate(&input);
        assert!(r.a_selected.len() <= 3);
        assert!(r.b_selected.len() <= 2);
    }

    #[test]
    fn redundant_photos_not_selected() {
        // 5 identical shots: only one carries value per node.
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let photos: Vec<Photo> = (0..5).map(|i| shot(i, t0, 0.0)).collect();
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.8, 10, photos),
            b: peer(1, 0.3, 10, vec![]),
            others: vec![],
        };
        let r = reallocate(&input);
        assert_eq!(r.a_selected.len(), 1);
        // b replicates it once more (its copy still adds delivery odds)
        assert_eq!(r.b_selected.len(), 1);
        assert_eq!(r.a_selected[0], r.b_selected[0]);
    }

    #[test]
    fn command_center_acks_prevent_reselection() {
        // The command center already has the photo → no one stores it.
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let delivered = shot(1, t0, 0.0);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.8, 10, vec![delivered]),
            b: peer(1, 0.3, 10, vec![]),
            others: vec![DeliveryNode::new(1.0, vec![delivered.meta])],
        };
        let r = reallocate(&input);
        assert!(r.a_selected.is_empty());
        assert!(r.b_selected.is_empty());
    }

    #[test]
    fn second_selector_complements_first() {
        // b should prefer the photo a could not deliver reliably… here a
        // takes both angles; b (same pool) replicates them rather than
        // sitting idle.
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.6, 2, vec![shot(1, t0, 0.0), shot(2, t0, 180.0)]),
            b: peer(1, 0.5, 2, vec![]),
            others: vec![],
        };
        let r = reallocate(&input);
        assert_eq!(r.a_selected.len(), 2);
        assert_eq!(r.b_selected.len(), 2);
    }

    #[test]
    fn oversized_photo_skipped() {
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let big = shot(1, t0, 0.0).with_size(100);
        let small = shot(2, t0, 180.0).with_size(1);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.8, 10, vec![big, small]),
            b: peer(1, 0.3, 10, vec![]),
            others: vec![],
        };
        let r = reallocate(&input);
        assert_eq!(r.a_selected, vec![PhotoId(2)]);
    }

    #[test]
    fn empty_pool_selects_nothing() {
        let pois = pois();
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.8, 10, vec![]),
            b: peer(1, 0.3, 10, vec![]),
            others: vec![],
        };
        let r = reallocate(&input);
        assert!(r.a_selected.is_empty() && r.b_selected.is_empty());
        assert!(r.expected.is_zero());
    }

    #[test]
    fn density_variant_beats_raw_gain_on_mixed_sizes() {
        // One 3-byte photo covers both PoIs; three 1-byte photos cover
        // them severally with an extra angle. With capacity 3, raw-gain
        // greedy grabs the big photo (gain 2 points) and is full; the
        // density rule takes the three small ones and wins on aspects.
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(600.0, 0.0);
        // a wide shot midway that covers both targets
        let both = Photo::new(
            1,
            PhotoMeta::new(
                Point::new(300.0, 10.0),
                320.0,
                Angle::from_degrees(180.0),
                Angle::from_degrees(270.0),
            ),
            0.0,
        )
        .with_size(3);
        assert!(both.meta.covers(&pois[photodtn_coverage::PoiId(0)]));
        assert!(both.meta.covers(&pois[photodtn_coverage::PoiId(1)]));
        let smalls = [shot(2, t0, 0.0), shot(3, t1, 0.0), shot(4, t0, 180.0)];
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(0, 0.9, 3, vec![both, smalls[0], smalls[1], smalls[2]]),
            b: peer(1, 0.0, 0, vec![]),
            others: vec![],
        };
        let raw = reallocate(&input);
        let dense = reallocate_density(&input);
        assert_eq!(
            raw.a_selected,
            vec![PhotoId(1)],
            "raw greedy takes the big photo"
        );
        assert_eq!(
            dense.a_selected.len(),
            3,
            "density greedy takes the three small ones"
        );
        assert!(!dense.a_selected.contains(&PhotoId(1)));
        assert!(dense.expected > raw.expected);
    }

    #[test]
    fn density_equals_raw_for_uniform_sizes() {
        // With the paper's uniform photo size the two rules coincide.
        let pois = pois();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(600.0, 0.0);
        let input = SelectionInput {
            pois: &pois,
            params: CoverageParams::default(),
            a: peer(
                0,
                0.7,
                3,
                vec![shot(1, t0, 0.0), shot(2, t1, 90.0), shot(3, t0, 200.0)],
            ),
            b: peer(1, 0.2, 2, vec![shot(4, t1, 270.0)]),
            others: vec![],
        };
        assert_eq!(reallocate(&input), reallocate_density(&input));
    }

    #[test]
    fn session_matches_reallocate_across_reuse() {
        // A reused session (reset engine, cached coverage tables,
        // id-tagged third parties) must be bit-identical to the fresh
        // per-contact path, on every contact it serves.
        let pois = Arc::new(pois());
        let params = CoverageParams::default();
        let t0 = Point::new(0.0, 0.0);
        let t1 = Point::new(600.0, 0.0);
        let mut session = SelectionSession::new(Arc::clone(&pois), params);
        let mut cache = photodtn_coverage::CoverageTableCache::new(4); // tiny: forces evictions
        let cc = shot(8, t0, 60.0);
        let contacts = [
            ((2u64, 2u64), (0.9, 0.2)),
            ((3, 1), (0.2, 0.9)),
            ((7, 7), (0.5, 0.5)),
            ((0, 3), (0.5, 0.5)),
        ];
        for (caps, (pa, pb)) in contacts {
            let a = peer(
                0,
                pa,
                caps.0,
                vec![
                    shot(1, t0, 0.0),
                    shot(2, t0, 120.0),
                    shot(3, t1, 10.0),
                    shot(4, t1, 15.0),
                ],
            );
            let b = peer(
                1,
                pb,
                caps.1,
                vec![shot(5, t0, 240.0), shot(6, t1, 200.0), shot(7, t0, 0.0)],
            );
            let fresh_input = SelectionInput {
                pois: &pois,
                params,
                a: a.clone(),
                b: b.clone(),
                others: vec![DeliveryNode::new(1.0, vec![cc.meta])],
            };
            let session_input = SelectionInput {
                pois: &pois,
                params,
                a,
                b,
                others: vec![DeliveryNode::with_ids(1.0, vec![(cc.id, cc.meta)])],
            };
            let reference = reallocate(&fresh_input);
            let reused = session.reallocate_with(&session_input, |id, meta| {
                cache.get_or_build(id, meta, &pois, params)
            });
            assert_eq!(reference, reused, "divergence at caps {caps:?}");
            assert_eq!(
                reference.expected.point.to_bits(),
                reused.expected.point.to_bits()
            );
            assert_eq!(
                reference.expected.aspect.to_bits(),
                reused.expected.aspect.to_bits()
            );
        }
        // 8 distinct photos cycling through 4 slots: the cache thrashes
        // (every lookup rebuilds) yet results stayed bit-identical.
        assert!(cache.stats().evictions > 0);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn phases_order() {
        let r = SelectionResult {
            a_selected: vec![PhotoId(1)],
            b_selected: vec![PhotoId(2)],
            a_first: false,
            expected: Coverage::ZERO,
            stats: SelectionStats::default(),
        };
        let (first_is_a, first, second) = r.phases();
        assert!(!first_is_a);
        assert_eq!(first, &[PhotoId(2)]);
        assert_eq!(second, &[PhotoId(1)]);
    }
}
