//! The metadata-validity model of §III-B.
//!
//! Cached metadata of node `a` becomes untrustworthy once `a` has probably
//! met *someone* (and therefore probably changed its photo collection).
//! With exponential inter-contact times, the probability that `a` met
//! another node within `t` seconds of our last contact is
//! `P{T_a < t} = 1 − e^{−λ_a t}` (equation (1)); the cache entry is
//! invalid when this exceeds the threshold `P_thld` (0.8 in Table I).

use serde::{Deserialize, Serialize};

/// Validity threshold configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValidityModel {
    /// `P_thld`: staleness probability above which cached metadata is
    /// discarded. Table I uses 0.8.
    pub p_threshold: f64,
}

impl ValidityModel {
    /// Creates a model with the given threshold, clamped to `[0, 1]`.
    #[must_use]
    pub fn new(p_threshold: f64) -> Self {
        ValidityModel {
            p_threshold: p_threshold.clamp(0.0, 1.0),
        }
    }

    /// Table I default: `P_thld = 0.8`.
    #[must_use]
    pub fn paper_default() -> Self {
        ValidityModel { p_threshold: 0.8 }
    }

    /// Probability that a node with contact rate `lambda` (s⁻¹) has met
    /// another node within `elapsed` seconds — equation (1).
    #[must_use]
    pub fn stale_probability(lambda: f64, elapsed: f64) -> f64 {
        if lambda <= 0.0 || elapsed <= 0.0 {
            return 0.0;
        }
        1.0 - (-lambda * elapsed).exp()
    }

    /// Whether metadata cached `elapsed` seconds ago from a node with
    /// contact rate `lambda` is still valid.
    #[must_use]
    pub fn is_valid(&self, lambda: f64, elapsed: f64) -> bool {
        Self::stale_probability(lambda, elapsed) <= self.p_threshold
    }

    /// The longest age (seconds) at which metadata from a node with rate
    /// `lambda` remains valid: `t* = −ln(1 − P_thld) / λ`.
    ///
    /// Returns `f64::INFINITY` when `lambda` is 0 (a node that never meets
    /// anyone never invalidates) or when the threshold is 1.
    #[must_use]
    pub fn validity_horizon(&self, lambda: f64) -> f64 {
        if lambda <= 0.0 || self.p_threshold >= 1.0 {
            return f64::INFINITY;
        }
        -(1.0 - self.p_threshold).ln() / lambda
    }
}

impl Default for ValidityModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_probability_shape() {
        assert_eq!(ValidityModel::stale_probability(0.0, 100.0), 0.0);
        assert_eq!(ValidityModel::stale_probability(0.1, 0.0), 0.0);
        let p1 = ValidityModel::stale_probability(0.01, 10.0);
        let p2 = ValidityModel::stale_probability(0.01, 100.0);
        assert!(0.0 < p1 && p1 < p2 && p2 < 1.0);
        // λt = ln 2 → probability 1/2
        let half = ValidityModel::stale_probability(0.01, 100.0 * std::f64::consts::LN_2);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validity_threshold() {
        let m = ValidityModel::paper_default();
        let lambda = 1.0 / 3600.0; // meets someone hourly on average
        let horizon = m.validity_horizon(lambda);
        // just inside the horizon: valid; just outside: invalid
        assert!(m.is_valid(lambda, horizon * 0.999));
        assert!(!m.is_valid(lambda, horizon * 1.001));
        // for P_thld = 0.8, horizon = ln(5)/λ ≈ 1.609/λ
        assert!((horizon - 5f64.ln() * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_node_never_invalidates() {
        let m = ValidityModel::paper_default();
        assert!(m.is_valid(0.0, f64::MAX / 2.0));
        assert_eq!(m.validity_horizon(0.0), f64::INFINITY);
    }

    #[test]
    fn threshold_extremes() {
        let never = ValidityModel::new(0.0);
        assert!(!never.is_valid(0.01, 1.0)); // any staleness > 0 invalidates
        let always = ValidityModel::new(1.0);
        assert!(always.is_valid(10.0, 1e12));
        assert_eq!(always.validity_horizon(1.0), f64::INFINITY);
        // clamping
        assert_eq!(ValidityModel::new(7.0).p_threshold, 1.0);
        assert_eq!(ValidityModel::new(-1.0).p_threshold, 0.0);
    }
}
