use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Angle, Arc, ANGLE_EPS, TAU};

/// A measurable subset of the circle: a union of [`Arc`]s.
///
/// `ArcSet` is the workhorse of aspect coverage. The set of covered aspects
/// of a PoI is the union of one arc per photo that sees it, and the *aspect
/// coverage* `C_as` is the [`measure`](ArcSet::measure) of that union.
///
/// # Representation
///
/// Internally the set is a sorted list of disjoint, non-adjacent linear
/// intervals `[lo, hi]` with `0 ≤ lo < hi ≤ 2π` (arcs wrapping the zero
/// direction are split at zero). This canonical form makes structural
/// equality meaningful and all operations linear sweeps.
///
/// Endpoints closer than [`ANGLE_EPS`] are merged, so tiny slivers produced
/// by floating point noise do not accumulate.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Arc, ArcSet};
///
/// let mut covered = ArcSet::new();
/// covered.insert(Arc::centered(Angle::from_degrees(0.0), Angle::from_degrees(30.0)));
/// covered.insert(Arc::centered(Angle::from_degrees(40.0), Angle::from_degrees(30.0)));
/// // The two 60°-wide views overlap by 20°: union measures 100°.
/// assert!((covered.measure().to_degrees() - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ArcSet {
    /// Sorted, disjoint, non-adjacent `[lo, hi]` with `0 <= lo < hi <= TAU`.
    intervals: Vec<(f64, f64)>,
}

impl ArcSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        ArcSet {
            intervals: Vec::new(),
        }
    }

    /// Creates the set covering the full circle.
    #[must_use]
    pub fn full() -> Self {
        ArcSet {
            intervals: vec![(0.0, TAU)],
        }
    }

    /// Creates a set from a single arc.
    #[must_use]
    pub fn from_arc(arc: Arc) -> Self {
        let mut s = ArcSet::new();
        s.insert(arc);
        s
    }

    /// Empties the set, keeping its allocation.
    pub fn clear(&mut self) {
        self.intervals.clear();
    }

    /// Replaces the contents with a single arc, reusing the allocation.
    ///
    /// Equivalent to `*self = ArcSet::from_arc(arc)` without the fresh
    /// `Vec` — the building block of allocation-free hot paths.
    pub fn assign_arc(&mut self, arc: Arc) {
        self.intervals.clear();
        self.insert(arc);
    }

    /// Whether the set is empty (measure ≈ 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether the set covers the full circle (measure ≈ 2π).
    ///
    /// A PoI whose covered-aspect set is full is *full-view covered* in the
    /// terminology of Wang et al. that the paper builds on.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.measure() >= TAU - ANGLE_EPS
    }

    /// Total angular measure of the set, as an [`Angle`]-like magnitude in
    /// radians (`0 ..= 2π`). Returned as `f64` because it is a measure, not
    /// a direction.
    #[must_use]
    pub fn measure(&self) -> f64 {
        self.intervals.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// Number of disjoint intervals in canonical (zero-split) form.
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Whether direction `a` is in the set.
    #[must_use]
    pub fn contains(&self, a: Angle) -> bool {
        let x = a.radians();
        self.intervals
            .iter()
            .any(|&(lo, hi)| x >= lo - ANGLE_EPS && x <= hi + ANGLE_EPS)
            // the zero direction also matches an interval ending at 2π
            || (x <= ANGLE_EPS
                && self
                    .intervals
                    .last()
                    .is_some_and(|&(_, hi)| hi >= TAU - ANGLE_EPS))
    }

    /// Adds a single arc to the set (in-place union).
    pub fn insert(&mut self, arc: Arc) {
        if arc.is_empty() {
            return;
        }
        for (lo, hi) in arc.split() {
            self.insert_interval(lo, hi);
        }
    }

    /// Union with another set, in place.
    pub fn union_with(&mut self, other: &ArcSet) {
        for &(lo, hi) in &other.intervals {
            self.insert_interval(lo, hi);
        }
    }

    /// Returns the union of two sets.
    #[must_use]
    pub fn union(&self, other: &ArcSet) -> ArcSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the intersection of two sets.
    #[must_use]
    pub fn intersection(&self, other: &ArcSet) -> ArcSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (alo, ahi) = self.intervals[i];
            let (blo, bhi) = other.intervals[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if hi - lo > ANGLE_EPS {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        ArcSet { intervals: out }
    }

    /// Returns the complement of the set within the circle.
    #[must_use]
    pub fn complement(&self) -> ArcSet {
        let mut out = Vec::new();
        let mut cursor = 0.0;
        for &(lo, hi) in &self.intervals {
            if lo - cursor > ANGLE_EPS {
                out.push((cursor, lo));
            }
            cursor = hi;
        }
        if TAU - cursor > ANGLE_EPS {
            out.push((cursor, TAU));
        }
        ArcSet { intervals: out }
    }

    /// Returns `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &ArcSet) -> ArcSet {
        self.intersection(&other.complement())
    }

    /// Computes `self \ other` into `out`, reusing `out`'s allocation.
    ///
    /// Produces exactly the same value as [`difference`](Self::difference)
    /// (same sweep, same epsilon handling) but generates the complement of
    /// `other` on the fly instead of materializing it, so no intermediate
    /// `Vec` is allocated and `out` only grows on first use.
    pub fn difference_into(&self, other: &ArcSet, out: &mut ArcSet) {
        out.intervals.clear();
        // Lazily enumerate the complement intervals of `other`: the gaps
        // between its intervals plus the leading/trailing gaps, skipping
        // slivers ≤ ANGLE_EPS exactly like `complement` does.
        let mut gaps = other
            .intervals
            .iter()
            .copied()
            .chain(std::iter::once((TAU, TAU)))
            .scan(0.0_f64, |cursor, (lo, hi)| {
                let gap = (*cursor, lo);
                *cursor = hi;
                Some(gap)
            })
            .filter(|&(lo, hi)| hi - lo > ANGLE_EPS);
        let mut b = gaps.next();
        let mut i = 0;
        while i < self.intervals.len() {
            let Some((blo, bhi)) = b else { break };
            let (alo, ahi) = self.intervals[i];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if hi - lo > ANGLE_EPS {
                out.intervals.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                b = gaps.next();
            }
        }
    }

    /// Measure of the part of `arc` **not** already in the set — the
    /// marginal aspect-coverage gain of adding one photo.
    #[must_use]
    pub fn uncovered_measure(&self, arc: Arc) -> f64 {
        let add = ArcSet::from_arc(arc);
        add.difference(self).measure()
    }

    /// Iterates over the canonical `[lo, hi]` intervals (radians).
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.intervals.iter().copied()
    }

    /// All interval endpoints in increasing order (radians). Used by the
    /// segment-decomposition algorithm for expected coverage.
    #[must_use]
    pub fn endpoints(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.intervals.len() * 2);
        for &(lo, hi) in &self.intervals {
            v.push(lo);
            v.push(hi);
        }
        v
    }

    fn insert_interval(&mut self, lo: f64, hi: f64) {
        debug_assert!(lo >= -ANGLE_EPS && hi <= TAU + ANGLE_EPS && lo <= hi);
        let lo = lo.max(0.0);
        let hi = hi.min(TAU);
        if hi - lo <= ANGLE_EPS {
            return;
        }
        // Find the range of existing intervals overlapping or adjacent to
        // [lo, hi] and merge them.
        let start = self.intervals.partition_point(|&(_, h)| h < lo - ANGLE_EPS);
        let end = self
            .intervals
            .partition_point(|&(l, _)| l <= hi + ANGLE_EPS);
        if start == end {
            self.intervals.insert(start, (lo, hi));
            return;
        }
        let new_lo = lo.min(self.intervals[start].0);
        let new_hi = hi.max(self.intervals[end - 1].1);
        self.intervals.drain(start..end);
        self.intervals.insert(start, (new_lo, new_hi));
    }
}

impl From<Arc> for ArcSet {
    fn from(arc: Arc) -> Self {
        ArcSet::from_arc(arc)
    }
}

impl FromIterator<Arc> for ArcSet {
    fn from_iter<T: IntoIterator<Item = Arc>>(iter: T) -> Self {
        let mut s = ArcSet::new();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl Extend<Arc> for ArcSet {
    fn extend<T: IntoIterator<Item = Arc>>(&mut self, iter: T) {
        for a in iter {
            self.insert(a);
        }
    }
}

impl fmt::Display for ArcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, (lo, hi)) in self.intervals.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{:.1}°,{:.1}°]", lo.to_degrees(), hi.to_degrees())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc_deg(center: f64, half: f64) -> Arc {
        Arc::centered(Angle::from_degrees(center), Angle::from_degrees(half))
    }

    #[test]
    fn empty_set() {
        let s = ArcSet::new();
        assert!(s.is_empty());
        assert_eq!(s.measure(), 0.0);
        assert!(!s.contains(Angle::ZERO));
    }

    #[test]
    fn single_arc_measure() {
        let s = ArcSet::from_arc(arc_deg(90.0, 20.0));
        assert!((s.measure().to_degrees() - 40.0).abs() < 1e-9);
        assert!(s.contains(Angle::from_degrees(80.0)));
        assert!(!s.contains(Angle::from_degrees(150.0)));
    }

    #[test]
    fn overlapping_arcs_merge() {
        let mut s = ArcSet::new();
        s.insert(arc_deg(10.0, 10.0));
        s.insert(arc_deg(25.0, 10.0));
        assert_eq!(s.interval_count(), 1);
        assert!((s.measure().to_degrees() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_arcs_stay_separate() {
        let mut s = ArcSet::new();
        s.insert(arc_deg(10.0, 5.0));
        s.insert(arc_deg(100.0, 5.0));
        assert_eq!(s.interval_count(), 2);
        assert!((s.measure().to_degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn wrapping_arc_splits_and_contains() {
        let s = ArcSet::from_arc(arc_deg(0.0, 20.0));
        assert_eq!(s.interval_count(), 2);
        assert!(s.contains(Angle::from_degrees(350.0)));
        assert!(s.contains(Angle::from_degrees(10.0)));
        assert!(s.contains(Angle::ZERO));
        assert!((s.measure().to_degrees() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn idempotent_union() {
        let mut s = ArcSet::from_arc(arc_deg(45.0, 30.0));
        let before = s.clone();
        s.insert(arc_deg(45.0, 30.0));
        assert_eq!(s, before);
    }

    #[test]
    fn complement_partitions_circle() {
        let s = ArcSet::from_arc(arc_deg(90.0, 45.0));
        let c = s.complement();
        assert!((s.measure() + c.measure() - TAU).abs() < 1e-9);
        assert!(s.intersection(&c).is_empty());
        assert!(s.union(&c).is_full());
    }

    #[test]
    fn complement_of_empty_is_full() {
        assert!(ArcSet::new().complement().is_full());
        assert!(ArcSet::full().complement().is_empty());
    }

    #[test]
    fn intersection_of_overlap() {
        let a = ArcSet::from_arc(arc_deg(0.0, 30.0));
        let b = ArcSet::from_arc(arc_deg(40.0, 30.0));
        let i = a.intersection(&b);
        // [330,30] ∩ [10,70] = [10,30]
        assert!((i.measure().to_degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn difference_and_uncovered() {
        let a = ArcSet::from_arc(arc_deg(0.0, 30.0));
        let d = a.difference(&ArcSet::from_arc(arc_deg(20.0, 20.0)));
        // [330,30] minus [0,40] = [330, 360)
        assert!((d.measure().to_degrees() - 30.0).abs() < 1e-9);
        let gain = a.uncovered_measure(arc_deg(40.0, 30.0));
        // adding [10,70] to [330,30] gains [30,70] = 40°
        assert!((gain.to_degrees() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn full_circle_from_many_arcs() {
        let mut s = ArcSet::new();
        for k in 0..12 {
            s.insert(arc_deg(k as f64 * 30.0, 16.0));
        }
        assert!(s.is_full());
        assert!((s.measure() - TAU).abs() < 1e-9);
    }

    #[test]
    fn from_iterator_collect() {
        let s: ArcSet = (0..4).map(|k| arc_deg(k as f64 * 90.0, 10.0)).collect();
        assert!((s.measure().to_degrees() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn endpoints_sorted() {
        let mut s = ArcSet::new();
        s.insert(arc_deg(100.0, 10.0));
        s.insert(arc_deg(200.0, 10.0));
        let e = s.endpoints();
        assert_eq!(e.len(), 4);
        assert!(e.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn assign_arc_equals_from_arc() {
        let mut s = ArcSet::from_arc(arc_deg(90.0, 45.0));
        s.assign_arc(arc_deg(0.0, 20.0)); // wrapping arc, 2 pieces
        assert_eq!(s, ArcSet::from_arc(arc_deg(0.0, 20.0)));
        s.clear();
        assert!(s.is_empty());
        s.assign_arc(arc_deg(200.0, 10.0));
        assert_eq!(s, ArcSet::from_arc(arc_deg(200.0, 10.0)));
    }

    #[test]
    fn difference_into_matches_difference() {
        let cases = [
            (
                ArcSet::from_arc(arc_deg(0.0, 30.0)),
                ArcSet::from_arc(arc_deg(20.0, 20.0)),
            ),
            (ArcSet::from_arc(arc_deg(90.0, 60.0)), ArcSet::new()),
            (ArcSet::new(), ArcSet::from_arc(arc_deg(10.0, 10.0))),
            (ArcSet::full(), ArcSet::from_arc(arc_deg(180.0, 90.0))),
            (
                [
                    arc_deg(10.0, 5.0),
                    arc_deg(100.0, 30.0),
                    arc_deg(350.0, 15.0),
                ]
                .into_iter()
                .collect(),
                [arc_deg(95.0, 10.0), arc_deg(0.0, 8.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut out = ArcSet::new();
        for (a, b) in &cases {
            a.difference_into(b, &mut out);
            assert_eq!(
                out,
                a.difference(b),
                "difference_into diverged for {a} \\ {b}"
            );
        }
    }

    #[test]
    fn adjacent_intervals_merge() {
        let mut s = ArcSet::new();
        s.insert(Arc::new(
            Angle::from_degrees(10.0),
            Angle::from_degrees(10.0).radians(),
        ));
        s.insert(Arc::new(
            Angle::from_degrees(20.0),
            Angle::from_degrees(10.0).radians(),
        ));
        assert_eq!(s.interval_count(), 1);
        assert!((s.measure().to_degrees() - 20.0).abs() < 1e-9);
    }
}
