use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Angle, ANGLE_EPS, TAU};

/// A contiguous arc on the circle: the set of directions swept
/// counter-clockwise from `start` over `width` radians.
///
/// Arcs may wrap around the zero direction. A width of `2π` (or more, which
/// is clamped) denotes the full circle.
///
/// In the coverage model an arc is the set of *aspects* of a PoI covered by
/// one photo: centered on the viewing direction (PoI → camera), with
/// half-width equal to the effective angle `θ`.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Arc};
/// let arc = Arc::centered(Angle::ZERO, Angle::from_degrees(30.0));
/// assert!(arc.contains(Angle::from_degrees(10.0)));
/// assert!(arc.contains(Angle::from_degrees(350.0))); // wraps
/// assert!(!arc.contains(Angle::from_degrees(45.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    start: Angle,
    width: f64,
}

impl Arc {
    /// Creates an arc starting at `start` sweeping `width` radians
    /// counter-clockwise. Negative widths are treated as empty; widths of
    /// `2π` or more cover the full circle.
    #[must_use]
    pub fn new(start: Angle, width: f64) -> Self {
        let width = if width.is_finite() {
            width.clamp(0.0, TAU)
        } else {
            0.0
        };
        Arc { start, width }
    }

    /// Creates the arc of directions within `half_width` of `center`
    /// (on either side), i.e. `[center − half_width, center + half_width]`.
    ///
    /// This is how a photo's aspect arc is built: `center` is the viewing
    /// direction and `half_width` the effective angle `θ`.
    #[must_use]
    pub fn centered(center: Angle, half_width: Angle) -> Self {
        let hw = half_width.radians().min(std::f64::consts::PI);
        Arc::new(center - Angle::from_radians(hw), 2.0 * hw)
    }

    /// The empty arc.
    #[must_use]
    pub fn empty() -> Self {
        Arc::new(Angle::ZERO, 0.0)
    }

    /// The full circle.
    #[must_use]
    pub fn full() -> Self {
        Arc::new(Angle::ZERO, TAU)
    }

    /// Start direction of the arc.
    #[must_use]
    pub fn start(self) -> Angle {
        self.start
    }

    /// End direction (start + width, wrapped).
    #[must_use]
    pub fn end(self) -> Angle {
        self.start + Angle::from_radians(self.width)
    }

    /// Angular width in radians, in `[0, 2π]`.
    #[must_use]
    pub fn width(self) -> f64 {
        self.width
    }

    /// Whether the arc has (numerically) zero width.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.width <= ANGLE_EPS
    }

    /// Whether the arc covers the full circle (up to tolerance).
    #[must_use]
    pub fn is_full(self) -> bool {
        self.width >= TAU - ANGLE_EPS
    }

    /// Whether the arc wraps across the zero direction.
    #[must_use]
    pub fn wraps(self) -> bool {
        self.start.radians() + self.width > TAU + ANGLE_EPS
    }

    /// Whether direction `a` lies on the arc (inclusive of endpoints).
    #[must_use]
    pub fn contains(self, a: Angle) -> bool {
        if self.is_full() {
            return true;
        }
        self.start.distance_ccw(a) <= self.width + ANGLE_EPS
    }

    /// Splits the arc into at most two non-wrapping `[lo, hi]` intervals
    /// with `0 ≤ lo ≤ hi ≤ 2π`.
    ///
    /// This is the canonical representation used by
    /// [`ArcSet`](crate::ArcSet).
    #[must_use]
    pub fn split(self) -> ArcPieces {
        if self.is_empty() {
            return ArcPieces {
                first: None,
                second: None,
            };
        }
        let s = self.start.radians();
        let e = s + self.width;
        if e <= TAU + ANGLE_EPS {
            ArcPieces {
                first: Some((s, e.min(TAU))),
                second: None,
            }
        } else {
            ArcPieces {
                first: Some((0.0, e - TAU)),
                second: Some((s, TAU)),
            }
        }
    }
}

impl Default for Arc {
    fn default() -> Self {
        Arc::empty()
    }
}

impl fmt::Display for Arc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1}° +{:.1}°]",
            self.start.to_degrees(),
            self.width.to_degrees()
        )
    }
}

/// Result of [`Arc::split`]: up to two linear `[lo, hi]` intervals, sorted
/// by `lo`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ArcPieces {
    /// Piece with the smaller lower bound, if the arc is non-empty.
    pub first: Option<(f64, f64)>,
    /// Second piece, present only when the arc wraps the zero direction.
    pub second: Option<(f64, f64)>,
}

impl IntoIterator for ArcPieces {
    type Item = (f64, f64);
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<(f64, f64)>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        [self.first, self.second].into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_contains_center_and_edges() {
        let a = Arc::centered(Angle::from_degrees(90.0), Angle::from_degrees(15.0));
        assert!(a.contains(Angle::from_degrees(90.0)));
        assert!(a.contains(Angle::from_degrees(75.0)));
        assert!(a.contains(Angle::from_degrees(105.0)));
        assert!(!a.contains(Angle::from_degrees(110.0)));
        assert!((a.width().to_degrees() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_detection() {
        let a = Arc::centered(Angle::ZERO, Angle::from_degrees(10.0));
        assert!(a.wraps());
        let b = Arc::new(Angle::from_degrees(10.0), 0.1);
        assert!(!b.wraps());
    }

    #[test]
    fn split_non_wrapping() {
        let a = Arc::new(
            Angle::from_degrees(10.0),
            Angle::from_degrees(20.0).radians(),
        );
        let p = a.split();
        let (lo, hi) = p.first.unwrap();
        assert!((lo.to_degrees() - 10.0).abs() < 1e-9);
        assert!((hi.to_degrees() - 30.0).abs() < 1e-9);
        assert!(p.second.is_none());
    }

    #[test]
    fn split_wrapping_produces_two_pieces() {
        let a = Arc::centered(Angle::ZERO, Angle::from_degrees(10.0));
        let p = a.split();
        let (lo1, hi1) = p.first.unwrap();
        let (lo2, hi2) = p.second.unwrap();
        assert!((lo1 - 0.0).abs() < 1e-9);
        assert!((hi1.to_degrees() - 10.0).abs() < 1e-6);
        assert!((lo2.to_degrees() - 350.0).abs() < 1e-6);
        assert!((hi2 - TAU).abs() < 1e-9);
    }

    #[test]
    fn full_and_empty() {
        assert!(Arc::full().is_full());
        assert!(Arc::full().contains(Angle::from_degrees(123.0)));
        assert!(Arc::empty().is_empty());
        assert!(!Arc::empty().contains(Angle::from_degrees(0.5)));
        // width is clamped
        assert!(Arc::new(Angle::ZERO, 100.0).is_full());
        assert!(Arc::new(Angle::ZERO, -5.0).is_empty());
    }

    #[test]
    fn split_pieces_total_width() {
        for deg in [5.0, 90.0, 180.0, 355.0] {
            let a = Arc::centered(Angle::from_degrees(3.0), Angle::from_degrees(deg / 2.0));
            let total: f64 = a.split().into_iter().map(|(lo, hi)| hi - lo).sum();
            assert!((total - a.width()).abs() < 1e-9, "width mismatch at {deg}");
        }
    }

    #[test]
    fn half_width_clamped_to_pi() {
        let a = Arc::centered(Angle::ZERO, Angle::from_radians(10.0));
        assert!(a.is_full());
    }
}
