use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Angle, Point, Sector};

/// An axis-aligned bounding box, used to restrict spatial-grid queries to
/// the cells a query region can actually intersect.
///
/// The box is closed: points on the boundary are contained. An "empty" box
/// degenerates to a single point (`min == max`).
///
/// # Example
///
/// ```
/// use photodtn_geo::{BBox, Point};
/// let b = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
/// assert!(b.contains(Point::new(10.0, 2.5)));
/// assert!(!b.contains(Point::new(10.1, 2.5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl BBox {
    /// Creates a box from two corners, swapping coordinates as needed so
    /// that `min ≤ max` componentwise.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The degenerate box holding a single point.
    #[must_use]
    pub fn of_point(p: Point) -> Self {
        BBox { min: p, max: p }
    }

    /// Grows the box (in place) to contain `p`.
    pub fn expand(&mut self, p: Point) {
        self.min = Point::new(self.min.x.min(p.x), self.min.y.min(p.y));
        self.max = Point::new(self.max.x.max(p.x), self.max.y.max(p.y));
    }

    /// Whether `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Box width (`x` extent).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (`y` extent).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

impl Sector {
    /// The tight axis-aligned bounding box of the coverage sector.
    ///
    /// A sector's extreme points are its apex, the two endpoints of its
    /// field-of-view edges at full range, and any of the four cardinal
    /// directions (east/north/west/south) that fall inside the angular
    /// span — where the bounding circle touches its own bounding box.
    ///
    /// For narrow fields of view this box is much smaller than the disc
    /// bounding box `[l − r, l + r]²`, which is what makes sector-scoped
    /// grid queries cheaper than disc queries.
    #[must_use]
    pub fn bbox(self) -> BBox {
        let apex = self.apex();
        let r = self.range();
        if r <= 0.0 {
            return BBox::of_point(apex);
        }
        let mut b = BBox::of_point(apex);
        let half = Angle::from_radians(self.fov().radians() / 2.0);
        b.expand(apex.offset(self.orientation() - half, r));
        b.expand(apex.offset(self.orientation() + half, r));
        // Cardinal directions inside the angular span pin the box to the
        // full circle on that side. (An `Angle` is normalized into
        // `[0, 2π)`, so `fov` can never be a full 2π; a near-full span
        // simply includes all four cardinals.)
        let in_span = |deg: f64| {
            self.orientation()
                .separation(Angle::from_degrees(deg))
                .radians()
                <= self.fov().radians() / 2.0
        };
        if in_span(0.0) {
            b.expand(Point::new(apex.x + r, apex.y));
        }
        if in_span(90.0) {
            b.expand(Point::new(apex.x, apex.y + r));
        }
        if in_span(180.0) {
            b.expand(Point::new(apex.x - r, apex.y));
        }
        if in_span(270.0) {
            b.expand(Point::new(apex.x, apex.y - r));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = BBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 3.0));
        assert!((b.width() - 7.0).abs() < 1e-12);
        assert!((b.height() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn expand_grows_monotonically() {
        let mut b = BBox::of_point(Point::new(0.0, 0.0));
        b.expand(Point::new(2.0, -3.0));
        assert!(b.contains(Point::new(1.0, -1.0)));
        assert!(b.contains(Point::new(2.0, -3.0)));
        assert!(!b.contains(Point::new(2.1, 0.0)));
    }

    #[test]
    fn narrow_sector_bbox_is_tight() {
        // 40° FoV pointing east from the origin: the box must not extend
        // west of the apex nor anywhere near the south/north extremes.
        let s = Sector::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(40.0),
            Angle::ZERO,
        );
        let b = s.bbox();
        assert!(b.min.x >= -1e-9);
        assert!((b.max.x - 100.0).abs() < 1e-9); // east cardinal in span
                                                 // y extent bounded by the FoV edge endpoints: 100·sin(20°)
        let edge_y = 100.0 * 20f64.to_radians().sin();
        assert!((b.max.y - edge_y).abs() < 1e-9);
        assert!((b.min.y + edge_y).abs() < 1e-9);
    }

    #[test]
    fn sector_bbox_subset_of_disc_bbox() {
        let s = Sector::new(
            Point::new(10.0, -5.0),
            80.0,
            Angle::from_degrees(55.0),
            Angle::from_degrees(200.0),
        );
        let b = s.bbox();
        assert!(b.min.x >= 10.0 - 80.0 - 1e-9 && b.max.x <= 10.0 + 80.0 + 1e-9);
        assert!(b.min.y >= -5.0 - 80.0 - 1e-9 && b.max.y <= -5.0 + 80.0 + 1e-9);
    }

    #[test]
    fn near_full_fov_gives_disc_bbox() {
        // Angle normalizes 2π to 0, so the widest representable FoV is
        // just under 2π — its span still includes all four cardinals.
        let s = Sector::new(
            Point::new(1.0, 2.0),
            50.0,
            Angle::from_degrees(359.9),
            Angle::ZERO,
        );
        let b = s.bbox();
        // The 0.1° gap at west keeps min.x a hair inside 1−50; everything
        // else touches the disc bbox exactly.
        assert!((b.min.x - (1.0 - 50.0)).abs() < 1e-3);
        assert!((b.max.x - (1.0 + 50.0)).abs() < 1e-9);
        assert!((b.min.y - (2.0 - 50.0)).abs() < 1e-9);
        assert!((b.max.y - (2.0 + 50.0)).abs() < 1e-9);
        assert!(b.min.x >= 1.0 - 50.0 - 1e-9);
    }

    #[test]
    fn empty_sector_bbox_is_apex() {
        let s = Sector::new(
            Point::new(3.0, 4.0),
            0.0,
            Angle::from_degrees(60.0),
            Angle::ZERO,
        );
        assert_eq!(s.bbox(), BBox::of_point(Point::new(3.0, 4.0)));
    }

    #[test]
    fn contained_points_are_in_bbox() {
        // Deterministic sweep: every point the sector contains must be in
        // its bbox (the property the grid query relies on).
        for (fov, dir) in [(30.0, 10.0), (90.0, 123.0), (200.0, 300.0), (359.0, 45.0)] {
            let s = Sector::new(
                Point::new(0.0, 0.0),
                90.0,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            );
            let b = s.bbox();
            for i in 0..90 {
                for j in 0..30 {
                    let p = Point::new(0.0, 0.0)
                        .offset(Angle::from_degrees(i as f64 * 4.0), 3.0 * j as f64);
                    if s.contains(p) {
                        assert!(b.contains(p), "{p:?} in sector but outside bbox {b}");
                    }
                }
            }
        }
    }
}
