use std::fmt;

use crate::{Arc, ArcSet, ANGLE_EPS, TAU};

/// Number of fixed-width aspect bins the circle is divided into.
pub const ASPECT_BINS: usize = 128;

/// Angular width of one aspect bin, `2π / 128` radians (≈ 2.8°).
pub const ASPECT_BIN_WIDTH: f64 = TAU / ASPECT_BINS as f64;

/// A fixed-width bitset over [`ASPECT_BINS`] equal aspect bins of the
/// circle: bin `k` is the half-open interval `[k·Δ, (k+1)·Δ)` with
/// `Δ =` [`ASPECT_BIN_WIDTH`].
///
/// Union, difference and measure are O(1) word operations, which is what
/// makes the quantized aspect-coverage path of the expected-coverage
/// engine cheap. Three quantizations of the same angular set are used,
/// with different guarantees:
///
/// * **Rounded** ([`insert_arc_rounded`](Self::insert_arc_rounded)):
///   interval endpoints are rounded to the *nearest* bin boundary
///   (half-up, via [`f64::round`]). Measure error per maximal interval is
///   at most one bin width; this is the representation the quantized
///   engine mode computes with.
/// * **Outer** ([`outer_of_arc`](Self::outer_of_arc)): every bin that
///   intersects the set is included, so the exact set is a subset of the
///   bins. An over-approximation.
/// * **Inner** ([`inner_of_set`](Self::inner_of_set)): only bins lying
///   entirely inside the set *with a safety margin* are included, so the
///   bins (dilated by the margin) are a subset of the exact set. An
///   under-approximation.
///
/// `outer(A) ⊆ inner(B)` therefore proves `A ⊆ B` exactly (up to the
/// margin), which the engine uses as an O(1) "arc already fully covered"
/// short-circuit that cannot change exact-mode results.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Arc, AspectBits};
/// let mut bits = AspectBits::new();
/// bits.insert_arc_rounded(Arc::centered(Angle::ZERO, Angle::from_degrees(45.0)));
/// assert!((bits.measure().to_degrees() - 90.0).abs() < 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct AspectBits {
    words: [u64; 2],
}

impl AspectBits {
    /// The empty bitset.
    #[must_use]
    pub fn new() -> Self {
        AspectBits { words: [0; 2] }
    }

    /// The full circle (all bins set).
    #[must_use]
    pub fn full() -> Self {
        AspectBits { words: [!0; 2] }
    }

    /// Whether no bin is set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.words == [0; 2]
    }

    /// Clears all bins.
    pub fn clear(&mut self) {
        self.words = [0; 2];
    }

    /// Number of set bins.
    #[must_use]
    pub fn count(self) -> u32 {
        self.words[0].count_ones() + self.words[1].count_ones()
    }

    /// Angular measure represented by the set bins, in radians.
    #[must_use]
    pub fn measure(self) -> f64 {
        f64::from(self.count()) * ASPECT_BIN_WIDTH
    }

    /// Whether bin `bin` is set.
    #[must_use]
    pub fn get(self, bin: usize) -> bool {
        debug_assert!(bin < ASPECT_BINS);
        self.words[bin / 64] & (1 << (bin % 64)) != 0
    }

    /// In-place union.
    pub fn union_with(&mut self, other: AspectBits) {
        self.words[0] |= other.words[0];
        self.words[1] |= other.words[1];
    }

    /// `self \ other` (bins in `self` but not in `other`).
    #[must_use]
    pub fn minus(self, other: AspectBits) -> AspectBits {
        AspectBits {
            words: [
                self.words[0] & !other.words[0],
                self.words[1] & !other.words[1],
            ],
        }
    }

    /// Intersection of the two bin sets.
    #[must_use]
    pub fn intersect(self, other: AspectBits) -> AspectBits {
        AspectBits {
            words: [
                self.words[0] & other.words[0],
                self.words[1] & other.words[1],
            ],
        }
    }

    /// Whether the two bin sets share any bin.
    #[must_use]
    pub fn intersects(self, other: AspectBits) -> bool {
        (self.words[0] & other.words[0]) | (self.words[1] & other.words[1]) != 0
    }

    /// Whether every bin of `other` is set in `self`.
    #[must_use]
    pub fn contains_all(self, other: AspectBits) -> bool {
        other.minus(self).is_empty()
    }

    /// Iterates over the indices of the set bins, in increasing order.
    pub fn iter_bins(self) -> BinIter {
        BinIter {
            words: self.words,
            word: 0,
        }
    }

    /// Sets bins `lo..hi` (half-open; `0 ≤ lo ≤ hi ≤ 128`).
    fn set_range(&mut self, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= ASPECT_BINS);
        for (w, word) in self.words.iter_mut().enumerate() {
            let base = w * 64;
            let a = lo.clamp(base, base + 64) - base;
            let b = hi.clamp(base, base + 64) - base;
            if a < b {
                let span = b - a;
                let mask = if span == 64 {
                    !0
                } else {
                    ((1u64 << span) - 1) << a
                };
                *word |= mask;
            }
        }
    }

    /// Adds a non-wrapping interval `[lo, hi] ⊆ [0, 2π]` with endpoints
    /// rounded to the nearest bin boundary (ties round up).
    pub fn insert_rounded(&mut self, lo: f64, hi: f64) {
        let qlo = ((lo / ASPECT_BIN_WIDTH).round() as i64).clamp(0, ASPECT_BINS as i64) as usize;
        let qhi = ((hi / ASPECT_BIN_WIDTH).round() as i64).clamp(0, ASPECT_BINS as i64) as usize;
        if qlo < qhi {
            self.set_range(qlo, qhi);
        }
    }

    /// Adds every bin intersecting the non-wrapping interval `[lo, hi]`
    /// (over-approximation).
    pub fn insert_outer(&mut self, lo: f64, hi: f64) {
        if hi <= lo {
            return;
        }
        let qlo = ((lo / ASPECT_BIN_WIDTH).floor() as i64).clamp(0, ASPECT_BINS as i64) as usize;
        let qhi = ((hi / ASPECT_BIN_WIDTH).ceil() as i64).clamp(0, ASPECT_BINS as i64) as usize;
        self.set_range(qlo, qhi.max(qlo));
    }

    /// Adds every bin contained in `[lo + margin, hi − margin]`
    /// (under-approximation by at least `margin` on each side).
    pub fn insert_inner(&mut self, lo: f64, hi: f64, margin: f64) {
        let qlo = (((lo + margin) / ASPECT_BIN_WIDTH).ceil() as i64).clamp(0, ASPECT_BINS as i64)
            as usize;
        let qhi = (((hi - margin) / ASPECT_BIN_WIDTH).floor() as i64).clamp(0, ASPECT_BINS as i64)
            as usize;
        if qlo < qhi {
            self.set_range(qlo, qhi);
        }
    }

    /// Adds an arc with rounded quantization (wrap handled by splitting at
    /// the zero direction, like [`ArcSet`]).
    pub fn insert_arc_rounded(&mut self, arc: Arc) {
        for (lo, hi) in arc.split() {
            self.insert_rounded(lo, hi);
        }
    }

    /// The rounded quantization of a single arc.
    #[must_use]
    pub fn rounded_of_arc(arc: Arc) -> Self {
        let mut b = AspectBits::new();
        b.insert_arc_rounded(arc);
        b
    }

    /// The outer (over-approximating) quantization of a single arc: the
    /// exact arc is a subset of the returned bins.
    #[must_use]
    pub fn outer_of_arc(arc: Arc) -> Self {
        let mut b = AspectBits::new();
        for (lo, hi) in arc.split() {
            b.insert_outer(lo, hi);
        }
        b
    }

    /// The inner (under-approximating) quantization of an [`ArcSet`]: every
    /// returned bin, dilated by [`ANGLE_EPS`] on each side, lies inside the
    /// set. Intervals meeting at the zero split are treated independently,
    /// which only makes the approximation more conservative.
    #[must_use]
    pub fn inner_of_set(set: &ArcSet) -> Self {
        let mut b = AspectBits::new();
        for (lo, hi) in set.iter() {
            b.insert_inner(lo, hi, 2.0 * ANGLE_EPS);
        }
        b
    }
}

impl fmt::Debug for AspectBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AspectBits[{:016x}{:016x}]",
            self.words[1], self.words[0]
        )
    }
}

/// Iterator over the set bins of an [`AspectBits`], from
/// [`AspectBits::iter_bins`].
pub struct BinIter {
    words: [u64; 2],
    word: usize,
}

impl Iterator for BinIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word < 2 {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] = w & (w - 1);
                return Some(self.word * 64 + bit);
            }
            self.word += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Angle;

    fn arc_deg(center: f64, half: f64) -> Arc {
        Arc::centered(Angle::from_degrees(center), Angle::from_degrees(half))
    }

    #[test]
    fn empty_and_full() {
        assert!(AspectBits::new().is_empty());
        assert_eq!(AspectBits::new().count(), 0);
        assert_eq!(AspectBits::full().count(), ASPECT_BINS as u32);
        assert!((AspectBits::full().measure() - TAU).abs() < 1e-12);
    }

    #[test]
    fn rounded_measure_close_to_exact() {
        for (c, h) in [(0.0, 20.0), (90.0, 45.0), (355.0, 30.0), (180.0, 90.0)] {
            let arc = arc_deg(c, h);
            let bits = AspectBits::rounded_of_arc(arc);
            let exact = ArcSet::from_arc(arc).measure();
            assert!(
                (bits.measure() - exact).abs() <= 2.0 * ASPECT_BIN_WIDTH,
                "rounded measure off at center={c} half={h}"
            );
        }
    }

    #[test]
    fn outer_contains_rounded_and_inner() {
        let arc = arc_deg(123.0, 31.0);
        let outer = AspectBits::outer_of_arc(arc);
        let rounded = AspectBits::rounded_of_arc(arc);
        let inner = AspectBits::inner_of_set(&ArcSet::from_arc(arc));
        assert!(outer.contains_all(rounded));
        assert!(outer.contains_all(inner));
        assert!(rounded.contains_all(inner));
    }

    #[test]
    fn inner_bins_lie_inside_set() {
        let set: ArcSet = [arc_deg(10.0, 25.0), arc_deg(200.0, 40.0), arc_deg(0.0, 8.0)]
            .into_iter()
            .collect();
        let inner = AspectBits::inner_of_set(&set);
        for bin in inner.iter_bins() {
            let mid = (bin as f64 + 0.5) * ASPECT_BIN_WIDTH;
            assert!(
                set.contains(Angle::from_radians(mid)),
                "inner bin {bin} midpoint outside set"
            );
        }
    }

    #[test]
    fn outer_covers_arc_directions() {
        let arc = arc_deg(350.0, 25.0); // wraps zero
        let outer = AspectBits::outer_of_arc(arc);
        for k in 0..720 {
            let a = Angle::from_degrees(f64::from(k) / 2.0);
            if arc.contains(a) {
                let bin = ((a.radians() / ASPECT_BIN_WIDTH) as usize).min(ASPECT_BINS - 1);
                assert!(outer.get(bin), "direction {k}/2° on arc but bin unset");
            }
        }
    }

    #[test]
    fn set_operations() {
        let a = AspectBits::rounded_of_arc(arc_deg(0.0, 45.0));
        let b = AspectBits::rounded_of_arc(arc_deg(45.0, 45.0));
        let mut u = a;
        u.union_with(b);
        assert!(u.contains_all(a) && u.contains_all(b));
        assert_eq!(u.count(), a.count() + b.minus(a).count());
        assert!(a.intersects(b)); // the two 90° arcs overlap near 0°+45°
        assert_eq!(a.intersect(b).count() + a.minus(b).count(), a.count());
        let far = AspectBits::rounded_of_arc(arc_deg(180.0, 10.0));
        assert!(!a.intersects(far));
    }

    #[test]
    fn iter_bins_roundtrip() {
        let bits = AspectBits::rounded_of_arc(arc_deg(350.0, 20.0));
        let mut rebuilt = AspectBits::new();
        let collected: Vec<usize> = bits.iter_bins().collect();
        assert!(collected.windows(2).all(|w| w[0] < w[1]));
        for bin in &collected {
            rebuilt.set_range(*bin, bin + 1);
        }
        assert_eq!(rebuilt, bits);
        assert_eq!(collected.len(), bits.count() as usize);
    }

    #[test]
    fn full_arc_sets_every_bin() {
        assert_eq!(AspectBits::rounded_of_arc(Arc::full()), AspectBits::full());
        assert_eq!(AspectBits::outer_of_arc(Arc::full()), AspectBits::full());
        assert!(AspectBits::rounded_of_arc(Arc::empty()).is_empty());
    }
}
