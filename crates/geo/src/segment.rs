use serde::{Deserialize, Serialize};

use crate::Point;

/// A line segment on the plane — an *occluder* (wall, building edge) for
/// line-of-sight tests.
///
/// The paper's coverage model assumes free line of sight inside the
/// camera sector; real disaster scenes have rubble and walls. Segments
/// plus [`Sector::contains_occluded`](crate::Sector::contains_occluded)
/// extend the model with visibility, conservatively: anything behind an
/// occluder is uncovered.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Point, Segment};
/// let wall = Segment::new(Point::new(0.0, -5.0), Point::new(0.0, 5.0));
/// let ray = Segment::new(Point::new(-3.0, 0.0), Point::new(3.0, 0.0));
/// assert!(wall.intersects(&ray));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length, meters.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Whether two segments intersect (including touching endpoints and
    /// collinear overlap).
    #[must_use]
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        // collinear / endpoint-touching cases
        (d1 == 0.0 && on_segment(other.a, other.b, self.a))
            || (d2 == 0.0 && on_segment(other.a, other.b, self.b))
            || (d3 == 0.0 && on_segment(self.a, self.b, other.a))
            || (d4 == 0.0 && on_segment(self.a, self.b, other.b))
    }

    /// Whether the open sight line from `eye` to `target` is blocked by
    /// this segment. Touching the segment exactly at `eye` or `target`
    /// does **not** count as blocked (cameras can stand against a wall).
    #[must_use]
    pub fn blocks(&self, eye: Point, target: Point) -> bool {
        let ray = Segment::new(eye, target);
        if !self.intersects(&ray) {
            return false;
        }
        // Un-block sightlines that merely touch the occluder at one of
        // the ray's endpoints.
        let touches_eye = orient(self.a, self.b, eye) == 0.0 && on_segment(self.a, self.b, eye);
        let touches_target =
            orient(self.a, self.b, target) == 0.0 && on_segment(self.a, self.b, target);
        if touches_eye || touches_target {
            // blocked only if the occluder also crosses the interior
            let mid = Point::new((eye.x + target.x) / 2.0, (eye.y + target.y) / 2.0);
            return orient(self.a, self.b, mid) == 0.0 && on_segment(self.a, self.b, mid);
        }
        true
    }
}

/// Cross-product orientation of `c` relative to the directed line `a→b`:
/// positive = left, negative = right, 0 = collinear.
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// For collinear `p` with segment `a–b`: is `p` within the bounding box?
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) - 1e-12
        && p.x <= a.x.max(b.x) + 1e-12
        && p.y >= a.y.min(b.y) - 1e-12
        && p.y <= a.y.max(b.y) + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(seg(-1.0, 0.0, 1.0, 0.0).intersects(&seg(0.0, -1.0, 0.0, 1.0)));
        assert!(!seg(-1.0, 0.0, 1.0, 0.0).intersects(&seg(2.0, -1.0, 2.0, 1.0)));
    }

    #[test]
    fn touching_endpoints_intersect() {
        assert!(seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(1.0, 0.0, 2.0, 1.0)));
        // T-junction
        assert!(seg(-1.0, 0.0, 1.0, 0.0).intersects(&seg(0.0, 0.0, 0.0, 2.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        assert!(seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(1.0, 0.0, 3.0, 0.0)));
        assert!(!seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(2.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        assert!(!seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(0.0, 1.0, 2.0, 1.0)));
    }

    #[test]
    fn wall_blocks_sight_line() {
        let wall = seg(0.0, -5.0, 0.0, 5.0);
        assert!(wall.blocks(Point::new(-3.0, 0.0), Point::new(3.0, 0.0)));
        assert!(!wall.blocks(Point::new(-3.0, 0.0), Point::new(-1.0, 0.0)));
        // sight line past the wall's end is clear
        assert!(!wall.blocks(Point::new(-3.0, 6.0), Point::new(3.0, 6.0)));
    }

    #[test]
    fn touching_at_eye_or_target_is_clear() {
        let wall = seg(0.0, -5.0, 0.0, 5.0);
        // camera standing exactly against the wall, looking away from it
        assert!(!wall.blocks(Point::new(0.0, 0.0), Point::new(3.0, 0.0)));
        // target exactly on the wall face
        assert!(!wall.blocks(Point::new(3.0, 0.0), Point::new(0.0, 0.0)));
    }

    #[test]
    fn length() {
        assert_eq!(seg(0.0, 0.0, 3.0, 4.0).length(), 5.0);
    }
}
