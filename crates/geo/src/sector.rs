use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Angle, Arc, Point};

/// The coverage area of a photo: a circular sector (Fig. 1(a) of the paper).
///
/// A photo taken at location `l` with coverage range `r`, field-of-view `φ`
/// and orientation `d` covers exactly the points within distance `r` of `l`
/// whose bearing from `l` deviates from `d` by at most `φ/2`.
///
/// # Example
///
/// ```
/// use photodtn_geo::{Angle, Point, Sector};
/// let s = Sector::new(
///     Point::new(0.0, 0.0),
///     100.0,
///     Angle::from_degrees(60.0),  // field of view
///     Angle::from_degrees(90.0),  // pointing north
/// );
/// assert!(s.contains(Point::new(0.0, 80.0)));
/// assert!(!s.contains(Point::new(0.0, 120.0))); // out of range
/// assert!(!s.contains(Point::new(80.0, 0.0)));  // outside the FoV
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sector {
    apex: Point,
    range: f64,
    fov: Angle,
    orientation: Angle,
}

impl Sector {
    /// Creates a sector from the photo metadata tuple `(l, r, φ, d)`.
    ///
    /// Negative or non-finite ranges are clamped to zero (an empty sector).
    /// Fields of view wider than `2π` are clamped by [`Angle`]'s
    /// normalization.
    #[must_use]
    pub fn new(apex: Point, range: f64, fov: Angle, orientation: Angle) -> Self {
        let range = if range.is_finite() {
            range.max(0.0)
        } else {
            0.0
        };
        Sector {
            apex,
            range,
            fov,
            orientation,
        }
    }

    /// Camera location `l`.
    #[must_use]
    pub fn apex(self) -> Point {
        self.apex
    }

    /// Coverage range `r`, meters.
    #[must_use]
    pub fn range(self) -> f64 {
        self.range
    }

    /// Field of view `φ`.
    #[must_use]
    pub fn fov(self) -> Angle {
        self.fov
    }

    /// Orientation `d` (direction the camera points).
    #[must_use]
    pub fn orientation(self) -> Angle {
        self.orientation
    }

    /// Whether point `p` lies inside the coverage area.
    #[must_use]
    pub fn contains(self, p: Point) -> bool {
        let v = p - self.apex;
        let dist_sq = v.x * v.x + v.y * v.y;
        if dist_sq > self.range * self.range {
            return false;
        }
        if dist_sq == 0.0 {
            // The camera location itself: inside for any non-empty sector.
            return self.range > 0.0;
        }
        let half = self.fov.radians() / 2.0;
        self.orientation.separation(v.direction()).radians() <= half
    }

    /// The *viewing direction* of a PoI at `p`: the direction of the vector
    /// from the PoI to the camera (`x→l` in the paper). This is the center
    /// of the aspect arc the photo covers.
    ///
    /// Returns [`Angle::ZERO`] if the PoI coincides with the camera.
    #[must_use]
    pub fn viewing_direction(self, p: Point) -> Angle {
        p.bearing(self.apex)
    }

    /// The arc of aspects of a PoI at `p` covered by this photo, given the
    /// effective angle `θ` — or `None` when the PoI is outside the coverage
    /// area.
    ///
    /// Per §II-B: aspect `v` is covered iff `p` is inside the sector and
    /// `∠(v, x→l) < θ`.
    #[must_use]
    pub fn aspect_arc(self, p: Point, effective_angle: Angle) -> Option<Arc> {
        if !self.contains(p) {
            return None;
        }
        Some(Arc::centered(self.viewing_direction(p), effective_angle))
    }

    /// Area of the sector in square meters, `φ/2 · r²`.
    #[must_use]
    pub fn area(self) -> f64 {
        0.5 * self.fov.radians() * self.range * self.range
    }

    /// Whether `p` is inside the coverage area **and** visible from the
    /// camera past the given occluders (walls, rubble — see
    /// [`Segment`](crate::Segment)).
    ///
    /// With no occluders this equals [`contains`](Self::contains); every
    /// added occluder can only shrink the covered set.
    #[must_use]
    pub fn contains_occluded(self, p: Point, occluders: &[crate::Segment]) -> bool {
        self.contains(p) && !occluders.iter().any(|o| o.blocks(self.apex, p))
    }
}

impl fmt::Display for Sector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sector(at {}, r={:.0}m, fov={}, dir={})",
            self.apex, self.range, self.fov, self.orientation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn north_sector() -> Sector {
        Sector::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(60.0),
            Angle::from_degrees(90.0),
        )
    }

    #[test]
    fn contains_respects_range_and_fov() {
        let s = north_sector();
        assert!(s.contains(Point::new(0.0, 50.0)));
        assert!(s.contains(Point::new(20.0, 50.0))); // bearing ≈ 68°, within ±30°
        assert!(!s.contains(Point::new(60.0, 50.0))); // bearing ≈ 40°, outside
        assert!(!s.contains(Point::new(0.0, 101.0)));
        // boundary: exactly on range
        assert!(s.contains(Point::new(0.0, 100.0)));
    }

    #[test]
    fn apex_is_inside() {
        let s = north_sector();
        assert!(s.contains(Point::new(0.0, 0.0)));
        let empty = Sector::new(
            Point::new(0.0, 0.0),
            0.0,
            Angle::from_degrees(60.0),
            Angle::ZERO,
        );
        assert!(!empty.contains(Point::new(0.0, 0.0)));
    }

    #[test]
    fn viewing_direction_points_from_poi_to_camera() {
        let s = north_sector();
        let poi = Point::new(0.0, 50.0);
        // camera is south of the PoI → viewing direction is 270°
        assert!((s.viewing_direction(poi).to_degrees() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn aspect_arc_centered_on_viewing_direction() {
        let s = north_sector();
        let poi = Point::new(0.0, 50.0);
        let arc = s.aspect_arc(poi, Angle::from_degrees(40.0)).unwrap();
        assert!(arc.contains(Angle::from_degrees(270.0)));
        assert!(arc.contains(Angle::from_degrees(250.0)));
        assert!(!arc.contains(Angle::from_degrees(200.0)));
        assert!((arc.width().to_degrees() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn aspect_arc_none_outside() {
        let s = north_sector();
        assert!(s
            .aspect_arc(Point::new(0.0, 200.0), Angle::from_degrees(30.0))
            .is_none());
    }

    #[test]
    fn area_formula() {
        let s = north_sector();
        let expect = 0.5 * 60f64.to_radians() * 100.0 * 100.0;
        assert!((s.area() - expect).abs() < 1e-9);
    }

    #[test]
    fn occluders_only_shrink_coverage() {
        use crate::Segment;
        let s = north_sector();
        let target = Point::new(0.0, 50.0);
        assert!(s.contains_occluded(target, &[]));
        // a wall between camera and target blocks it
        let wall = Segment::new(Point::new(-10.0, 25.0), Point::new(10.0, 25.0));
        assert!(!s.contains_occluded(target, &[wall]));
        // a wall beyond the target does not
        let behind = Segment::new(Point::new(-10.0, 80.0), Point::new(10.0, 80.0));
        assert!(s.contains_occluded(target, &[behind]));
        // anything occluded is also outside => implication holds
        assert!(!s.contains_occluded(Point::new(0.0, 200.0), &[]));
    }

    #[test]
    fn invalid_range_clamped() {
        let s = Sector::new(Point::new(0.0, 0.0), f64::NAN, Angle::ZERO, Angle::ZERO);
        assert_eq!(s.range(), 0.0);
        let s = Sector::new(Point::new(0.0, 0.0), -5.0, Angle::ZERO, Angle::ZERO);
        assert_eq!(s.range(), 0.0);
    }
}
