use std::fmt;
use std::ops::{Add, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::TAU;

/// An angle on the circle, stored in radians and normalized to `[0, 2π)`.
///
/// The paper expresses aspects as "an angle in `[0, 2π]`. Angle 0 represents
/// the vector pointing to the right (east on the map)". We keep the
/// mathematical counter-clockwise convention internally; the clockwise
/// map convention of the paper only flips signs, which is irrelevant to
/// coverage *measures*. Use [`Angle::from_degrees_clockwise`] when
/// transcribing figures from the paper verbatim.
///
/// # Example
///
/// ```
/// use photodtn_geo::Angle;
/// let a = Angle::from_degrees(350.0);
/// let b = Angle::from_degrees(20.0);
/// // shortest separation wraps around zero
/// assert!((a.separation(b).to_degrees() - 30.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle (pointing east).
    pub const ZERO: Angle = Angle(0.0);
    /// Half a turn, `π` radians.
    pub const PI: Angle = Angle(std::f64::consts::PI);

    /// Creates an angle from radians, normalizing into `[0, 2π)`.
    ///
    /// Non-finite input is mapped to zero; the coverage model never
    /// produces non-finite directions, so this is a defensive default.
    #[must_use]
    pub fn from_radians(rad: f64) -> Self {
        if !rad.is_finite() {
            return Angle(0.0);
        }
        let mut r = rad % TAU;
        if r < 0.0 {
            r += TAU;
        }
        // `% TAU` of a value slightly below 0 can round to TAU itself.
        if r >= TAU {
            r = 0.0;
        }
        Angle(r)
    }

    /// Creates an angle from degrees (counter-clockwise from east).
    #[must_use]
    pub fn from_degrees(deg: f64) -> Self {
        Self::from_radians(deg.to_radians())
    }

    /// Creates an angle from degrees measured *clockwise* from east, the
    /// convention used in the paper's figures.
    #[must_use]
    pub fn from_degrees_clockwise(deg: f64) -> Self {
        Self::from_radians(-deg.to_radians())
    }

    /// The angle in radians, in `[0, 2π)`.
    #[must_use]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// The angle in degrees, in `[0, 360)`.
    #[must_use]
    pub fn to_degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Shortest angular separation between two directions, in `[0, π]`.
    ///
    /// This is the quantity compared against the *effective angle* `θ` when
    /// deciding whether a photo covers an aspect.
    #[must_use]
    pub fn separation(self, other: Angle) -> Angle {
        let d = (self.0 - other.0).abs();
        Angle(d.min(TAU - d))
    }

    /// Clockwise distance from `self` to `other`, in `[0, 2π)`.
    #[must_use]
    pub fn distance_ccw(self, other: Angle) -> f64 {
        let d = other.0 - self.0;
        if d < 0.0 {
            d + TAU
        } else {
            d
        }
    }

    /// Linear interpolation along the shorter arc from `self` to `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`.
    #[must_use]
    pub fn slerp(self, other: Angle, t: f64) -> Angle {
        let mut d = other.0 - self.0;
        if d > std::f64::consts::PI {
            d -= TAU;
        } else if d < -std::f64::consts::PI {
            d += TAU;
        }
        Angle::from_radians(self.0 + d * t)
    }

    /// Sine of the angle.
    #[must_use]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    #[must_use]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::ZERO
    }
}

impl fmt::Debug for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Angle({:.4}rad = {:.2}°)", self.0, self.to_degrees())
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.to_degrees())
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 - rhs.0)
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle::from_radians(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_into_range() {
        assert_eq!(Angle::from_radians(TAU).radians(), 0.0);
        assert_eq!(Angle::from_radians(-TAU).radians(), 0.0);
        assert!((Angle::from_radians(3.0 * TAU + 1.0).radians() - 1.0).abs() < 1e-12);
        let a = Angle::from_radians(-0.5);
        assert!(a.radians() >= 0.0 && a.radians() < TAU);
        assert!((a.radians() - (TAU - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn non_finite_maps_to_zero() {
        assert_eq!(Angle::from_radians(f64::NAN).radians(), 0.0);
        assert_eq!(Angle::from_radians(f64::INFINITY).radians(), 0.0);
    }

    #[test]
    fn degrees_roundtrip() {
        let a = Angle::from_degrees(123.0);
        assert!((a.to_degrees() - 123.0).abs() < 1e-9);
    }

    #[test]
    fn clockwise_constructor_mirrors() {
        let cw = Angle::from_degrees_clockwise(90.0);
        assert!((cw.to_degrees() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn separation_is_symmetric_and_wraps() {
        let a = Angle::from_degrees(10.0);
        let b = Angle::from_degrees(350.0);
        assert!((a.separation(b).to_degrees() - 20.0).abs() < 1e-9);
        assert!((b.separation(a).to_degrees() - 20.0).abs() < 1e-9);
        assert_eq!(a.separation(a).radians(), 0.0);
    }

    #[test]
    fn separation_max_is_pi() {
        let a = Angle::ZERO;
        let b = Angle::PI;
        assert!((a.separation(b).radians() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn ccw_distance() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        assert!((a.distance_ccw(b).to_degrees() - 20.0).abs() < 1e-9);
        assert!((b.distance_ccw(a).to_degrees() - 340.0).abs() < 1e-9);
    }

    #[test]
    fn slerp_takes_short_way() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        let mid = a.slerp(b, 0.5);
        assert!(mid.to_degrees() < 1e-9 || mid.to_degrees() > 359.0);
    }

    #[test]
    fn arithmetic_wraps() {
        let s = Angle::from_degrees(350.0) + Angle::from_degrees(20.0);
        assert!((s.to_degrees() - 10.0).abs() < 1e-9);
        let d = Angle::from_degrees(10.0) - Angle::from_degrees(20.0);
        assert!((d.to_degrees() - 350.0).abs() < 1e-9);
    }
}
