//! Planar geometry primitives for the photodtn photo-coverage model.
//!
//! The photo coverage model of Wu et al. (ICDCS'16) reasons about three
//! geometric notions:
//!
//! * **Points and vectors** on the plane ([`Point`], [`Vec2`]) — camera and
//!   Point-of-Interest (PoI) locations, in meters.
//! * **Angles and arcs** on the unit circle ([`Angle`], [`Arc`], [`ArcSet`]) —
//!   *aspects* of a PoI are directions in `[0, 2π)`; the set of covered
//!   aspects is a union of arcs whose total measure is the *aspect coverage*.
//! * **Camera sectors** ([`Sector`]) — a photo covers the circular sector
//!   determined by the camera location, coverage range, field-of-view and
//!   orientation (Fig. 1(a) of the paper).
//!
//! # Example
//!
//! ```
//! use photodtn_geo::{Angle, Arc, ArcSet, Point, Sector};
//!
//! // A camera at the origin pointing east with a 60° field of view and
//! // 100 m range.
//! let sector = Sector::new(Point::new(0.0, 0.0), 100.0, Angle::from_degrees(60.0), Angle::ZERO);
//! assert!(sector.contains(Point::new(50.0, 0.0)));
//! assert!(!sector.contains(Point::new(-50.0, 0.0)));
//!
//! // Aspect arithmetic: two opposite 40°-wide views cover 80° in total.
//! let mut set = ArcSet::new();
//! set.insert(Arc::centered(Angle::ZERO, Angle::from_degrees(20.0)));
//! set.insert(Arc::centered(Angle::PI, Angle::from_degrees(20.0)));
//! assert!((set.measure().to_degrees() - 80.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
mod arc;
mod arcset;
mod aspectbits;
mod bbox;
mod point;
mod sector;
mod segment;

pub use angle::Angle;
pub use arc::Arc;
pub use arcset::ArcSet;
pub use aspectbits::{AspectBits, BinIter, ASPECT_BINS, ASPECT_BIN_WIDTH};
pub use bbox::BBox;
pub use point::{Point, Vec2};
pub use sector::Sector;
pub use segment::Segment;

/// The full circle, `2π` radians.
pub const TAU: f64 = std::f64::consts::TAU;

/// Tolerance used when comparing angular quantities.
///
/// Arc endpoints closer than this are considered coincident; this absorbs
/// floating point noise accumulated by repeated unions and subtractions.
pub const ANGLE_EPS: f64 = 1e-9;
