use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::Angle;

/// A location on the plane, in meters.
///
/// Camera and PoI positions live in a local tangent-plane coordinate system
/// (east = +x, north = +y); the simulations use a 6300 m × 6300 m region as
/// in the paper (§V-A).
///
/// # Example
///
/// ```
/// use photodtn_geo::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate, meters.
    pub x: f64,
    /// North coordinate, meters.
    pub y: f64,
}

/// A displacement between two [`Point`]s, in meters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// East component, meters.
    pub x: f64,
    /// North component, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from east/north coordinates (meters).
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`; avoids the square root when
    /// only comparisons are needed.
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Direction from `self` towards `other`.
    ///
    /// Returns [`Angle::ZERO`] when the points coincide.
    #[must_use]
    pub fn bearing(self, other: Point) -> Angle {
        (other - self).direction()
    }

    /// The point at `distance` meters from `self` in direction `dir`.
    #[must_use]
    pub fn offset(self, dir: Angle, distance: f64) -> Point {
        self + Vec2::from_polar(dir, distance)
    }
}

impl Vec2 {
    /// Creates a vector from east/north components.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a vector of length `r` pointing in direction `dir`.
    #[must_use]
    pub fn from_polar(dir: Angle, r: f64) -> Self {
        Vec2 {
            x: r * dir.cos(),
            y: r * dir.sin(),
        }
    }

    /// Euclidean length, meters.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Direction of this vector; [`Angle::ZERO`] for the zero vector.
    #[must_use]
    pub fn direction(self) -> Angle {
        if self.x == 0.0 && self.y == 0.0 {
            Angle::ZERO
        } else {
            Angle::from_radians(self.y.atan2(self.x))
        }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_bearing() {
        let a = Point::new(0.0, 0.0);
        let n = Point::new(0.0, 10.0);
        assert_eq!(a.distance(n), 10.0);
        assert!((a.bearing(n).to_degrees() - 90.0).abs() < 1e-9);
        let w = Point::new(-5.0, 0.0);
        assert!((a.bearing(w).to_degrees() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn zero_vector_direction_is_zero() {
        assert_eq!(Vec2::new(0.0, 0.0).direction(), Angle::ZERO);
        assert_eq!(
            Point::new(1.0, 1.0).bearing(Point::new(1.0, 1.0)),
            Angle::ZERO
        );
    }

    #[test]
    fn offset_roundtrip() {
        let p = Point::new(10.0, -3.0);
        let q = p.offset(Angle::from_degrees(37.0), 42.0);
        assert!((p.distance(q) - 42.0).abs() < 1e-9);
        assert!((p.bearing(q).to_degrees() - 37.0).abs() < 1e-9);
    }

    #[test]
    fn polar_roundtrip() {
        let v = Vec2::from_polar(Angle::from_degrees(200.0), 7.0);
        assert!((v.norm() - 7.0).abs() < 1e-12);
        assert!((v.direction().to_degrees() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn vector_arithmetic() {
        let v = Vec2::new(1.0, 2.0) + Vec2::new(3.0, -1.0);
        assert_eq!(v, Vec2::new(4.0, 1.0));
        assert_eq!(v * 2.0, Vec2::new(8.0, 2.0));
        assert_eq!(v / 2.0, Vec2::new(2.0, 0.5));
        assert_eq!(-v, Vec2::new(-4.0, -1.0));
        assert_eq!(v.dot(Vec2::new(1.0, 1.0)), 5.0);
    }

    #[test]
    fn distance_sq_consistent() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-9);
    }
}
