//! Property tests for segment intersection and occluded sector coverage.

use photodtn_geo::{Angle, Point, Sector, Segment};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-200.0..200.0f64, -200.0..200.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_sector() -> impl Strategy<Value = Sector> {
    (arb_point(), 20.0..200.0f64, 20.0..120.0f64, 0.0..360.0f64).prop_map(|(apex, r, fov, dir)| {
        Sector::new(apex, r, Angle::from_degrees(fov), Angle::from_degrees(dir))
    })
}

proptest! {
    #[test]
    fn intersection_is_symmetric(a in arb_segment(), b in arb_segment()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn segment_intersects_itself_and_endpoints(s in arb_segment()) {
        prop_assert!(s.intersects(&s));
        prop_assert!(s.intersects(&Segment::new(s.a, s.a)));
        prop_assert!(s.intersects(&Segment::new(s.b, s.b)));
    }

    #[test]
    fn blocking_is_symmetric_in_eye_and_target(w in arb_segment(), p in arb_point(), q in arb_point()) {
        // visibility is symmetric: if the wall blocks p→q it blocks q→p
        prop_assert_eq!(w.blocks(p, q), w.blocks(q, p));
    }

    #[test]
    fn occluders_never_add_coverage(
        sector in arb_sector(),
        p in arb_point(),
        walls in prop::collection::vec(arb_segment(), 0..4),
    ) {
        if sector.contains_occluded(p, &walls) {
            prop_assert!(sector.contains(p), "occluded-visible point outside the sector");
        }
        // adding one more wall can only remove points
        if !walls.is_empty() && !sector.contains_occluded(p, &walls) {
            let mut more = walls.clone();
            more.push(Segment::new(Point::new(-500.0, -500.0), Point::new(-499.0, -500.0)));
            prop_assert!(!sector.contains_occluded(p, &more));
        }
    }

    #[test]
    fn far_away_walls_never_block(sector in arb_sector(), p in arb_point()) {
        // a wall entirely outside the scene's bounding box cannot block
        let far = Segment::new(Point::new(10_000.0, 10_000.0), Point::new(10_001.0, 10_000.0));
        prop_assert_eq!(sector.contains(p), sector.contains_occluded(p, &[far]));
    }
}
