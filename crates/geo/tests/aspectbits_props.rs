//! Property tests pinning the fixed-width aspect bitset
//! ([`AspectBits`]) against the exact interval arithmetic ([`ArcSet`]) it
//! approximates. The quantization contract (see DESIGN.md, "Aspect
//! quantization contract"):
//!
//! * **rounded** — endpoints round to the nearest bin boundary; the union
//!   measure tracks the exact one within one bin width per inserted arc;
//! * **outer** — never misses a direction the arc covers
//!   (over-approximation, no false negatives);
//! * **inner** — every bin lies entirely inside the exact set
//!   (under-approximation, no false positives), which is what makes the
//!   engine's full-coverage skip exact-safe: `outer(arc) ⊆ inner(own)`
//!   proves the arc adds nothing.

use photodtn_geo::{Angle, Arc, ArcSet, AspectBits, ASPECT_BINS, ASPECT_BIN_WIDTH};
use proptest::prelude::*;

fn arb_arc() -> impl Strategy<Value = Arc> {
    (0.0..360.0f64, 0.0..360.0f64)
        .prop_map(|(start, width)| Arc::new(Angle::from_degrees(start), width.to_radians()))
}

fn arb_arcs() -> impl Strategy<Value = Vec<Arc>> {
    prop::collection::vec(arb_arc(), 0..8)
}

/// The bin a direction falls into.
fn bin_of(a: Angle) -> usize {
    ((a.radians() / ASPECT_BIN_WIDTH) as usize).min(ASPECT_BINS - 1)
}

proptest! {
    #[test]
    fn rounded_union_measure_tracks_exact(arcs in arb_arcs()) {
        let set: ArcSet = arcs.iter().copied().collect();
        let mut bits = AspectBits::new();
        for a in &arcs {
            bits.insert_arc_rounded(*a);
        }
        // Each rounded endpoint moves at most half a bin, so each arc
        // contributes at most one bin width of symmetric difference.
        let tol = (arcs.len() as f64 + 1.0) * ASPECT_BIN_WIDTH;
        prop_assert!(
            (bits.measure() - set.measure()).abs() <= tol,
            "quantized measure {} drifted from exact {} (tol {})",
            bits.measure(), set.measure(), tol
        );
    }

    #[test]
    fn measure_is_count_times_bin_width(arcs in arb_arcs()) {
        let mut bits = AspectBits::new();
        for a in &arcs {
            bits.insert_arc_rounded(*a);
        }
        let expect = f64::from(bits.count()) * ASPECT_BIN_WIDTH;
        prop_assert!((bits.measure() - expect).abs() < 1e-12);
    }

    #[test]
    fn outer_contains_rounded_contains_inner(a in arb_arc()) {
        let outer = AspectBits::outer_of_arc(a);
        let rounded = AspectBits::rounded_of_arc(a);
        let inner = AspectBits::inner_of_set(&ArcSet::from_arc(a));
        prop_assert!(outer.contains_all(rounded), "outer must contain rounded");
        prop_assert!(rounded.contains_all(inner), "rounded must contain inner");
    }

    #[test]
    fn outer_covers_every_direction_in_arc(a in arb_arc(), frac in 0.0..1.0f64) {
        prop_assume!(!a.is_empty());
        // No false negatives: any direction the exact arc covers falls in
        // an outer bin — including across the 0/2π wrap.
        let dir = a.start() + Angle::from_radians(a.width() * frac);
        let outer = AspectBits::outer_of_arc(a);
        prop_assert!(
            outer.get(bin_of(dir)),
            "direction {dir:?} of arc {a:?} missing from outer bits"
        );
    }

    #[test]
    fn inner_bins_lie_inside_the_set(arcs in arb_arcs()) {
        let set: ArcSet = arcs.iter().copied().collect();
        let inner = AspectBits::inner_of_set(&set);
        // No false positives: every inner bin's midpoint is truly covered.
        for bin in inner.iter_bins() {
            let mid = Angle::from_radians((bin as f64 + 0.5) * ASPECT_BIN_WIDTH);
            prop_assert!(
                set.contains(mid),
                "inner bin {bin} midpoint {mid:?} outside the exact set"
            );
        }
    }

    #[test]
    fn set_ops_match_per_bin_semantics(a1 in arb_arc(), a2 in arb_arc()) {
        let x = AspectBits::rounded_of_arc(a1);
        let y = AspectBits::rounded_of_arc(a2);
        let mut union = x;
        union.union_with(y);
        let minus = x.minus(y);
        let inter = x.intersect(y);
        for bin in 0..ASPECT_BINS {
            prop_assert_eq!(union.get(bin), x.get(bin) || y.get(bin));
            prop_assert_eq!(minus.get(bin), x.get(bin) && !y.get(bin));
            prop_assert_eq!(inter.get(bin), x.get(bin) && y.get(bin));
        }
        prop_assert_eq!(x.intersects(y), !inter.is_empty());
        prop_assert_eq!(x.contains_all(y), y.minus(x).is_empty());
        prop_assert_eq!(inter.count() + minus.count(), x.count());
    }

    #[test]
    fn iter_bins_roundtrips(arcs in arb_arcs()) {
        let mut bits = AspectBits::new();
        for a in &arcs {
            bits.insert_arc_rounded(*a);
        }
        let listed: Vec<usize> = bits.iter_bins().collect();
        prop_assert_eq!(listed.len(), bits.count() as usize);
        for w in listed.windows(2) {
            prop_assert!(w[0] < w[1], "iter_bins must ascend");
        }
        for bin in &listed {
            prop_assert!(bits.get(*bin));
        }
    }
}
