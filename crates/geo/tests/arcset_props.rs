//! Property-based tests for [`photodtn_geo::ArcSet`]: the arc-union algebra
//! must behave like a measure algebra on the circle, because aspect
//! coverage (and therefore every result in the paper's evaluation) is
//! computed from it.

use photodtn_geo::{Angle, Arc, ArcSet, TAU};
use proptest::prelude::*;

fn arb_arc() -> impl Strategy<Value = Arc> {
    (0.0..360.0f64, 0.0..360.0f64)
        .prop_map(|(start, width)| Arc::new(Angle::from_degrees(start), width.to_radians()))
}

fn arb_arcset() -> impl Strategy<Value = ArcSet> {
    prop::collection::vec(arb_arc(), 0..8).prop_map(|arcs| arcs.into_iter().collect())
}

const EPS: f64 = 1e-6;

proptest! {
    #[test]
    fn measure_bounded(s in arb_arcset()) {
        let m = s.measure();
        prop_assert!((0.0..=TAU + EPS).contains(&m));
    }

    #[test]
    fn union_is_monotone(s in arb_arcset(), a in arb_arc()) {
        let mut t = s.clone();
        t.insert(a);
        prop_assert!(t.measure() + EPS >= s.measure());
        prop_assert!(t.measure() + EPS >= ArcSet::from_arc(a).measure());
    }

    #[test]
    fn union_subadditive(s in arb_arcset(), t in arb_arcset()) {
        let u = s.union(&t);
        prop_assert!(u.measure() <= s.measure() + t.measure() + EPS);
        prop_assert!(u.measure() + EPS >= s.measure().max(t.measure()));
    }

    #[test]
    fn union_commutative(s in arb_arcset(), t in arb_arcset()) {
        prop_assert!((s.union(&t).measure() - t.union(&s).measure()).abs() < EPS);
    }

    #[test]
    fn union_idempotent(s in arb_arcset()) {
        prop_assert_eq!(s.union(&s), s.clone());
    }

    #[test]
    fn inclusion_exclusion(s in arb_arcset(), t in arb_arcset()) {
        let u = s.union(&t).measure();
        let i = s.intersection(&t).measure();
        prop_assert!((u + i - s.measure() - t.measure()).abs() < 1e-4,
            "|A∪B| + |A∩B| = |A| + |B| violated: {} + {} vs {} + {}",
            u, i, s.measure(), t.measure());
    }

    #[test]
    fn complement_involution_measure(s in arb_arcset()) {
        let c = s.complement();
        prop_assert!((s.measure() + c.measure() - TAU).abs() < 1e-4);
        let cc = c.complement();
        prop_assert!((cc.measure() - s.measure()).abs() < 1e-4);
    }

    #[test]
    fn difference_law(s in arb_arcset(), t in arb_arcset()) {
        // |A \ B| = |A| - |A ∩ B|
        let d = s.difference(&t).measure();
        let i = s.intersection(&t).measure();
        prop_assert!((d - (s.measure() - i)).abs() < 1e-4);
    }

    #[test]
    fn uncovered_measure_matches_union_gain(s in arb_arcset(), a in arb_arc()) {
        let gain = s.uncovered_measure(a);
        let mut t = s.clone();
        t.insert(a);
        prop_assert!((gain - (t.measure() - s.measure())).abs() < 1e-4);
    }

    #[test]
    fn contains_consistent_with_insert(s in arb_arcset(), a in arb_arc(), frac in 0.0..1.0f64) {
        prop_assume!(!a.is_empty());
        let probe = a.start() + Angle::from_radians(a.width() * frac);
        let mut t = s.clone();
        t.insert(a);
        prop_assert!(t.contains(probe));
    }

    #[test]
    fn canonical_intervals_sorted_disjoint(s in arb_arcset()) {
        let iv: Vec<_> = s.iter().collect();
        for w in iv.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "intervals overlap or touch: {:?}", iv);
        }
        for (lo, hi) in iv {
            prop_assert!(lo < hi);
            prop_assert!(lo >= 0.0 && hi <= TAU + EPS);
        }
    }

    #[test]
    fn difference_into_equals_difference(s in arb_arcset(), t in arb_arcset()) {
        // The allocation-free in-place variant must be *value-identical*
        // to the allocating one — the expected-coverage fast path depends
        // on this to keep selection results byte-identical.
        let mut out = ArcSet::new();
        s.difference_into(&t, &mut out);
        prop_assert_eq!(&out, &s.difference(&t));
        // reuse with stale contents must still be exact
        s.difference_into(&s, &mut out);
        prop_assert_eq!(&out, &s.difference(&s));
    }

    #[test]
    fn assign_arc_equals_from_arc(s in arb_arcset(), a in arb_arc()) {
        let mut reused = s;
        reused.assign_arc(a);
        prop_assert_eq!(reused, ArcSet::from_arc(a));
    }
}
