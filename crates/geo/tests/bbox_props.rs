//! Property-based tests for [`Sector::bbox`]: the sector-scoped grid query
//! of the coverage index is only correct if every point a sector contains
//! lies inside the sector's bounding box.

use photodtn_geo::{Angle, Point, Sector};
use proptest::prelude::*;

fn arb_sector() -> impl Strategy<Value = Sector> {
    (
        -500.0..500.0f64,
        -500.0..500.0f64,
        0.0..300.0f64,
        0.0..360.0f64,
        0.0..360.0f64,
    )
        .prop_map(|(x, y, r, fov, dir)| {
            Sector::new(
                Point::new(x, y),
                r,
                Angle::from_degrees(fov),
                Angle::from_degrees(dir),
            )
        })
}

proptest! {
    #[test]
    fn bbox_contains_every_covered_point(
        s in arb_sector(),
        px in -900.0..900.0f64,
        py in -900.0..900.0f64,
    ) {
        let p = Point::new(px, py);
        if s.contains(p) {
            prop_assert!(s.bbox().contains(p), "{p:?} in {s} but outside {}", s.bbox());
        }
    }

    #[test]
    fn bbox_contains_interior_samples(s in arb_sector(), t in 0.0..1.0f64, u in 0.0..1.0f64) {
        // Sample a point inside the sector by construction: direction
        // within the FoV, distance within the range.
        prop_assume!(s.range() > 0.0);
        // Stay strictly inside the FoV edge and the range so floating-point
        // rounding of offset/bearing cannot push the sample outside.
        let half = s.fov().radians() / 2.0;
        let dir = s.orientation() + Angle::from_radians(0.99 * half * (2.0 * t - 1.0));
        let p = s.apex().offset(dir, 0.99 * s.range() * u);
        if s.contains(p) {
            prop_assert!(s.bbox().contains(p));
        }
    }

    #[test]
    fn bbox_within_disc_bbox(s in arb_sector()) {
        let b = s.bbox();
        let (a, r) = (s.apex(), s.range());
        prop_assert!(b.min.x >= a.x - r - 1e-9 && b.max.x <= a.x + r + 1e-9);
        prop_assert!(b.min.y >= a.y - r - 1e-9 && b.max.y <= a.y + r + 1e-9);
    }
}
