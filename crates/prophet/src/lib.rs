//! PROPHET delivery predictability (Lindgren, Doria, Schelén — the
//! protocol the paper adopts in §III-C to estimate how likely a node's
//! photos reach the command center).
//!
//! The *delivery predictability* `P(a,b) ∈ [0,1]` is maintained with three
//! rules:
//!
//! 1. **Encounter** — when `a` meets `b`:
//!    `P(a,b) ← P(a,b) + (1 − P(a,b)) · P_init`;
//! 2. **Aging** — `P(a,b) ← P(a,b) · γ^k`, where `k` is the number of
//!    elapsed time units since the entry was last aged;
//! 3. **Transitivity** — when `a` meets `b`:
//!    `P(a,c) ← max(P(a,c), P(a,b) · P(b,c) · β)` for every `c` in `b`'s
//!    table.
//!
//! Table I of the paper fixes `(P_init, β, γ) = (0.75, 0.25, 0.98)`.
//! The aging time unit is not stated in the paper; we default to one hour,
//! which makes `γ = 0.98` a gentle decay on trace scales of hundreds of
//! hours (configurable via [`ProphetParams::time_unit`]).
//!
//! # Example
//!
//! ```
//! use photodtn_contacts::NodeId;
//! use photodtn_prophet::{ProphetParams, ProphetRouter};
//!
//! let mut router = ProphetRouter::new(3, ProphetParams::default());
//! router.contact(NodeId(0), NodeId(2), 0.0);     // 0 meets the center (2)
//! router.contact(NodeId(0), NodeId(1), 60.0);    // 1 meets 0
//! let direct = router.predictability(NodeId(0), NodeId(2), 60.0);
//! let transitive = router.predictability(NodeId(1), NodeId(2), 60.0);
//! assert!(direct > 0.7);
//! assert!(transitive > 0.0 && transitive < direct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use photodtn_contacts::{ContactTrace, NodeId};

/// PROPHET protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProphetParams {
    /// Encounter reinforcement `P_init ∈ (0, 1]`.
    pub p_init: f64,
    /// Transitivity damping `β ∈ [0, 1]`.
    pub beta: f64,
    /// Aging factor `γ ∈ (0, 1)` per time unit.
    pub gamma: f64,
    /// Length of one aging time unit, seconds.
    pub time_unit: f64,
}

impl ProphetParams {
    /// Table I values: `(0.75, 0.25, 0.98)` with a one-hour aging unit.
    #[must_use]
    pub fn paper_default() -> Self {
        ProphetParams {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            time_unit: 3600.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.p_init && self.p_init <= 1.0) {
            return Err(format!("p_init {} outside (0, 1]", self.p_init));
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err(format!("beta {} outside [0, 1]", self.beta));
        }
        if !(0.0 < self.gamma && self.gamma < 1.0) {
            return Err(format!("gamma {} outside (0, 1)", self.gamma));
        }
        if !(self.time_unit.is_finite() && self.time_unit > 0.0) {
            return Err(format!("time_unit {} must be positive", self.time_unit));
        }
        Ok(())
    }
}

impl Default for ProphetParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One node's predictability table: `P(self, dest)` for every destination
/// it has (directly or transitively) learned about.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProphetTable {
    entries: HashMap<u32, Entry>,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Entry {
    p: f64,
    last_aged: f64,
}

impl ProphetTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ProphetTable::default()
    }

    /// The aged predictability towards `dest` at time `now` (0 if
    /// unknown). Does not mutate the table — aging is applied lazily.
    #[must_use]
    pub fn predictability(&self, dest: NodeId, now: f64, params: &ProphetParams) -> f64 {
        self.entries
            .get(&dest.0)
            .map_or(0.0, |e| aged(e, now, params))
    }

    /// Number of known destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies the encounter rule for a meeting with `peer` at `now`.
    pub fn encounter(&mut self, peer: NodeId, now: f64, params: &ProphetParams) {
        let e = self.entries.entry(peer.0).or_insert(Entry {
            p: 0.0,
            last_aged: now,
        });
        let p = aged(e, now, params);
        e.p = p + (1.0 - p) * params.p_init;
        e.last_aged = now;
    }

    /// The *raw* `(p, last_aged)` entry towards `dest`, un-aged (`None`
    /// if unknown).
    ///
    /// This exposes the exact stored state so callers can snapshot a
    /// table row and later reproduce [`predictability`] bit-for-bit via
    /// [`aged_value`] — recording the aged value instead would compose
    /// two `powf` calls (`γ^x·γ^y ≠ γ^(x+y)` in floating point) and
    /// break byte-identical replay.
    ///
    /// [`predictability`]: Self::predictability
    #[must_use]
    pub fn entry(&self, dest: NodeId) -> Option<(f64, f64)> {
        self.entries.get(&dest.0).map(|e| (e.p, e.last_aged))
    }

    /// Applies the transitivity rule using the peer's table at `now`.
    pub fn transitive(
        &mut self,
        peer: NodeId,
        peer_table: &ProphetTable,
        now: f64,
        params: &ProphetParams,
    ) {
        let p_ab = self.predictability(peer, now, params);
        if p_ab <= 0.0 {
            return;
        }
        for (&dest, peer_entry) in &peer_table.entries {
            if dest == peer.0 {
                continue;
            }
            let p_bc = aged(peer_entry, now, params);
            let candidate = p_ab * p_bc * params.beta;
            if candidate <= 0.0 {
                continue;
            }
            let e = self.entries.entry(dest).or_insert(Entry {
                p: 0.0,
                last_aged: now,
            });
            let current = aged(e, now, params);
            e.p = current.max(candidate);
            e.last_aged = now;
        }
    }
}

fn aged(e: &Entry, now: f64, params: &ProphetParams) -> f64 {
    aged_value(e.p, e.last_aged, now, params)
}

/// Ages a raw `(p, last_aged)` entry (e.g. from [`ProphetTable::entry`])
/// to time `now` — the single definition of the aging arithmetic, so
/// external replays of snapshotted entries are bit-identical to
/// [`ProphetTable::predictability`].
#[must_use]
pub fn aged_value(p: f64, last_aged: f64, now: f64, params: &ProphetParams) -> f64 {
    let elapsed = (now - last_aged).max(0.0);
    p * params.gamma.powf(elapsed / params.time_unit)
}

/// Predictability state for a whole network: one [`ProphetTable`] per node,
/// fed by contact events.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProphetRouter {
    params: ProphetParams,
    tables: Vec<ProphetTable>,
}

impl ProphetRouter {
    /// Creates state for `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`ProphetParams::validate`].
    #[must_use]
    pub fn new(num_nodes: u32, params: ProphetParams) -> Self {
        params.validate().expect("invalid PROPHET parameters");
        ProphetRouter {
            params,
            tables: vec![ProphetTable::new(); num_nodes as usize],
        }
    }

    /// The protocol parameters.
    #[must_use]
    pub fn params(&self) -> &ProphetParams {
        &self.params
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.tables.len() as u32
    }

    /// Processes a contact between `a` and `b` at time `now`: encounter
    /// updates on both sides, then a mutual transitivity exchange.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn contact(&mut self, a: NodeId, b: NodeId, now: f64) {
        assert!(a.index() < self.tables.len() && b.index() < self.tables.len());
        self.tables[a.index()].encounter(b, now, &self.params);
        self.tables[b.index()].encounter(a, now, &self.params);
        // transitivity uses snapshots of the post-encounter tables
        let ta = self.tables[a.index()].clone();
        let tb = self.tables[b.index()].clone();
        self.tables[a.index()].transitive(b, &tb, now, &self.params);
        self.tables[b.index()].transitive(a, &ta, now, &self.params);
    }

    /// Replays a whole trace (contacts applied at their start times).
    pub fn learn_trace(&mut self, trace: &ContactTrace) {
        for e in trace {
            self.contact(e.a, e.b, e.start);
        }
    }

    /// `P(from, dest)` at time `now`.
    #[must_use]
    pub fn predictability(&self, from: NodeId, dest: NodeId, now: f64) -> f64 {
        self.tables[from.index()].predictability(dest, now, &self.params)
    }

    /// Read access to one node's table.
    #[must_use]
    pub fn table(&self, node: NodeId) -> &ProphetTable {
        &self.tables[node.index()]
    }

    /// Erases `node`'s own delivery-predictability table — the device
    /// rebooted and lost its protocol state. Other nodes' predictability
    /// *towards* `node` is untouched: their information about it is now
    /// stale, exactly the situation the metadata-validity model exists
    /// to handle.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn reset_node(&mut self, node: NodeId) {
        self.tables[node.index()] = ProphetTable::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ProphetParams {
        ProphetParams::paper_default()
    }

    #[test]
    fn paper_defaults_match_table1() {
        let p = params();
        assert_eq!((p.p_init, p.beta, p.gamma), (0.75, 0.25, 0.98));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(ProphetParams {
            p_init: 0.0,
            ..params()
        }
        .validate()
        .is_err());
        assert!(ProphetParams {
            p_init: 1.5,
            ..params()
        }
        .validate()
        .is_err());
        assert!(ProphetParams {
            beta: -0.1,
            ..params()
        }
        .validate()
        .is_err());
        assert!(ProphetParams {
            gamma: 1.0,
            ..params()
        }
        .validate()
        .is_err());
        assert!(ProphetParams {
            time_unit: 0.0,
            ..params()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn encounter_increases_towards_one() {
        let mut t = ProphetTable::new();
        let mut prev = 0.0;
        for k in 0..10 {
            t.encounter(NodeId(1), k as f64, &params());
            let p = t.predictability(NodeId(1), k as f64, &params());
            assert!(p > prev, "encounter must increase predictability");
            assert!(p <= 1.0);
            prev = p;
        }
        assert!(prev > 0.99);
        // first encounter exactly P_init
        let mut fresh = ProphetTable::new();
        fresh.encounter(NodeId(2), 0.0, &params());
        assert!((fresh.predictability(NodeId(2), 0.0, &params()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn aging_decays() {
        let mut t = ProphetTable::new();
        t.encounter(NodeId(1), 0.0, &params());
        let p0 = t.predictability(NodeId(1), 0.0, &params());
        let p_hour = t.predictability(NodeId(1), 3600.0, &params());
        let p_week = t.predictability(NodeId(1), 7.0 * 24.0 * 3600.0, &params());
        assert!((p_hour - p0 * 0.98).abs() < 1e-12);
        assert!(p_week < p_hour && p_hour < p0);
        assert!(p_week > 0.0);
    }

    #[test]
    fn transitivity_spreads_with_damping() {
        let mut r = ProphetRouter::new(3, params());
        // node 1 knows the destination 2 well
        for k in 0..5 {
            r.contact(NodeId(1), NodeId(2), k as f64 * 10.0);
        }
        let p_bc = r.predictability(NodeId(1), NodeId(2), 50.0);
        r.contact(NodeId(0), NodeId(1), 50.0);
        let p_ab = r.predictability(NodeId(0), NodeId(1), 50.0);
        let p_ac = r.predictability(NodeId(0), NodeId(2), 50.0);
        assert!((p_ac - p_ab * p_bc * 0.25).abs() < 1e-9);
        assert!(p_ac < p_bc);
    }

    #[test]
    fn transitivity_never_decreases_existing() {
        let mut r = ProphetRouter::new(3, params());
        // 0 knows 2 directly and strongly
        for k in 0..6 {
            r.contact(NodeId(0), NodeId(2), k as f64);
        }
        let strong = r.predictability(NodeId(0), NodeId(2), 6.0);
        // weak transitive path must not lower it
        r.contact(NodeId(1), NodeId(2), 6.0);
        r.contact(NodeId(0), NodeId(1), 7.0);
        let after = r.predictability(NodeId(0), NodeId(2), 7.0);
        assert!(after >= strong * 0.98f64.powf(1.0 / 3600.0) - 1e-9);
    }

    #[test]
    fn probabilities_always_in_unit_interval() {
        let mut r = ProphetRouter::new(5, params());
        for k in 0..200u32 {
            let a = NodeId(k % 5);
            let b = NodeId((k * 7 + 1) % 5);
            if a != b {
                r.contact(a, b, f64::from(k) * 30.0);
            }
        }
        for a in 0..5 {
            for b in 0..5 {
                let p = r.predictability(NodeId(a), NodeId(b), 6000.0);
                assert!((0.0..=1.0).contains(&p), "P({a},{b}) = {p}");
            }
        }
    }

    #[test]
    fn unknown_destination_is_zero() {
        let r = ProphetRouter::new(4, params());
        assert_eq!(r.predictability(NodeId(0), NodeId(3), 100.0), 0.0);
        assert!(r.table(NodeId(0)).is_empty());
    }

    #[test]
    fn learn_trace_replays_contacts() {
        use photodtn_contacts::ContactEvent;
        let trace = ContactTrace::new(
            3,
            vec![
                ContactEvent::new(NodeId(0), NodeId(1), 0.0, 10.0),
                ContactEvent::new(NodeId(1), NodeId(2), 100.0, 110.0),
            ],
        );
        let mut r = ProphetRouter::new(3, params());
        r.learn_trace(&trace);
        assert!(r.predictability(NodeId(0), NodeId(1), 100.0) > 0.0);
        assert!(r.predictability(NodeId(1), NodeId(2), 100.0) > 0.0);
        // 2 heard about 0 via transitivity through 1
        assert!(r.predictability(NodeId(2), NodeId(0), 100.0) > 0.0);
        assert_eq!(r.num_nodes(), 3);
    }

    #[test]
    fn raw_entry_plus_aged_value_reproduces_predictability() {
        let mut r = ProphetRouter::new(3, params());
        for k in 0..7 {
            r.contact(NodeId(0), NodeId(2), f64::from(k) * 900.0);
            r.contact(NodeId(1), NodeId(0), f64::from(k) * 900.0 + 17.0);
        }
        for node in [NodeId(0), NodeId(1)] {
            let (p, last_aged) = r.table(node).entry(NodeId(2)).expect("entry exists");
            for now in [6300.0, 7200.0, 99_999.0] {
                let live = r.predictability(node, NodeId(2), now);
                let replay = aged_value(p, last_aged, now, &params());
                assert!(live.to_bits() == replay.to_bits(), "{node} at {now}");
            }
        }
        assert!(r.table(NodeId(2)).entry(NodeId(1)).is_some());
        assert!(r.table(NodeId(0)).entry(NodeId(1)).is_some());
        assert_eq!(ProphetTable::new().entry(NodeId(0)), None);
    }

    #[test]
    fn symmetric_contact_updates_both_sides() {
        let mut r = ProphetRouter::new(2, params());
        r.contact(NodeId(0), NodeId(1), 0.0);
        assert!(r.predictability(NodeId(0), NodeId(1), 0.0) > 0.0);
        assert!(r.predictability(NodeId(1), NodeId(0), 0.0) > 0.0);
    }
}
