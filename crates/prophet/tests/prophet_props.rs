//! Property tests for PROPHET: under arbitrary contact sequences the
//! delivery predictabilities stay probabilities, encounters help, time
//! hurts, and the whole state is deterministic.

use photodtn_contacts::NodeId;
use photodtn_prophet::{ProphetParams, ProphetRouter};
use proptest::prelude::*;

const N: u32 = 6;

fn arb_contacts() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..N, 0..N, 0.0..100.0f64), 0..60).prop_map(|mut v| {
        // strictly ordering times keeps the sequence physically sensible
        let mut t = 0.0;
        for c in &mut v {
            t += c.2 + 1.0;
            c.2 = t;
        }
        v
    })
}

fn apply(router: &mut ProphetRouter, contacts: &[(u32, u32, f64)]) {
    for &(a, b, t) in contacts {
        if a != b {
            router.contact(NodeId(a), NodeId(b), t);
        }
    }
}

proptest! {
    #[test]
    fn predictabilities_are_probabilities(contacts in arb_contacts(), probe in 0.0..1e6f64) {
        let mut router = ProphetRouter::new(N, ProphetParams::paper_default());
        apply(&mut router, &contacts);
        let now = contacts.last().map_or(0.0, |c| c.2) + probe;
        for a in 0..N {
            for b in 0..N {
                let p = router.predictability(NodeId(a), NodeId(b), now);
                prop_assert!((0.0..=1.0).contains(&p), "P({a},{b}) = {p}");
            }
        }
    }

    #[test]
    fn deterministic(contacts in arb_contacts()) {
        let mut r1 = ProphetRouter::new(N, ProphetParams::paper_default());
        let mut r2 = ProphetRouter::new(N, ProphetParams::paper_default());
        apply(&mut r1, &contacts);
        apply(&mut r2, &contacts);
        let now = contacts.last().map_or(0.0, |c| c.2);
        for a in 0..N {
            for b in 0..N {
                prop_assert_eq!(
                    r1.predictability(NodeId(a), NodeId(b), now),
                    r2.predictability(NodeId(a), NodeId(b), now)
                );
            }
        }
    }

    #[test]
    fn extra_encounter_non_decreasing(contacts in arb_contacts()) {
        // One more direct meeting between 0 and 1 cannot lower P(0,1).
        let mut base = ProphetRouter::new(N, ProphetParams::paper_default());
        apply(&mut base, &contacts);
        let t_end = contacts.last().map_or(0.0, |c| c.2) + 1.0;
        let before = base.predictability(NodeId(0), NodeId(1), t_end);
        base.contact(NodeId(0), NodeId(1), t_end);
        let after = base.predictability(NodeId(0), NodeId(1), t_end);
        prop_assert!(after >= before - 1e-12, "{after} < {before}");
    }

    #[test]
    fn aging_is_monotone(contacts in arb_contacts(), dt in 1.0..1e6f64) {
        let mut router = ProphetRouter::new(N, ProphetParams::paper_default());
        apply(&mut router, &contacts);
        let now = contacts.last().map_or(0.0, |c| c.2);
        for a in 0..N {
            for b in 0..N {
                let today = router.predictability(NodeId(a), NodeId(b), now);
                let later = router.predictability(NodeId(a), NodeId(b), now + dt);
                prop_assert!(later <= today + 1e-12, "P({a},{b}) grew with idle time");
            }
        }
    }

    #[test]
    fn symmetry_of_direct_updates(contacts in arb_contacts()) {
        // Direct predictability is driven by shared encounters, so after
        // identical pair histories P(a,b) and P(b,a) match (transitivity
        // may differ — compare only pairs that met directly and have no
        // third-party path, i.e. a two-node universe).
        let mut router = ProphetRouter::new(2, ProphetParams::paper_default());
        for &(a, b, t) in &contacts {
            let (a, b) = (a % 2, b % 2);
            if a != b {
                router.contact(NodeId(a), NodeId(b), t);
            }
        }
        let now = contacts.last().map_or(0.0, |c| c.2);
        let ab = router.predictability(NodeId(0), NodeId(1), now);
        let ba = router.predictability(NodeId(1), NodeId(0), now);
        prop_assert!((ab - ba).abs() < 1e-12);
    }
}
