//! Trace-parser hardening: both text formats (the simple 4-field
//! interchange format and the ONE connectivity format) must turn any
//! malformed, truncated, or byte-mutated input into a typed error —
//! never a panic. The harness converts panics into failures, which is
//! exactly the regression pinned here.

use photodtn_contacts::one_format::parse_one_trace;
use photodtn_contacts::parse_trace;

const SIMPLE: &str = "\
# a small valid trace
nodes 6
0 1 10 60
1 2 30 45
2 3 100.5 130.25
0 5 200 260
";

const ONE: &str = "\
0 CONN 1 2 up
30 CONN 1 2 down
45 CONN 3 4 up
45 CONN 2 5 up
90 CONN 3 4 down
120 CONN 2 5 down
";

#[test]
fn valid_fixtures_parse() {
    assert_eq!(parse_trace(SIMPLE).unwrap().len(), 4);
    assert_eq!(parse_one_trace(ONE).unwrap().len(), 3);
}

/// Every char-boundary prefix — a download cut off mid-line — is Ok or a
/// typed error.
#[test]
fn truncation_never_panics() {
    for (i, _) in SIMPLE.char_indices() {
        let _ = parse_trace(&SIMPLE[..i]);
    }
    for (i, _) in ONE.char_indices() {
        let _ = parse_one_trace(&ONE[..i]);
    }
}

/// Single-byte corruption at every position, for both formats.
#[test]
fn byte_mutation_never_panics() {
    let mutations: &[u8] = &[b'-', b'.', b'0', b'9', b' ', b'\n', b'#', b'x', 0xFF, 0x00];
    for (text, is_one) in [(SIMPLE, false), (ONE, true)] {
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            for &m in mutations {
                let mut mutated = bytes.to_vec();
                mutated[pos] = m;
                let repaired = String::from_utf8_lossy(&mutated);
                if is_one {
                    let _ = parse_one_trace(&repaired);
                } else {
                    let _ = parse_trace(&repaired);
                }
            }
        }
    }
}

/// Adversarial shapes: huge numbers, infinities spelled out, negative
/// times, duplicated headers, enormous node ids, CRLF, interior NULs.
#[test]
fn adversarial_inputs_are_typed_errors_or_ok() {
    let giant = format!("0 1 0 {}\n", "9".repeat(5_000));
    let cases: Vec<String> = vec![
        "nodes 0\n".into(),
        "nodes 6\nnodes 8\n0 1 0 1\n".into(),
        "0 1 inf 20\n".into(),
        "0 1 NaN 20\n".into(),
        "0 1 -5 20\n".into(),
        "4294967295 1 0 1\n".into(),
        "0 1 0 1\r\n2 3 0 1\r\n".into(),
        "0 1 0\u{0} 1\n".into(),
        giant.clone(),
    ];
    for case in &cases {
        let _ = parse_trace(case);
    }
    let one_cases: Vec<String> = vec![
        "0 CONN 1 1 up\n".into(),
        "50 CONN 1 2 up\n40 CONN 1 2 down\n".into(),
        "0 CONN 1 2 sideways\n".into(),
        "0 DISCONN 1 2 up\n".into(),
        "-1 CONN 1 2 up\n".into(),
        format!("{} CONN 1 2 up\n", "9".repeat(5_000)),
    ];
    for case in &one_cases {
        let _ = parse_one_trace(case);
    }
}
