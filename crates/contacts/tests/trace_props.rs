//! Property tests for the contact-trace model: parser round-trips, trace
//! surgery preserves event structure, and generators respect their
//! contracts.

use photodtn_contacts::synth::PairwiseExponentialGenerator;
use photodtn_contacts::{parse_trace, write_trace, ContactEvent, ContactTrace, NodeId};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = ContactTrace> {
    prop::collection::vec((0u32..12, 0u32..12, 0.0..1e5f64, 0.0..1e4f64), 0..40).prop_map(|raw| {
        let events: Vec<ContactEvent> = raw
            .into_iter()
            .filter(|(a, b, _, _)| a != b)
            .map(|(a, b, start, dur)| ContactEvent::new(NodeId(a), NodeId(b), start, start + dur))
            .collect();
        ContactTrace::new(12, events)
    })
}

proptest! {
    #[test]
    fn text_roundtrip(trace in arb_trace()) {
        let text = write_trace(&trace);
        let back = parse_trace(&text).unwrap();
        prop_assert_eq!(back.num_nodes(), trace.num_nodes());
        prop_assert_eq!(back.len(), trace.len());
        for (x, y) in back.events().iter().zip(trace.events()) {
            prop_assert_eq!(x.pair(), y.pair());
            prop_assert!((x.start - y.start).abs() < 1e-9);
            prop_assert!((x.end - y.end).abs() < 1e-9);
        }
    }

    #[test]
    fn events_sorted_and_valid(trace in arb_trace()) {
        for w in trace.events().windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
        for e in &trace {
            prop_assert!(e.a < e.b);
            prop_assert!(e.end >= e.start);
        }
    }

    #[test]
    fn split_tail_partitions(trace in arb_trace(), tail in 0usize..50) {
        let (hist, recent) = trace.split_tail(tail);
        prop_assert_eq!(hist.len() + recent.len(), trace.len());
        prop_assert_eq!(recent.len(), tail.min(trace.len()));
        // all history events start no later than any recent event
        if let (Some(h), Some(r)) = (hist.events().last(), recent.events().first()) {
            prop_assert!(h.start <= r.start);
        }
    }

    #[test]
    fn shift_preserves_structure(trace in arb_trace(), delta in -1e5..1e5f64) {
        let shifted = trace.shifted(delta);
        prop_assert_eq!(shifted.len(), trace.len());
        for (x, y) in shifted.events().iter().zip(trace.events()) {
            prop_assert!((x.start - y.start - delta).abs() < 1e-6);
            prop_assert!((x.duration() - y.duration()).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_duration_applies_everywhere(trace in arb_trace(), dur in 0.0..5e3f64) {
        let t = trace.with_uniform_duration(dur);
        for e in &t {
            prop_assert!((e.duration() - dur).abs() < 1e-9);
        }
    }

    #[test]
    fn between_is_consistent_with_filter(trace in arb_trace(), a in 0.0..1e5f64, w in 0.0..1e5f64) {
        let fast: Vec<_> = trace.between(a, a + w).map(|e| e.pair()).collect();
        let brute: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.start >= a && e.start < a + w)
            .map(|e| e.pair())
            .collect();
        prop_assert_eq!(fast, brute);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_rate_monotone(seed in 0u64..1000) {
        // doubling every pair's rate cannot shrink the expected number of
        // contacts (sampled at matched seeds)
        let slow = PairwiseExponentialGenerator::homogeneous(5, 500.0 * 3600.0, 1.0 / 36000.0)
            .generate(seed)
            .len();
        let fast = PairwiseExponentialGenerator::homogeneous(5, 500.0 * 3600.0, 2.0 / 36000.0)
            .generate(seed)
            .len();
        prop_assert!(fast + 5 >= slow, "fast {fast} vs slow {slow}");
    }
}
