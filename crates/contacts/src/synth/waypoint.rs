use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{ContactEvent, ContactTrace, NodeId};

/// Random-waypoint mobility with contact extraction.
///
/// Each node repeatedly picks a uniform destination in the region, walks
/// there at a uniform-random speed, then pauses. Positions are sampled
/// every [`sample_interval`](Self::sample_interval) seconds, and a contact
/// is recorded for every maximal run of samples during which two nodes are
/// within [`radio_range`](Self::radio_range).
///
/// Random waypoint is one of the mobility models for which exponential
/// inter-contact decay has been shown (refs. 4, 7, 30 in the paper), so this
/// generator serves to validate the exponential machinery end-to-end, and
/// to drive scenarios where geometry matters (e.g. photos taken along a
/// node's actual path).
///
/// # Example
///
/// ```
/// use photodtn_contacts::synth::WaypointTraceGenerator;
/// let gen = WaypointTraceGenerator::new(10, 1000.0, 4.0 * 3600.0);
/// let trace = gen.generate(3);
/// assert_eq!(trace.num_nodes(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct WaypointTraceGenerator {
    /// Number of nodes.
    pub num_nodes: u32,
    /// Region side length, meters (square region).
    pub region: f64,
    /// Simulated time, seconds.
    pub duration: f64,
    /// Speed bounds, m/s (default 0.5–2.0, pedestrian).
    pub speed: (f64, f64),
    /// Pause-time bounds at each waypoint, seconds.
    pub pause: (f64, f64),
    /// Radio range for contact detection, meters (default 30, Bluetooth
    /// class 1-ish).
    pub radio_range: f64,
    /// Position sampling interval, seconds.
    pub sample_interval: f64,
}

impl WaypointTraceGenerator {
    /// Creates a generator with pedestrian defaults.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes < 2`, or if `region`/`duration` are not
    /// positive.
    #[must_use]
    pub fn new(num_nodes: u32, region: f64, duration: f64) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        assert!(region > 0.0 && duration > 0.0, "invalid region/duration");
        WaypointTraceGenerator {
            num_nodes,
            region,
            duration,
            speed: (0.5, 2.0),
            pause: (0.0, 120.0),
            radio_range: 30.0,
            sample_interval: 10.0,
        }
    }

    /// Generates a trace deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> ContactTrace {
        self.generate_with_tracks(seed).0
    }

    /// Like [`generate`](Self::generate), but also returns the sampled
    /// node positions as piecewise-linear [`MobilityTracks`] — so photo
    /// generation can place photos where the photographer actually is.
    #[must_use]
    pub fn generate_with_tracks(&self, seed: u64) -> (ContactTrace, MobilityTracks) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let steps = (self.duration / self.sample_interval).ceil() as usize;
        let n = self.num_nodes as usize;

        // Simulate all node tracks.
        let mut states: Vec<NodeState> = (0..n)
            .map(|_| NodeState {
                pos: (
                    rng.gen_range(0.0..self.region),
                    rng.gen_range(0.0..self.region),
                ),
                dest: (
                    rng.gen_range(0.0..self.region),
                    rng.gen_range(0.0..self.region),
                ),
                speed: rng.gen_range(self.speed.0..=self.speed.1),
                pause_left: 0.0,
            })
            .collect();

        let mut in_contact = vec![None::<f64>; n * n]; // start time per pair
        let mut events = Vec::new();
        let range_sq = self.radio_range * self.radio_range;
        let mut tracks = MobilityTracks {
            sample_interval: self.sample_interval,
            duration: self.duration,
            samples: vec![Vec::with_capacity(steps + 1); n],
        };

        for step in 0..=steps {
            let t = step as f64 * self.sample_interval;
            for (i, s) in states.iter().enumerate() {
                tracks.samples[i].push((s.pos.0 as f32, s.pos.1 as f32));
            }
            // detect contacts
            for a in 0..n {
                for b in (a + 1)..n {
                    let dx = states[a].pos.0 - states[b].pos.0;
                    let dy = states[a].pos.1 - states[b].pos.1;
                    let near = dx * dx + dy * dy <= range_sq;
                    let key = a * n + b;
                    match (near, in_contact[key]) {
                        (true, None) => in_contact[key] = Some(t),
                        (false, Some(start)) => {
                            if t > start {
                                events.push(ContactEvent::new(
                                    NodeId(a as u32),
                                    NodeId(b as u32),
                                    start,
                                    t,
                                ));
                            }
                            in_contact[key] = None;
                        }
                        _ => {}
                    }
                }
            }
            // advance movement
            for s in &mut states {
                s.advance(
                    self.sample_interval,
                    self.region,
                    self.speed,
                    self.pause,
                    &mut rng,
                );
            }
        }
        // close open contacts at the end of the window
        for a in 0..n {
            for b in (a + 1)..n {
                if let Some(start) = in_contact[a * n + b] {
                    let end = (steps as f64) * self.sample_interval;
                    if end > start {
                        events.push(ContactEvent::new(
                            NodeId(a as u32),
                            NodeId(b as u32),
                            start,
                            end,
                        ));
                    }
                }
            }
        }
        (ContactTrace::new(self.num_nodes, events), tracks)
    }
}

/// Sampled node positions over time, linearly interpolated between
/// samples.
///
/// Positions are stored as `f32` pairs to keep long traces compact
/// (a 97-node, 300 h trace at 10 s sampling is ~80 MB as `f64`, half
/// as `f32` — and sub-meter precision is irrelevant at region scale).
#[derive(Clone, Debug, PartialEq)]
pub struct MobilityTracks {
    sample_interval: f64,
    duration: f64,
    /// `samples[node][step] = (x, y)`.
    samples: Vec<Vec<(f32, f32)>>,
}

impl MobilityTracks {
    /// Number of tracked nodes.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.samples.len() as u32
    }

    /// Tracked duration, seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The node's position at time `t` (meters), clamping `t` into the
    /// tracked window and interpolating between samples.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn position(&self, node: NodeId, t: f64) -> (f64, f64) {
        let track = &self.samples[node.index()];
        assert!(!track.is_empty(), "empty track for {node}");
        let ft = (t / self.sample_interval).clamp(0.0, (track.len() - 1) as f64);
        let i = ft.floor() as usize;
        let frac = ft - i as f64;
        let (x0, y0) = track[i];
        let (x1, y1) = track[(i + 1).min(track.len() - 1)];
        (
            f64::from(x0) + frac * (f64::from(x1) - f64::from(x0)),
            f64::from(y0) + frac * (f64::from(y1) - f64::from(y0)),
        )
    }
}

#[derive(Clone, Debug)]
struct NodeState {
    pos: (f64, f64),
    dest: (f64, f64),
    speed: f64,
    pause_left: f64,
}

impl NodeState {
    fn advance<R: Rng + ?Sized>(
        &mut self,
        dt: f64,
        region: f64,
        speed: (f64, f64),
        pause: (f64, f64),
        rng: &mut R,
    ) {
        let mut remaining = dt;
        while remaining > 0.0 {
            if self.pause_left > 0.0 {
                let used = self.pause_left.min(remaining);
                self.pause_left -= used;
                remaining -= used;
                continue;
            }
            let dx = self.dest.0 - self.pos.0;
            let dy = self.dest.1 - self.pos.1;
            let dist = (dx * dx + dy * dy).sqrt();
            let reach = self.speed * remaining;
            if reach >= dist {
                // arrive, pause, pick a new waypoint
                self.pos = self.dest;
                remaining -= if self.speed > 0.0 {
                    dist / self.speed
                } else {
                    remaining
                };
                self.pause_left = rng.gen_range(pause.0..=pause.1);
                self.dest = (rng.gen_range(0.0..region), rng.gen_range(0.0..region));
                self.speed = rng.gen_range(speed.0..=speed.1);
            } else {
                self.pos.0 += dx / dist * reach;
                self.pos.1 += dy / dist * reach;
                remaining = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn deterministic_and_in_bounds() {
        let g = WaypointTraceGenerator::new(8, 500.0, 2.0 * 3600.0);
        let t1 = g.generate(11);
        let t2 = g.generate(11);
        assert_eq!(t1, t2);
        for e in &t1 {
            assert!(e.start >= 0.0 && e.end <= 2.0 * 3600.0 + 1e-6);
            assert!(e.duration() > 0.0);
        }
    }

    #[test]
    fn denser_region_more_contacts() {
        let sparse = WaypointTraceGenerator::new(10, 2000.0, 4.0 * 3600.0)
            .generate(1)
            .len();
        let dense = WaypointTraceGenerator::new(10, 400.0, 4.0 * 3600.0)
            .generate(1)
            .len();
        assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn inter_contact_tail_decays_exponentially() {
        // Aggregate inter-contact gaps from a homogeneous RWP scenario
        // should fit an exponential reasonably well (the paper's premise).
        let g = WaypointTraceGenerator::new(6, 600.0, 48.0 * 3600.0);
        let trace = g.generate(2);
        let gaps = stats::inter_contact_times(&trace);
        assert!(gaps.len() > 50, "too few gaps: {}", gaps.len());
        let fit = stats::exponential_mle(&gaps);
        let ks = stats::ks_statistic_exponential(&gaps, fit);
        assert!(ks < 0.25, "KS {ks} too far from exponential");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_one_node() {
        let _ = WaypointTraceGenerator::new(1, 100.0, 100.0);
    }

    #[test]
    fn tracks_cover_the_window_and_interpolate() {
        let g = WaypointTraceGenerator::new(4, 300.0, 3600.0);
        let (_, tracks) = g.generate_with_tracks(5);
        assert_eq!(tracks.num_nodes(), 4);
        assert_eq!(tracks.duration(), 3600.0);
        for node in 0..4 {
            let n = NodeId(node);
            // positions stay in the region at arbitrary times
            for t in [0.0, 17.3, 1800.0, 3600.0, 99999.0] {
                let (x, y) = tracks.position(n, t);
                assert!((0.0..=300.0).contains(&x), "x {x} at t {t}");
                assert!((0.0..=300.0).contains(&y), "y {y} at t {t}");
            }
            // interpolation is between the two bracketing samples
            let (x0, y0) = tracks.position(n, 10.0);
            let (xa, ya) = tracks.position(n, 10.0 - 5.0);
            let (xb, yb) = tracks.position(n, 10.0 + 5.0);
            assert!(x0 >= xa.min(xb) - 1e-6 && x0 <= xa.max(xb) + 1e-6);
            assert!(y0 >= ya.min(yb) - 1e-6 && y0 <= ya.max(yb) + 1e-6);
        }
    }

    #[test]
    fn tracks_consistent_with_contacts() {
        // During a recorded contact, the two nodes must be within radio
        // range at the contact's start sample.
        let g = WaypointTraceGenerator::new(6, 400.0, 4.0 * 3600.0);
        let (trace, tracks) = g.generate_with_tracks(7);
        for e in trace.events().iter().take(20) {
            let (ax, ay) = tracks.position(e.a, e.start);
            let (bx, by) = tracks.position(e.b, e.start);
            let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!(
                d <= g.radio_range + 1.0,
                "nodes {}m apart at contact start",
                d
            );
        }
    }
}
