use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use crate::{ContactEvent, ContactTrace, NodeId};

/// Metro-scale grid-city contact generator: thousands of nodes, sampled
/// in **O(contacts)** instead of the O(n²) pairwise machinery.
///
/// The city is a `grid × grid` lattice of cells (neighbourhoods). Every
/// node lives in one home cell; a small *roamer* fraction additionally
/// frequents a second, uniformly chosen cell, stitching the
/// neighbourhoods together the way commuters stitch a real city. Each
/// cell mixes internally as a single Poisson process whose rate scales
/// with its population — one arrival picks a uniform pair of the cell's
/// members — so generation cost is proportional to the number of contacts
/// produced, never to the number of node pairs. That is what makes
/// 5 000–50 000-node workloads practical where
/// [`CommunityTraceGenerator`](super::CommunityTraceGenerator) (97 nodes,
/// quadratic pair table) is not.
///
/// The resulting traces keep the properties the sharded engine cares
/// about: strong spatial community structure (intra-cell contacts
/// dominate, so a region partition isolates most of the event stream)
/// with a thin, tunable layer of cross-cell contacts through roamers (the
/// boundary events a cross-shard merge must serialize).
///
/// # Example
///
/// ```
/// use photodtn_contacts::synth::MetroTraceGenerator;
/// let trace = MetroTraceGenerator::new()
///     .with_num_nodes(2000)
///     .with_duration_hours(2.0)
///     .generate(7);
/// assert_eq!(trace.num_nodes(), 2000);
/// assert!(trace.len() > 1000);
/// ```
#[derive(Clone, Debug)]
pub struct MetroTraceGenerator {
    /// Number of nodes (default 5000).
    pub num_nodes: u32,
    /// Trace length, hours (default 12).
    pub duration_hours: f64,
    /// Cells per grid side; the city has `grid²` cells (default 8).
    pub grid: u32,
    /// Mean contacts each node participates in per hour (default 2).
    pub contacts_per_node_hour: f64,
    /// Fraction of nodes that also frequent a second cell (default 0.04).
    pub roamer_fraction: f64,
    /// Scan interval, seconds; 0 disables discretization (default 60).
    pub scan_interval: f64,
    /// Mean contact duration, seconds (default 300).
    pub mean_contact_duration: f64,
}

impl Default for MetroTraceGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl MetroTraceGenerator {
    /// Creates the default metro preset: 5000 nodes on an 8×8 grid over a
    /// 12-hour window.
    #[must_use]
    pub fn new() -> Self {
        MetroTraceGenerator {
            num_nodes: 5000,
            duration_hours: 12.0,
            grid: 8,
            contacts_per_node_hour: 2.0,
            roamer_fraction: 0.04,
            scan_interval: 60.0,
            mean_contact_duration: 300.0,
        }
    }

    /// Overrides the number of nodes (builder-style).
    #[must_use]
    pub fn with_num_nodes(mut self, n: u32) -> Self {
        self.num_nodes = n;
        self
    }

    /// Overrides the trace length in hours (builder-style).
    #[must_use]
    pub fn with_duration_hours(mut self, h: f64) -> Self {
        self.duration_hours = h;
        self
    }

    /// Overrides the grid side length (builder-style).
    #[must_use]
    pub fn with_grid(mut self, cells_per_side: u32) -> Self {
        self.grid = cells_per_side.max(1);
        self
    }

    /// The home cell of every node under `seed` (same assignment as
    /// [`generate`](Self::generate) uses).
    #[must_use]
    pub fn home_cells(&self, seed: u64) -> Vec<u32> {
        let num_cells = self.grid * self.grid;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..self.num_nodes).collect();
        order.shuffle(&mut rng);
        // Round-robin over the shuffled order: cell populations differ by
        // at most one, so no cell degenerates to a single resident.
        let mut home = vec![0u32; self.num_nodes as usize];
        for (pos, node) in order.iter().enumerate() {
            home[*node as usize] = (pos as u32) % num_cells.max(1);
        }
        home
    }

    /// Generates a trace deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> ContactTrace {
        let num_cells = (self.grid * self.grid).max(1) as usize;
        let home = self.home_cells(seed);
        // Derive the membership/arrival stream from the placement seed so
        // different seeds change both.
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));

        // Cell membership lists. Roamers join a second cell's list: their
        // contacts there are the cross-community edges of the trace.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_cells];
        for (node, &cell) in home.iter().enumerate() {
            members[cell as usize].push(node as u32);
        }
        let roamers = ((self.num_nodes as f64) * self.roamer_fraction.clamp(0.0, 1.0)) as u32;
        for node in 0..roamers {
            let away = rng.gen_range(0..num_cells);
            if away != home[node as usize] as usize {
                members[away].push(node);
            }
        }

        let duration = self.duration_hours * 3600.0;
        let per_node_rate = self.contacts_per_node_hour.max(0.0) / 3600.0;
        let mut events = Vec::new();
        for cell in &members {
            if cell.len() < 2 {
                continue;
            }
            // Each contact involves two members, so the cell's arrival
            // rate is half the summed per-node rate.
            let lambda = per_node_rate * cell.len() as f64 / 2.0;
            if lambda <= 0.0 {
                continue;
            }
            let mut t = sample_exp(&mut rng, lambda);
            while t < duration {
                let i = rng.gen_range(0..cell.len());
                let j = {
                    let mut j = rng.gen_range(0..cell.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    j
                };
                let raw_dur =
                    sample_exp(&mut rng, 1.0 / self.mean_contact_duration).clamp(30.0, 3600.0);
                let end = (t + raw_dur).min(duration);
                if let Some(e) = self.discretize(NodeId(cell[i]), NodeId(cell[j]), t, end) {
                    events.push(e);
                }
                t += sample_exp(&mut rng, lambda);
            }
        }
        ContactTrace::new(self.num_nodes, events)
    }

    /// Applies scan discretization to a true encounter (same rule as the
    /// pairwise generator: detected at the first scan boundary inside it).
    fn discretize(&self, a: NodeId, b: NodeId, start: f64, end: f64) -> Option<ContactEvent> {
        if self.scan_interval <= 0.0 {
            return (end > start).then(|| ContactEvent::new(a, b, start, end));
        }
        let detected = (start / self.scan_interval).ceil() * self.scan_interval;
        (detected < end).then(|| ContactEvent::new(a, b, detected, end))
    }
}

/// Exponential sample with rate `lambda`.
fn sample_exp<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = MetroTraceGenerator::new()
            .with_num_nodes(500)
            .with_duration_hours(1.0);
        assert_eq!(g.generate(3), g.generate(3));
        assert_ne!(g.generate(3), g.generate(4));
    }

    #[test]
    fn contact_volume_scales_with_population() {
        let base = MetroTraceGenerator::new()
            .with_num_nodes(1000)
            .with_duration_hours(1.0);
        let small = base.clone().generate(1).len() as f64;
        let big = base.with_num_nodes(4000).generate(1).len() as f64;
        // 4x the nodes at a fixed per-node rate ≈ 4x the contacts.
        assert!(
            big / small > 3.0 && big / small < 5.0,
            "small {small}, big {big}"
        );
    }

    #[test]
    fn intra_cell_contacts_dominate() {
        let g = MetroTraceGenerator::new()
            .with_num_nodes(2000)
            .with_duration_hours(2.0);
        let home = g.home_cells(5);
        let trace = g.generate(5);
        let mut intra = 0u64;
        let mut cross = 0u64;
        for e in &trace {
            if home[e.a.index()] == home[e.b.index()] {
                intra += 1;
            } else {
                cross += 1;
            }
        }
        assert!(cross > 0, "roamers should produce some cross-cell contacts");
        assert!(
            intra > 10 * cross,
            "community structure too weak: intra {intra} vs cross {cross}"
        );
    }

    #[test]
    fn metro_scale_generates_fast_and_within_bounds() {
        let g = MetroTraceGenerator::new(); // 5000 nodes, 12 h
        let trace = g.generate(2);
        // ~2 contacts/node/hour × 5000 nodes × 12 h / 2 ≈ 60k arrivals,
        // minus scan-discretization losses.
        assert!(
            (20_000..90_000).contains(&trace.len()),
            "unexpected volume {}",
            trace.len()
        );
        for e in &trace {
            assert!(e.start >= 0.0 && e.end <= 12.0 * 3600.0 + 1e-9);
            assert!(e.a != e.b);
        }
    }

    #[test]
    fn home_cells_are_balanced() {
        let g = MetroTraceGenerator::new().with_num_nodes(640);
        let home = g.home_cells(9);
        let cells = (g.grid * g.grid) as usize;
        for c in 0..cells {
            let size = home.iter().filter(|&&x| x == c as u32).count();
            assert_eq!(size, 640 / cells, "cell {c} holds {size}");
        }
    }
}
