use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::{ContactTrace, NodeId};

use super::PairwiseExponentialGenerator;

/// Which real trace the generated one should resemble (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceStyle {
    /// MIT Reality: 97 nodes, 300 h simulated window, 5-minute scans.
    MitLike,
    /// Cambridge06: 54 nodes, 200 h window, 2-minute scans.
    CambridgeLike,
}

impl TraceStyle {
    /// Human-readable name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceStyle::MitLike => "mit",
            TraceStyle::CambridgeLike => "cambridge",
        }
    }
}

/// Synthetic stand-in for the MIT Reality / Cambridge06 Bluetooth traces.
///
/// Nodes are randomly partitioned into communities ("teams"). Pairs inside
/// a community meet with exponential inter-contact times of mean
/// [`intra_mean_hours`](Self::intra_mean_hours); pairs across communities
/// with mean [`inter_mean_hours`](Self::inter_mean_hours). Recorded
/// contacts are discretized to the trace's Bluetooth scan interval.
///
/// The defaults give contact volumes of the same order as the real traces
/// over the paper's simulation windows (a few thousand contacts), with the
/// strong rate heterogeneity PROPHET needs to differentiate relays.
///
/// # Example
///
/// ```
/// use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
/// let trace = CommunityTraceGenerator::new(TraceStyle::CambridgeLike).generate(7);
/// assert_eq!(trace.num_nodes(), 54);
/// assert!(trace.duration() <= 200.0 * 3600.0);
/// ```
#[derive(Clone, Debug)]
pub struct CommunityTraceGenerator {
    /// Number of nodes.
    pub num_nodes: u32,
    /// Trace length, hours.
    pub duration_hours: f64,
    /// Bluetooth scan interval, seconds.
    pub scan_interval: f64,
    /// Community size (last community may be smaller).
    pub community_size: u32,
    /// Mean inter-contact time within a community, hours.
    pub intra_mean_hours: f64,
    /// Mean inter-contact time across communities, hours.
    pub inter_mean_hours: f64,
    /// Mean contact duration, seconds.
    pub mean_contact_duration: f64,
}

impl CommunityTraceGenerator {
    /// Creates a generator with the preset for `style`.
    #[must_use]
    pub fn new(style: TraceStyle) -> Self {
        match style {
            TraceStyle::MitLike => CommunityTraceGenerator {
                num_nodes: 97,
                duration_hours: 300.0,
                scan_interval: 300.0,
                community_size: 8,
                intra_mean_hours: 48.0,
                inter_mean_hours: 800.0,
                mean_contact_duration: 600.0,
            },
            TraceStyle::CambridgeLike => CommunityTraceGenerator {
                num_nodes: 54,
                duration_hours: 200.0,
                scan_interval: 120.0,
                community_size: 8,
                intra_mean_hours: 36.0,
                inter_mean_hours: 600.0,
                mean_contact_duration: 600.0,
            },
        }
    }

    /// Overrides the number of nodes (builder-style), e.g. for small test
    /// scenarios.
    #[must_use]
    pub fn with_num_nodes(mut self, n: u32) -> Self {
        self.num_nodes = n;
        self
    }

    /// Overrides the trace length in hours (builder-style).
    #[must_use]
    pub fn with_duration_hours(mut self, h: f64) -> Self {
        self.duration_hours = h;
        self
    }

    /// The community of each node under `seed` (same permutation as
    /// [`generate`](Self::generate) uses).
    #[must_use]
    pub fn communities(&self, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..self.num_nodes).collect();
        order.shuffle(&mut rng);
        let mut community = vec![0u32; self.num_nodes as usize];
        for (pos, node) in order.iter().enumerate() {
            community[*node as usize] = (pos as u32) / self.community_size.max(1);
        }
        community
    }

    /// Generates a trace deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> ContactTrace {
        let community = self.communities(seed);
        let mut gen =
            PairwiseExponentialGenerator::new(self.num_nodes.max(2), self.duration_hours * 3600.0)
                .with_scan_interval(self.scan_interval)
                .with_mean_contact_duration(self.mean_contact_duration);
        let intra = 1.0 / (self.intra_mean_hours * 3600.0);
        let inter = 1.0 / (self.inter_mean_hours * 3600.0);
        for a in 0..self.num_nodes {
            for b in (a + 1)..self.num_nodes {
                let rate = if community[a as usize] == community[b as usize] {
                    intra
                } else {
                    inter
                };
                gen.set_rate(NodeId(a), NodeId(b), rate);
            }
        }
        // Derive the event seed from the partition seed so different seeds
        // change both the partition and the arrival processes.
        gen.generate(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn presets_match_table1() {
        let mit = CommunityTraceGenerator::new(TraceStyle::MitLike);
        assert_eq!(mit.num_nodes, 97);
        assert_eq!(mit.duration_hours, 300.0);
        assert_eq!(mit.scan_interval, 300.0);
        let cam = CommunityTraceGenerator::new(TraceStyle::CambridgeLike);
        assert_eq!(cam.num_nodes, 54);
        assert_eq!(cam.duration_hours, 200.0);
        assert_eq!(cam.scan_interval, 120.0);
        assert_eq!(TraceStyle::MitLike.name(), "mit");
    }

    #[test]
    fn generates_reasonable_contact_volume() {
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike).generate(1);
        let s = stats::summarize(&trace);
        // a few thousand contacts over 300 h, like the real trace window
        assert!(
            (1000..30000).contains(&s.num_events),
            "unexpected contact volume {}",
            s.num_events
        );
        assert!(s.mean_contact_duration > 60.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = CommunityTraceGenerator::new(TraceStyle::CambridgeLike);
        assert_eq!(g.generate(4), g.generate(4));
        assert_ne!(g.generate(4), g.generate(5));
    }

    #[test]
    fn intra_community_pairs_meet_more() {
        let g = CommunityTraceGenerator::new(TraceStyle::MitLike).with_duration_hours(300.0);
        let seed = 2;
        let community = g.communities(seed);
        let trace = g.generate(seed);
        let mut intra = 0u64;
        let mut inter = 0u64;
        for e in &trace {
            if community[e.a.index()] == community[e.b.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Far fewer intra pairs exist, yet they should produce the clear
        // majority of contacts.
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn communities_partition_all_nodes() {
        let g = CommunityTraceGenerator::new(TraceStyle::MitLike);
        let c = g.communities(3);
        assert_eq!(c.len(), 97);
        let max = *c.iter().max().unwrap();
        assert_eq!(max, 96 / 8); // ceil(97/8) - 1 communities
                                 // each community ≤ community_size
        for k in 0..=max {
            let size = c.iter().filter(|&&x| x == k).count();
            assert!(size <= 8);
        }
    }
}
