//! Stationary relay ("throwbox") augmentation of a contact trace.
//!
//! Throwbox deployments — fixed, powered relay boxes dropped at popular
//! locations — are a classic DTN capacity lever: a mobile node that
//! visits a box can deposit photos there for any later visitor to pick
//! up. [`RelayOverlay`] takes any base trace (synthetic or imported) and
//! appends `num_relays` stationary nodes, each visited by every mobile
//! node as an independent Poisson process. Relays never contact each
//! other (they are spatially separated and do not move), and the base
//! trace's mobile-to-mobile contacts are preserved byte-for-byte.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{ContactEvent, ContactTrace, NodeId};

/// Augments a base trace with stationary relay nodes.
///
/// Relay ids start at `base.num_nodes()`: a 16-node base trace with 2
/// relays yields an 18-node trace where nodes 16 and 17 are the relays.
/// The caller is responsible for telling the simulator that relays do
/// not photograph (see `SimConfig::camera_nodes`).
///
/// # Example
///
/// ```
/// use photodtn_contacts::synth::{CommunityTraceGenerator, RelayOverlay, TraceStyle};
///
/// let base = CommunityTraceGenerator::new(TraceStyle::MitLike)
///     .with_num_nodes(16)
///     .with_duration_hours(12.0)
///     .generate(3);
/// let trace = RelayOverlay::new(2).apply(&base, 3);
/// assert_eq!(trace.num_nodes(), 18);
/// assert!(trace.events().len() > base.events().len());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RelayOverlay {
    num_relays: u32,
    /// Poisson visit rate per (mobile, relay) pair, s⁻¹.
    visit_rate: f64,
    /// Mean of the exponential visit-duration distribution, seconds.
    mean_visit_duration: f64,
    /// Visit durations clamp to this range, seconds.
    duration_bounds: (f64, f64),
}

impl RelayOverlay {
    /// A deployment of `num_relays` boxes with defaults tuned to the
    /// MIT-like campus scale: each mobile node visits each box about
    /// once every two hours for ten minutes.
    #[must_use]
    pub fn new(num_relays: u32) -> Self {
        RelayOverlay {
            num_relays,
            visit_rate: 1.0 / 7200.0,
            mean_visit_duration: 600.0,
            duration_bounds: (30.0, 3600.0),
        }
    }

    /// Sets the per-(mobile, relay) Poisson visit rate (s⁻¹);
    /// non-positive or non-finite rates clamp to zero (no visits).
    #[must_use]
    pub fn with_visit_rate(mut self, per_second: f64) -> Self {
        self.visit_rate = if per_second.is_finite() {
            per_second.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Sets the mean visit duration in seconds (clamped to ≥ 1).
    #[must_use]
    pub fn with_mean_visit_duration(mut self, seconds: f64) -> Self {
        self.mean_visit_duration = seconds.max(1.0);
        self
    }

    /// The number of relay nodes this overlay adds.
    #[must_use]
    pub fn num_relays(&self) -> u32 {
        self.num_relays
    }

    /// Appends the relay visit schedule to `base`, deterministically
    /// from `seed`. The result has `base.num_nodes() + num_relays`
    /// nodes; the base events are carried over unchanged.
    #[must_use]
    pub fn apply(&self, base: &ContactTrace, seed: u64) -> ContactTrace {
        let mobiles = base.num_nodes();
        let total = mobiles + self.num_relays;
        let horizon = base.duration();
        let mut events: Vec<ContactEvent> = base.events().to_vec();
        if self.visit_rate > 0.0 && horizon > 0.0 {
            // One independent stream per (mobile, relay) pair, salted so
            // the schedule of pair (m, r) does not shift when another
            // relay is added or the loop order changes.
            for relay in 0..self.num_relays {
                let relay_id = mobiles + relay;
                for mobile in 0..mobiles {
                    let pair_salt = (u64::from(relay_id) << 32) | u64::from(mobile);
                    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7B0C_5EED_0000_0000 ^ pair_salt);
                    let mut t = sample_exp(&mut rng, self.visit_rate);
                    while t < horizon {
                        let dur = sample_exp(&mut rng, 1.0 / self.mean_visit_duration)
                            .clamp(self.duration_bounds.0, self.duration_bounds.1);
                        let end = (t + dur).min(horizon);
                        if end > t {
                            events.push(ContactEvent::new(
                                NodeId(mobile),
                                NodeId(relay_id),
                                t,
                                end,
                            ));
                        }
                        t = end + sample_exp(&mut rng, self.visit_rate);
                    }
                }
            }
        }
        ContactTrace::new(total, events)
    }
}

/// Exponential sample with rate `lambda`.
fn sample_exp<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{CommunityTraceGenerator, TraceStyle};

    fn base() -> ContactTrace {
        CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(12)
            .with_duration_hours(24.0)
            .generate(7)
    }

    #[test]
    fn preserves_base_contacts_and_extends_node_count() {
        let base = base();
        let out = RelayOverlay::new(3).apply(&base, 7);
        assert_eq!(out.num_nodes(), 15);
        // Every base event survives verbatim.
        for e in base.events() {
            assert!(out.events().contains(e), "missing base event {e:?}");
        }
        // And relay contacts exist.
        assert!(out
            .events()
            .iter()
            .any(|e| e.involves(NodeId(12)) || e.involves(NodeId(13)) || e.involves(NodeId(14))));
    }

    #[test]
    fn relays_never_contact_each_other() {
        let out = RelayOverlay::new(4).apply(&base(), 1);
        for e in out.events() {
            let (a, b) = e.pair();
            assert!(a.0 < 12 || b.0 < 12, "relay-relay contact {e:?}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let base = base();
        let overlay = RelayOverlay::new(2);
        assert_eq!(overlay.apply(&base, 5), overlay.apply(&base, 5));
        assert_ne!(overlay.apply(&base, 5), overlay.apply(&base, 6));
    }

    #[test]
    fn adding_a_relay_keeps_existing_pair_schedules() {
        let base = base();
        let two = RelayOverlay::new(2).apply(&base, 9);
        let three = RelayOverlay::new(3).apply(&base, 9);
        // All contacts with relays 12/13 are identical across the two
        // deployments — per-pair salted streams, not one shared stream.
        let visits = |t: &ContactTrace, relay: u32| -> Vec<ContactEvent> {
            t.events()
                .iter()
                .filter(|e| e.involves(NodeId(relay)))
                .copied()
                .collect()
        };
        assert_eq!(visits(&two, 12), visits(&three, 12));
        assert_eq!(visits(&two, 13), visits(&three, 13));
    }

    #[test]
    fn zero_rate_or_zero_relays_is_base_plus_ids() {
        let base = base();
        let silent = RelayOverlay::new(2).with_visit_rate(0.0).apply(&base, 3);
        assert_eq!(silent.num_nodes(), 14);
        assert_eq!(silent.events(), base.events());
        let none = RelayOverlay::new(0).apply(&base, 3);
        assert_eq!(none.num_nodes(), 12);
        assert_eq!(none.events(), base.events());
        let nan = RelayOverlay::new(2)
            .with_visit_rate(f64::NAN)
            .apply(&base, 3);
        assert_eq!(nan.events(), base.events());
    }

    #[test]
    fn visit_rate_scales_contact_volume() {
        let base = base();
        let sparse = RelayOverlay::new(1)
            .with_visit_rate(1.0 / 36000.0)
            .apply(&base, 2);
        let dense = RelayOverlay::new(1)
            .with_visit_rate(1.0 / 1800.0)
            .apply(&base, 2);
        let count = |t: &ContactTrace| t.events().iter().filter(|e| e.involves(NodeId(12))).count();
        assert!(count(&dense) > 3 * count(&sparse));
    }

    #[test]
    fn visits_stay_within_horizon() {
        let base = base();
        let horizon = base.duration();
        for e in RelayOverlay::new(2).apply(&base, 4).events() {
            assert!(e.start >= 0.0 && e.end <= horizon + 1e-9);
            assert!(e.duration() > 0.0);
        }
    }
}
