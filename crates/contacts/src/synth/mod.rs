//! Synthetic contact-trace generators.
//!
//! The paper's evaluation is driven by the MIT Reality and Cambridge06
//! Bluetooth traces, which we cannot redistribute. These generators
//! reproduce the statistical properties the paper's machinery actually
//! depends on:
//!
//! * pairwise **exponential inter-contact times** — the assumption behind
//!   the metadata-validity rule (equation (1), §III-B), reported for these
//!   traces by the works the paper cites;
//! * **heterogeneous contact rates with community structure** — "rescuers
//!   in the same team contact more often", which PROPHET's delivery
//!   predictability exploits;
//! * **Bluetooth scan discretization** — MIT scans every 5 minutes,
//!   Cambridge06 every 2 minutes, so short encounters are missed and
//!   contact starts snap to scan boundaries.
//!
//! [`WaypointTraceGenerator`] additionally provides a random-waypoint
//! mobility model, one of the models for which exponential inter-contact
//! decay was established, to validate the other generators against.

mod community;
mod exponential;
mod metro;
mod relay;
mod waypoint;

pub use community::{CommunityTraceGenerator, TraceStyle};
pub use exponential::PairwiseExponentialGenerator;
pub use metro::MetroTraceGenerator;
pub use relay::RelayOverlay;
pub use waypoint::{MobilityTracks, WaypointTraceGenerator};
