use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{ContactEvent, ContactTrace, NodeId};

/// Generates contacts with exponential inter-contact times per pair.
///
/// Each node pair `(a, b)` with rate `λ_ab > 0` produces a Poisson process
/// of encounters; each encounter lasts an exponentially-distributed time
/// (mean [`mean_contact_duration`](Self::mean_contact_duration)). A
/// Bluetooth-style scan interval then discretizes what is actually
/// *recorded*: a contact is detected at the first scan boundary inside it,
/// and encounters that end before that boundary are missed entirely.
///
/// # Example
///
/// ```
/// use photodtn_contacts::synth::PairwiseExponentialGenerator;
/// use photodtn_contacts::stats;
///
/// let gen = PairwiseExponentialGenerator::homogeneous(10, 100.0 * 3600.0, 1.0 / 7200.0);
/// let trace = gen.generate(1);
/// let s = stats::summarize(&trace);
/// assert!(s.num_events > 100);
/// ```
#[derive(Clone, Debug)]
pub struct PairwiseExponentialGenerator {
    num_nodes: u32,
    duration: f64,
    /// `rates[pair_index(a, b)]` = λ_ab in s⁻¹; see [`pair_index`].
    rates: Vec<f64>,
    /// Mean of the exponential contact-duration distribution, seconds.
    pub mean_contact_duration: f64,
    /// Contact durations are clamped to this range, seconds.
    pub duration_bounds: (f64, f64),
    /// Scan interval, seconds; 0 disables discretization.
    pub scan_interval: f64,
}

/// Index of pair `(a, b)`, `a < b`, in a flattened upper triangle.
fn pair_index(a: u32, b: u32, n: u32) -> usize {
    debug_assert!(a < b && b < n);
    let a = a as usize;
    let b = b as usize;
    let n = n as usize;
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

impl PairwiseExponentialGenerator {
    /// Creates a generator with all pair rates zero; set them with
    /// [`set_rate`](Self::set_rate).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes < 2` or `duration` is not positive and finite.
    #[must_use]
    pub fn new(num_nodes: u32, duration: f64) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        assert!(
            duration.is_finite() && duration > 0.0,
            "invalid duration {duration}"
        );
        let pairs = (num_nodes as usize) * (num_nodes as usize - 1) / 2;
        PairwiseExponentialGenerator {
            num_nodes,
            duration,
            rates: vec![0.0; pairs],
            mean_contact_duration: 600.0,
            duration_bounds: (30.0, 3600.0),
            scan_interval: 0.0,
        }
    }

    /// All pairs share the same rate `λ` (s⁻¹).
    #[must_use]
    pub fn homogeneous(num_nodes: u32, duration: f64, lambda: f64) -> Self {
        let mut g = Self::new(num_nodes, duration);
        for r in &mut g.rates {
            *r = lambda.max(0.0);
        }
        g
    }

    /// Sets the rate of one pair (s⁻¹). Negative rates clamp to zero.
    pub fn set_rate(&mut self, a: NodeId, b: NodeId, lambda: f64) {
        assert!(a != b, "no self-contacts");
        let (x, y) = if a < b { (a.0, b.0) } else { (b.0, a.0) };
        let idx = pair_index(x, y, self.num_nodes);
        self.rates[idx] = lambda.max(0.0);
    }

    /// The configured rate of a pair (s⁻¹).
    #[must_use]
    pub fn rate(&self, a: NodeId, b: NodeId) -> f64 {
        let (x, y) = if a < b { (a.0, b.0) } else { (b.0, a.0) };
        self.rates[pair_index(x, y, self.num_nodes)]
    }

    /// Sets the scan interval (builder-style); 0 disables discretization.
    #[must_use]
    pub fn with_scan_interval(mut self, seconds: f64) -> Self {
        self.scan_interval = seconds.max(0.0);
        self
    }

    /// Sets the mean contact duration (builder-style).
    #[must_use]
    pub fn with_mean_contact_duration(mut self, seconds: f64) -> Self {
        self.mean_contact_duration = seconds.max(0.0);
        self
    }

    /// Generates a trace deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> ContactTrace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for a in 0..self.num_nodes {
            for b in (a + 1)..self.num_nodes {
                let lambda = self.rates[pair_index(a, b, self.num_nodes)];
                if lambda <= 0.0 {
                    continue;
                }
                let mut t = sample_exp(&mut rng, lambda);
                while t < self.duration {
                    let raw_dur = sample_exp(&mut rng, 1.0 / self.mean_contact_duration)
                        .clamp(self.duration_bounds.0, self.duration_bounds.1);
                    let end = (t + raw_dur).min(self.duration);
                    if let Some(e) = self.discretize(NodeId(a), NodeId(b), t, end) {
                        events.push(e);
                    }
                    // next encounter begins an exponential gap after this
                    // one ends
                    t = end + sample_exp(&mut rng, lambda);
                }
            }
        }
        ContactTrace::new(self.num_nodes, events)
    }

    /// Applies Bluetooth-scan discretization to a true encounter.
    fn discretize(&self, a: NodeId, b: NodeId, start: f64, end: f64) -> Option<ContactEvent> {
        if self.scan_interval <= 0.0 {
            return (end > start).then(|| ContactEvent::new(a, b, start, end));
        }
        let detected = (start / self.scan_interval).ceil() * self.scan_interval;
        (detected < end).then(|| ContactEvent::new(a, b, detected, end))
    }
}

/// Exponential sample with rate `lambda`.
fn sample_exp<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn pair_index_is_bijective() {
        let n = 10;
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for b in (a + 1)..n {
                assert!(seen.insert(pair_index(a, b, n)));
            }
        }
        assert_eq!(seen.len(), 45);
        assert_eq!(seen.iter().max(), Some(&44));
    }

    #[test]
    fn deterministic_for_seed() {
        let g = PairwiseExponentialGenerator::homogeneous(8, 36000.0, 1.0 / 1800.0);
        assert_eq!(g.generate(7), g.generate(7));
        assert_ne!(g.generate(7), g.generate(8));
    }

    #[test]
    fn rate_accessors() {
        let mut g = PairwiseExponentialGenerator::new(4, 100.0);
        g.set_rate(NodeId(2), NodeId(1), 0.5);
        assert_eq!(g.rate(NodeId(1), NodeId(2)), 0.5);
        assert_eq!(g.rate(NodeId(0), NodeId(3)), 0.0);
        g.set_rate(NodeId(0), NodeId(1), -1.0);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn inter_contact_times_are_exponential() {
        let lambda = 1.0 / 3600.0;
        let g = PairwiseExponentialGenerator::homogeneous(2, 3000.0 * 3600.0, lambda)
            .with_mean_contact_duration(60.0);
        let trace = g.generate(3);
        let gaps = stats::pair_inter_contact_times(&trace, NodeId(0), NodeId(1));
        assert!(gaps.len() > 500, "only {} gaps", gaps.len());
        let fit = stats::exponential_mle(&gaps);
        assert!(
            (fit - lambda).abs() / lambda < 0.15,
            "fit {fit} vs true {lambda}"
        );
        let ks = stats::ks_statistic_exponential(&gaps, fit);
        assert!(ks < 0.06, "KS {ks}");
    }

    #[test]
    fn contact_count_scales_with_rate() {
        let fast = PairwiseExponentialGenerator::homogeneous(6, 200.0 * 3600.0, 1.0 / 3600.0)
            .generate(1)
            .len();
        let slow = PairwiseExponentialGenerator::homogeneous(6, 200.0 * 3600.0, 1.0 / 36000.0)
            .generate(1)
            .len();
        assert!(fast > 5 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn scan_interval_snaps_and_drops() {
        let g = PairwiseExponentialGenerator::homogeneous(2, 1000.0 * 3600.0, 1.0 / 7200.0)
            .with_scan_interval(300.0)
            .with_mean_contact_duration(400.0);
        let trace = g.generate(5);
        assert!(!trace.is_empty());
        for e in &trace {
            let rem = e.start % 300.0;
            assert!(
                rem.abs() < 1e-6 || (300.0 - rem).abs() < 1e-6,
                "start {} not on scan",
                e.start
            );
            assert!(e.duration() > 0.0);
        }
        // discretization loses short encounters: fewer recorded contacts
        let undiscretized =
            PairwiseExponentialGenerator::homogeneous(2, 1000.0 * 3600.0, 1.0 / 7200.0)
                .with_mean_contact_duration(400.0)
                .generate(5);
        assert!(trace.len() < undiscretized.len());
    }

    #[test]
    fn events_within_duration() {
        let g = PairwiseExponentialGenerator::homogeneous(5, 7200.0, 1.0 / 600.0);
        for e in &g.generate(2) {
            assert!(e.start >= 0.0 && e.end <= 7200.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_tiny_universe() {
        let _ = PairwiseExponentialGenerator::new(1, 100.0);
    }
}
