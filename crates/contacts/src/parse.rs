//! Plain-text interchange format for contact traces.
//!
//! One event per line: `<node_a> <node_b> <start_seconds> <end_seconds>`,
//! whitespace separated. Lines starting with `#` and blank lines are
//! ignored. An optional header line `nodes <n>` fixes the universe size;
//! otherwise it is `max id + 1`.
//!
//! This is the format used by common DTN trace repositories (e.g. the
//! CRAWDAD one-to-one contact exports) modulo column order, so real traces
//! can be converted with a one-line awk script.

use std::error::Error;
use std::fmt;

use crate::{ContactEvent, ContactTrace, NodeId};

/// Error produced by [`parse_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseTraceError {
    line: usize,
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq)]
enum ErrorKind {
    FieldCount(usize),
    BadNumber(String),
    BadInterval(f64, f64),
    SelfContact(u32),
}

impl ParseTraceError {
    /// 1-based line number of the offending line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: ", self.line)?;
        match &self.kind {
            ErrorKind::FieldCount(n) => write!(f, "expected 4 fields, found {n}"),
            ErrorKind::BadNumber(s) => write!(f, "invalid number {s:?}"),
            ErrorKind::BadInterval(s, e) => write!(f, "end {e} precedes start {s}"),
            ErrorKind::SelfContact(n) => write!(f, "self-contact of node {n}"),
        }
    }
}

impl Error for ParseTraceError {}

/// Parses a trace from its text representation.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first malformed line.
///
/// # Example
///
/// ```
/// use photodtn_contacts::parse_trace;
/// let trace = parse_trace("
/// nodes 5
/// 0 1 10 60
/// 1 2 30 45
/// ")?;
/// assert_eq!(trace.num_nodes(), 5);
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), photodtn_contacts::ParseTraceError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<ContactTrace, ParseTraceError> {
    let mut events = Vec::new();
    let mut declared_nodes: Option<u32> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes") {
            let n = rest.trim().parse::<u32>().map_err(|_| ParseTraceError {
                line: line_no,
                kind: ErrorKind::BadNumber(rest.trim().to_string()),
            })?;
            declared_nodes = Some(n);
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseTraceError {
                line: line_no,
                kind: ErrorKind::FieldCount(fields.len()),
            });
        }
        let a = parse_u32(fields[0], line_no)?;
        let b = parse_u32(fields[1], line_no)?;
        let start = parse_f64(fields[2], line_no)?;
        let end = parse_f64(fields[3], line_no)?;
        if a == b {
            return Err(ParseTraceError {
                line: line_no,
                kind: ErrorKind::SelfContact(a),
            });
        }
        if end < start || !start.is_finite() || !end.is_finite() {
            return Err(ParseTraceError {
                line: line_no,
                kind: ErrorKind::BadInterval(start, end),
            });
        }
        events.push(ContactEvent::new(NodeId(a), NodeId(b), start, end));
    }
    let max_seen = events
        .iter()
        .map(|e| e.a.0.max(e.b.0) + 1)
        .max()
        .unwrap_or(0);
    let num_nodes = declared_nodes.unwrap_or(max_seen).max(max_seen);
    Ok(ContactTrace::new(num_nodes, events))
}

/// Renders a trace in the format accepted by [`parse_trace`].
#[must_use]
pub fn write_trace(trace: &ContactTrace) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", trace.num_nodes());
    for e in trace {
        let _ = writeln!(out, "{} {} {} {}", e.a.0, e.b.0, e.start, e.end);
    }
    out
}

fn parse_u32(s: &str, line: usize) -> Result<u32, ParseTraceError> {
    // u32::MAX is rejected: node ids must satisfy `id < num_nodes` with
    // num_nodes itself a u32, so the largest representable id is MAX-1.
    // Letting it through overflows the universe-size computation.
    match s.parse::<u32>() {
        Ok(v) if v < u32::MAX => Ok(v),
        _ => Err(ParseTraceError {
            line,
            kind: ErrorKind::BadNumber(s.to_string()),
        }),
    }
}

fn parse_f64(s: &str, line: usize) -> Result<f64, ParseTraceError> {
    // NaN/inf parse successfully but poison every downstream comparison
    // (the `end < start` interval check is silently false for NaN), so
    // reject them here as malformed input.
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(ParseTraceError {
            line,
            kind: ErrorKind::BadNumber(s.to_string()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = ContactTrace::new(
            7,
            vec![
                ContactEvent::new(NodeId(0), NodeId(1), 10.0, 60.0),
                ContactEvent::new(NodeId(4), NodeId(6), 30.5, 45.25),
            ],
        );
        let text = write_trace(&t);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_trace("# hello\n\n0 1 0 1\n  # indented comment\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn declared_nodes_expand_universe() {
        let t = parse_trace("nodes 50\n0 1 0 1\n").unwrap();
        assert_eq!(t.num_nodes(), 50);
        // declared smaller than max seen: max wins
        let t = parse_trace("nodes 1\n0 5 0 1\n").unwrap();
        assert_eq!(t.num_nodes(), 6);
    }

    #[test]
    fn error_reporting() {
        let e = parse_trace("0 1 0\n").unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.to_string().contains("expected 4 fields"));

        let e = parse_trace("0 1 x 5\n").unwrap_err();
        assert!(e.to_string().contains("invalid number"));

        let e = parse_trace("0 1 9 5\n").unwrap_err();
        assert!(e.to_string().contains("precedes start"));

        let e = parse_trace("3 3 0 5\n").unwrap_err();
        assert!(e.to_string().contains("self-contact"));

        let e = parse_trace("nodes banana\n").unwrap_err();
        assert!(e.to_string().contains("invalid number"));
    }

    #[test]
    fn non_finite_times_rejected() {
        // NaN slips past `end < start` (NaN comparisons are false), so it
        // must die in number parsing instead.
        for bad in ["0 1 NaN 5", "0 1 0 nan", "0 1 inf 5", "0 1 0 -inf"] {
            let e = parse_trace(bad).unwrap_err();
            assert!(e.to_string().contains("invalid number"), "{bad:?} gave {e}");
        }
    }

    #[test]
    fn max_node_id_is_a_typed_error_not_an_overflow() {
        // id u32::MAX can't satisfy `id < num_nodes` for any u32 universe;
        // it used to overflow the `max id + 1` computation instead.
        let e = parse_trace("4294967295 1 0 1\n").unwrap_err();
        assert!(e.to_string().contains("invalid number"), "{e}");
        // the largest representable id still works
        let t = parse_trace("4294967294 1 0 1\n").unwrap();
        assert_eq!(t.num_nodes(), u32::MAX);
    }

    #[test]
    fn empty_input() {
        let t = parse_trace("").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_nodes(), 0);
    }
}
