use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{ContactTrace, NodeId};

/// Online estimator of pairwise contact rates `λ_ab` and per-node rates
/// `λ_a = Σ_b λ_ab` (§III-B).
///
/// The paper models inter-contact times between `n_a` and `n_b` as
/// exponential with parameter `λ_ab`, "learned from historical contacts".
/// The maximum-likelihood estimate from a count of `k` contacts over an
/// observation window `T` is `k / T`, which is what this matrix maintains.
///
/// # Example
///
/// ```
/// use photodtn_contacts::{NodeId, RateMatrix};
/// let mut rates = RateMatrix::new(0.0);
/// rates.record(NodeId(0), NodeId(1), 3600.0);
/// rates.record(NodeId(0), NodeId(1), 7200.0);
/// rates.record(NodeId(0), NodeId(2), 7200.0);
/// // Node 0 met peers 3 times in 2 h → λ_0 = 3 / 7200 s⁻¹.
/// assert!((rates.node_rate(NodeId(0), 7200.0) - 3.0 / 7200.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RateMatrix {
    start_time: f64,
    pair_counts: HashMap<(u32, u32), u64>,
    node_counts: HashMap<u32, u64>,
}

impl RateMatrix {
    /// Creates an estimator observing from `start_time` (seconds).
    #[must_use]
    pub fn new(start_time: f64) -> Self {
        RateMatrix {
            start_time,
            pair_counts: HashMap::new(),
            node_counts: HashMap::new(),
        }
    }

    /// Builds an estimator from a full historical trace (observation
    /// window starts at 0).
    #[must_use]
    pub fn from_trace(trace: &ContactTrace) -> Self {
        let mut m = RateMatrix::new(0.0);
        for e in trace {
            m.record(e.a, e.b, e.start);
        }
        m
    }

    /// Records one contact between `a` and `b` (the time argument is kept
    /// for symmetry with streaming use; only the count matters).
    pub fn record(&mut self, a: NodeId, b: NodeId, _at: f64) {
        let key = if a < b { (a.0, b.0) } else { (b.0, a.0) };
        *self.pair_counts.entry(key).or_insert(0) += 1;
        *self.node_counts.entry(a.0).or_insert(0) += 1;
        *self.node_counts.entry(b.0).or_insert(0) += 1;
    }

    /// Number of recorded contacts between the pair.
    #[must_use]
    pub fn pair_count(&self, a: NodeId, b: NodeId) -> u64 {
        let key = if a < b { (a.0, b.0) } else { (b.0, a.0) };
        self.pair_counts.get(&key).copied().unwrap_or(0)
    }

    /// MLE of `λ_ab` at time `now`: contacts seen divided by the
    /// observation window. Zero before any observation time has elapsed.
    #[must_use]
    pub fn pair_rate(&self, a: NodeId, b: NodeId, now: f64) -> f64 {
        let window = now - self.start_time;
        if window <= 0.0 {
            return 0.0;
        }
        self.pair_count(a, b) as f64 / window
    }

    /// MLE of `λ_a = Σ_b λ_ab` at time `now` — the rate at which node `a`
    /// meets *anyone*, which drives metadata invalidation.
    #[must_use]
    pub fn node_rate(&self, a: NodeId, now: f64) -> f64 {
        let window = now - self.start_time;
        if window <= 0.0 {
            return 0.0;
        }
        self.node_counts.get(&a.0).copied().unwrap_or(0) as f64 / window
    }

    /// Total recorded contacts.
    #[must_use]
    pub fn total_contacts(&self) -> u64 {
        self.pair_counts.values().sum()
    }

    /// Removes and returns node `a`'s contact-participation count.
    ///
    /// Together with [`add_node_count`](Self::add_node_count) this lets a
    /// node's rate state migrate between estimator replicas (e.g. shard
    /// handoffs) without disturbing any other node's `λ`.
    pub fn take_node_count(&mut self, a: NodeId) -> u64 {
        self.node_counts.remove(&a.0).unwrap_or(0)
    }

    /// Credits `count` contact participations to node `a` (the receiving
    /// side of [`take_node_count`](Self::take_node_count)).
    pub fn add_node_count(&mut self, a: NodeId, count: u64) {
        if count > 0 {
            *self.node_counts.entry(a.0).or_insert(0) += count;
        }
    }

    /// A canonical serializable snapshot of the estimator.
    ///
    /// The counts are flattened into *sorted* vectors: JSON maps need
    /// string keys (the pair counts are tuple-keyed), and sorting makes
    /// the encoding independent of `HashMap` iteration order, so equal
    /// estimators always snapshot to identical bytes.
    #[must_use]
    pub fn snapshot(&self) -> RateMatrixSnapshot {
        let mut pairs: Vec<(u32, u32, u64)> = self
            .pair_counts
            .iter()
            .map(|(&(a, b), &k)| (a, b, k))
            .collect();
        pairs.sort_unstable();
        let mut nodes: Vec<(u32, u64)> = self.node_counts.iter().map(|(&n, &k)| (n, k)).collect();
        nodes.sort_unstable();
        RateMatrixSnapshot {
            start_time: self.start_time,
            pairs,
            nodes,
        }
    }

    /// Rebuilds an estimator from a [`snapshot`](Self::snapshot).
    #[must_use]
    pub fn from_snapshot(s: &RateMatrixSnapshot) -> Self {
        RateMatrix {
            start_time: s.start_time,
            pair_counts: s.pairs.iter().map(|&(a, b, k)| ((a, b), k)).collect(),
            node_counts: s.nodes.iter().map(|&(n, k)| (n, k)).collect(),
        }
    }
}

/// The flattened, order-canonical form of a [`RateMatrix`] — see
/// [`RateMatrix::snapshot`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RateMatrixSnapshot {
    /// Start of the observation window, seconds.
    pub start_time: f64,
    /// `(a, b, count)` per observed pair, `a < b`, sorted.
    pub pairs: Vec<(u32, u32, u64)>,
    /// `(node, count)` per observed node, sorted.
    pub nodes: Vec<(u32, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContactEvent;

    #[test]
    fn pair_and_node_rates() {
        let mut m = RateMatrix::new(0.0);
        m.record(NodeId(1), NodeId(0), 10.0);
        m.record(NodeId(0), NodeId(1), 20.0);
        m.record(NodeId(0), NodeId(2), 30.0);
        assert_eq!(m.pair_count(NodeId(0), NodeId(1)), 2);
        assert_eq!(m.pair_count(NodeId(1), NodeId(0)), 2);
        assert_eq!(m.pair_count(NodeId(1), NodeId(2)), 0);
        assert!((m.pair_rate(NodeId(0), NodeId(1), 100.0) - 0.02).abs() < 1e-12);
        assert!((m.node_rate(NodeId(0), 100.0) - 0.03).abs() < 1e-12);
        assert!((m.node_rate(NodeId(2), 100.0) - 0.01).abs() < 1e-12);
        assert_eq!(m.total_contacts(), 3);
    }

    #[test]
    fn zero_window_yields_zero() {
        let mut m = RateMatrix::new(50.0);
        m.record(NodeId(0), NodeId(1), 50.0);
        assert_eq!(m.pair_rate(NodeId(0), NodeId(1), 50.0), 0.0);
        assert_eq!(m.node_rate(NodeId(0), 40.0), 0.0);
    }

    #[test]
    fn node_count_handoff_preserves_rates() {
        let mut src = RateMatrix::new(0.0);
        src.record(NodeId(0), NodeId(1), 10.0);
        src.record(NodeId(0), NodeId(2), 20.0);
        let mut dst = RateMatrix::new(0.0);
        dst.record(NodeId(0), NodeId(3), 30.0);
        let moved = src.take_node_count(NodeId(0));
        assert_eq!(moved, 2);
        assert_eq!(src.node_rate(NodeId(0), 100.0), 0.0);
        dst.add_node_count(NodeId(0), moved);
        assert!((dst.node_rate(NodeId(0), 100.0) - 0.03).abs() < 1e-12);
        // donor keeps every other node's count
        assert!((src.node_rate(NodeId(1), 100.0) - 0.01).abs() < 1e-12);
        // taking an unknown node is a zero-count no-op
        assert_eq!(dst.take_node_count(NodeId(9)), 0);
        dst.add_node_count(NodeId(9), 0);
        assert_eq!(dst.node_rate(NodeId(9), 100.0), 0.0);
    }

    #[test]
    fn from_trace_counts_all() {
        let t = ContactTrace::new(
            3,
            vec![
                ContactEvent::new(NodeId(0), NodeId(1), 0.0, 10.0),
                ContactEvent::new(NodeId(1), NodeId(2), 100.0, 110.0),
            ],
        );
        let m = RateMatrix::from_trace(&t);
        assert_eq!(m.total_contacts(), 2);
        assert_eq!(m.pair_count(NodeId(0), NodeId(1)), 1);
    }
}
