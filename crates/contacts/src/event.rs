use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a DTN node (crowdsourcing participant or command center).
///
/// Nodes in a trace are numbered densely from 0.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One contact: nodes `a` and `b` were within wireless range during
/// `[start, end]` (seconds from the start of the trace).
///
/// The pair is stored normalized (`a < b`); contacts are undirected.
///
/// # Example
///
/// ```
/// use photodtn_contacts::{ContactEvent, NodeId};
/// let c = ContactEvent::new(NodeId(5), NodeId(2), 100.0, 160.0);
/// assert_eq!(c.a, NodeId(2)); // normalized
/// assert_eq!(c.duration(), 60.0);
/// assert!(c.involves(NodeId(5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContactEvent {
    /// Smaller-id endpoint.
    pub a: NodeId,
    /// Larger-id endpoint.
    pub b: NodeId,
    /// Contact start time, seconds.
    pub start: f64,
    /// Contact end time, seconds (`end ≥ start`).
    pub end: f64,
}

impl ContactEvent {
    /// Creates a contact, normalizing the node pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, if times are non-finite, or if `end < start` —
    /// such an event is always a bug in trace construction.
    #[must_use]
    pub fn new(a: NodeId, b: NodeId, start: f64, end: f64) -> Self {
        assert!(a != b, "self-contact of {a}");
        assert!(
            start.is_finite() && end.is_finite() && end >= start,
            "invalid contact interval [{start}, {end}]"
        );
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        ContactEvent { a, b, start, end }
    }

    /// Contact duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Whether `node` is one of the endpoints.
    #[must_use]
    pub fn involves(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }

    /// The other endpoint, if `node` participates in this contact.
    #[must_use]
    pub fn peer_of(&self, node: NodeId) -> Option<NodeId> {
        if self.a == node {
            Some(self.b)
        } else if self.b == node {
            Some(self.a)
        } else {
            None
        }
    }

    /// The normalized `(a, b)` pair.
    #[must_use]
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }
}

impl fmt::Display for ContactEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}–{} @[{:.0}s, {:.0}s]",
            self.a, self.b, self.start, self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_pair() {
        let c = ContactEvent::new(NodeId(9), NodeId(3), 0.0, 1.0);
        assert_eq!(c.pair(), (NodeId(3), NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn rejects_self_contact() {
        let _ = ContactEvent::new(NodeId(1), NodeId(1), 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid contact interval")]
    fn rejects_reversed_interval() {
        let _ = ContactEvent::new(NodeId(1), NodeId(2), 5.0, 1.0);
    }

    #[test]
    fn peer_lookup() {
        let c = ContactEvent::new(NodeId(1), NodeId(2), 0.0, 1.0);
        assert_eq!(c.peer_of(NodeId(1)), Some(NodeId(2)));
        assert_eq!(c.peer_of(NodeId(2)), Some(NodeId(1)));
        assert_eq!(c.peer_of(NodeId(3)), None);
        assert!(!c.involves(NodeId(3)));
    }

    #[test]
    fn zero_duration_allowed() {
        let c = ContactEvent::new(NodeId(1), NodeId(2), 5.0, 5.0);
        assert_eq!(c.duration(), 0.0);
    }
}
