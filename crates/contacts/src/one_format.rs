//! Import of ONE-simulator connectivity event traces.
//!
//! The ONE simulator (Keränen et al.) is the standard DTN research tool;
//! its `StandardEventsReader` connectivity format is what most published
//! trace conversions (including the CRAWDAD exports of MIT Reality and
//! Cambridge06) ship in:
//!
//! ```text
//! <time> CONN <host1> <host2> up
//! <time> CONN <host1> <host2> down
//! ```
//!
//! [`parse_one_trace`] pairs `up`/`down` lines into [`ContactEvent`]s, so
//! a real converted trace can be dropped straight into the simulator via
//! `photodtn trace` tooling.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{ContactEvent, ContactTrace, NodeId};

/// Error from [`parse_one_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseOneError {
    line: usize,
    kind: ParseOneErrorKind,
    message: String,
}

/// The class of a [`ParseOneError`] — stable across message rewording,
/// so callers can match on structure instead of substrings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseOneErrorKind {
    /// Line does not have exactly 5 whitespace-separated fields.
    FieldCount,
    /// Timestamp failed to parse or is non-finite.
    BadTime,
    /// Second field is not `CONN`.
    NotConn,
    /// Fifth field is not `up`/`down`.
    BadDirection,
    /// Host field has no parseable numeric id.
    BadHost,
    /// A `CONN n n …` event connecting a host to itself.
    SelfConnection,
    /// Timestamp went backwards relative to an earlier event line.
    DecreasingTime {
        /// The previous (higher) timestamp.
        prev: f64,
    },
}

impl ParseOneError {
    fn new(line: usize, kind: ParseOneErrorKind, message: impl Into<String>) -> Self {
        ParseOneError {
            line,
            kind,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// The typed failure class.
    #[must_use]
    pub fn kind(&self) -> &ParseOneErrorKind {
        &self.kind
    }
}

impl fmt::Display for ParseOneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ONE trace line {}: {}", self.line, self.message)
    }
}

impl Error for ParseOneError {}

/// Parses a ONE connectivity trace.
///
/// Host names may be plain integers (`12`) or prefixed (`n12`, `p12`) —
/// any non-digit prefix is stripped. Redundant `up`s and unmatched
/// `down`s are ignored (real exports contain both).
///
/// Two boundary behaviors are defined, not incidental:
///
/// - **Timestamps must be non-negative and non-decreasing.** ONE's
///   `StandardEventsReader`
///   emits events in simulation order, so a backwards jump means a
///   corrupted or mis-concatenated export; it is rejected as
///   [`ParseOneErrorKind::DecreasingTime`] rather than silently clamped
///   (which used to warp any contact overlapping the jump). Equal
///   timestamps are fine — simultaneous events are common.
/// - **Zero-duration contacts are dropped.** An `up` immediately followed
///   by a `down` at the same timestamp, and connections still open at end
///   of input whose `up` was at the final timestamp, carry no transfer
///   opportunity; they are omitted from the trace rather than producing
///   zero-length [`ContactEvent`]s (which the interval validator
///   rejects). Remaining open connections are auto-closed at the last
///   seen timestamp.
///
/// # Errors
///
/// Returns [`ParseOneError`] on a malformed line; [`ParseOneError::kind`]
/// distinguishes the failure classes.
///
/// # Example
///
/// ```
/// use photodtn_contacts::one_format::parse_one_trace;
/// let trace = parse_one_trace("
/// 10.0 CONN n1 n2 up
/// 75.0 CONN n1 n2 down
/// ")?;
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.events()[0].duration(), 65.0);
/// # Ok::<(), photodtn_contacts::one_format::ParseOneError>(())
/// ```
pub fn parse_one_trace(text: &str) -> Result<ContactTrace, ParseOneError> {
    let mut open: HashMap<(u32, u32), f64> = HashMap::new();
    let mut events = Vec::new();
    let mut last_time = 0.0f64;
    let mut max_node = 0u32;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(ParseOneError::new(
                line_no,
                ParseOneErrorKind::FieldCount,
                format!("expected 5 fields, found {}", fields.len()),
            ));
        }
        // Reject non-finite timestamps outright: NaN sails through both
        // the monotonicity check (NaN comparisons are false) and the
        // `time > start` pairing check, silently dropping or warping
        // contacts.
        let time: f64 = fields[0]
            .parse()
            .ok()
            .filter(|t: &f64| t.is_finite())
            .ok_or_else(|| {
                ParseOneError::new(
                    line_no,
                    ParseOneErrorKind::BadTime,
                    format!("invalid time {:?}", fields[0]),
                )
            })?;
        if time < last_time {
            return Err(ParseOneError::new(
                line_no,
                ParseOneErrorKind::DecreasingTime { prev: last_time },
                format!("time {time} decreases below earlier event at {last_time}"),
            ));
        }
        if !fields[1].eq_ignore_ascii_case("CONN") {
            return Err(ParseOneError::new(
                line_no,
                ParseOneErrorKind::NotConn,
                format!("expected CONN, found {:?}", fields[1]),
            ));
        }
        let a = parse_host(fields[2], line_no)?;
        let b = parse_host(fields[3], line_no)?;
        if a == b {
            return Err(ParseOneError::new(
                line_no,
                ParseOneErrorKind::SelfConnection,
                format!("self-connection of host {a}"),
            ));
        }
        last_time = time;
        max_node = max_node.max(a).max(b);
        let key = if a < b { (a, b) } else { (b, a) };
        match fields[4].to_ascii_lowercase().as_str() {
            "up" => {
                open.entry(key).or_insert(time);
            }
            "down" => {
                // `time > start` drops zero-duration contacts (see the
                // function docs — no transfer opportunity).
                if let Some(start) = open.remove(&key) {
                    if time > start {
                        events.push(ContactEvent::new(NodeId(key.0), NodeId(key.1), start, time));
                    }
                }
            }
            other => {
                return Err(ParseOneError::new(
                    line_no,
                    ParseOneErrorKind::BadDirection,
                    format!("expected up/down, found {other:?}"),
                ));
            }
        }
    }
    // Close dangling connections at the last timestamp; ones opened AT
    // the last timestamp would be zero-duration and are dropped.
    for ((a, b), start) in open {
        if last_time > start {
            events.push(ContactEvent::new(NodeId(a), NodeId(b), start, last_time));
        }
    }
    let num_nodes = if events.is_empty() { 0 } else { max_node + 1 };
    Ok(ContactTrace::new(num_nodes, events))
}

fn parse_host(s: &str, line: usize) -> Result<u32, ParseOneError> {
    let digits = s.trim_start_matches(|c: char| !c.is_ascii_digit());
    digits.parse().map_err(|_| {
        ParseOneError::new(
            line,
            ParseOneErrorKind::BadHost,
            format!("invalid host {s:?}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_up_down() {
        let t = parse_one_trace(
            "0 CONN n1 n2 up\n10 CONN n3 n4 up\n30 CONN n1 n2 down\n50 CONN n3 n4 down\n",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.events()[0].duration(), 30.0);
        assert_eq!(t.events()[1].duration(), 40.0);
    }

    #[test]
    fn prefixes_and_case_insensitive() {
        let t = parse_one_trace("5 conn p7 12 UP\n9 Conn 12 p7 Down\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].pair(), (NodeId(7), NodeId(12)));
    }

    #[test]
    fn dangling_up_closed_at_end() {
        let t = parse_one_trace("0 CONN 1 2 up\n99 CONN 3 4 up\n100 CONN 3 4 down\n").unwrap();
        assert_eq!(t.len(), 2);
        let dangling = t.events().iter().find(|e| e.involves(NodeId(1))).unwrap();
        assert_eq!(dangling.end, 100.0);
    }

    #[test]
    fn redundant_up_and_unmatched_down_ignored() {
        let t = parse_one_trace("0 CONN 1 2 up\n1 CONN 1 2 up\n5 CONN 1 2 down\n9 CONN 1 2 down\n")
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].start, 0.0);
    }

    #[test]
    fn error_cases() {
        assert!(parse_one_trace("1 CONN 1 2\n")
            .unwrap_err()
            .to_string()
            .contains("5 fields"));
        assert!(parse_one_trace("x CONN 1 2 up\n")
            .unwrap_err()
            .to_string()
            .contains("invalid time"));
        assert!(parse_one_trace("1 PING 1 2 up\n")
            .unwrap_err()
            .to_string()
            .contains("expected CONN"));
        assert!(parse_one_trace("1 CONN 1 1 up\n")
            .unwrap_err()
            .to_string()
            .contains("self-connection"));
        assert!(parse_one_trace("1 CONN 1 2 sideways\n")
            .unwrap_err()
            .to_string()
            .contains("up/down"));
        assert_eq!(parse_one_trace("1 CONN a b up\n").unwrap_err().line(), 1);
    }

    #[test]
    fn errors_carry_typed_kinds() {
        for (text, kind) in [
            ("1 CONN 1 2\n", ParseOneErrorKind::FieldCount),
            ("x CONN 1 2 up\n", ParseOneErrorKind::BadTime),
            ("1 PING 1 2 up\n", ParseOneErrorKind::NotConn),
            ("1 CONN a b up\n", ParseOneErrorKind::BadHost),
            ("1 CONN 1 1 up\n", ParseOneErrorKind::SelfConnection),
            ("1 CONN 1 2 sideways\n", ParseOneErrorKind::BadDirection),
        ] {
            let err = parse_one_trace(text).unwrap_err();
            assert_eq!(*err.kind(), kind, "{text:?}: {err}");
            assert_eq!(err.line(), 1, "{text:?}");
        }
    }

    #[test]
    fn self_connection_rejected_even_with_prefixes() {
        let err = parse_one_trace("0 CONN n7 p7 up\n").unwrap_err();
        assert_eq!(*err.kind(), ParseOneErrorKind::SelfConnection);
    }

    #[test]
    fn decreasing_timestamps_rejected() {
        let err = parse_one_trace("10 CONN 1 2 up\n5 CONN 1 2 down\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(
            *err.kind(),
            ParseOneErrorKind::DecreasingTime { prev: 10.0 }
        );
        // Negative times fall below the initial watermark of 0.
        let err = parse_one_trace("-1 CONN 1 2 up\n").unwrap_err();
        assert_eq!(*err.kind(), ParseOneErrorKind::DecreasingTime { prev: 0.0 });
        // Equal timestamps are fine (simultaneous events are common).
        let t = parse_one_trace("5 CONN 1 2 up\n5 CONN 3 4 up\n9 CONN 1 2 down\n9 CONN 3 4 down\n")
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn zero_duration_contacts_are_dropped() {
        // up/down at the same instant: no transfer opportunity, no event.
        let t = parse_one_trace("5 CONN 1 2 up\n5 CONN 1 2 down\n").unwrap();
        assert!(t.is_empty());
        // Dangling up AT the final timestamp: auto-close would be
        // zero-duration, so it is dropped too — but an earlier dangling
        // up still closes at that final timestamp.
        let t = parse_one_trace("0 CONN 1 2 up\n9 CONN 3 4 up\n9 CONN 5 6 down\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].pair(), (NodeId(1), NodeId(2)));
        assert_eq!(t.events()[0].end, 9.0);
    }

    #[test]
    fn non_finite_times_rejected() {
        for bad in ["NaN CONN 1 2 up", "inf CONN 1 2 up", "-inf CONN 1 2 down"] {
            assert!(
                parse_one_trace(bad)
                    .unwrap_err()
                    .to_string()
                    .contains("invalid time"),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn comments_and_empty() {
        let t = parse_one_trace("# header\n\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_nodes(), 0);
    }
}
