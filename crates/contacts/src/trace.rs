use serde::{Deserialize, Serialize};

use crate::{ContactEvent, NodeId};

/// A complete contact trace: events sorted by start time, plus the node
/// universe.
///
/// `num_nodes` may exceed the largest node id seen in events (isolated
/// nodes are legal — they simply never exchange photos).
///
/// # Example
///
/// ```
/// use photodtn_contacts::{ContactEvent, ContactTrace, NodeId};
/// let trace = ContactTrace::new(3, vec![
///     ContactEvent::new(NodeId(0), NodeId(1), 10.0, 20.0),
///     ContactEvent::new(NodeId(1), NodeId(2), 5.0, 8.0),
/// ]);
/// // Events come out sorted by start time.
/// assert_eq!(trace.events()[0].start, 5.0);
/// assert_eq!(trace.duration(), 20.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ContactTrace {
    num_nodes: u32,
    events: Vec<ContactEvent>,
}

impl ContactTrace {
    /// Builds a trace, sorting events by `(start, end, pair)`.
    ///
    /// # Panics
    ///
    /// Panics if an event references a node `≥ num_nodes`.
    #[must_use]
    pub fn new(num_nodes: u32, mut events: Vec<ContactEvent>) -> Self {
        for e in &events {
            assert!(
                e.b.0 < num_nodes,
                "event {e} references node outside universe of {num_nodes}"
            );
        }
        events.sort_by(|x, y| {
            x.start
                .total_cmp(&y.start)
                .then(x.end.total_cmp(&y.end))
                .then(x.pair().cmp(&y.pair()))
        });
        ContactTrace { num_nodes, events }
    }

    /// Number of nodes in the universe.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of contact events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, sorted by start time.
    #[must_use]
    pub fn events(&self) -> &[ContactEvent] {
        &self.events
    }

    /// End time of the last-ending event (0 for an empty trace), seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Events whose start time lies in `[from, to)`.
    pub fn between(&self, from: f64, to: f64) -> impl Iterator<Item = &ContactEvent> {
        let lo = self.events.partition_point(|e| e.start < from);
        self.events[lo..].iter().take_while(move |e| e.start < to)
    }

    /// Events involving `node`, in start order.
    pub fn contacts_of(&self, node: NodeId) -> impl Iterator<Item = &ContactEvent> {
        self.events.iter().filter(move |e| e.involves(node))
    }

    /// Splits the trace at the event index `len − tail`: returns
    /// `(history, recent)` where `recent` has the last `tail` events.
    ///
    /// The §IV-B demo "uses the last 48 contacts … to run the algorithm and
    /// collect photos, and all previous contacts to learn the delivery
    /// probability".
    #[must_use]
    pub fn split_tail(&self, tail: usize) -> (ContactTrace, ContactTrace) {
        let cut = self.events.len().saturating_sub(tail);
        (
            ContactTrace {
                num_nodes: self.num_nodes,
                events: self.events[..cut].to_vec(),
            },
            ContactTrace {
                num_nodes: self.num_nodes,
                events: self.events[cut..].to_vec(),
            },
        )
    }

    /// Returns a copy whose events all have duration exactly `seconds`
    /// (start times unchanged). Used to study the effect of contact
    /// duration (§V-C) without changing contact opportunities.
    #[must_use]
    pub fn with_uniform_duration(&self, seconds: f64) -> ContactTrace {
        let events = self
            .events
            .iter()
            .map(|e| ContactEvent::new(e.a, e.b, e.start, e.start + seconds.max(0.0)))
            .collect();
        ContactTrace {
            num_nodes: self.num_nodes,
            events,
        }
    }

    /// Returns a copy with all event times shifted by `delta` seconds
    /// (useful to re-zero a trace segment; times may become negative,
    /// e.g. for PROPHET warm-up history).
    #[must_use]
    pub fn shifted(&self, delta: f64) -> ContactTrace {
        let events = self
            .events
            .iter()
            .map(|e| ContactEvent::new(e.a, e.b, e.start + delta, e.end + delta))
            .collect();
        ContactTrace {
            num_nodes: self.num_nodes,
            events,
        }
    }

    /// Returns a copy restricted to the first `hours` hours of the trace.
    #[must_use]
    pub fn truncated(&self, hours: f64) -> ContactTrace {
        let cutoff = hours * 3600.0;
        ContactTrace {
            num_nodes: self.num_nodes,
            events: self
                .events
                .iter()
                .filter(|e| e.start < cutoff)
                .copied()
                .collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ContactTrace {
    type Item = &'a ContactEvent;
    type IntoIter = std::slice::Iter<'a, ContactEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContactTrace {
        ContactTrace::new(
            4,
            vec![
                ContactEvent::new(NodeId(0), NodeId(1), 100.0, 160.0),
                ContactEvent::new(NodeId(2), NodeId(3), 50.0, 55.0),
                ContactEvent::new(NodeId(0), NodeId(2), 200.0, 290.0),
                ContactEvent::new(NodeId(1), NodeId(3), 150.0, 151.0),
            ],
        )
    }

    #[test]
    fn sorted_by_start() {
        let t = sample();
        let starts: Vec<f64> = t.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![50.0, 100.0, 150.0, 200.0]);
        assert_eq!(t.duration(), 290.0);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_universe() {
        let _ = ContactTrace::new(2, vec![ContactEvent::new(NodeId(0), NodeId(5), 0.0, 1.0)]);
    }

    #[test]
    fn between_window() {
        let t = sample();
        let picked: Vec<f64> = t.between(60.0, 160.0).map(|e| e.start).collect();
        assert_eq!(picked, vec![100.0, 150.0]);
        assert_eq!(t.between(300.0, 400.0).count(), 0);
    }

    #[test]
    fn contacts_of_node() {
        let t = sample();
        assert_eq!(t.contacts_of(NodeId(0)).count(), 2);
        assert_eq!(t.contacts_of(NodeId(3)).count(), 2);
    }

    #[test]
    fn split_tail_partitions() {
        let t = sample();
        let (hist, recent) = t.split_tail(1);
        assert_eq!(hist.len(), 3);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent.events()[0].start, 200.0);
        // oversized tail returns everything as recent
        let (h2, r2) = t.split_tail(100);
        assert_eq!(h2.len(), 0);
        assert_eq!(r2.len(), 4);
    }

    #[test]
    fn uniform_duration() {
        let t = sample().with_uniform_duration(30.0);
        assert!(t
            .events()
            .iter()
            .all(|e| (e.duration() - 30.0).abs() < 1e-12));
    }

    #[test]
    fn truncation() {
        let t = sample().truncated(200.0 / 3600.0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_trace() {
        let t = ContactTrace::new(5, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
    }
}
