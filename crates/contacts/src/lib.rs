//! Contact traces for Disruption Tolerant Networks.
//!
//! The paper drives both its prototype demo and its simulations from
//! Bluetooth contact traces (MIT Reality and Cambridge06 — §IV-B, §V-A):
//! devices periodically scan for peers and record a contact whenever two
//! devices are in range.
//!
//! Those traces are not redistributable, so this crate provides
//!
//! * the trace model itself ([`ContactEvent`], [`ContactTrace`]) with a
//!   plain-text interchange format ([`parse_trace`], [`write_trace`]);
//! * synthetic generators that reproduce the statistical structure the
//!   paper's machinery relies on: pairwise **exponential inter-contact
//!   times** (assumed by the metadata-validity model, §III-B) with
//!   **community structure** ("rescuers in the same team contact more
//!   often") and Bluetooth-style scan discretization —
//!   [`synth::CommunityTraceGenerator`] with MIT-like and Cambridge-like
//!   presets; plus a [`synth::WaypointTraceGenerator`] random-waypoint
//!   mobility model for validating the exponential assumption;
//! * estimators ([`stats`], [`RateMatrix`]) for the contact rates
//!   `λ_ab` that the metadata management scheme learns online.
//!
//! # Example
//!
//! ```
//! use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
//!
//! let trace = CommunityTraceGenerator::new(TraceStyle::MitLike).generate(42);
//! assert_eq!(trace.num_nodes(), 97);
//! assert!(trace.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod one_format;
mod parse;
mod rate;
pub mod stats;
pub mod synth;
mod trace;

pub use event::{ContactEvent, NodeId};
pub use parse::{parse_trace, write_trace, ParseTraceError};
pub use rate::{RateMatrix, RateMatrixSnapshot};
pub use trace::ContactTrace;
