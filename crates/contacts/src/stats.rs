//! Descriptive statistics of contact traces.
//!
//! The metadata-management scheme (§III-B) leans on the empirical finding
//! that inter-contact times decay exponentially; these helpers extract
//! inter-contact samples from a trace and fit/validate the exponential
//! model, which is how we calibrate the synthetic generators against the
//! shapes reported for MIT Reality and Cambridge06.

use std::collections::HashMap;

use crate::{ContactTrace, NodeId};

/// Aggregate statistics of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Node universe size.
    pub num_nodes: u32,
    /// Number of contact events.
    pub num_events: usize,
    /// Trace duration, seconds.
    pub duration: f64,
    /// Mean contact duration, seconds.
    pub mean_contact_duration: f64,
    /// Mean pairwise inter-contact time, seconds (pairs with ≥ 2 contacts).
    pub mean_inter_contact: f64,
    /// Average contacts per node per hour.
    pub contacts_per_node_hour: f64,
}

/// Computes a [`TraceSummary`].
#[must_use]
pub fn summarize(trace: &ContactTrace) -> TraceSummary {
    let num_events = trace.len();
    let duration = trace.duration();
    let mean_contact_duration = if num_events == 0 {
        0.0
    } else {
        trace.events().iter().map(|e| e.duration()).sum::<f64>() / num_events as f64
    };
    let gaps = inter_contact_times(trace);
    let mean_inter_contact = if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };
    let hours = duration / 3600.0;
    let contacts_per_node_hour = if hours > 0.0 && trace.num_nodes() > 0 {
        // each contact involves two nodes
        2.0 * num_events as f64 / (trace.num_nodes() as f64 * hours)
    } else {
        0.0
    };
    TraceSummary {
        num_nodes: trace.num_nodes(),
        num_events,
        duration,
        mean_contact_duration,
        mean_inter_contact,
        contacts_per_node_hour,
    }
}

/// All pairwise inter-contact times in the trace: for each node pair, the
/// gaps between the end of one contact and the start of the next.
#[must_use]
pub fn inter_contact_times(trace: &ContactTrace) -> Vec<f64> {
    let mut per_pair: HashMap<(u32, u32), Vec<(f64, f64)>> = HashMap::new();
    for e in trace {
        per_pair
            .entry((e.a.0, e.b.0))
            .or_default()
            .push((e.start, e.end));
    }
    let mut gaps = Vec::new();
    for intervals in per_pair.values_mut() {
        intervals.sort_by(|x, y| x.0.total_cmp(&y.0));
        for w in intervals.windows(2) {
            let gap = w[1].0 - w[0].1;
            if gap > 0.0 {
                gaps.push(gap);
            }
        }
    }
    gaps
}

/// Inter-contact times for one specific pair.
#[must_use]
pub fn pair_inter_contact_times(trace: &ContactTrace, a: NodeId, b: NodeId) -> Vec<f64> {
    let mut intervals: Vec<(f64, f64)> = trace
        .events()
        .iter()
        .filter(|e| e.involves(a) && e.involves(b))
        .map(|e| (e.start, e.end))
        .collect();
    intervals.sort_by(|x, y| x.0.total_cmp(&y.0));
    intervals
        .windows(2)
        .map(|w| w[1].0 - w[0].1)
        .filter(|&g| g > 0.0)
        .collect()
}

/// Maximum-likelihood exponential rate for a set of positive samples:
/// `λ = 1 / mean`. Returns 0 for empty input.
#[must_use]
pub fn exponential_mle(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if mean > 0.0 {
        1.0 / mean
    } else {
        0.0
    }
}

/// Kolmogorov–Smirnov statistic of the samples against `Exp(λ)`:
/// `sup_x |F_n(x) − (1 − e^{−λx})|`, in `[0, 1]` (1 for empty input).
///
/// Small values mean the exponential inter-contact assumption underlying
/// equation (1) of the paper holds for the trace.
#[must_use]
pub fn ks_statistic_exponential(samples: &[f64], lambda: f64) -> f64 {
    if samples.is_empty() || lambda <= 0.0 {
        return 1.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut ks = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let model = 1.0 - (-lambda * x).exp();
        let emp_hi = (i as f64 + 1.0) / n;
        let emp_lo = i as f64 / n;
        ks = ks.max((model - emp_lo).abs()).max((model - emp_hi).abs());
    }
    ks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContactEvent;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn trace() -> ContactTrace {
        ContactTrace::new(
            3,
            vec![
                ContactEvent::new(NodeId(0), NodeId(1), 0.0, 10.0),
                ContactEvent::new(NodeId(0), NodeId(1), 110.0, 120.0),
                ContactEvent::new(NodeId(0), NodeId(1), 320.0, 330.0),
                ContactEvent::new(NodeId(1), NodeId(2), 50.0, 60.0),
            ],
        )
    }

    #[test]
    fn inter_contact_gaps() {
        let gaps = inter_contact_times(&trace());
        let mut sorted = gaps.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![100.0, 200.0]);
        let pair = pair_inter_contact_times(&trace(), NodeId(0), NodeId(1));
        assert_eq!(pair.len(), 2);
        assert!(pair_inter_contact_times(&trace(), NodeId(0), NodeId(2)).is_empty());
    }

    #[test]
    fn summary_values() {
        let s = summarize(&trace());
        assert_eq!(s.num_events, 4);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.duration, 330.0);
        assert!((s.mean_contact_duration - 10.0).abs() < 1e-12);
        assert!((s.mean_inter_contact - 150.0).abs() < 1e-12);
        assert!(s.contacts_per_node_hour > 0.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = summarize(&ContactTrace::new(2, vec![]));
        assert_eq!(s.num_events, 0);
        assert_eq!(s.mean_contact_duration, 0.0);
        assert_eq!(s.contacts_per_node_hour, 0.0);
    }

    #[test]
    fn mle_matches_mean() {
        assert_eq!(exponential_mle(&[]), 0.0);
        assert!((exponential_mle(&[2.0, 4.0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ks_accepts_true_exponential() {
        let mut rng = SmallRng::seed_from_u64(9);
        let lambda = 0.01;
        let samples: Vec<f64> = (0..2000)
            .map(|_| -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / lambda)
            .collect();
        let fit = exponential_mle(&samples);
        assert!((fit - lambda).abs() / lambda < 0.1);
        let ks = ks_statistic_exponential(&samples, fit);
        assert!(ks < 0.05, "KS {ks} too large for true exponential");
    }

    #[test]
    fn ks_rejects_constant() {
        let samples = vec![10.0; 500];
        let ks = ks_statistic_exponential(&samples, exponential_mle(&samples));
        assert!(ks > 0.3, "KS {ks} should reject a constant");
    }

    #[test]
    fn ks_degenerate_inputs() {
        assert_eq!(ks_statistic_exponential(&[], 1.0), 1.0);
        assert_eq!(ks_statistic_exponential(&[1.0], 0.0), 1.0);
    }
}
