//! Chaos harness: every concrete scheme, run under [`Checked`] across a
//! grid of fault intensities and seeds.
//!
//! The point is not the coverage numbers — it is that **no** combination
//! of contact interruption, transfer loss/corruption, node churn and
//! degraded uplinks can make any scheme violate a simulator invariant
//! (storage bounds, monotone delivery, no resurrection of wiped photos,
//! monotone fault counters). `Checked` turns each violation into a panic
//! at the offending event, so a green run is the proof.
//!
//! Run in CI with debug assertions enabled:
//! `RUSTFLAGS="-C debug-assertions" cargo test --release -p photodtn-sim --test chaos`

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{
    BestPossible, CentralizedOracle, DirectDelivery, Epidemic, ModifiedSpray, OurScheme, PhotoNet,
    ProphetRouting, SprayAndWait,
};
use photodtn_sim::{Checked, FaultConfig, Scheme, SimConfig, Simulation};

/// Every concrete scheme in `photodtn-schemes`, freshly constructed.
fn lineup() -> Vec<Box<dyn Scheme + Send>> {
    vec![
        Box::new(BestPossible),
        Box::new(OurScheme::new()),
        Box::new(OurScheme::no_metadata()),
        Box::new(ModifiedSpray::new()),
        Box::new(SprayAndWait::new()),
        Box::new(PhotoNet::new()),
        Box::new(Epidemic::new()),
        Box::new(DirectDelivery::new()),
        Box::new(CentralizedOracle::new()),
        Box::new(ProphetRouting::new()),
    ]
}

fn small_trace(seed: u64) -> ContactTrace {
    // MIT-like traces are sparse: fewer than ~16 nodes or ~30 hours
    // leaves too few contacts for anything to be delivered at all.
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(16)
        .with_duration_hours(36.0)
        .generate(seed)
}

/// A world small enough that the full grid stays fast in debug builds.
/// The tight 40-photo storage cap keeps collections small (PhotoNet's
/// novelty scan is quadratic in them) and keeps every eviction path hot.
fn small_config() -> SimConfig {
    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(30.0)
        .with_storage_bytes(40 * 4 * 1024 * 1024);
    config.num_pois = 60;
    config
}

/// The tentpole grid: every scheme × ≥3 intensities × ≥3 seeds, all under
/// `Checked`. Also asserts graceful degradation: injecting faults must
/// never *improve* mean coverage beyond noise, and must never crash.
#[test]
fn every_scheme_survives_the_chaos_grid() {
    const INTENSITIES: [f64; 3] = [0.0, 0.3, 0.7];
    const SEEDS: [u64; 3] = [11, 22, 33];
    let trace = small_trace(4);

    // mean final point coverage per (scheme index, intensity index)
    let mut mean_cov = vec![[0.0f64; INTENSITIES.len()]; lineup().len()];
    for (ii, &intensity) in INTENSITIES.iter().enumerate() {
        let config = small_config().with_faults(FaultConfig::chaos(intensity));
        for &seed in &SEEDS {
            for (si, scheme) in lineup().into_iter().enumerate() {
                let name = scheme.name();
                let mut checked = Checked::new(scheme);
                let result = Simulation::new(&config, &trace, seed).run(&mut checked);
                let f = result.final_sample();
                assert!(
                    (0.0..=1.0).contains(&f.point_coverage),
                    "{name} i={intensity} seed={seed}: coverage {} out of range",
                    f.point_coverage
                );
                let injected = f.contacts_interrupted
                    + f.transfers_lost
                    + f.transfers_corrupt
                    + f.node_crashes
                    + f.uplinks_degraded;
                if intensity == 0.0 {
                    assert_eq!(injected, 0, "{name} seed={seed}: faults at zero intensity");
                }
                mean_cov[si][ii] += f.point_coverage / SEEDS.len() as f64;
            }
        }
        if intensity > 0.0 {
            // At these rates the engine must actually be injecting faults
            // somewhere in the grid — a silent no-op injector would pass
            // every invariant check vacuously.
            let probe =
                Simulation::new(&config, &trace, SEEDS[0]).run(&mut Checked::new(BestPossible));
            let f = probe.final_sample();
            assert!(
                f.contacts_interrupted + f.transfers_lost + f.transfers_corrupt + f.node_crashes
                    > 0,
                "intensity {intensity} injected nothing"
            );
        }
    }

    // Graceful degradation: per scheme, heavy faults may cost coverage but
    // never gain it beyond small-world noise.
    for (si, scheme) in lineup().into_iter().enumerate() {
        let (clean, heavy) = (mean_cov[si][0], mean_cov[si][2]);
        assert!(
            heavy <= clean + 0.10,
            "{}: mean coverage rose under heavy faults ({clean:.3} -> {heavy:.3})",
            scheme.name()
        );
    }
}

/// Full-intensity chaos: every rate at its preset maximum. Nothing may
/// panic, and the invariants must still hold.
#[test]
fn maximum_intensity_is_survivable() {
    let trace = small_trace(7);
    let config = small_config().with_faults(FaultConfig::chaos(1.0));
    for scheme in [
        Box::new(BestPossible) as Box<dyn Scheme + Send>,
        Box::new(OurScheme::new()),
        Box::new(SprayAndWait::new()),
    ] {
        let name = scheme.name();
        let result = Simulation::new(&config, &trace, 1).run(&mut Checked::new(scheme));
        let f = result.final_sample();
        assert!(
            f.node_crashes > 0 && f.contacts_interrupted > 0,
            "{name}: full chaos injected too little \
             (crashes {}, interrupted {})",
            f.node_crashes,
            f.contacts_interrupted
        );
    }
}

/// §III-D prefix property at the core layer: under any byte budget, the
/// realized transfers are exactly the longest affordable *prefix* of the
/// transmission schedule — "any unfinished transmission is discarded",
/// and nothing later in the plan jumps the queue.
#[test]
fn budget_cut_realizes_exactly_a_plan_prefix() {
    use photodtn_core::selection::{SelectionResult, SelectionStats};
    use photodtn_core::transmission::{execute_plan, plan_transfers};
    use photodtn_coverage::{Coverage, Photo, PhotoCollection, PhotoId, PhotoMeta};
    use photodtn_geo::{Angle, Point};

    let photo = |id: u64| {
        let meta = PhotoMeta::new(
            Point::new(0.0, 0.0),
            100.0,
            Angle::from_degrees(45.0),
            Angle::ZERO,
        );
        Photo::new(id, meta, 0.0).with_size(10)
    };
    let b_full: PhotoCollection = (1u64..=5).map(photo).collect();
    let selection = SelectionResult {
        a_selected: (1u64..=5).map(PhotoId).collect(),
        b_selected: Vec::new(),
        a_first: true,
        expected: Coverage::ZERO,
        stats: SelectionStats::default(),
    };
    let plan = plan_transfers(&selection, &PhotoCollection::new(), &b_full);
    assert_eq!(plan.steps.len(), 5);

    // Sweep every possible interruption point (mid-contact budget cut).
    for budget in 0u64..=55 {
        let mut a = PhotoCollection::new();
        let mut b = b_full.clone();
        let out = execute_plan(&plan, &selection, &mut a, 1000, &mut b, 1000, budget);
        let prefix_len = (budget / 10).min(5) as usize;
        assert_eq!(a.len(), prefix_len, "budget {budget}");
        for (i, step) in plan.steps.iter().enumerate() {
            assert_eq!(
                a.contains(step.photo),
                i < prefix_len,
                "budget {budget}: plan step {i} violates the prefix property"
            );
        }
        assert_eq!(
            out.truncated,
            prefix_len < plan.steps.len(),
            "budget {budget}"
        );
    }
}

/// The same property end-to-end: with interruption-only faults every
/// contact budget is cut mid-transfer, and the planner/executor pair must
/// keep every invariant while the engine counts the interruptions.
#[test]
fn contact_interruption_end_to_end() {
    let trace = small_trace(5);
    let faulted =
        small_config().with_faults(FaultConfig::default().with_contact_interrupt_prob(1.0));
    let result = Simulation::new(&faulted, &trace, 9).run(&mut Checked::new(OurScheme::new()));
    let f = result.final_sample();
    assert!(f.contacts_interrupted > 0, "no contact was interrupted");
    assert_eq!(f.transfers_lost, 0);
    assert_eq!(f.transfers_corrupt, 0);
    assert_eq!(f.node_crashes, 0);
    assert!(
        f.delivered_photos > 0,
        "prefix realization should still deliver something"
    );
}

/// Churn-only faults: crashes wipe buffers and (with `wipe_routing_state`)
/// PROPHET tables; `Checked`'s graveyard invariant proves no wiped-only
/// photo is ever delivered afterwards.
#[test]
fn churn_wipes_buffers_without_resurrection() {
    let trace = small_trace(6);
    let config = small_config().with_faults(FaultConfig::default().with_churn(0.25, 1800.0));
    for scheme in lineup() {
        let name = scheme.name();
        let result = Simulation::new(&config, &trace, 13).run(&mut Checked::new(scheme));
        let f = result.final_sample();
        assert!(f.node_crashes > 0, "{name}: churn rate injected no crashes");
    }
}
