//! Regression tests for `JsonlSink` durability: a panic mid-run must not
//! silently truncate the trace tail — the file has to stay line-complete
//! up to the last recorded event.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::{ContactTrace, NodeId};
use photodtn_coverage::Photo;
use photodtn_sim::schemes_api::FloodScheme;
use photodtn_sim::{JsonlSink, Scheme, SimConfig, SimCtx, Simulation};

/// Delegates to [`FloodScheme`] but panics on the Nth contact.
struct PanicOnContact {
    inner: FloodScheme,
    remaining: u32,
}

impl Scheme for PanicOnContact {
    fn name(&self) -> &'static str {
        "panic-on-contact"
    }
    fn respects_storage(&self) -> bool {
        false
    }
    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        self.inner.on_photo_generated(ctx, node, photo);
    }
    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        if self.remaining == 0 {
            panic!("injected mid-run panic at contact ({a:?}, {b:?})");
        }
        self.remaining -= 1;
        self.inner.on_contact(ctx, a, b, budget);
    }
    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        self.inner.on_upload(ctx, node, budget);
    }
}

fn trace() -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(8)
        .with_duration_hours(10.0)
        .generate(1)
}

fn temp_path(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("photodtn-trace-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// Every line must parse as one JSON object; returns the event-tag names.
fn parse_lines(path: &PathBuf) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    assert!(
        text.ends_with('\n') || text.is_empty(),
        "trace must end on a line boundary"
    );
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            let value: serde_json::Value = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("line {} is not complete JSON ({e}): {line:?}", i + 1));
            match value {
                serde_json::Value::Object(map) => {
                    map.keys().next().expect("tagged event object").clone()
                }
                other => panic!("line {} is not an object: {other:?}", i + 1),
            }
        })
        .collect()
}

#[test]
fn panic_mid_run_leaves_a_line_complete_trace() {
    let path = temp_path("panicked.jsonl");
    let config = SimConfig::mit_default().with_photos_per_hour(20.0);
    let contact_trace = trace();
    let mut sim = Simulation::new(&config, &contact_trace, 1);
    sim.set_trace_sink(Box::new(
        JsonlSink::create(path.to_str().unwrap()).expect("create sink"),
    ));
    let mut scheme = PanicOnContact {
        inner: FloodScheme,
        remaining: 5,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| sim.run(&mut scheme)));
    assert!(outcome.is_err(), "the injected panic must fire");

    // The panic unwound through the engine, dropping the sink mid-run;
    // the Drop flush must have preserved everything recorded so far.
    let tags = parse_lines(&path);
    assert_eq!(tags.first().map(String::as_str), Some("RunBegin"));
    assert!(
        tags.iter().filter(|t| *t == "ContactBegin").count() >= 5,
        "the contacts before the panic must be on disk: {tags:?}"
    );
    assert!(
        !tags.iter().any(|t| t == "RunEnd"),
        "the run never finished, so RunEnd must be absent"
    );
}

#[test]
fn run_end_flushes_without_dropping_the_sink() {
    let path = temp_path("completed.jsonl");
    let config = SimConfig::mit_default().with_photos_per_hour(20.0);
    let contact_trace = trace();
    let mut sim = Simulation::new(&config, &contact_trace, 1);
    sim.set_trace_sink(Box::new(
        JsonlSink::create(path.to_str().unwrap())
            .expect("create sink")
            .with_sync(true),
    ));
    let _ = sim.run(&mut FloodScheme);

    // The sink is still alive inside `sim` — the RunEnd flush (with
    // sync_all enabled) must already have put the full trace on disk.
    let tags = parse_lines(&path);
    assert_eq!(tags.first().map(String::as_str), Some("RunBegin"));
    assert_eq!(tags.last().map(String::as_str), Some("RunEnd"));
    drop(sim);
}
