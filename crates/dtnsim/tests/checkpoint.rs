//! Checkpoint/restore integration tests: halting any scheme mid-run and
//! resuming from the snapshot must reproduce the uninterrupted
//! `SimResult` byte-for-byte, and no corrupted snapshot — truncated at
//! any byte, or with any single byte mutated — may ever panic the
//! loader or silently resume.

use std::path::PathBuf;

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{
    BestPossible, CentralizedOracle, DirectDelivery, Epidemic, ModifiedSpray, OurScheme, PhotoNet,
    ProphetRouting, SprayAndWait,
};
use photodtn_sim::checkpoint::{self, CheckpointError};
use photodtn_sim::{CheckpointPolicy, FaultConfig, JsonlSink, Scheme, SimConfig, Simulation};

type SchemeFactory = fn() -> Box<dyn Scheme + Send>;

/// Factory-per-scheme so each phase (baseline, halted, resumed) gets a
/// fresh instance with no carried-over protocol state.
fn lineup() -> Vec<(&'static str, SchemeFactory)> {
    vec![
        ("best-possible", || Box::new(BestPossible)),
        ("ours", || Box::new(OurScheme::new())),
        ("no-metadata", || Box::new(OurScheme::no_metadata())),
        ("modified-spray", || Box::new(ModifiedSpray::new())),
        ("spray-wait", || Box::new(SprayAndWait::new())),
        ("photonet", || Box::new(PhotoNet::new())),
        ("epidemic", || Box::new(Epidemic::new())),
        ("direct", || Box::new(DirectDelivery::new())),
        ("oracle", || Box::new(CentralizedOracle::new())),
        ("prophet", || Box::new(ProphetRouting::new())),
    ]
}

fn small_trace(seed: u64) -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(16)
        .with_duration_hours(36.0)
        .generate(seed)
}

fn small_config() -> SimConfig {
    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(30.0)
        .with_storage_bytes(40 * 4 * 1024 * 1024);
    config.num_pois = 60;
    config
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("photodtn-ckpt-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every scheme, both fault intensities: halt at 18 simulated hours via
/// a checkpoint, resume a *fresh* simulation and scheme from the
/// snapshot, and require the finished result to equal the uninterrupted
/// run exactly — every sample, every counter.
#[test]
fn halt_and_resume_matches_uninterrupted_for_every_scheme() {
    let trace = small_trace(3);
    let root = tmp_dir("halt-resume");
    for intensity in [0.0, 0.5] {
        let config = small_config().with_faults(FaultConfig::chaos(intensity));
        for (name, make) in lineup() {
            let mut baseline_scheme = make();
            let baseline = Simulation::new(&config, &trace, 42).run(&mut *baseline_scheme);

            let dir = root.join(format!("{name}_{intensity}"));
            let fp = checkpoint::run_fingerprint(&config, &trace, 42, name);
            let mut halted_scheme = make();
            let mut sim = Simulation::new(&config, &trace, 42);
            sim.set_checkpoints(
                CheckpointPolicy::new(&dir, f64::INFINITY, fp, format!("test {name}"))
                    .with_halt_after(18.0 * 3600.0),
            );
            let (_, _, stats) = sim.run_instrumented(&mut *halted_scheme);
            assert!(stats.interrupted, "{name}: halt_after did not interrupt");

            let (payload, path) = checkpoint::load_latest(&dir, Some(fp))
                .unwrap_or_else(|e| panic!("{name}: loading snapshot: {e}"));
            assert!(path.exists());
            let mut resumed_scheme = make();
            let mut sim = Simulation::new(&config, &trace, 42);
            sim.resume_from(payload, &*resumed_scheme)
                .unwrap_or_else(|e| panic!("{name}: resuming: {e}"));
            let resumed = sim.run(&mut *resumed_scheme);
            assert_eq!(
                resumed, baseline,
                "{name} at intensity {intensity}: resumed run diverged from uninterrupted run"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Periodic checkpointing is a pure observer (the checkpointed run's
/// result equals the plain run's), and *every* rotation it leaves behind
/// resumes to the same final result — not just the newest one.
#[test]
fn every_rotation_resumes_to_the_same_result() {
    let trace = small_trace(3);
    let config = small_config().with_faults(FaultConfig::chaos(0.5));
    let dir = tmp_dir("rotations");
    let fp = checkpoint::run_fingerprint(&config, &trace, 42, "ours");

    let mut plain = OurScheme::new();
    let baseline = Simulation::new(&config, &trace, 42).run(&mut plain);

    let mut checkpointed = OurScheme::new();
    let mut sim = Simulation::new(&config, &trace, 42);
    sim.set_checkpoints(
        CheckpointPolicy::new(&dir, 6.0 * 3600.0, fp, "rotation test").with_keep(100),
    );
    let (full, _, stats) = sim.run_instrumented(&mut checkpointed);
    assert!(!stats.interrupted);
    assert_eq!(full, baseline, "periodic checkpointing must be a no-op");

    let snapshots: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    assert!(
        snapshots.len() >= 3,
        "expected several rotations, got {}",
        snapshots.len()
    );
    for path in snapshots {
        let payload = checkpoint::load_file(&path, Some(fp)).unwrap();
        let mut scheme = OurScheme::new();
        let mut sim = Simulation::new(&config, &trace, 42);
        sim.resume_from(payload, &scheme).unwrap();
        let resumed = sim.run(&mut scheme);
        assert_eq!(resumed, baseline, "resume from {path:?} diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A traced, checkpointed run that halts mid-way and resumes with
/// [`JsonlSink::resume_append`] must leave a trace file byte-identical
/// to an uninterrupted traced run.
#[test]
fn traced_resume_reproduces_the_trace_file_byte_for_byte() {
    let trace = small_trace(3);
    let config = small_config().with_faults(FaultConfig::chaos(0.5));
    let dir = tmp_dir("traced");
    let full_path = dir.join("full.jsonl");
    let split_path = dir.join("split.jsonl");
    let ckpt = dir.join("ckpt");
    let fp = checkpoint::run_fingerprint(&config, &trace, 42, "ours");

    let mut scheme = OurScheme::new();
    let mut sim = Simulation::new(&config, &trace, 42);
    sim.set_trace_sink(Box::new(
        JsonlSink::create(full_path.to_str().unwrap()).unwrap(),
    ));
    let baseline = sim.run(&mut scheme);

    let mut scheme = OurScheme::new();
    let mut sim = Simulation::new(&config, &trace, 42);
    sim.set_trace_sink(Box::new(
        JsonlSink::create(split_path.to_str().unwrap()).unwrap(),
    ));
    sim.set_checkpoints(
        CheckpointPolicy::new(&ckpt, f64::INFINITY, fp, "traced test")
            .with_halt_after(18.0 * 3600.0),
    );
    let (_, _, stats) = sim.run_instrumented(&mut scheme);
    assert!(stats.interrupted);

    let (payload, _) = checkpoint::load_latest(&ckpt, Some(fp)).unwrap();
    let mut scheme = OurScheme::new();
    let mut sim = Simulation::new(&config, &trace, 42);
    sim.set_trace_sink(Box::new(
        JsonlSink::resume_append(split_path.to_str().unwrap(), payload.trace_seq).unwrap(),
    ));
    sim.resume_from(payload, &scheme).unwrap();
    let resumed = sim.run(&mut scheme);
    assert_eq!(resumed, baseline);

    let full = std::fs::read_to_string(&full_path).unwrap();
    let split = std::fs::read_to_string(&split_path).unwrap();
    assert_eq!(split, full, "stitched trace file diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes one real snapshot and returns its directory, the run
/// fingerprint, the snapshot path, and the raw file bytes.
///
/// Uses a deliberately tiny world (8 nodes, 6 simulated hours) so the
/// snapshot stays small enough for the corruption sweeps below to stay
/// *exhaustive* — every truncation and every byte mutation — without
/// blowing up debug-mode test time. The bytes are still produced by the
/// real capture path, not hand-crafted.
fn real_snapshot(name: &str) -> (PathBuf, u64, PathBuf, Vec<u8>) {
    let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(8)
        .with_duration_hours(6.0)
        .generate(3);
    let mut config = SimConfig::mit_default().with_photos_per_hour(10.0);
    config.num_pois = 20;
    let dir = tmp_dir(name);
    let fp = checkpoint::run_fingerprint(&config, &trace, 42, "best-possible");
    let mut scheme = BestPossible;
    let mut sim = Simulation::new(&config, &trace, 42);
    sim.set_checkpoints(
        CheckpointPolicy::new(&dir, f64::INFINITY, fp, "corruption test")
            .with_halt_after(3.0 * 3600.0),
    );
    let (_, _, stats) = sim.run_instrumented(&mut scheme);
    assert!(stats.interrupted);
    let (_, path) = checkpoint::load_latest(&dir, Some(fp)).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (dir, fp, path, bytes)
}

/// Corruption property test, truncation half: chop a real snapshot at
/// *every* byte boundary. The loader must return a typed error for each
/// prefix — never panic, never accept a torn file.
#[test]
fn every_truncation_is_a_typed_error() {
    let (dir, fp, _, bytes) = real_snapshot("truncate");
    let victim = dir.join("torn.snap");
    for cut in 0..bytes.len() {
        std::fs::write(&victim, &bytes[..cut]).unwrap();
        let err = match checkpoint::load_file(&victim, Some(fp)) {
            Err(e) => e,
            Ok(_) => panic!("truncation at byte {cut} of {} was accepted", bytes.len()),
        };
        // Any torn prefix must be recognizable as corruption or a bad
        // header, never a fingerprint mismatch (which would block the
        // rotation fallback).
        assert!(
            !matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "truncation at byte {cut} misread as a fingerprint mismatch: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption property test, mutation half: flip the low bit of *every*
/// byte in a real snapshot, one at a time. Each mutant must be rejected
/// with a typed error — a single-byte change can never load as valid.
#[test]
fn every_single_byte_mutation_is_rejected() {
    let (dir, fp, _, bytes) = real_snapshot("mutate");
    let victim = dir.join("mutant.snap");
    for pos in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[pos] ^= 0x01;
        std::fs::write(&victim, &mutant).unwrap();
        assert!(
            checkpoint::load_file(&victim, Some(fp)).is_err(),
            "flipping bit 0 of byte {pos} still loaded as a valid snapshot"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rotation fallback: when the newest snapshot is corrupt,
/// [`checkpoint::load_latest`] silently falls back to the previous
/// rotation; a fingerprint mismatch, by contrast, stops the walk cold.
#[test]
fn corrupt_newest_falls_back_but_wrong_fingerprint_does_not() {
    let (dir, fp, path, bytes) = real_snapshot("fallback");
    // Plant a corrupt *newer* rotation next to the good one.
    let newer = dir.join("ckpt-999999999999.snap");
    std::fs::write(&newer, &bytes[..bytes.len() / 2]).unwrap();
    let (_, chosen) = checkpoint::load_latest(&dir, Some(fp)).unwrap();
    assert_eq!(chosen, path, "must fall back to the intact rotation");

    // The same directory under the wrong fingerprint refuses outright.
    let err = checkpoint::load_latest(&dir, Some(fp ^ 1)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::FingerprintMismatch { .. }),
        "expected a fingerprint mismatch, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming with the wrong scheme is a shape error, not a panic — the
/// fingerprint normally prevents this, but `resume_from` double-checks.
#[test]
fn resuming_with_a_different_scheme_is_a_shape_error() {
    let (dir, fp, _, _) = real_snapshot("shape");
    let (payload, _) = checkpoint::load_latest(&dir, Some(fp)).unwrap();
    let scheme = Epidemic::new();
    let trace = small_trace(3);
    let config = small_config();
    let mut sim = Simulation::new(&config, &trace, 42);
    let err = sim.resume_from(payload, &scheme).unwrap_err();
    assert!(
        matches!(err, CheckpointError::StateShape { .. }),
        "expected a state-shape error, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty checkpoint directory yields `NothingToResume`, and its
/// message names the directory so the operator can see what was probed.
#[test]
fn empty_directory_is_nothing_to_resume() {
    let dir = tmp_dir("empty");
    let err = checkpoint::load_latest(&dir, None).unwrap_err();
    match &err {
        CheckpointError::NothingToResume { dir: d, .. } => assert_eq!(d, &dir),
        other => panic!("expected NothingToResume, got: {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
