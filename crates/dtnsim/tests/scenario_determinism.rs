//! Scenario-engine determinism: a TOML scenario that restates a
//! CLI-expressible world must produce **byte-identical** `SimResult`s to
//! the hand-built preset, for every scheme and fault intensity; and the
//! scenario-only worlds (stationary relays, scheduled PoI importance)
//! must run end-to-end under the full lineup, repeat exactly, and
//! compose with sharding and mid-run checkpoint/restore.

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{
    BestPossible, CentralizedOracle, DirectDelivery, Epidemic, ModifiedSpray, OurScheme, PhotoNet,
    ProphetRouting, SprayAndWait,
};
use photodtn_sim::{
    checkpoint, CheckpointPolicy, FaultConfig, Scenario, Scheme, SimConfig, Simulation,
};

fn lineup() -> Vec<Box<dyn Scheme + Send>> {
    vec![
        Box::new(BestPossible),
        Box::new(OurScheme::new()),
        Box::new(OurScheme::no_metadata()),
        Box::new(ModifiedSpray::new()),
        Box::new(SprayAndWait::new()),
        Box::new(PhotoNet::new()),
        Box::new(Epidemic::new()),
        Box::new(DirectDelivery::new()),
        Box::new(CentralizedOracle::new()),
        Box::new(ProphetRouting::new()),
    ]
}

/// The determinism-matrix world of `tests/determinism.rs` and
/// `dump_results`, spelled as a scenario.
fn matrix_scenario(intensity: f64) -> Scenario {
    let text = format!(
        "[scenario]\nversion = 1\nname = \"matrix\"\nseed = 42\n\n\
         [world]\nstyle = \"mit\"\nnodes = 16\nhours = 36.0\ntrace_seed = 3\n\n\
         [pois]\ncount = 60\n\n\
         [workload]\nphotos_per_hour = 30.0\n\n\
         [faults]\nintensity = {intensity}\n\n\
         [sim]\nstorage_gb = 0.15625\n"
    );
    Scenario::parse(&text).unwrap()
}

fn preset_trace() -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(16)
        .with_duration_hours(36.0)
        .generate(3)
}

fn preset_config(intensity: f64) -> SimConfig {
    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(30.0)
        .with_storage_bytes(40 * 4 * 1024 * 1024)
        .with_faults(FaultConfig::chaos(intensity));
    config.num_pois = 60;
    config
}

/// The tentpole contract: the scenario spelling of the preset world is
/// byte-identical to the hand-built one — every sample, every counter,
/// all 10 schemes, faulted and unfaulted.
#[test]
fn scenario_matches_preset_for_every_scheme_and_intensity() {
    for intensity in [0.0, 0.5] {
        let sc = matrix_scenario(intensity);
        let preset_trace = preset_trace();
        let preset_config = preset_config(intensity);
        let scenario_trace = sc.build_trace(sc.seed).unwrap();
        for (preset, scenario) in lineup().into_iter().zip(lineup()) {
            let name = preset.name();
            let mut a = preset;
            let mut b = scenario;
            let r1 = Simulation::new(&preset_config, &preset_trace, 42).run(&mut a);
            let r2 = sc
                .build_simulation(&sc.base, &scenario_trace, sc.seed)
                .unwrap()
                .run(&mut b);
            assert_eq!(
                r1, r2,
                "{name} at intensity {intensity}: scenario diverged from the CLI preset"
            );
        }
    }
}

/// A stationary-relay world — a scenario-only topology — runs end-to-end
/// under the whole lineup at both fault intensities, and repeats exactly.
#[test]
fn relay_world_runs_and_repeats_under_every_scheme() {
    for intensity in [0.0, 0.5] {
        let text = format!(
            "[scenario]\nversion = 1\nseed = 7\n\
             [world]\nstyle = \"mit\"\nnodes = 12\nhours = 12\ntrace_seed = 2\nrelays = 2\n\
             relay_visits_per_hour = 2.0\nrelay_visit_minutes = 8\n\
             [pois]\ncount = 20\n[workload]\nphotos_per_hour = 20\n\
             [faults]\nintensity = {intensity}\n"
        );
        let sc = Scenario::parse(&text).unwrap();
        let trace = sc.build_trace(sc.seed).unwrap();
        assert_eq!(trace.num_nodes(), 14, "12 mobile + 2 relays");
        for (first, second) in lineup().into_iter().zip(lineup()) {
            let name = first.name();
            let mut a = first;
            let mut b = second;
            let r1 = sc
                .build_simulation(&sc.base, &trace, sc.seed)
                .unwrap()
                .run(&mut a);
            let r2 = sc
                .build_simulation(&sc.base, &trace, sc.seed)
                .unwrap()
                .run(&mut b);
            assert_eq!(r1, r2, "{name} at intensity {intensity} diverged");
            assert!(!r1.samples.is_empty(), "{name}: no samples");
        }
    }
}

/// A scheduled-importance world (PoI reweighting mid-run) runs end-to-end
/// under the whole lineup at both fault intensities, and repeats exactly.
#[test]
fn scheduled_world_runs_and_repeats_under_every_scheme() {
    for intensity in [0.0, 0.5] {
        let text = format!(
            "[scenario]\nversion = 1\nseed = 9\n\
             [world]\nstyle = \"mit\"\nnodes = 12\nhours = 12\ntrace_seed = 4\n\
             [pois]\ncount = 20\n\
             [pois.phase_0]\nat_hours = 4\nfocus = [0, 1, 2]\nfocus_weight = 6.0\n\
             [pois.phase_1]\nat_hours = 8\nfocus = [10, 11]\nfocus_weight = 9.0\nbase_weight = 0.5\n\
             [workload]\nphotos_per_hour = 20\n\
             [faults]\nintensity = {intensity}\n"
        );
        let sc = Scenario::parse(&text).unwrap();
        let trace = sc.build_trace(sc.seed).unwrap();
        for (first, second) in lineup().into_iter().zip(lineup()) {
            let name = first.name();
            let mut a = first;
            let mut b = second;
            let mut sim1 = sc.build_simulation(&sc.base, &trace, sc.seed).unwrap();
            assert_eq!(sim1.poi_schedule().len(), 2);
            let r1 = sim1.run(&mut a);
            let r2 = sc
                .build_simulation(&sc.base, &trace, sc.seed)
                .unwrap()
                .run(&mut b);
            assert_eq!(r1, r2, "{name} at intensity {intensity} diverged");
        }
    }
}

/// Scenarios compose with `--shards`: a static scenario world run through
/// the sharded executor is byte-identical to its sequential run.
#[test]
fn scenario_composes_with_shards() {
    let sc = matrix_scenario(0.5);
    let trace = sc.build_trace(sc.seed).unwrap();
    let sharded_config = sc.base.clone().with_shards(2);
    for (first, second) in lineup().into_iter().zip(lineup()) {
        let name = first.name();
        let mut a = first;
        let mut b = second;
        let sequential = sc
            .build_simulation(&sc.base, &trace, sc.seed)
            .unwrap()
            .run(&mut a);
        let sharded = sc
            .build_simulation(&sharded_config, &trace, sc.seed)
            .unwrap()
            .run(&mut b);
        assert_eq!(sharded, sequential, "{name}: sharded scenario diverged");
    }
}

/// Scenarios compose with mid-run checkpoint/restore — including the
/// PoI-schedule replay on resume: halting a scheduled world mid-run and
/// resuming from the snapshot reproduces the straight-through result
/// byte-for-byte.
#[test]
fn scheduled_scenario_checkpoint_resume_is_byte_identical() {
    let text = "[scenario]\nversion = 1\nseed = 11\n\
                [world]\nstyle = \"mit\"\nnodes = 10\nhours = 12\ntrace_seed = 5\n\
                [pois]\ncount = 16\n\
                [pois.phase_0]\nat_hours = 3\nfocus = [0, 1]\nfocus_weight = 5.0\n\
                [workload]\nphotos_per_hour = 15\n";
    let sc = Scenario::parse(text).unwrap();
    let trace = sc.build_trace(sc.seed).unwrap();

    let mut straight = OurScheme::new();
    let reference = sc
        .build_simulation(&sc.base, &trace, sc.seed)
        .unwrap()
        .run(&mut straight);

    let dir = std::env::temp_dir().join(format!("photodtn-scenario-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Halt at 6 h — after the 3 h reweight, so the snapshot carries the
    // phase-1 world and resume must re-derive the active PoI list.
    let fp = checkpoint::run_fingerprint(&sc.base, &trace, sc.seed, "ours") ^ sc.fingerprint;
    let mut first_half = sc.build_simulation(&sc.base, &trace, sc.seed).unwrap();
    first_half.set_checkpoints(
        CheckpointPolicy::new(&dir, f64::INFINITY, fp, "scenario ckpt test")
            .with_halt_after(6.0 * 3600.0),
    );
    let mut scheme = OurScheme::new();
    let (_, _, stats) = first_half.run_instrumented(&mut scheme);
    assert!(stats.interrupted, "halt-after did not interrupt");

    let (payload, _) = checkpoint::load_latest(&dir, Some(fp)).unwrap();
    let mut resumed_scheme = OurScheme::new();
    let mut resumed = sc.build_simulation(&sc.base, &trace, sc.seed).unwrap();
    resumed.resume_from(payload, &resumed_scheme).unwrap();
    let result = resumed.run(&mut resumed_scheme);
    assert_eq!(result, reference, "resumed scheduled scenario diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
