//! Self-chaos harness for the sweep supervisor: inject panicking, hanging
//! and flaky-IO cells into real simulation batches and verify isolation,
//! watchdog timeouts, retry policy and journaled resume.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::{ContactTrace, NodeId};
use photodtn_coverage::Photo;
use photodtn_sim::schemes_api::FloodScheme;
use photodtn_sim::supervisor::{journal, run_batch};
use photodtn_sim::{
    BatchPolicy, CellError, CellId, FailureKind, Scheme, SimConfig, SimCtx, SimResult, Simulation,
};

fn trace_for_seed(seed: u64) -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(8)
        .with_duration_hours(10.0)
        .generate(seed)
}

fn config() -> SimConfig {
    SimConfig::mit_default().with_photos_per_hour(20.0)
}

fn cell(scheme: &str, seed: u64) -> CellId {
    CellId {
        scheme: scheme.into(),
        variant: "base".into(),
        seed,
    }
}

/// Delegates to [`FloodScheme`] but panics on its first contact.
struct PanicOnContact(FloodScheme);

impl Scheme for PanicOnContact {
    fn name(&self) -> &'static str {
        "panic-on-contact"
    }
    fn respects_storage(&self) -> bool {
        false
    }
    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        self.0.on_photo_generated(ctx, node, photo);
    }
    fn on_contact(&mut self, _ctx: &mut SimCtx, a: NodeId, b: NodeId, _budget: u64) {
        panic!("chaos: deterministic scheme panic at contact ({a:?}, {b:?})");
    }
    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        self.0.on_upload(ctx, node, budget);
    }
}

/// Runs the real simulator for a cell, dispatching on the scheme name so
/// chaos cells can be injected into an otherwise healthy batch.
fn run_real_cell(cell: &CellId) -> Result<SimResult, CellError> {
    let config = config();
    let trace = trace_for_seed(cell.seed);
    match cell.scheme.as_str() {
        "best-possible" => Ok(Simulation::new(&config, &trace, cell.seed).run(&mut FloodScheme)),
        "panic-on-contact" => {
            Ok(Simulation::new(&config, &trace, cell.seed).run(&mut PanicOnContact(FloodScheme)))
        }
        "hang" => loop {
            // A hung scheme: never returns. The watchdog abandons this
            // thread; it dies with the test process.
            std::thread::sleep(Duration::from_millis(25));
        },
        other => panic!("unknown chaos scheme {other:?}"),
    }
}

#[test]
fn panicking_scheme_is_isolated_and_attributed() {
    let cells = vec![
        cell("best-possible", 1),
        cell("panic-on-contact", 1),
        cell("best-possible", 2),
    ];
    let report = run_batch(
        &cells,
        Arc::new(run_real_cell),
        &BatchPolicy::default(),
        |_, _| {},
    );
    assert!(!report.all_ok());
    assert!(!report.total_failure(), "healthy cells must survive");
    assert_eq!(report.completed().count(), 2);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    let failure = failures[0];
    assert_eq!(failure.cell.scheme, "panic-on-contact");
    assert_eq!(failure.cell.seed, 1);
    assert_eq!(failure.kind, FailureKind::Panic);
    assert_eq!(failure.attempts, 1, "deterministic panics never retry");
    assert!(
        failure
            .message
            .contains("chaos: deterministic scheme panic"),
        "{}",
        failure.message
    );
    for (c, r) in report.completed() {
        assert_eq!(c.scheme, "best-possible");
        assert!(r.final_sample().delivered_photos > 0);
    }
}

#[test]
fn hung_scheme_hits_the_watchdog_deadline() {
    let cells = vec![cell("hang", 1), cell("best-possible", 1)];
    let policy = BatchPolicy {
        deadline: Some(Duration::from_millis(300)),
        ..BatchPolicy::default()
    };
    let start = Instant::now();
    let report = run_batch(&cells, Arc::new(run_real_cell), &policy, |_, _| {});
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "watchdog must abandon the hung cell, took {elapsed:?}"
    );
    assert_eq!(report.completed().count(), 1, "healthy cell completes");
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].cell.scheme, "hang");
    assert_eq!(failures[0].kind, FailureKind::Timeout);
    assert!(
        failures[0].message.contains("deadline"),
        "{}",
        failures[0].message
    );
}

#[test]
fn flaky_io_cell_succeeds_after_retry_with_backoff() {
    let cells = vec![cell("best-possible", 1)];
    let attempts_seen = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&attempts_seen);
    let policy = BatchPolicy {
        max_attempts: 3,
        backoff: Duration::from_millis(20),
        ..BatchPolicy::default()
    };
    let start = Instant::now();
    let report = run_batch(
        &cells,
        Arc::new(move |c: &CellId| {
            // First two attempts flake like a transient trace-file read
            // failure; the third succeeds.
            if counter.fetch_add(1, Ordering::SeqCst) < 2 {
                return Err(CellError::trace_io("simulated transient read failure"));
            }
            run_real_cell(c)
        }),
        &policy,
        |_, _| {},
    );
    let elapsed = start.elapsed();
    assert!(report.all_ok(), "{:?}", report.failures());
    assert_eq!(attempts_seen.load(Ordering::SeqCst), 3);
    // Backoff before attempt 2 is 20ms, before attempt 3 is 40ms.
    assert!(
        elapsed >= Duration::from_millis(60),
        "exponential backoff must actually wait, took {elapsed:?}"
    );
}

#[test]
fn retryable_failures_exhaust_attempts_and_report_the_count() {
    let cells = vec![cell("best-possible", 1)];
    let calls = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&calls);
    let policy = BatchPolicy {
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        ..BatchPolicy::default()
    };
    let report = run_batch(
        &cells,
        Arc::new(move |_: &CellId| -> Result<SimResult, CellError> {
            counter.fetch_add(1, Ordering::SeqCst);
            Err(CellError::trace_io("disk is gone"))
        }),
        &policy,
        |_, _| {},
    );
    assert!(report.total_failure());
    let failures = report.failures();
    assert_eq!(failures[0].kind, FailureKind::TraceIo);
    assert_eq!(failures[0].attempts, 3);
    assert_eq!(calls.load(Ordering::SeqCst), 3);
}

#[test]
fn deterministic_panics_are_not_retried_even_with_retry_budget() {
    let cells = vec![cell("panic-on-contact", 1)];
    let calls = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&calls);
    let policy = BatchPolicy {
        max_attempts: 5,
        backoff: Duration::from_millis(1),
        ..BatchPolicy::default()
    };
    let report = run_batch(
        &cells,
        Arc::new(move |c: &CellId| {
            counter.fetch_add(1, Ordering::SeqCst);
            run_real_cell(c)
        }),
        &policy,
        |_, _| {},
    );
    let failures = report.failures();
    assert_eq!(failures[0].kind, FailureKind::Panic);
    assert_eq!(failures[0].attempts, 1);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "a deterministic panic must run exactly once"
    );
}

#[test]
fn journaled_batch_resumes_skipping_done_cells() {
    let dir = std::env::temp_dir().join(format!("photodtn-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("resume.jsonl");
    let fp = journal::fingerprint("chaos spec");
    let cells: Vec<CellId> = (1..=4).map(|s| cell("best-possible", s)).collect();

    // First run: journal every resolution, then pretend the process died
    // after two cells by truncating the journal to its first three lines
    // (header + 2 results).
    let journal_handle = Arc::new(Mutex::new(
        journal::Journal::create(&path, fp, cells.len() as u64, false).unwrap(),
    ));
    let sink = Arc::clone(&journal_handle);
    let full = run_batch(
        &cells,
        Arc::new(run_real_cell),
        &BatchPolicy::default(),
        move |c, s| {
            sink.lock().unwrap().record(c, s).unwrap();
        },
    );
    assert!(full.all_ok());
    drop(journal_handle);
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&path, keep.join("\n") + "\n").unwrap();

    // Resume: load the journal, run only the remaining cells, merge.
    let state = journal::load(&path, fp).unwrap();
    assert_eq!(state.done.len(), 2);
    let remaining: Vec<CellId> = cells
        .iter()
        .filter(|c| !state.done.contains_key(c))
        .cloned()
        .collect();
    assert_eq!(remaining.len(), 2);
    let rerun_count = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&rerun_count);
    let partial = run_batch(
        &remaining,
        Arc::new(move |c: &CellId| {
            counter.fetch_add(1, Ordering::SeqCst);
            run_real_cell(c)
        }),
        &BatchPolicy::default(),
        |_, _| {},
    );
    assert_eq!(
        rerun_count.load(Ordering::SeqCst),
        2,
        "journaled cells must not rerun"
    );

    // Merged results must be identical to the uninterrupted batch —
    // determinism makes resumed cells exact replays.
    let mut merged: Vec<(CellId, SimResult)> = state
        .done
        .into_iter()
        .chain(
            partial
                .outcomes
                .iter()
                .map(|(c, s)| (c.clone(), s.result().expect("rerun cells succeed").clone())),
        )
        .collect();
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let full_results: Vec<(CellId, SimResult)> = full
        .outcomes
        .iter()
        .map(|(c, s)| (c.clone(), s.result().unwrap().clone()))
        .collect();
    assert_eq!(merged, full_results);
}
