//! The sharded executor's whole contract: for any fixed seed, a run
//! partitioned across N shard workers produces **byte-identical** output
//! to the sequential engine — same `SimResult` (every f64 bit-equal via
//! `PartialEq`), same delivered photo collection, same deterministic
//! event counters. Parallelism must be invisible in the results.

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{
    BestPossible, CentralizedOracle, DirectDelivery, Epidemic, ModifiedSpray, OurScheme, PhotoNet,
    ProphetRouting, SprayAndWait,
};
use photodtn_sim::{FaultConfig, Scheme, SimConfig, Simulation};

fn lineup() -> Vec<Box<dyn Scheme + Send>> {
    vec![
        Box::new(BestPossible),
        Box::new(OurScheme::new()),
        Box::new(OurScheme::no_metadata()),
        Box::new(ModifiedSpray::new()),
        Box::new(SprayAndWait::new()),
        Box::new(PhotoNet::new()),
        Box::new(Epidemic::new()),
        Box::new(DirectDelivery::new()),
        Box::new(CentralizedOracle::new()),
        Box::new(ProphetRouting::new()),
    ]
}

fn small_trace(seed: u64) -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(16)
        .with_duration_hours(36.0)
        .generate(seed)
}

fn small_config() -> SimConfig {
    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(30.0)
        .with_storage_bytes(40 * 4 * 1024 * 1024);
    config.num_pois = 60;
    config
}

/// Every scheme, with and without fault injection, at 2 and 4 shards:
/// sharded output equals sequential output exactly.
#[test]
fn sharded_runs_match_sequential_byte_for_byte() {
    let trace = small_trace(3);
    for intensity in [0.0, 0.5] {
        let config = small_config().with_faults(FaultConfig::chaos(intensity));
        for shards in [2usize, 4] {
            for (sequential, sharded) in lineup().into_iter().zip(lineup()) {
                let name = sequential.name();
                let mut seq_scheme = sequential;
                let mut shard_scheme = sharded;

                let (seq_result, seq_cc, seq_stats) =
                    Simulation::new(&config, &trace, 42).run_instrumented(&mut seq_scheme);
                let (shard_result, shard_cc, shard_stats) =
                    Simulation::new(&config.clone().with_shards(shards), &trace, 42)
                        .run_instrumented(&mut shard_scheme);

                // Guard against a silent sequential fallback making the
                // comparison vacuous: the sharded run must report that it
                // actually used the requested workers.
                assert_eq!(
                    shard_stats.workers, shards as u64,
                    "{name} at intensity {intensity}: sharded run fell back to sequential"
                );
                assert_eq!(seq_stats.workers, 1);

                assert_eq!(
                    seq_result, shard_result,
                    "{name} at intensity {intensity}, {shards} shards: results diverged"
                );
                assert_eq!(
                    seq_cc, shard_cc,
                    "{name} at intensity {intensity}, {shards} shards: delivered collections diverged"
                );
                for (label, seq, shard) in [
                    ("events", seq_stats.events, shard_stats.events),
                    ("contacts", seq_stats.contacts, shard_stats.contacts),
                    ("uploads", seq_stats.uploads, shard_stats.uploads),
                ] {
                    assert_eq!(
                        seq, shard,
                        "{name} at intensity {intensity}, {shards} shards: {label} counter diverged"
                    );
                }
            }
        }
    }
}

/// Asking for more shards than participants (or zero, meaning "pick for
/// me") must still run and still match the sequential engine.
#[test]
fn degenerate_shard_counts_still_match() {
    let trace = small_trace(5);
    let config = small_config();
    let mut base = OurScheme::new();
    let expected = Simulation::new(&config, &trace, 9).run(&mut base);
    for shards in [0usize, 1, 16, 64] {
        let mut scheme = OurScheme::new();
        let got = Simulation::new(&config.clone().with_shards(shards), &trace, 9).run(&mut scheme);
        assert_eq!(expected, got, "shards={shards} diverged from sequential");
    }
}

/// A scheme that cannot fork shard replicas (the default trait impl)
/// silently falls back to the sequential path and still produces the
/// correct answer.
#[test]
fn unforkable_scheme_falls_back_to_sequential() {
    struct Opaque(Epidemic);
    impl Scheme for Opaque {
        fn name(&self) -> &'static str {
            "opaque"
        }
        fn on_photo_generated(
            &mut self,
            ctx: &mut photodtn_sim::SimCtx,
            node: photodtn_contacts::NodeId,
            photo: photodtn_coverage::Photo,
        ) {
            self.0.on_photo_generated(ctx, node, photo);
        }
        fn on_contact(
            &mut self,
            ctx: &mut photodtn_sim::SimCtx,
            a: photodtn_contacts::NodeId,
            b: photodtn_contacts::NodeId,
            budget: u64,
        ) {
            self.0.on_contact(ctx, a, b, budget);
        }
        fn on_upload(
            &mut self,
            ctx: &mut photodtn_sim::SimCtx,
            node: photodtn_contacts::NodeId,
            budget: u64,
        ) {
            self.0.on_upload(ctx, node, budget);
        }
        // fork_shard deliberately left at the default `None`.
    }

    let trace = small_trace(2);
    let config = small_config();
    let expected = Simulation::new(&config, &trace, 4).run(&mut Epidemic::new());
    let (got, _, stats) = Simulation::new(&config.clone().with_shards(4), &trace, 4)
        .run_instrumented(&mut Opaque(Epidemic::new()));
    assert_eq!(stats.workers, 1, "unforkable scheme should not shard");
    // Scheme names differ ("opaque" vs "epidemic"); the runs must not.
    assert_eq!(expected.samples, got.samples);
}
