//! Parser-hardening regression suite: the strict TOML-subset parser and
//! both schemas built on it (sweep specs and scenarios) must turn ANY
//! input — malformed, truncated mid-token, or byte-mutated — into a
//! typed [`SpecError`], never a panic, hang, or stack overflow. Every
//! assertion here is just "returned a `Result`": the test harness
//! converts a panic into a failure, which is exactly the regression
//! being pinned.

use photodtn_sim::supervisor::spec::SweepSpec;
use photodtn_sim::Scenario;

const SCENARIO: &str = r#"
[scenario]
version = 1
name = "robustness"
seed = 42
seeds = [1, 2, 3]

[world]
style = "mit"
nodes = 16
hours = 36.0
trace_seed = 3
relays = 2
relay_visits_per_hour = 1.5
relay_visit_minutes = 10.0

[pois]
count = 12
weights = [1, 1, 1, 1, 2.5, 1, 1, 1, 1, 1, 1, 4]

[pois.phase_0]
at_hours = 12.0
focus = [3, 4, 5]
focus_weight = 8.0
base_weight = 0.5

[workload]
photos_per_hour = 30.0
cameras = 12

[faults]
intensity = 0.5

[schemes]
names = ["ours", "spray-wait"]

[grid]
storage_gb = [0.15625, 0.3125]
"#;

const SWEEP: &str = r#"
[sweep]
schemes = ["ours", "spray-wait"]
seeds = [1, 2, 3]

[trace]
style = "mit"
nodes = 24
hours = 48.0

[config]
photos_per_hour = 60.0
storage_gb = 0.6

[grid]
fault_intensity = [0.0, 0.5]
"#;

/// Every prefix of a valid document — a file truncated mid-write at any
/// char boundary — parses to `Ok` or a typed error, never a panic.
#[test]
fn truncation_at_every_boundary_never_panics() {
    for (name, text) in [("scenario", SCENARIO), ("sweep", SWEEP)] {
        for (i, _) in text.char_indices() {
            let prefix = &text[..i];
            let _ = Scenario::parse(prefix);
            let _ = SweepSpec::parse(prefix);
            let _ = name;
        }
    }
}

/// Single-byte corruption at every position (structural bytes, quote
/// bytes, invalid UTF-8 repaired lossily, digit smashing) parses to a
/// `Result`, never a panic.
#[test]
fn byte_mutation_at_every_position_never_panics() {
    let mutations: &[u8] = &[
        b'[', b']', b'"', b'=', b'#', b',', b'.', b'-', b'0', 0xFF, 0x00,
    ];
    for text in [SCENARIO, SWEEP] {
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            for &m in mutations {
                let mut mutated = bytes.to_vec();
                mutated[pos] = m;
                let repaired = String::from_utf8_lossy(&mutated);
                let _ = Scenario::parse(&repaired);
                let _ = SweepSpec::parse(&repaired);
            }
        }
    }
}

/// Cross-format confusion: feeding each schema the other's document is a
/// clean validation error naming the missing/unknown section.
#[test]
fn wrong_schema_is_a_clean_validation_error() {
    let err = Scenario::parse(SWEEP).unwrap_err();
    assert!(err.to_string().contains("unknown section"), "{err}");
    let err = SweepSpec::parse(SCENARIO).unwrap_err();
    assert!(err.to_string().contains("unknown section"), "{err}");
}

/// Adversarial shapes that historically crash hand-rolled parsers:
/// pathological nesting, enormous tokens, CRLF, interior NULs, BOM,
/// comment-only files, unterminated everything.
#[test]
fn adversarial_inputs_never_panic() {
    let giant_token = format!("[scenario]\nversion = {}\n", "9".repeat(100_000));
    let giant_array = format!("[pois]\nweights = [{}]\n", "1,".repeat(100_000));
    let deep_nest = format!("[s]\na = {}1", "[".repeat(100_000));
    let cases: Vec<String> = vec![
        String::new(),
        "\u{feff}[scenario]\nversion = 1\n".into(),
        "[scenario]\r\nversion = 1\r\n".into(),
        "[scenario]\nversion = 1\nname = \"a\0b\"\n".into(),
        "# only a comment\n".into(),
        "[".into(),
        "[]".into(),
        "[scenario".into(),
        "[scenario]\nversion =".into(),
        "[scenario]\nversion = 1\nname = \"unterminated".into(),
        "[scenario]\nversion = 1\nseeds = [1, 2".into(),
        "=\n==\n===\n".into(),
        giant_token,
        giant_array,
        deep_nest,
    ];
    for case in &cases {
        let _ = Scenario::parse(case);
        let _ = SweepSpec::parse(case);
    }
}
