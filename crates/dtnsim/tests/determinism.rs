//! Determinism regression: the same `(config, trace, seed)` — and hence
//! the same derived fault plan — must produce identical `SimResult`s for
//! every scheme, with and without fault injection. Each fault source
//! draws from its own salted RNG stream, so this is what makes chaos
//! failures replayable from a one-line seed report.

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{
    BestPossible, CentralizedOracle, DirectDelivery, Epidemic, ModifiedSpray, OurScheme, PhotoNet,
    ProphetRouting, SprayAndWait,
};
use photodtn_sim::{FaultConfig, Scheme, SimConfig, Simulation};

fn lineup() -> Vec<Box<dyn Scheme + Send>> {
    vec![
        Box::new(BestPossible),
        Box::new(OurScheme::new()),
        Box::new(OurScheme::no_metadata()),
        Box::new(ModifiedSpray::new()),
        Box::new(SprayAndWait::new()),
        Box::new(PhotoNet::new()),
        Box::new(Epidemic::new()),
        Box::new(DirectDelivery::new()),
        Box::new(CentralizedOracle::new()),
        Box::new(ProphetRouting::new()),
    ]
}

fn small_trace(seed: u64) -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(16)
        .with_duration_hours(36.0)
        .generate(seed)
}

fn small_config() -> SimConfig {
    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(30.0)
        .with_storage_bytes(40 * 4 * 1024 * 1024);
    config.num_pois = 60;
    config
}

/// Every scheme, run twice on identical inputs, faulted and unfaulted:
/// the full `SimResult` (every sample, every counter) must be equal.
#[test]
fn every_scheme_repeats_exactly() {
    let trace = small_trace(3);
    for intensity in [0.0, 0.5] {
        let config = small_config().with_faults(FaultConfig::chaos(intensity));
        for (first, second) in lineup().into_iter().zip(lineup()) {
            let name = first.name();
            let mut a = first;
            let mut b = second;
            let r1 = Simulation::new(&config, &trace, 42).run(&mut a);
            let r2 = Simulation::new(&config, &trace, 42).run(&mut b);
            assert_eq!(r1, r2, "{name} at intensity {intensity} diverged");
        }
    }
}

/// Zero-intensity injection is indistinguishable from no injector at all:
/// `chaos(0.0)` consumes no randomness anywhere, so results are identical
/// to a config that never mentions faults.
#[test]
fn zero_intensity_faults_change_nothing() {
    let trace = small_trace(8);
    assert!(FaultConfig::chaos(0.0).is_noop());
    let plain = small_config();
    let zeroed = small_config().with_faults(FaultConfig::chaos(0.0));
    for (first, second) in lineup().into_iter().zip(lineup()) {
        let name = first.name();
        let mut a = first;
        let mut b = second;
        let r1 = Simulation::new(&plain, &trace, 5).run(&mut a);
        let r2 = Simulation::new(&zeroed, &trace, 5).run(&mut b);
        assert_eq!(r1, r2, "{name}: zero-rate faults perturbed the run");
    }
}

/// The derived fault plan itself is a pure function of
/// `(config, num_nodes, duration, seed)`.
#[test]
fn fault_plans_repeat_exactly() {
    let trace = small_trace(2);
    let config = small_config().with_faults(FaultConfig::chaos(0.8));
    let s1 = Simulation::try_new(&config, &trace, 7).unwrap();
    let s2 = Simulation::try_new(&config, &trace, 7).unwrap();
    assert_eq!(s1.fault_plan(), s2.fault_plan());
    assert!(s1.fault_plan().crash_count() > 0);
    let other_seed = Simulation::try_new(&config, &trace, 8).unwrap();
    assert_ne!(
        s1.fault_plan(),
        other_seed.fault_plan(),
        "different seeds should draw different outage schedules"
    );
}
