//! The tracing subsystem must be a pure observer: attaching a sink to a
//! run must not change the `SimResult` in any way, for any scheme, with
//! or without fault injection. Tracing reads engine state but never
//! mutates it and never consumes randomness, so traced and untraced runs
//! walk the exact same event sequence.

use std::io::BufRead;

use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
use photodtn_contacts::ContactTrace;
use photodtn_schemes::{
    BestPossible, CentralizedOracle, DirectDelivery, Epidemic, ModifiedSpray, OurScheme, PhotoNet,
    ProphetRouting, SprayAndWait,
};
use photodtn_sim::{FaultConfig, JsonlSink, Scheme, SimConfig, Simulation, TraceEvent, VecSink};

fn lineup() -> Vec<Box<dyn Scheme + Send>> {
    vec![
        Box::new(BestPossible),
        Box::new(OurScheme::new()),
        Box::new(OurScheme::no_metadata()),
        Box::new(ModifiedSpray::new()),
        Box::new(SprayAndWait::new()),
        Box::new(PhotoNet::new()),
        Box::new(Epidemic::new()),
        Box::new(DirectDelivery::new()),
        Box::new(CentralizedOracle::new()),
        Box::new(ProphetRouting::new()),
    ]
}

fn small_trace(seed: u64) -> ContactTrace {
    CommunityTraceGenerator::new(TraceStyle::MitLike)
        .with_num_nodes(16)
        .with_duration_hours(36.0)
        .generate(seed)
}

fn small_config() -> SimConfig {
    let mut config = SimConfig::mit_default()
        .with_photos_per_hour(30.0)
        .with_storage_bytes(40 * 4 * 1024 * 1024);
    config.num_pois = 60;
    config
}

/// Every scheme, faulted and unfaulted: a run with a sink attached must
/// produce the exact `SimResult` of a run without one.
#[test]
fn tracing_never_changes_the_result() {
    let trace = small_trace(3);
    for intensity in [0.0, 0.5] {
        let config = small_config().with_faults(FaultConfig::chaos(intensity));
        for (first, second) in lineup().into_iter().zip(lineup()) {
            let name = first.name();
            let mut untraced_scheme = first;
            let mut traced_scheme = second;
            let untraced = Simulation::new(&config, &trace, 42).run(&mut untraced_scheme);

            let handle = VecSink::new();
            let traced = Simulation::new(&config, &trace, 42)
                .with_trace_sink(Box::new(handle.clone()))
                .run(&mut traced_scheme);

            assert_eq!(
                untraced, traced,
                "{name} at intensity {intensity}: tracing perturbed the result"
            );
            assert!(
                !handle.events().is_empty(),
                "{name}: the traced run recorded no events"
            );
        }
    }
}

/// Events come out in simulated-time order (ties are fine — many events
/// share a contact's timestamp), bracketed by `RunBegin` and `RunEnd`.
#[test]
fn event_times_are_monotone_and_bracketed() {
    let trace = small_trace(5);
    let config = small_config().with_faults(FaultConfig::chaos(0.5));
    let handle = VecSink::new();
    let mut scheme = OurScheme::new();
    Simulation::new(&config, &trace, 7)
        .with_trace_sink(Box::new(handle.clone()))
        .run(&mut scheme);

    let events = handle.take();
    assert!(matches!(events.first(), Some(TraceEvent::RunBegin { .. })));
    assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })));
    let mut last = 0.0f64;
    for event in events.iter() {
        let t = event.time();
        assert!(
            t >= last,
            "event time went backwards: {t} after {last} ({event:?})"
        );
        last = t;
    }
}

/// A faulted `ours` run exercises the whole event vocabulary that the
/// `inspect` subcommand aggregates over.
#[test]
fn faulted_ours_run_emits_every_major_event_kind() {
    let trace = small_trace(3);
    let config = small_config().with_faults(FaultConfig::chaos(0.5));
    let handle = VecSink::new();
    let mut scheme = OurScheme::new();
    // Seed chosen so the run hits every event kind: with per-event fault
    // keying some seeds drop most uplink windows by chance, which would
    // starve the upload vocabulary this test is about.
    Simulation::new(&config, &trace, 7)
        .with_trace_sink(Box::new(handle.clone()))
        .run(&mut scheme);

    let events = handle.take();
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().any(pred);
    assert!(has(&|e| matches!(e, TraceEvent::PhotoGenerated { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ContactBegin { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ContactEnd { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Selection { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::MetadataSnapshot { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::UploadBegin { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::UploadCommit { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::UploadEnd { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Delivered { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::BufferSnapshot { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::NodeCrashed { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ProphetUpdate { .. })));
}

/// The JSONL sink writes one parseable, externally-tagged object per
/// line, and the file survives for offline analysis.
#[test]
fn jsonl_sink_writes_parseable_lines() {
    let dir = std::env::temp_dir().join("photodtn-trace-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let path_str = path.to_str().unwrap();

    let trace = small_trace(2);
    let config = small_config();
    let mut scheme = OurScheme::new();
    let sink = JsonlSink::create(path_str).unwrap();
    Simulation::new(&config, &trace, 9)
        .with_trace_sink(Box::new(sink))
        .run(&mut scheme);

    let file = std::fs::File::open(&path).unwrap();
    let mut lines = 0usize;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.unwrap();
        let value: serde_json::Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e:?}"));
        let obj = value.as_object().expect("every event is an object");
        assert_eq!(obj.len(), 1, "externally tagged: exactly one key");
        lines += 1;
    }
    assert!(
        lines > 10,
        "expected a real event stream, got {lines} lines"
    );
    std::fs::remove_file(&path).unwrap();
}
