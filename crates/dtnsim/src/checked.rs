//! A scheme wrapper that validates global invariants after every hook —
//! the simulator's built-in failure detector for scheme implementations.

use std::collections::BTreeSet;

use photodtn_contacts::NodeId;
use photodtn_coverage::{Photo, PhotoId};

use crate::faults::FaultStats;
use crate::{Scheme, SimCtx};

/// Wraps any scheme and asserts, after every event it handles:
///
/// * every participant's storage is within capacity (when the scheme
///   [`respects_storage`](Scheme::respects_storage)) — including under
///   crash/reboot churn;
/// * the command center's collection only grows;
/// * time never runs backwards between hooks;
/// * fault counters never decrease;
/// * no photo that existed *only* in a crashed node's wiped buffer is
///   ever delivered afterwards — delivery from beyond the grave would
///   mean a scheme (or the engine) resurrected destroyed data. Corrupt
///   transmissions are discarded before [`SimCtx::deliver`] runs, so the
///   growth check also guarantees no corrupt photo enters the command
///   center's collection.
///
/// # Panics
///
/// All hooks panic when the wrapped scheme violates an invariant, which
/// makes `Checked` a test harness: run the full simulation under
/// `Checked(scheme)` and any storage leak or delivery rollback becomes a
/// loud failure at the exact event that caused it.
///
/// # Example
///
/// ```
/// use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};
/// use photodtn_sim::{schemes_api::FloodScheme, Checked, SimConfig, Simulation};
///
/// let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
///     .with_num_nodes(8).with_duration_hours(10.0).generate(1);
/// let config = SimConfig::mit_default().with_photos_per_hour(10.0);
/// let mut checked = Checked::new(FloodScheme);
/// let result = Simulation::new(&config, &trace, 1).run(&mut checked);
/// assert!(result.final_sample().delivered_photos > 0);
/// ```
#[derive(Debug)]
pub struct Checked<S> {
    inner: S,
    last_now: f64,
    last_delivered: usize,
    last_stats: FaultStats,
    /// Photos destroyed by crashes before reaching anyone else: they can
    /// never legitimately appear at the command center.
    lost_forever: BTreeSet<PhotoId>,
}

impl<S: Scheme> Checked<S> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Checked {
            inner,
            last_now: f64::NEG_INFINITY,
            last_delivered: 0,
            last_stats: FaultStats::default(),
            lost_forever: BTreeSet::new(),
        }
    }

    /// Unwraps the inner scheme.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn verify(&mut self, ctx: &SimCtx, hook: &str) {
        assert!(
            ctx.now() >= self.last_now,
            "{}: time ran backwards ({} after {}) in {hook}",
            self.inner.name(),
            ctx.now(),
            self.last_now
        );
        self.last_now = ctx.now();

        if self.inner.respects_storage() {
            for n in 0..ctx.num_nodes() {
                let used = ctx.collection(NodeId(n)).total_size();
                assert!(
                    used <= ctx.storage_bytes(),
                    "{}: node n{n} holds {used} B > capacity {} B after {hook}",
                    self.inner.name(),
                    ctx.storage_bytes()
                );
            }
        }

        let delivered = ctx.cc_collection().len();
        assert!(
            delivered >= self.last_delivered,
            "{}: command center lost photos ({} -> {delivered}) after {hook}",
            self.inner.name(),
            self.last_delivered
        );
        self.last_delivered = delivered;

        let stats = *ctx.faults().stats();
        for (name, before, after) in [
            (
                "contacts_interrupted",
                self.last_stats.contacts_interrupted,
                stats.contacts_interrupted,
            ),
            (
                "transfers_lost",
                self.last_stats.transfers_lost,
                stats.transfers_lost,
            ),
            (
                "transfers_corrupt",
                self.last_stats.transfers_corrupt,
                stats.transfers_corrupt,
            ),
            (
                "node_crashes",
                self.last_stats.node_crashes,
                stats.node_crashes,
            ),
            (
                "uplinks_degraded",
                self.last_stats.uplinks_degraded,
                stats.uplinks_degraded,
            ),
        ] {
            assert!(
                after >= before,
                "{}: fault counter {name} decreased ({before} -> {after}) after {hook}",
                self.inner.name()
            );
        }
        self.last_stats = stats;

        for &id in &self.lost_forever {
            assert!(
                !ctx.cc_collection().contains(id),
                "{}: photo {id:?} was wiped by a crash before reaching anyone, \
                 yet the command center holds it after {hook}",
                self.inner.name()
            );
        }
    }
}

impl<S: Scheme> Scheme for Checked<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn respects_storage(&self) -> bool {
        self.inner.respects_storage()
    }

    fn on_init(&mut self, ctx: &mut SimCtx) {
        self.inner.on_init(ctx);
        self.verify(ctx, "on_init");
    }

    fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
        self.inner.on_photo_generated(ctx, node, photo);
        self.verify(ctx, "on_photo_generated");
    }

    fn on_contact(&mut self, ctx: &mut SimCtx, a: NodeId, b: NodeId, budget: u64) {
        self.inner.on_contact(ctx, a, b, budget);
        self.verify(ctx, "on_contact");
    }

    fn on_upload(&mut self, ctx: &mut SimCtx, node: NodeId, budget: u64) {
        self.inner.on_upload(ctx, node, budget);
        self.verify(ctx, "on_upload");
    }

    fn on_node_crashed(&mut self, ctx: &mut SimCtx, node: NodeId) {
        // The buffer is still intact here (the engine wipes it right
        // after this hook): record which photos exist *only* on the
        // crashing node — if any of them ever shows up at the command
        // center, someone resurrected destroyed data.
        for id in ctx.collection(node).ids() {
            let replicated_elsewhere = ctx.cc_collection().contains(id)
                || (0..ctx.num_nodes())
                    .map(NodeId)
                    .any(|n| n != node && ctx.collection(n).contains(id));
            if !replicated_elsewhere {
                self.lost_forever.insert(id);
            }
        }
        self.inner.on_node_crashed(ctx, node);
        self.verify(ctx, "on_node_crashed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes_api::FloodScheme;
    use crate::{SimConfig, Simulation};
    use photodtn_contacts::synth::{CommunityTraceGenerator, TraceStyle};

    #[test]
    fn checked_flood_runs_clean() {
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(10)
            .with_duration_hours(20.0)
            .generate(1);
        let config = SimConfig::mit_default().with_photos_per_hour(20.0);
        let mut checked = Checked::new(FloodScheme);
        let result = Simulation::new(&config, &trace, 1).run(&mut checked);
        assert!(result.final_sample().delivered_photos > 0);
        let _ = checked.into_inner();
    }

    #[test]
    #[should_panic(expected = "holds")]
    fn checked_catches_storage_violation() {
        /// A buggy scheme that hoards without evicting.
        struct Hoarder;
        impl Scheme for Hoarder {
            fn name(&self) -> &'static str {
                "hoarder"
            }
            fn on_photo_generated(&mut self, ctx: &mut SimCtx, node: NodeId, photo: Photo) {
                ctx.collection_mut(node).insert(photo); // never evicts
            }
            fn on_contact(&mut self, _: &mut SimCtx, _: NodeId, _: NodeId, _: u64) {}
            fn on_upload(&mut self, _: &mut SimCtx, _: NodeId, _: u64) {}
        }
        let trace = CommunityTraceGenerator::new(TraceStyle::MitLike)
            .with_num_nodes(6)
            .with_duration_hours(40.0)
            .generate(1);
        // storage of 2 photos overflows quickly at 40 photos/h
        let config = SimConfig::mit_default()
            .with_photos_per_hour(40.0)
            .with_storage_bytes(2 * 4 * 1024 * 1024);
        let _ = Simulation::new(&config, &trace, 1).run(&mut Checked::new(Hoarder));
    }
}
