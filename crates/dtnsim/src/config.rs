use serde::{Deserialize, Serialize};

use photodtn_contacts::NodeId;
use photodtn_core::validity::ValidityModel;
use photodtn_coverage::CoverageParams;
use photodtn_prophet::ProphetParams;

use crate::faults::FaultConfig;

/// How the command center is attached to the network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CommandCenterMode {
    /// The command center is outside the trace; a random fraction of
    /// participants are gateways (satellite radios / data mules) with a
    /// periodic uplink window (§V-A).
    Gateways {
        /// Fraction of participants that can reach the command center
        /// (the paper uses "about 2%"). At least one gateway is always
        /// chosen.
        fraction: f64,
        /// Seconds between a gateway's uplink windows.
        period: f64,
        /// Length of each uplink window, seconds.
        window: f64,
    },
    /// One trace node *is* the command center (the §IV-B demo): all its
    /// trace contacts are uplink opportunities.
    TraceNode(NodeId),
}

/// All simulation parameters (Table I defaults).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Region size (east, north), meters. Table I: 6300 m × 6300 m.
    pub region: (f64, f64),
    /// Number of PoIs randomly placed in the region (250 in §V-A).
    pub num_pois: u32,
    /// Coverage parameters (`θ` = 30° in Table I).
    pub coverage: CoverageParams,
    /// Per-node storage, bytes (0.6 GB default).
    pub storage_bytes: u64,
    /// Photo payload size, bytes (4 MB).
    pub photo_size: u64,
    /// Photos generated network-wide per hour (250).
    pub photos_per_hour: f64,
    /// Link bandwidth, bytes/second (2 MB/s, §V-C).
    pub bandwidth: u64,
    /// If set, caps each contact's usable duration, seconds (§V-C sweeps
    /// 30 s … 10 min). `None` uses the trace durations as-is.
    pub contact_duration_cap: Option<f64>,
    /// PROPHET parameters (Table I).
    pub prophet: ProphetParams,
    /// Metadata validity threshold (Table I: 0.8).
    pub validity: ValidityModel,
    /// Command-center attachment.
    pub command_center: CommandCenterMode,
    /// Metric sampling interval, seconds.
    pub sample_interval: f64,
    /// Crowdsourcing deadline, hours (§III-A: the command center "issues
    /// a PoI list … and a deadline indicating how long the PoI list will
    /// be valid"). Events after it are discarded; `None` runs the whole
    /// trace.
    pub deadline_hours: Option<f64>,
    /// Fraction of participants that *fail* (power loss, damage — this is
    /// a disaster scenario) at a uniform random time during the run,
    /// taking their stored photos with them. 0 disables failures.
    pub failure_fraction: f64,
    /// Fault-injection rates (interruption, loss/corruption, churn,
    /// degraded uplinks). The default is all-zero — no faults, and
    /// bit-identical results to a build without the injector.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Capacity bound of the per-run coverage-table cache (entries).
    /// Zero disables caching; any value produces byte-identical results
    /// (evicted tables are deterministically rebuilt), only speed differs.
    #[serde(default = "default_coverage_cache_capacity")]
    pub coverage_cache_capacity: usize,
    /// If set, only nodes `0..camera_nodes` take photos; nodes above are
    /// pure relays (e.g. stationary throwboxes appended to a trace by
    /// `RelayOverlay`) that store and forward but never photograph.
    /// `None` — the default — lets every participant photograph, on the
    /// exact RNG path of builds without this knob.
    #[serde(default)]
    pub camera_nodes: Option<u32>,
    /// Number of spatial region shards to process events in parallel
    /// with. `1` (the default) runs the plain sequential engine; `0`
    /// auto-sizes to the machine
    /// ([`default_worker_count`](crate::default_worker_count)); `>= 2`
    /// partitions the node population by contact locality and executes
    /// intra-shard events on worker threads, with a deterministic
    /// cross-shard merge that keeps results byte-identical to the
    /// sequential engine for the same seed.
    #[serde(default = "default_shards")]
    pub shards: usize,
}

fn default_coverage_cache_capacity() -> usize {
    photodtn_coverage::CoverageTableCache::DEFAULT_CAPACITY
}

fn default_shards() -> usize {
    1
}

impl SimConfig {
    /// Table I defaults for the MIT-like scenario.
    #[must_use]
    pub fn mit_default() -> Self {
        SimConfig {
            region: (6300.0, 6300.0),
            num_pois: 250,
            coverage: CoverageParams::default(),
            storage_bytes: (0.6 * 1024.0 * 1024.0 * 1024.0) as u64,
            photo_size: 4 * 1024 * 1024,
            photos_per_hour: 250.0,
            bandwidth: 2 * 1024 * 1024,
            contact_duration_cap: None,
            prophet: ProphetParams::paper_default(),
            validity: ValidityModel::paper_default(),
            command_center: CommandCenterMode::Gateways {
                fraction: 0.02,
                period: 6.0 * 3600.0,
                window: 120.0,
            },
            sample_interval: 3600.0,
            deadline_hours: None,
            failure_fraction: 0.0,
            faults: FaultConfig::default(),
            coverage_cache_capacity: default_coverage_cache_capacity(),
            camera_nodes: None,
            shards: default_shards(),
        }
    }

    /// Table I defaults for the Cambridge-like scenario (identical except
    /// the trace supplies fewer nodes / a shorter window).
    #[must_use]
    pub fn cambridge_default() -> Self {
        Self::mit_default()
    }

    /// Overrides per-node storage, bytes (builder-style).
    #[must_use]
    pub fn with_storage_bytes(mut self, bytes: u64) -> Self {
        self.storage_bytes = bytes;
        self
    }

    /// Overrides the photo generation rate (builder-style).
    #[must_use]
    pub fn with_photos_per_hour(mut self, rate: f64) -> Self {
        self.photos_per_hour = rate.max(0.0);
        self
    }

    /// Caps contact durations (builder-style), as in §V-C.
    #[must_use]
    pub fn with_contact_duration_cap(mut self, seconds: f64) -> Self {
        self.contact_duration_cap = Some(seconds.max(0.0));
        self
    }

    /// Overrides the command-center mode (builder-style).
    #[must_use]
    pub fn with_command_center(mut self, mode: CommandCenterMode) -> Self {
        self.command_center = mode;
        self
    }

    /// Sets the crowdsourcing deadline (builder-style).
    #[must_use]
    pub fn with_deadline_hours(mut self, hours: f64) -> Self {
        self.deadline_hours = Some(hours.max(0.0));
        self
    }

    /// Sets the failed-participant fraction (builder-style), clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn with_failure_fraction(mut self, fraction: f64) -> Self {
        self.failure_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the fault-injection configuration (builder-style).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the coverage-table cache capacity (builder-style); zero
    /// disables caching.
    #[must_use]
    pub fn with_coverage_cache_capacity(mut self, entries: usize) -> Self {
        self.coverage_cache_capacity = entries;
        self
    }

    /// Restricts photography to nodes `0..n` (builder-style); nodes at
    /// or above `n` become pure relays.
    #[must_use]
    pub fn with_camera_nodes(mut self, n: u32) -> Self {
        self.camera_nodes = Some(n);
        self
    }

    /// Sets the shard count (builder-style): `1` sequential, `0`
    /// auto-sized, `>= 2` parallel with that many region shards.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Storage capacity in photos of the configured size.
    #[must_use]
    pub fn photos_per_node(&self) -> u64 {
        if self.photo_size == 0 {
            return u64::MAX;
        }
        self.storage_bytes / self.photo_size
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::mit_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SimConfig::mit_default();
        assert_eq!(c.region, (6300.0, 6300.0));
        assert_eq!(c.num_pois, 250);
        assert_eq!(c.photo_size, 4 * 1024 * 1024);
        assert_eq!(c.photos_per_hour, 250.0);
        assert!((c.coverage.effective_angle.to_degrees() - 30.0).abs() < 1e-9);
        assert_eq!(c.prophet.p_init, 0.75);
        assert_eq!(c.prophet.beta, 0.25);
        assert_eq!(c.prophet.gamma, 0.98);
        assert_eq!(c.validity.p_threshold, 0.8);
        // 0.6 GB at 4 MB per photo ≈ 153 photos
        assert_eq!(c.photos_per_node(), 153);
        match c.command_center {
            CommandCenterMode::Gateways { fraction, .. } => assert!((fraction - 0.02).abs() < 1e-9),
            CommandCenterMode::TraceNode(_) => panic!("default should use gateways"),
        }
    }

    #[test]
    fn builders() {
        let c = SimConfig::mit_default()
            .with_storage_bytes(100)
            .with_photos_per_hour(10.0)
            .with_contact_duration_cap(30.0)
            .with_command_center(CommandCenterMode::TraceNode(NodeId(3)));
        assert_eq!(c.storage_bytes, 100);
        assert_eq!(c.photos_per_hour, 10.0);
        assert_eq!(c.contact_duration_cap, Some(30.0));
        assert_eq!(c.command_center, CommandCenterMode::TraceNode(NodeId(3)));
    }

    #[test]
    fn degenerate_photo_size() {
        let mut c = SimConfig::mit_default();
        c.photo_size = 0;
        assert_eq!(c.photos_per_node(), u64::MAX);
    }
}
