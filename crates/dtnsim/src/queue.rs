//! The simulator's event queue.
//!
//! # Ordering contract
//!
//! Events execute in ascending `(t, kind_key, seq)` order, where
//! [`kind_key`] is `(kind discriminant, primary id, secondary id)` and
//! `seq` is the queue-wide push counter. This is *provably identical* to
//! the previous implementation — a `Vec<Event>` stable-sorted by
//! `(t, kind_key)` — because a stable sort breaks ties by original
//! position, i.e. by push order, i.e. by `seq`. The determinism tests pin
//! this equivalence byte-for-byte on whole-run results.
//!
//! # Why not sort-on-insert
//!
//! The old queue re-sorted the entire vector after every batch of pushes
//! (`O(N log N)` per batch, `O(N² log N)` if pushes arrive one at a
//! time). Here a push is an `O(1)` append to an unsorted *pending*
//! batch, and ordering is materialized lazily: before iteration, the
//! pending batch is sorted once (`O(k log k)` for `k` pending events)
//! and merged with the already-ordered run in one `O(n + k)` pass. Work
//! counters expose how many element moves materialization performed, so
//! a regression test can pin the complexity without timing anything.
//!
//! An earlier revision kept the pending set in a [`BinaryHeap`]
//! (`O(log n)` per push, full heap drain per materialization). That
//! moved the whole `N log N` ordering cost from construction into the
//! first `run()` — where schemes with near-zero per-event work
//! (epidemic) paid it as a measured 0.90x events/sec regression. The
//! sorted-batch design does the same total work as the original
//! push-then-sort `Vec`, and [`Simulation`](crate::Simulation)
//! construction materializes eagerly so the hot loop never sorts.
//!
//! [`BinaryHeap`]: std::collections::BinaryHeap

use std::cmp::Ordering;
use std::sync::Arc;

use photodtn_contacts::NodeId;
use photodtn_coverage::{Photo, PoiList};

/// What happens at one instant of simulated time.
#[derive(Clone, Debug)]
pub(crate) enum EventKind {
    /// PoI importance phase `step` begins: the world's PoI list is
    /// replaced by this one (same geometry, new weights). Scheduled only
    /// by [`Simulation::with_poi_reweights`](crate::Simulation::with_poi_reweights).
    Reweight(u32, Arc<PoiList>),
    /// `node` takes `photo`.
    Generate(NodeId, Photo),
    /// DTN contact with a usable duration (seconds).
    Contact(NodeId, NodeId, f64),
    /// Uplink window of `node` with a usable duration (seconds).
    Upload(NodeId, f64),
    /// `node` crashes: its photo buffer (and optionally PROPHET state)
    /// is wiped and it stays down until the matching [`Reboot`].
    ///
    /// [`Reboot`]: EventKind::Reboot
    Crash(NodeId),
    /// `node` comes back up, empty.
    Reboot(NodeId),
}

/// Deterministic same-time tie-break: kind discriminant, then ids.
///
/// `Reweight` sorts first so a phase boundary at time `t` applies before
/// anything else at `t`. Shifting the other discriminants up preserved
/// their *relative* order, so worlds without reweights order — and
/// therefore simulate — exactly as before.
pub(crate) fn kind_key(k: &EventKind) -> (u8, u32, u32) {
    match k {
        EventKind::Reweight(step, _) => (0, *step, 0),
        EventKind::Generate(n, p) => (1, n.0, p.id.0 as u32),
        EventKind::Contact(a, b, _) => (2, a.0, b.0),
        EventKind::Upload(n, _) => (3, n.0, 0),
        EventKind::Crash(n) => (4, n.0, 0),
        EventKind::Reboot(n) => (5, n.0, 0),
    }
}

/// An event plus the components of its total order.
#[derive(Clone, Debug)]
pub(crate) struct ScheduledEvent {
    pub(crate) t: f64,
    pub(crate) kind: EventKind,
    key: (u8, u32, u32),
    /// Queue-wide push counter — unique per event and identical across
    /// sequential and sharded execution (both consume the same
    /// materialized queue), so it doubles as the per-event fault-RNG key.
    pub(crate) seq: u64,
}

impl ScheduledEvent {
    fn order(&self, other: &Self) -> Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.key.cmp(&other.key))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Priority queue over [`ScheduledEvent`]s with lazy ordered
/// materialization (see the module docs for the ordering contract).
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    /// Pushed but not yet merged into `ordered`; unsorted, sorted once
    /// per materialization.
    pending: Vec<ScheduledEvent>,
    /// The materialized ascending run.
    ordered: Vec<ScheduledEvent>,
    next_seq: u64,
    /// Total elements written by materialization merges — the queue's
    /// entire sorting work, pinned by the insertion-complexity test.
    merge_moves: u64,
    materializations: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event: `O(1)` amortized, no sorting.
    pub(crate) fn push(&mut self, t: f64, kind: EventKind) {
        let key = kind_key(&kind);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(ScheduledEvent { t, kind, key, seq });
    }

    /// Number of scheduled events (pending + materialized).
    pub(crate) fn len(&self) -> usize {
        self.pending.len() + self.ordered.len()
    }

    /// Drops every event `f` rejects, wherever it currently lives.
    pub(crate) fn retain(&mut self, mut f: impl FnMut(f64, &EventKind) -> bool) {
        self.ordered.retain(|e| f(e.t, &e.kind));
        self.pending.retain(|e| f(e.t, &e.kind));
    }

    /// Merges all pending events into the ordered run. Idempotent; called
    /// automatically by [`ordered`](Self::ordered) /
    /// [`ordered_mut`](Self::ordered_mut) would hide the cost, so callers
    /// invoke it explicitly before iterating.
    pub(crate) fn ensure_ordered(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.materializations += 1;
        // Sort the pending batch by the total order. `seq` is unique, so
        // the order is total and an unstable sort is deterministic.
        let mut fresh = std::mem::take(&mut self.pending);
        fresh.sort_unstable_by(ScheduledEvent::order);
        if self.ordered.is_empty() {
            self.merge_moves += fresh.len() as u64;
            self.ordered = fresh;
            return;
        }
        // One linear merge of two ascending runs.
        let old = std::mem::take(&mut self.ordered);
        self.merge_moves += (old.len() + fresh.len()) as u64;
        let mut merged = Vec::with_capacity(old.len() + fresh.len());
        let mut a = old.into_iter().peekable();
        let mut b = fresh.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.order(y) != Ordering::Greater {
                        merged.push(a.next().unwrap());
                    } else {
                        merged.push(b.next().unwrap());
                    }
                }
                (Some(_), None) => merged.push(a.next().unwrap()),
                (None, Some(_)) => merged.push(b.next().unwrap()),
                (None, None) => break,
            }
        }
        self.ordered = merged;
    }

    /// The events in execution order.
    ///
    /// # Panics
    ///
    /// Debug-asserts that [`ensure_ordered`](Self::ensure_ordered) ran
    /// since the last push.
    pub(crate) fn ordered(&self) -> &[ScheduledEvent] {
        debug_assert!(self.pending.is_empty(), "call ensure_ordered() first");
        &self.ordered
    }

    /// Mutable access in execution order, materializing first. Callers
    /// must not change an event's time or identity (the order keys are
    /// precomputed); payload mutation — e.g. re-placing a photo's
    /// location — is fine.
    pub(crate) fn ordered_mut(&mut self) -> &mut [ScheduledEvent] {
        self.ensure_ordered();
        &mut self.ordered
    }

    /// Total elements moved by materialization merges so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn merge_moves(&self) -> u64 {
        self.merge_moves
    }

    /// How many materialization passes have run.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn materializations(&self) -> u64 {
        self.materializations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(n: u32) -> EventKind {
        EventKind::Upload(NodeId(n), 1.0)
    }

    fn times(q: &mut EventQueue) -> Vec<(f64, (u8, u32, u32), u64)> {
        q.ensure_ordered();
        q.ordered().iter().map(|e| (e.t, e.key, e.seq)).collect()
    }

    #[test]
    fn orders_by_time_kind_then_push_order() {
        let mut q = EventQueue::new();
        q.push(5.0, upload(2));
        q.push(1.0, EventKind::Crash(NodeId(0)));
        q.push(1.0, EventKind::Contact(NodeId(0), NodeId(1), 2.0));
        q.push(5.0, upload(1));
        q.push(1.0, EventKind::Contact(NodeId(0), NodeId(1), 9.0)); // same key: push order
        let got = times(&mut q);
        assert_eq!(got[0].0, 1.0);
        assert_eq!(got[0].1 .0, 2); // contact before crash at t=1
        assert_eq!(got[1], (1.0, (2, 0, 1), 4)); // duplicate key → later seq second
        assert_eq!(got[2].1 .0, 4);
        assert_eq!(got[3], (5.0, (3, 1, 0), 3)); // upload(1) before upload(2)
        assert_eq!(got[4], (5.0, (3, 2, 0), 0));
    }

    #[test]
    fn matches_stable_sort_reference() {
        // The queue's order must equal stable-sorting the push sequence by
        // (t, kind_key) — the old implementation — for an adversarial
        // pattern of interleaved pushes and materializations.
        let mut q = EventQueue::new();
        let mut reference: Vec<(f64, (u8, u32, u32), usize)> = Vec::new();
        let mut push = |q: &mut EventQueue, t: f64, kind: EventKind| {
            reference.push((t, kind_key(&kind), reference.len()));
            q.push(t, kind);
        };
        // batch 1
        for i in 0..40u32 {
            let t = f64::from((i * 7) % 13);
            push(&mut q, t, upload(i % 3));
        }
        q.ensure_ordered();
        // batch 2 lands between and on existing times
        for i in 0..25u32 {
            let t = f64::from((i * 5) % 13) + 0.5 * f64::from(i % 2);
            push(&mut q, t, EventKind::Contact(NodeId(i % 4), NodeId(5), 1.0));
        }
        let got = times(&mut q);
        let mut expect = reference.clone();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let expect: Vec<(f64, (u8, u32, u32), u64)> = expect
            .into_iter()
            .map(|(t, k, seq)| (t, k, seq as u64))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn insertion_does_no_sorting_and_merges_linearly() {
        // The O(N² log N) push-then-full-sort regression test, without
        // timing: pushes must do zero sorting work, and inserting a batch
        // of K into an ordered run of N must cost exactly one N+K merge —
        // not a re-sort per push.
        let n = 10_000u32;
        let mut q = EventQueue::new();
        for i in 0..n {
            let t = (u64::from(i) * 2_654_435_761) % 1_000_000;
            q.push(t as f64, upload(i));
        }
        assert_eq!(q.merge_moves(), 0, "push performed sorting work");
        q.ensure_ordered();
        assert_eq!(q.merge_moves(), u64::from(n));
        assert_eq!(q.materializations(), 1);

        let k = 500u32;
        for i in 0..k {
            q.push(f64::from(i * 37 % 1_000_000), upload(n + i));
        }
        assert_eq!(q.merge_moves(), u64::from(n), "push performed sorting work");
        q.ensure_ordered();
        assert_eq!(q.merge_moves(), u64::from(n) + u64::from(n + k));
        assert_eq!(q.materializations(), 2);
        // ordering survives the merge
        let run = q.ordered();
        assert_eq!(run.len(), (n + k) as usize);
        for w in run.windows(2) {
            assert!(w[0].order(&w[1]) != Ordering::Greater);
        }
    }

    #[test]
    fn retain_filters_both_stores() {
        let mut q = EventQueue::new();
        q.push(1.0, upload(0));
        q.push(2.0, upload(1));
        q.ensure_ordered();
        q.push(3.0, upload(2));
        q.push(4.0, upload(3));
        q.retain(|_, k| !matches!(k, EventKind::Upload(n, _) if n.0 % 2 == 1));
        assert_eq!(q.len(), 2);
        let got = times(&mut q);
        assert_eq!(got.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1.0, 3.0]);
    }
}
