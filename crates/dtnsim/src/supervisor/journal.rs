//! Crash-consistent sweep journal: an append-only JSONL manifest that
//! survives `SIGKILL` mid-batch.
//!
//! The write protocol keeps the journal recoverable after a crash at any
//! byte position:
//!
//! * One self-contained JSON object per line; the first line is a
//!   [`Header`](JournalLine::Header) carrying the spec fingerprint, so a
//!   resume against an edited spec is rejected instead of silently
//!   merging incompatible results.
//! * Every line is flushed (and `sync_all`ed when durability is
//!   requested) before the supervisor schedules more work, so a killed
//!   process loses **at most the line being written**.
//! * On resume, a torn final line (no trailing newline, or an incomplete
//!   JSON object) is detected and dropped; a torn line anywhere *else* is
//!   real corruption and rejected. The repaired journal is rewritten via
//!   write-to-temp + atomic rename before new entries are appended, so a
//!   second crash during resume cannot compound the damage.
//!
//! Completed cells store their full [`SimResult`], which makes resume
//! trivially byte-identical: the merged report is assembled from journal
//! results plus freshly run cells, and determinism guarantees a rerun
//! cell would have produced exactly the journaled bytes anyway. Failed
//! cells are journaled for attribution but **not** skipped on resume — a
//! crash environment may have caused them, and deterministic failures
//! simply fail identically again.

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use super::{CellFailure, CellId, CellState};
use crate::SimResult;

/// Journal format version (bumped on incompatible changes).
pub const JOURNAL_VERSION: u32 = 1;

/// One line of the journal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalLine {
    /// First line of every journal.
    Header {
        /// Format version.
        version: u32,
        /// Fingerprint of the sweep spec this journal belongs to.
        fingerprint: u64,
        /// Total cells in the sweep grid.
        cells: u64,
    },
    /// A cell completed with this result.
    Done {
        /// Which cell.
        cell: CellId,
        /// Its full deterministic result.
        result: SimResult,
    },
    /// A cell failed (attribution only; failed cells rerun on resume).
    Failed {
        /// The failure record.
        failure: CellFailure,
    },
}

/// Why a journal could not be loaded.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A non-final line did not parse — the journal is corrupt beyond
    /// torn-tail recovery.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The first line is not a [`JournalLine::Header`].
    MissingHeader,
    /// The journal's fingerprint does not match the spec being resumed.
    FingerprintMismatch {
        /// Fingerprint stored in the journal.
        journal: u64,
        /// Fingerprint of the spec on disk.
        spec: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal IO: {e}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            JournalError::MissingHeader => write!(f, "journal has no header line"),
            JournalError::FingerprintMismatch { journal, spec } => write!(
                f,
                "journal was written for a different spec \
                 (journal fingerprint {journal:#018x}, spec {spec:#018x}); \
                 delete the journal or restore the original spec"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What a loaded journal knows about a previous (possibly killed) run.
#[derive(Debug, Default)]
pub struct ResumeState {
    /// Spec fingerprint from the header.
    pub fingerprint: u64,
    /// Total cells recorded in the header.
    pub cells: u64,
    /// Completed cells with their journaled results (these are skipped
    /// on resume).
    pub done: BTreeMap<CellId, SimResult>,
    /// Failure records from the previous run (rerun on resume).
    pub failed: Vec<CellFailure>,
    /// Whether a torn final line was detected and dropped.
    pub torn_tail: bool,
}

/// Parses journal text, tolerating (and flagging) a torn final line.
fn parse_lines(text: &str) -> Result<(Vec<JournalLine>, bool), JournalError> {
    let mut lines = Vec::new();
    let mut torn_tail = false;
    // A crash can cut the file anywhere, so only a *final* unterminated
    // or unparsable fragment is recoverable.
    let ends_complete = text.is_empty() || text.ends_with('\n');
    let raw: Vec<&str> = text.lines().collect();
    for (i, line) in raw.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let is_last = i + 1 == raw.len();
        match serde_json::from_str::<JournalLine>(line) {
            Ok(parsed) => {
                if is_last && !ends_complete {
                    // Parses but was never newline-terminated: the write
                    // may still have been cut inside a value that happens
                    // to parse (e.g. a truncated number). Drop it — the
                    // cell reruns deterministically.
                    torn_tail = true;
                } else {
                    lines.push(parsed);
                }
            }
            Err(e) if is_last => {
                torn_tail = true;
                let _ = e;
            }
            Err(e) => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    message: e.to_string(),
                })
            }
        }
    }
    Ok((lines, torn_tail))
}

/// Loads a journal for resume, verifying it belongs to `spec_fingerprint`.
pub fn load(path: &Path, spec_fingerprint: u64) -> Result<ResumeState, JournalError> {
    let text = std::fs::read_to_string(path)?;
    let (lines, torn_tail) = parse_lines(&text)?;
    let mut it = lines.into_iter();
    let Some(JournalLine::Header {
        version: _,
        fingerprint,
        cells,
    }) = it.next()
    else {
        return Err(JournalError::MissingHeader);
    };
    if fingerprint != spec_fingerprint {
        return Err(JournalError::FingerprintMismatch {
            journal: fingerprint,
            spec: spec_fingerprint,
        });
    }
    let mut state = ResumeState {
        fingerprint,
        cells,
        torn_tail,
        ..ResumeState::default()
    };
    for line in it {
        match line {
            JournalLine::Header { .. } => {
                // A second header means two runs were interleaved into one
                // file — treat as corruption.
                return Err(JournalError::Corrupt {
                    line: 0,
                    message: "duplicate header".into(),
                });
            }
            JournalLine::Done { cell, result } => {
                state.done.insert(cell, result);
            }
            JournalLine::Failed { failure } => state.failed.push(failure),
        }
    }
    Ok(state)
}

/// The append-side handle: writes one line per resolved cell, flushed
/// (and optionally fsynced) immediately.
#[derive(Debug)]
pub struct Journal {
    out: BufWriter<std::fs::File>,
    sync: bool,
}

impl Journal {
    /// Creates a fresh journal (truncating any previous one) and writes
    /// the header.
    pub fn create(
        path: &Path,
        spec_fingerprint: u64,
        cells: u64,
        sync: bool,
    ) -> std::io::Result<Self> {
        let mut journal = Journal {
            out: BufWriter::new(std::fs::File::create(path)?),
            sync,
        };
        journal.write_line(&JournalLine::Header {
            version: JOURNAL_VERSION,
            fingerprint: spec_fingerprint,
            cells,
        })?;
        Ok(journal)
    }

    /// Reopens a journal for resume: rewrites the repaired content
    /// (header + surviving lines from `state`) to a temp file, atomically
    /// renames it over `path`, and returns an append handle.
    ///
    /// The rewrite heals a torn tail in place — after a second crash the
    /// journal is still either the old repaired file or the new one,
    /// never a mix.
    pub fn resume(path: &Path, state: &ResumeState, sync: bool) -> std::io::Result<Self> {
        let tmp = tmp_sibling(path);
        {
            let mut out = BufWriter::new(std::fs::File::create(&tmp)?);
            let mut write = |line: &JournalLine| -> std::io::Result<()> {
                let text =
                    serde_json::to_string(line).expect("journal line serialization is infallible");
                writeln!(out, "{text}")
            };
            write(&JournalLine::Header {
                version: JOURNAL_VERSION,
                fingerprint: state.fingerprint,
                cells: state.cells,
            })?;
            for (cell, result) in &state.done {
                write(&JournalLine::Done {
                    cell: cell.clone(),
                    result: result.clone(),
                })?;
            }
            // Failure records are dropped on purpose: their cells rerun
            // now, and stale attribution would shadow the fresh outcome.
            out.flush()?;
            if sync {
                out.get_ref().sync_all()?;
            }
        }
        std::fs::rename(&tmp, path)?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            out: BufWriter::new(file),
            sync,
        })
    }

    fn write_line(&mut self, line: &JournalLine) -> std::io::Result<()> {
        let text = serde_json::to_string(line).expect("journal line serialization is infallible");
        writeln!(self.out, "{text}")?;
        self.out.flush()?;
        if self.sync {
            self.out.get_ref().sync_all()?;
        }
        Ok(())
    }

    /// Records one resolved cell.
    pub fn record(&mut self, cell: &CellId, state: &CellState) -> std::io::Result<()> {
        let line = match state {
            CellState::Done(result) => JournalLine::Done {
                cell: cell.clone(),
                result: result.clone(),
            },
            CellState::Failed(failure) => JournalLine::Failed {
                failure: failure.clone(),
            },
        };
        self.write_line(&line)
    }
}

/// A temp-file path next to `path` (same filesystem, so rename is
/// atomic).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `content` to `path` via write-to-temp + atomic rename: readers
/// (and crashes) see either the old file or the complete new one.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut out = BufWriter::new(std::fs::File::create(&tmp)?);
        out.write_all(content.as_bytes())?;
        out.flush()?;
        out.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// FNV-1a 64-bit fingerprint of a sweep spec's raw text. Stable across
/// platforms and builds; any byte change to the spec invalidates a
/// resume.
#[must_use]
pub fn fingerprint(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::super::FailureKind;
    use super::*;
    use crate::MetricSample;

    fn cell(seed: u64) -> CellId {
        CellId {
            scheme: "ours".into(),
            variant: "base".into(),
            seed,
        }
    }

    fn result(seed: u64) -> SimResult {
        SimResult {
            scheme: "ours".into(),
            seed,
            samples: vec![MetricSample {
                t_hours: 1.5,
                delivered_photos: seed,
                ..MetricSample::default()
            }],
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("photodtn-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_create_record_load() {
        let path = tmp_path("roundtrip.jsonl");
        let fp = fingerprint("spec text");
        let mut journal = Journal::create(&path, fp, 3, false).unwrap();
        journal
            .record(&cell(1), &CellState::Done(result(1)))
            .unwrap();
        journal
            .record(
                &cell(2),
                &CellState::Failed(CellFailure {
                    cell: cell(2),
                    kind: FailureKind::Panic,
                    message: "boom".into(),
                    attempts: 1,
                }),
            )
            .unwrap();
        drop(journal);

        let state = load(&path, fp).unwrap();
        assert_eq!(state.cells, 3);
        assert!(!state.torn_tail);
        assert_eq!(state.done.len(), 1);
        assert_eq!(state.done.get(&cell(1)).unwrap().seed, 1);
        assert_eq!(state.failed.len(), 1);
        assert_eq!(state.failed[0].kind, FailureKind::Panic);
    }

    #[test]
    fn torn_tail_is_detected_and_dropped() {
        let path = tmp_path("torn.jsonl");
        let fp = fingerprint("spec");
        let mut journal = Journal::create(&path, fp, 2, false).unwrap();
        journal
            .record(&cell(1), &CellState::Done(result(1)))
            .unwrap();
        journal
            .record(&cell(2), &CellState::Done(result(2)))
            .unwrap();
        drop(journal);

        // Simulate a SIGKILL mid-write: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 17;
        std::fs::write(&path, &text[..cut]).unwrap();

        let state = load(&path, fp).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.done.len(), 1, "torn cell must rerun");
        assert!(state.done.contains_key(&cell(1)));
    }

    #[test]
    fn unterminated_but_parsable_tail_is_still_dropped() {
        let path = tmp_path("unterminated.jsonl");
        let fp = fingerprint("spec");
        let mut journal = Journal::create(&path, fp, 2, false).unwrap();
        journal
            .record(&cell(1), &CellState::Done(result(1)))
            .unwrap();
        journal
            .record(&cell(2), &CellState::Done(result(2)))
            .unwrap();
        drop(journal);

        // Chop only the trailing newline: the last line parses, but the
        // write was provably incomplete.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 1]).unwrap();

        let state = load(&path, fp).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.done.len(), 1);
    }

    #[test]
    fn mid_file_corruption_is_rejected() {
        let path = tmp_path("corrupt.jsonl");
        let fp = fingerprint("spec");
        let mut journal = Journal::create(&path, fp, 2, false).unwrap();
        journal
            .record(&cell(1), &CellState::Done(result(1)))
            .unwrap();
        journal
            .record(&cell(2), &CellState::Done(result(2)))
            .unwrap();
        drop(journal);

        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 1 {
                    l[..l.len() / 2].to_string()
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&path, corrupted.join("\n") + "\n").unwrap();

        match load(&path, fp) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let path = tmp_path("mismatch.jsonl");
        let journal = Journal::create(&path, fingerprint("old spec"), 1, false).unwrap();
        drop(journal);
        match load(&path, fingerprint("edited spec")) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn resume_heals_torn_tail_atomically() {
        let path = tmp_path("heal.jsonl");
        let fp = fingerprint("spec");
        let mut journal = Journal::create(&path, fp, 3, false).unwrap();
        journal
            .record(&cell(1), &CellState::Done(result(1)))
            .unwrap();
        journal
            .record(&cell(2), &CellState::Done(result(2)))
            .unwrap();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();

        let state = load(&path, fp).unwrap();
        assert!(state.torn_tail);
        let mut journal = Journal::resume(&path, &state, false).unwrap();
        journal
            .record(&cell(2), &CellState::Done(result(2)))
            .unwrap();
        journal
            .record(&cell(3), &CellState::Done(result(3)))
            .unwrap();
        drop(journal);

        // The healed journal must load cleanly with all three cells.
        let state = load(&path, fp).unwrap();
        assert!(!state.torn_tail);
        assert_eq!(state.done.len(), 3);
    }

    #[test]
    fn empty_or_headerless_journals_are_rejected() {
        let path = tmp_path("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load(&path, 1), Err(JournalError::MissingHeader)));
        std::fs::write(&path, "{\"Done\":{}}\n{\"Done\":{}}\n").unwrap();
        assert!(matches!(
            load(&path, 1),
            Err(JournalError::Corrupt { .. }) | Err(JournalError::MissingHeader)
        ));
    }

    #[test]
    fn write_atomic_replaces_content() {
        let path = tmp_path("atomic.txt");
        write_atomic(&path, "first\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        assert!(!tmp_sibling(&path).exists(), "temp file renamed away");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        // Pinned value: resumes must work across builds.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
    }
}
